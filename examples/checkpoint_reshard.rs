//! Operate PlatoD2GL like a production service: load a user-supplied edge
//! list, checkpoint the cluster, and restore the checkpoint onto a cluster
//! with a different shard count — the re-deployment dance that static graph
//! stores need full re-partitioning pipelines for.
//!
//! Run with: `cargo run -p platod2gl --release --example checkpoint_reshard`

use platod2gl::{
    read_edge_list, write_edge_list, DatasetProfile, EdgeType, GraphStore, PlatoD2GL, UpdateOp,
};

fn main() {
    // --- 1. A user-supplied edge list (here: generated, then serialized
    //        through the text format to prove the loader path). -----------
    let profile = DatasetProfile::ogbn().scaled_to_edges(50_000);
    let edges: Vec<_> = profile.edge_stream(1).collect();
    let mut text = Vec::new();
    write_edge_list(&mut text, &edges).expect("serialize edge list");
    println!(
        "edge list: {} lines, {:.1} MB of text",
        edges.len(),
        text.len() as f64 / 1e6
    );

    // --- 2. Load it into a 2-shard cluster. ------------------------------
    let small = PlatoD2GL::builder().num_shards(2).build();
    let parsed = read_edge_list(text.as_slice()).expect("parse edge list");
    small.apply_updates(
        &parsed
            .iter()
            .map(|&e| UpdateOp::Insert(e))
            .collect::<Vec<_>>(),
    );
    println!(
        "loaded into 2 shards: {} edges, shard load {:?}",
        small.store().num_edges(),
        small.store().shard_edge_counts()
    );

    // --- 3. Checkpoint. ----------------------------------------------------
    let mut snapshot = Vec::new();
    small.snapshot_to(&mut snapshot).expect("checkpoint");
    println!(
        "checkpoint: {:.1} MB binary ({:.1} bytes/edge)",
        snapshot.len() as f64 / 1e6,
        snapshot.len() as f64 / small.store().num_edges() as f64
    );

    // --- 4. Restore onto a 6-shard cluster (scale-out without replay). ----
    let big = PlatoD2GL::builder().num_shards(6).build();
    let t = std::time::Instant::now();
    big.restore_from(snapshot.as_slice()).expect("restore");
    println!(
        "restored onto 6 shards in {:.2?}: {} edges, shard load {:?}",
        t.elapsed(),
        big.store().num_edges(),
        big.store().shard_edge_counts()
    );
    assert_eq!(big.store().num_edges(), small.store().num_edges());

    // --- 5. Verify a few vertices survived with identical state. ----------
    let probes = profile.sample_sources(100, 5);
    for &v in &probes {
        assert_eq!(
            small.store().degree(v, EdgeType(0)),
            big.store().degree(v, EdgeType(0)),
            "degree diverged at {v:?}"
        );
    }
    println!(
        "verified {} probe vertices identical across deployments",
        probes.len()
    );

    // --- 6. The restored cluster is live: keep updating and sampling. -----
    let mut stream = profile.update_stream(9);
    big.apply_updates(&stream.next_batch(10_000));
    let sampled = big.neighbor_sample(&probes[..8], EdgeType(0), 25, 3);
    println!(
        "post-restore updates + sampling OK ({} sample lists)",
        sampled.len()
    );
}
