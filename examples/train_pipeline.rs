//! End-to-end mini-batch GNN training against the live sharded cluster —
//! the full PlatoD2GL serving loop: a writer thread streams graph updates
//! through `apply_batch_sharded` while the training pipeline samples
//! k-hop blocks (frontier dedup + bounded-staleness neighbor cache),
//! prefetches them on worker threads, and trains GraphSAGE on the fly.
//!
//! Run with: `cargo run -p platod2gl --release --example train_pipeline`
//! Environment knobs: `EPOCHS` (default 8), `VERTICES` (default 600).

use platod2gl::{
    CacheConfig, Cluster, ClusterConfig, Edge, EdgeType, FeatureProvider, GraphStore, HashFeatures,
    PipelineConfig, SageNet, SageNetConfig, TrainingPipeline, UpdateOp, VertexId,
};
use std::sync::atomic::{AtomicBool, Ordering};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Two-community graph over `n` vertices: dense same-label edges, rare
/// weak cross-label edges. The label is a pure function of the vertex's
/// hash features, so the task is learnable and survives graph growth.
fn build_graph(cluster: &Cluster, provider: &HashFeatures, n: u64) -> (Vec<VertexId>, Vec<usize>) {
    let vertices: Vec<VertexId> = (0..n).map(VertexId).collect();
    let labels: Vec<usize> = vertices.iter().map(|&v| provider.label(v)).collect();
    let by_label: Vec<Vec<VertexId>> = (0..2)
        .map(|c| {
            vertices
                .iter()
                .copied()
                .filter(|&v| provider.label(v) == c)
                .collect()
        })
        .collect();
    let mut state = 0x00c0_ffeeu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut ops = Vec::new();
    for &v in &vertices {
        let peers = &by_label[provider.label(v)];
        for _ in 0..6 {
            ops.push(UpdateOp::Insert(Edge::new(
                v,
                peers[next() as usize % peers.len()],
                1.0,
            )));
        }
        if next() % 10 == 0 {
            let others = &by_label[1 - provider.label(v)];
            ops.push(UpdateOp::Insert(Edge::new(
                v,
                others[next() as usize % others.len()],
                0.25,
            )));
        }
    }
    cluster.apply_batch_sharded(&ops).expect("bulk load");
    (vertices, labels)
}

fn main() {
    let epochs = env_usize("EPOCHS", 8) as u64;
    let n = env_usize("VERTICES", 600) as u64;

    let cluster = Cluster::new(
        ClusterConfig::builder()
            .num_shards(6)
            .build()
            .expect("valid config"),
    );
    let provider = HashFeatures::new(16, 2, 7);
    let (vertices, labels) = build_graph(&cluster, &provider, n);
    println!(
        "graph: {} vertices, {} edges across {} shards",
        n,
        cluster.num_edges(),
        cluster.num_shards()
    );

    let cfg = PipelineConfig::builder()
        .etype(EdgeType::DEFAULT)
        .fanouts(vec![5, 5])
        .batch_size(64)
        .prefetch_depth(4)
        .workers(2)
        .cache(CacheConfig {
            capacity: 1 << 14,
            shards: 8,
            max_staleness: 128,
        })
        .seed(7)
        .build()
        .expect("valid pipeline config");
    println!(
        "pipeline: fanouts {:?}, batch {}, prefetch depth {}, {} workers, cache staleness bound {}\n",
        cfg.fanouts, cfg.batch_size, cfg.prefetch_depth, cfg.workers, cfg.cache.max_staleness
    );
    let pipeline = TrainingPipeline::new(&cluster, cfg);
    let mut net = SageNet::new(SageNetConfig {
        feature_dim: provider.dim(),
        fanouts: vec![5, 5],
        lr: 0.1,
        ..Default::default()
    });

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Concurrent writer: label-preserving edge stream, the dynamic-graph
        // regime the pipeline is built for.
        scope.spawn(|| {
            let mut state = 0x7777u64;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            while !stop.load(Ordering::Relaxed) {
                let mut ops = Vec::with_capacity(32);
                for _ in 0..32 {
                    let v = VertexId(next() % n);
                    let mut u = VertexId(next() % n);
                    for _ in 0..8 {
                        if provider.label(u) == provider.label(v) {
                            break;
                        }
                        u = VertexId(next() % n);
                    }
                    ops.push(UpdateOp::Insert(Edge::new(v, u, 1.0)));
                }
                let _ = cluster.apply_batch_sharded(&ops);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        });

        println!(
            "{:<7} {:>10} {:>10} {:>12} {:>10} {:>10}",
            "epoch", "loss", "accuracy", "batches/s", "hit rate", "degraded"
        );
        for epoch in 0..epochs {
            let report = pipeline.run_epoch(&mut net, &provider, &vertices, &labels, epoch);
            let stats = pipeline.stats();
            println!(
                "{:<7} {:>10.4} {:>10.3} {:>12.1} {:>9.1}% {:>10}",
                epoch,
                report.mean_loss,
                report.mean_accuracy,
                report.throughput(),
                stats.cache.hit_rate() * 100.0,
                report.degraded_batches
            );
        }
        stop.store(true, Ordering::Relaxed);
    });

    let stats = pipeline.stats();
    println!(
        "\nsampler: {} frontier slots -> {} distinct expansions ({}% deduped), {} cluster requests",
        stats.frontier_slots,
        stats.distinct_sampled,
        (100 - 100 * stats.distinct_sampled / stats.frontier_slots.max(1)),
        stats.cluster_requests
    );
    println!(
        "stage p99s: sample {}us, gather {}us, train {}us",
        stats.sample.p99_ns / 1_000,
        stats.gather.p99_ns / 1_000,
        stats.train.p99_ns / 1_000
    );
    println!("graph version at exit: {}", cluster.graph_version());
    println!("\nstats json: {}", stats.to_json());
}
