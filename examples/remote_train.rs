//! Distributed mode, end to end: boot a graph server on an ephemeral TCP
//! port, connect a `RemoteCluster`, and run the whole trainer story over
//! real sockets — remote sampling (bit-identical to local), a remote
//! update batch, a server-side shard fault riding through as degraded
//! batches, a remote heal, and a clean shutdown.
//!
//! `scripts/verify.sh` greps the marker lines this prints, so the example
//! doubles as the CI smoke test for the rpc plane.
//!
//! Run with: `cargo run -p platod2gl --release --example remote_train`

use platod2gl::{
    route_for, CacheConfig, Cluster, ClusterConfig, Edge, EdgeType, GraphService,
    GraphServiceServer, GraphStore, HashFeatures, PipelineConfig, RemoteCluster,
    RemoteClusterConfig, SageNet, SageNetConfig, SampleRequest, TrainingPipeline, UpdateOp,
    VertexId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

const ET: EdgeType = EdgeType::DEFAULT;
const N: u64 = 150;

fn main() {
    // 1. The server side: a 3-shard cluster behind a TCP graph service.
    let config = ClusterConfig::builder()
        .num_shards(3)
        .slow_op_threshold(Duration::ZERO)
        .build()
        .expect("valid config");
    let cluster = Arc::new(Cluster::new(config));
    for v in 0..N {
        for k in 1..=5u64 {
            cluster.insert_edge(Edge::new(VertexId(v), VertexId((v + k * 11) % N), 1.0));
        }
    }
    let server = GraphServiceServer::bind("127.0.0.1:0", Arc::clone(&cluster)).expect("bind");
    println!("graph server listening on {}", server.local_addr());

    // 2. The trainer side: a remote client with the same service surface.
    let remote = RemoteCluster::connect(server.local_addr(), RemoteClusterConfig::default())
        .expect("connect");
    println!(
        "remote cluster connected: {} shards at version {}",
        remote.num_shards(),
        remote.graph_version()
    );

    // 3. Remote sampling is bit-identical to sampling the cluster
    //    in-process under the same seed.
    let reqs: Vec<SampleRequest> = (0..32u64)
        .map(|v| SampleRequest::new(VertexId(v), ET, 6))
        .collect();
    let local = cluster.sample_many(&reqs, &mut StdRng::seed_from_u64(99));
    let wire = remote.sample_many(&reqs, &mut StdRng::seed_from_u64(99));
    assert_eq!(local, wire);
    println!(
        "remote sampling bit-identical to local ({} requests)",
        reqs.len()
    );

    // 4. A remote update batch lands on the server's shards.
    let ops: Vec<UpdateOp> = (0..40u64)
        .map(|i| UpdateOp::Insert(Edge::new(VertexId(i % N), VertexId(500 + i), 0.5)))
        .collect();
    let report = remote.apply_updates(&ops).expect("apply over wire");
    println!(
        "remote update batch applied: {} ops, graph at version {}",
        report.applied_ops,
        remote.graph_version()
    );

    // 5. Train over the wire while a server-side shard dies mid-run: the
    //    pipeline keeps producing (degraded) batches instead of erroring.
    let provider = HashFeatures::new(16, 2, 7);
    let seeds: Vec<VertexId> = (0..N).map(VertexId).collect();
    let labels: Vec<usize> = seeds.iter().map(|&v| provider.label(v)).collect();
    let pipe = TrainingPipeline::new(
        &remote,
        PipelineConfig::builder()
            .etype(ET)
            .fanouts(vec![3, 3])
            .batch_size(32)
            // Zero staleness budget: every batch consults the (remote)
            // cluster, so a server-side fault is visible immediately
            // instead of being masked by warm cache entries.
            .cache(CacheConfig {
                capacity: 1 << 12,
                shards: 4,
                max_staleness: 0,
            })
            .seed(42)
            .build()
            .expect("valid pipeline config"),
    );
    let mut net = SageNet::new(SageNetConfig {
        fanouts: vec![3, 3],
        lr: 0.05,
        ..Default::default()
    });
    let clean = pipe.run_epoch(&mut net, &provider, &seeds, &labels, 0);
    println!(
        "epoch 0 (healthy): {} batches, loss {:.4}",
        clean.batches, clean.mean_loss
    );

    let shard = 1;
    cluster.faults().fail_shard(shard);
    // One more write (to a healthy shard) advances the graph version, so
    // the zero-staleness cache above re-consults the cluster and sees the
    // fault.
    let healthy = (0..N)
        .map(VertexId)
        .find(|&v| route_for(v, 3) != shard)
        .expect("a vertex on a healthy shard");
    remote
        .apply_updates(&[UpdateOp::Insert(Edge::new(healthy, VertexId(998), 1.0))])
        .expect("version bump");
    let faulted = pipe.run_epoch(&mut net, &provider, &seeds, &labels, 1);
    assert!(faulted.degraded_batches > 0);
    println!(
        "epoch 1 (shard {shard} failed server-side): {} of {} batches degraded, trainer survived",
        faulted.degraded_batches, faulted.batches
    );

    // 6. Heal the shard over the wire; queued ops drain, training is clean.
    let victim = (0..N)
        .map(VertexId)
        .find(|&v| route_for(v, 3) == shard)
        .expect("a vertex on the failed shard");
    let queued = remote
        .apply_updates(&[UpdateOp::Insert(Edge::new(victim, VertexId(999), 1.0))])
        .expect("queued batch");
    let drained = remote.heal(shard);
    cluster.faults().clear(shard);
    assert_eq!(queued.queued_ops, drained);
    println!("remote heal drained {drained} queued ops");
    let healed = pipe.run_epoch(&mut net, &provider, &seeds, &labels, 2);
    assert_eq!(healed.degraded_batches, 0);
    println!(
        "epoch 2 (healed): {} batches, 0 degraded, loss {:.4}",
        healed.batches, healed.mean_loss
    );

    // 7. Clean shutdown: all server threads join before this returns.
    server.shutdown();
    println!("server shut down cleanly");
}
