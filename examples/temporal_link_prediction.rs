//! Temporal link prediction, end to end: a time-stamped interaction
//! stream with **time-ordered negative sampling** (negative partners are
//! drawn only from vertices already active before the event, so future
//! entities never leak into the training data), trained through the
//! `TrainingPipeline` in windowed mode so every seed samples only its own
//! past — with three proofs along the way:
//!
//! 1. **Zero future-edge leaks** — a windowed k-hop sweep over every seed
//!    is audited slot by slot against the known event times;
//! 2. **Time matters** — the same model trained with shuffled seed times
//!    (the standard temporal-GNN ablation) converges to a higher loss,
//!    because wrong windows admit the heavy off-class "future" events;
//! 3. **The wire preserves it** — the same windowed epochs over a
//!    3-server partition-routed fleet are bit-identical to the local run.
//!
//! Closes with a recency-decay sweep over the aged store, the temporal
//! plane's other half.
//!
//! `scripts/verify.sh` greps the marker lines this prints, so the example
//! doubles as the CI smoke test for the temporal plane.
//!
//! Run with: `cargo run -p platod2gl --release --example temporal_link_prediction`

use platod2gl::{
    CacheConfig, Cluster, ClusterConfig, DecayConfig, Edge, EdgeType, FleetCluster,
    FleetClusterConfig, FleetNode, GraphService, GraphServiceServer, HashFeatures, KHopSampler,
    NeighborCache, PartitionMap, PipelineConfig, RecencyDecay, RemoteClusterConfig, SageNet,
    SageNetConfig, ServerEntry, TimeWindow, TrainingPipeline, UpdateOp, VertexId,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

const ET: EdgeType = EdgeType::DEFAULT;
const N: u64 = 240;
const CLASSES: usize = 4;
const PARTITIONS: u32 = 64;
const EPOCHS: u64 = 4;
const FANOUTS: [usize; 2] = [4, 4];

/// The synthetic interaction dynamics: until its cutover time `t_u`,
/// vertex `u` links to partners whose feature class matches its target
/// class `u % CLASSES`; after `t_u`, heavier off-class interactions take
/// over. Predicting the class of `u`'s next partner therefore requires
/// sampling `u`'s past — and only its past.
struct EventStream {
    /// Service-level ops, sorted by event time — a true temporal stream.
    ops: Vec<UpdateOp>,
    /// `(src, dst) -> event time`, for the leak audit.
    ts_of: HashMap<(u64, u64), u64>,
    seeds: Vec<VertexId>,
    labels: Vec<usize>,
    seed_times: Vec<u64>,
    /// Candidate negatives rejected for violating time order (redrawn).
    negative_redraws: usize,
}

fn cutover(u: u64) -> u64 {
    40 + (u * 13) % 80
}

fn build_stream(provider: &HashFeatures) -> EventStream {
    let mut rng = StdRng::seed_from_u64(0xE7E27);
    let mut by_class: Vec<Vec<u64>> = vec![Vec::new(); CLASSES];
    for v in 0..N {
        by_class[provider.label(VertexId(v))].push(v);
    }

    // Phase 1, the class-assortative past: every vertex links to six
    // partners of its target class, spread over `[1, t_u]`.
    let mut events: Vec<(u64, u64, f64, u64)> = Vec::new(); // (src, dst, weight, t)
    for u in 0..N {
        let class = (u % CLASSES as u64) as usize;
        let t_u = cutover(u);
        let pool = &by_class[class];
        for i in 0..6u64 {
            let mut dst = pool[rng.random_range(0..pool.len())];
            while dst == u {
                dst = pool[rng.random_range(0..pool.len())];
            }
            events.push((u, dst, 1.0, (1 + (t_u - 1) * i / 6).max(1)));
        }
    }
    // First activity per vertex: the time-ordered negative sampler may
    // only draw partners already active strictly before the event.
    let mut first_active: HashMap<u64, u64> = HashMap::new();
    for &(src, dst, _, t) in &events {
        for v in [src, dst] {
            let e = first_active.entry(v).or_insert(t);
            *e = (*e).min(t);
        }
    }

    // Phase 2, the off-class future: heavier negative interactions, each
    // partner drawn time-ordered — a candidate must be active before `t`
    // and of a different class, or it is redrawn.
    let mut negative_redraws = 0usize;
    for u in 0..N {
        let class = (u % CLASSES as u64) as usize;
        let t_u = cutover(u);
        for i in 0..6u64 {
            let t = t_u + 1 + (200 - t_u - 1) * i / 6;
            let dst = loop {
                let cand = rng.random_range(0..N);
                let active = first_active.get(&cand).is_some_and(|&f| f < t);
                if cand != u && active && provider.label(VertexId(cand)) != class {
                    break cand;
                }
                negative_redraws += 1;
            };
            events.push((u, dst, 3.0, t));
        }
    }

    // One stream, sorted by time. A repeat interaction would restamp the
    // earlier edge, so only the first (src, dst) occurrence is kept.
    events.sort_by_key(|&(src, dst, _, t)| (t, src, dst));
    let mut ts_of = HashMap::new();
    let mut ops = Vec::new();
    for (src, dst, w, t) in events {
        if ts_of.contains_key(&(src, dst)) {
            continue;
        }
        ts_of.insert((src, dst), t);
        ops.push(UpdateOp::Insert(
            Edge::new(VertexId(src), VertexId(dst), w).at(t),
        ));
    }

    let seeds: Vec<VertexId> = (0..N).map(VertexId).collect();
    EventStream {
        labels: seeds
            .iter()
            .map(|v| (v.raw() % CLASSES as u64) as usize)
            .collect(),
        seed_times: seeds.iter().map(|v| cutover(v.raw())).collect(),
        seeds,
        ops,
        ts_of,
        negative_redraws,
    }
}

fn local_cluster(ops: &[UpdateOp]) -> Cluster {
    let cluster = Cluster::new(
        ClusterConfig::builder()
            .num_shards(2)
            .build()
            .expect("valid config"),
    );
    cluster.apply_updates(ops).expect("ingest");
    cluster
}

fn pipeline_config() -> PipelineConfig {
    PipelineConfig::builder()
        .etype(ET)
        .fanouts(FANOUTS.to_vec())
        .batch_size(30)
        // Sequential production keeps epochs deterministic, which both the
        // ablation comparison and the fleet parity check rely on.
        .prefetch_depth(0)
        .workers(0)
        .seed(42)
        .build()
        .expect("valid pipeline config")
}

fn fresh_net() -> SageNet {
    SageNet::new(SageNetConfig {
        num_classes: CLASSES,
        fanouts: FANOUTS.to_vec(),
        lr: 0.05,
        seed: 17,
        ..Default::default()
    })
}

/// Audit a windowed k-hop block: every non-padding slot must have been
/// reached over an edge stamped inside its seed's window. Returns
/// `(slots_checked, leaks)`.
fn audit_block(
    levels: &[Vec<VertexId>],
    windows: &[TimeWindow],
    ts_of: &HashMap<(u64, u64), u64>,
) -> (usize, usize) {
    let (mut checked, mut leaks) = (0, 0);
    let mut group = 1usize; // level-(d+1) slots per seed
    for d in 0..levels.len() - 1 {
        group *= FANOUTS[d];
        for (j, &child) in levels[d + 1].iter().enumerate() {
            let parent = levels[d][j / FANOUTS[d]];
            if child == parent {
                continue; // self-loop padding (the stream has no self-events)
            }
            checked += 1;
            if !windows[j / group].contains(ts_of[&(parent.raw(), child.raw())]) {
                leaks += 1;
            }
        }
    }
    (checked, leaks)
}

fn main() {
    let provider = HashFeatures::new(16, CLASSES, 7);
    let stream = build_stream(&provider);
    println!(
        "temporal stream: {} events over {} vertices, {} time-ordered negative redraws",
        stream.ops.len(),
        N,
        stream.negative_redraws
    );

    let local = local_cluster(&stream.ops);

    // 1. The time-respecting invariant, audited slot by slot against the
    //    known event times.
    let sampler = KHopSampler::new(ET, FANOUTS.to_vec());
    let cache = NeighborCache::new(CacheConfig::disabled());
    let windows: Vec<TimeWindow> = stream
        .seed_times
        .iter()
        .map(|&t| TimeWindow::until(t))
        .collect();
    let opt_windows: Vec<Option<TimeWindow>> = windows.iter().copied().map(Some).collect();
    let mut rng = StdRng::seed_from_u64(5);
    let out = sampler.sample_block_windowed(&local, &cache, &stream.seeds, &opt_windows, &mut rng);
    let (checked, leaks) = audit_block(&out.levels, &windows, &stream.ts_of);
    assert_eq!(leaks, 0, "windowed sampling must never cross a seed's time");
    println!("time-respecting k-hop: 0 future-edge leaks across {checked} sampled slots");

    // 2. Windowed training vs the shuffled-time ablation.
    let pipe = TrainingPipeline::new(&local, pipeline_config());
    let mut net = fresh_net();
    let mut local_reports = Vec::new();
    for epoch in 0..EPOCHS {
        let report = pipe.run_epoch_windowed(
            &mut net,
            &provider,
            &stream.seeds,
            &stream.labels,
            &stream.seed_times,
            epoch,
        );
        println!(
            "windowed epoch {epoch}: {} batches, mean loss {:.4}, accuracy {:.3}",
            report.batches, report.mean_loss, report.mean_accuracy
        );
        local_reports.push(report);
    }

    // The ablation permutes the seed times (same multiset of windows,
    // wrong assignment): a seed handed a later vertex's time samples the
    // heavy off-class "future" events. Same net init, same pipeline seed,
    // same shuffle order — only the time assignment differs.
    let mut ablated_times = stream.seed_times.clone();
    ablated_times.shuffle(&mut StdRng::seed_from_u64(99));
    let ablation_cluster = local_cluster(&stream.ops);
    let ablation_pipe = TrainingPipeline::new(&ablation_cluster, pipeline_config());
    let mut ablation_net = fresh_net();
    let mut ablation_loss = f64::INFINITY;
    for epoch in 0..EPOCHS {
        ablation_loss = ablation_pipe
            .run_epoch_windowed(
                &mut ablation_net,
                &provider,
                &stream.seeds,
                &stream.labels,
                &ablated_times,
                epoch,
            )
            .mean_loss;
    }
    let final_loss = local_reports.last().expect("trained").mean_loss;
    assert!(
        final_loss < ablation_loss,
        "time-respecting training must beat the shuffled-time ablation: \
         {final_loss:.4} vs {ablation_loss:.4}"
    );
    println!(
        "temporal training beats shuffled-time ablation: loss {final_loss:.4} < {ablation_loss:.4}"
    );

    // 3. The same windowed epochs over a 3-server partition-routed fleet.
    let client_cfg = RemoteClusterConfig::default().request_timeout(Duration::from_secs(5));
    let mut nodes = Vec::new();
    let mut servers = Vec::new();
    for id in 1..=3u64 {
        let cluster = Arc::new(Cluster::new(
            ClusterConfig::builder()
                .num_shards(2)
                .build()
                .expect("valid config"),
        ));
        let node = Arc::new(FleetNode::new(cluster, id, client_cfg));
        let server = GraphServiceServer::bind("127.0.0.1:0", Arc::clone(&node)).expect("bind");
        nodes.push(node);
        servers.push(server);
    }
    let roster: Vec<ServerEntry> = nodes
        .iter()
        .zip(&servers)
        .map(|(node, server)| ServerEntry {
            id: node.server_id(),
            addr: server.local_addr().to_string(),
        })
        .collect();
    let map = PartitionMap::build(roster, PARTITIONS).expect("valid roster");
    for node in &nodes {
        node.install(map.clone());
    }
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let fleet = FleetCluster::connect(
        &addrs,
        FleetClusterConfig {
            client: client_cfg,
            num_partitions: PARTITIONS,
        },
    )
    .expect("connect");
    fleet.apply_updates(&stream.ops).expect("ingest");

    let fleet_pipe = TrainingPipeline::new(&fleet, pipeline_config());
    let mut fleet_net = fresh_net();
    for epoch in 0..EPOCHS {
        let report = fleet_pipe.run_epoch_windowed(
            &mut fleet_net,
            &provider,
            &stream.seeds,
            &stream.labels,
            &stream.seed_times,
            epoch,
        );
        let want = &local_reports[epoch as usize];
        assert_eq!(
            report.mean_loss.to_bits(),
            want.mean_loss.to_bits(),
            "epoch {epoch}: fleet and local windowed losses must be bit-identical"
        );
        assert_eq!(report.degraded_batches, 0);
    }
    println!("fleet windowed epochs bit-identical to local across {EPOCHS} epochs");
    for server in servers {
        server.shutdown();
    }

    // 4. Recency decay over the aged store. Training is done; time moves
    //    on. The maintenance worker sweeps each shard, shrinking every
    //    stamped edge toward the floor at `w * exp(-lambda * age)` — the
    //    old heavy "future" edges lose their grip on the samplers without
    //    a rebuild.
    let mut decay = RecencyDecay::new(
        DecayConfig {
            lambda: 0.01,
            floor: 1e-6,
            batch_sources: 32,
        },
        local.obs(),
    )
    .expect("valid policy");
    let mut decayed = 0usize;
    let mut scanned = 0usize;
    for shard in 0..local.num_shards() {
        let tick = decay.run_sweep(local.server(shard).topology(), 250);
        decayed += tick.decayed;
        scanned += tick.scanned;
    }
    assert!(decayed > 0, "aged stamped edges must decay");
    println!(
        "recency decay: {decayed} of {scanned} scanned edges decayed across {} shards",
        local.num_shards()
    );
    println!("temporal link prediction complete");
}
