//! Streaming updates shoot-out: PlatoD2GL vs the two baselines on the same
//! live update stream — a miniature of the paper's Fig. 9 experiment.
//!
//! All three engines implement the same `GraphStore` trait, ingest the same
//! initial graph, then absorb identical mixed update batches (60 % inserts,
//! 30 % in-place weight updates, 10 % deletions — the maintenance cases of
//! Table II). PlatoD2GL's FSTable keeps every case O(log n); PlatoGL pays
//! O(block) CSTable rewrites; AliGraph rebuilds a full alias table per
//! touched vertex.
//!
//! The second act streams through the *transactional* write path: the
//! live feed is applied as [`GraphTxn`] batches, and a poisoned batch — one
//! dangling delete among good inserts — aborts whole mid-stream, leaving
//! the graph bit-identical to before the batch. The writer repairs the
//! batch and resends under a fresh txn id.
//!
//! Run with: `cargo run -p platod2gl --release --example streaming_updates`

use platod2gl::{
    AliGraphStore, Cluster, ClusterConfig, DatasetProfile, DynamicGraphStore, Edge, EdgeType,
    GraphStore, GraphTxn, PlatoGlStore, UpdateOp, VertexId,
};
use std::time::Instant;

fn bench_engine(store: &dyn GraphStore, profile: &DatasetProfile) -> (f64, f64, usize) {
    // Initial build.
    let t = Instant::now();
    for e in profile.edge_stream(1) {
        store.insert_edge(e);
    }
    let build_s = t.elapsed().as_secs_f64();

    // 30 batches of 2048 mixed updates.
    let mut stream = profile.update_stream(2);
    let t = Instant::now();
    let mut ops_applied = 0usize;
    for _ in 0..30 {
        let batch: Vec<UpdateOp> = stream.next_batch(2048);
        store.apply_batch(&batch);
        ops_applied += batch.len();
    }
    let update_s = t.elapsed().as_secs_f64();
    (
        build_s,
        ops_applied as f64 / update_s,
        store.topology_bytes(),
    )
}

fn main() {
    // WeChat at degree-preserving scale: hub vertices keep tens of
    // thousands of distinct neighbors, the regime where O(n) index
    // maintenance (CSTable rewrites, alias rebuilds) genuinely hurts.
    let profile = DatasetProfile::wechat_hub(300_000);
    println!(
        "workload: {} initial edges, 61440 mixed updates (60/30/10 insert/update/delete)\n",
        profile.total_edges()
    );

    let engines: Vec<Box<dyn GraphStore>> = vec![
        Box::new(DynamicGraphStore::with_defaults()),
        Box::new(PlatoGlStore::with_defaults()),
        Box::new(AliGraphStore::new()),
    ];

    println!(
        "{:<12} {:>12} {:>16} {:>14}",
        "engine", "build (s)", "updates/s", "topo memory"
    );
    let mut rows = Vec::new();
    for engine in &engines {
        let (build_s, updates_per_s, bytes) = bench_engine(engine.as_ref(), &profile);
        println!(
            "{:<12} {:>12.2} {:>16.0} {:>14}",
            engine.name(),
            build_s,
            updates_per_s,
            platod2gl::human_bytes(bytes)
        );
        rows.push((engine.name(), updates_per_s, bytes));
    }

    let d2gl = rows.iter().find(|r| r.0 == "PlatoD2GL").expect("present");
    let platogl = rows.iter().find(|r| r.0 == "PlatoGL").expect("present");
    println!(
        "\nPlatoD2GL vs PlatoGL: {:.1}x update throughput, {:.1}% less topology memory",
        d2gl.1 / platogl.1,
        (1.0 - d2gl.2 as f64 / platogl.2 as f64) * 100.0
    );

    transactional_streaming();
}

/// Act 2: the same streaming shape through the transactional write path.
/// Each round is one all-or-nothing [`GraphTxn`]; the round-5 batch is
/// poisoned with a dangling delete and must abort without touching the
/// graph, mid-stream, while the rounds around it commit normally.
fn transactional_streaming() {
    const ET: EdgeType = EdgeType::DEFAULT;
    let cluster = Cluster::new(
        ClusterConfig::builder()
            .num_shards(4)
            .build()
            .expect("config"),
    );
    println!("\n--- transactional streaming (4 shards) ---");

    // A writer that only deletes/patches edges it previously inserted —
    // the discipline phase-1 validation enforces against live topology.
    let mut inserted: Vec<Edge> = Vec::new();
    let mut committed = 0u64;
    for round in 0u64..10 {
        // Two ids reserved per round: one for the first attempt, one for
        // a repaired resend (txn ids are idempotence tokens — a repaired
        // batch is a NEW transaction, not a retry of the aborted one).
        let mut txn = GraphTxn::new(round * 2 + 1);
        for k in 0..64u64 {
            let e = Edge::new(
                VertexId(round * 1_000 + k),
                VertexId(round * 1_000 + k + 500),
                1.0 + k as f64,
            );
            txn = txn.insert_edge(e);
            inserted.push(e);
        }
        // Churn: patch one old edge and delete another, like a live feed.
        if inserted.len() > 128 {
            let patch = inserted[round as usize * 3];
            txn = txn.patch_weight(Edge::new(patch.src, patch.dst, 99.0));
            let victim = inserted.remove(round as usize * 5 + 64);
            txn = txn.delete_edge(victim.src, victim.dst, ET);
        }
        if round == 5 {
            // Poison pill: this edge never existed. The WHOLE batch — 64
            // good inserts included — must abort.
            let bad = txn
                .clone()
                .delete_edge(VertexId(777_777), VertexId(888_888), ET);
            let version = cluster.graph_version();
            let edges = cluster.num_edges();
            let err = cluster.apply_txn(&bad).expect_err("dangling delete");
            assert_eq!(cluster.graph_version(), version, "no version bump");
            assert_eq!(cluster.num_edges(), edges, "no partial apply");
            println!(
                "round {round}: poisoned batch aborted mid-stream ({} violation(s)), \
                 graph untouched at version {version}",
                err.violations().len()
            );
            // The writer drops the bad op and resends under a fresh id.
            let mut resend = GraphTxn::new(round * 2 + 2);
            for op in txn.ops() {
                resend.push(*op);
            }
            txn = resend;
        }
        let receipt = cluster.apply_txn(&txn).expect("clean batch commits");
        committed += 1;
        assert!(!receipt.deduped);
    }
    println!(
        "streamed 10 rounds transactionally: {committed} committed, 1 aborted, \
         final graph: {} edges at version {}",
        cluster.num_edges(),
        cluster.graph_version()
    );
}
