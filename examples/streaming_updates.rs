//! Streaming updates shoot-out: PlatoD2GL vs the two baselines on the same
//! live update stream — a miniature of the paper's Fig. 9 experiment.
//!
//! All three engines implement the same `GraphStore` trait, ingest the same
//! initial graph, then absorb identical mixed update batches (60 % inserts,
//! 30 % in-place weight updates, 10 % deletions — the maintenance cases of
//! Table II). PlatoD2GL's FSTable keeps every case O(log n); PlatoGL pays
//! O(block) CSTable rewrites; AliGraph rebuilds a full alias table per
//! touched vertex.
//!
//! Run with: `cargo run -p platod2gl --release --example streaming_updates`

use platod2gl::{
    AliGraphStore, DatasetProfile, DynamicGraphStore, GraphStore, PlatoGlStore, UpdateOp,
};
use std::time::Instant;

fn bench_engine(store: &dyn GraphStore, profile: &DatasetProfile) -> (f64, f64, usize) {
    // Initial build.
    let t = Instant::now();
    for e in profile.edge_stream(1) {
        store.insert_edge(e);
    }
    let build_s = t.elapsed().as_secs_f64();

    // 30 batches of 2048 mixed updates.
    let mut stream = profile.update_stream(2);
    let t = Instant::now();
    let mut ops_applied = 0usize;
    for _ in 0..30 {
        let batch: Vec<UpdateOp> = stream.next_batch(2048);
        store.apply_batch(&batch);
        ops_applied += batch.len();
    }
    let update_s = t.elapsed().as_secs_f64();
    (
        build_s,
        ops_applied as f64 / update_s,
        store.topology_bytes(),
    )
}

fn main() {
    // WeChat at degree-preserving scale: hub vertices keep tens of
    // thousands of distinct neighbors, the regime where O(n) index
    // maintenance (CSTable rewrites, alias rebuilds) genuinely hurts.
    let profile = DatasetProfile::wechat_hub(300_000);
    println!(
        "workload: {} initial edges, 61440 mixed updates (60/30/10 insert/update/delete)\n",
        profile.total_edges()
    );

    let engines: Vec<Box<dyn GraphStore>> = vec![
        Box::new(DynamicGraphStore::with_defaults()),
        Box::new(PlatoGlStore::with_defaults()),
        Box::new(AliGraphStore::new()),
    ];

    println!(
        "{:<12} {:>12} {:>16} {:>14}",
        "engine", "build (s)", "updates/s", "topo memory"
    );
    let mut rows = Vec::new();
    for engine in &engines {
        let (build_s, updates_per_s, bytes) = bench_engine(engine.as_ref(), &profile);
        println!(
            "{:<12} {:>12.2} {:>16.0} {:>14}",
            engine.name(),
            build_s,
            updates_per_s,
            platod2gl::human_bytes(bytes)
        );
        rows.push((engine.name(), updates_per_s, bytes));
    }

    let d2gl = rows.iter().find(|r| r.0 == "PlatoD2GL").expect("present");
    let platogl = rows.iter().find(|r| r.0 == "PlatoGL").expect("present");
    println!(
        "\nPlatoD2GL vs PlatoGL: {:.1}x update throughput, {:.1}% less topology memory",
        d2gl.1 / platogl.1,
        (1.0 - d2gl.2 as f64 / platogl.2 as f64) * 100.0
    );
}
