//! Scale-out mode, end to end: boot three fleet members on ephemeral TCP
//! ports, partition-route a training corpus across them, train a
//! GraphSAGE epoch through the `FleetCluster` client, then join a fourth
//! empty server and live-migrate its rendezvous share of the partitions
//! while a second epoch runs — zero degraded batches, and ownership
//! provably moves.
//!
//! `scripts/verify.sh` greps the marker lines this prints, so the example
//! doubles as the CI smoke test for the fleet plane.
//!
//! Run with: `cargo run -p platod2gl --release --example fleet_train`

use platod2gl::{
    AdminServer, Cluster, ClusterConfig, Edge, EdgeType, FleetCluster, FleetClusterConfig,
    FleetNode, GraphService, GraphServiceServer, GraphStore, HashFeatures, PartitionMap,
    PipelineConfig, RemoteClusterConfig, SageNet, SageNetConfig, SampleRequest, ServerEntry,
    TrainingPipeline, UpdateOp, VertexId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const ET: EdgeType = EdgeType::DEFAULT;
const N: u64 = 150;
const PARTITIONS: u32 = 64;

fn client_cfg() -> RemoteClusterConfig {
    RemoteClusterConfig::default().request_timeout(Duration::from_secs(5))
}

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect admin");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn boot_member(id: u64) -> (Arc<FleetNode>, GraphServiceServer) {
    let cluster = Arc::new(Cluster::new(
        ClusterConfig::builder()
            .num_shards(2)
            .build()
            .expect("valid config"),
    ));
    let node = Arc::new(FleetNode::new(cluster, id, client_cfg()));
    let server = GraphServiceServer::bind("127.0.0.1:0", Arc::clone(&node)).expect("bind");
    (node, server)
}

fn main() {
    // 1. Three fleet members, each an independent 2-shard cluster behind
    //    its own TCP endpoint, sharing an epoch-1 partition map.
    let members: Vec<(Arc<FleetNode>, GraphServiceServer)> = (1..=3).map(boot_member).collect();
    let roster: Vec<ServerEntry> = members
        .iter()
        .map(|(node, server)| ServerEntry {
            id: node.server_id(),
            addr: server.local_addr().to_string(),
        })
        .collect();
    let map = PartitionMap::build(roster, PARTITIONS).expect("valid roster");
    for (node, server) in &members {
        node.install(map.clone());
        println!(
            "fleet member {} listening on {}",
            node.server_id(),
            server.local_addr()
        );
    }

    // 2. A fleet client: one `GraphService` facade over the whole roster.
    let addrs: Vec<String> = members
        .iter()
        .map(|(_, s)| s.local_addr().to_string())
        .collect();
    let fleet = Arc::new(
        FleetCluster::connect(
            &addrs,
            FleetClusterConfig {
                client: client_cfg(),
                num_partitions: PARTITIONS,
            },
        )
        .expect("connect"),
    );
    println!(
        "fleet client connected: {} servers, map epoch {}",
        fleet.map_snapshot().servers().len(),
        fleet.map_epoch()
    );

    // 3. Ingest through the client: every op lands on its partition's
    //    owner and fans out to the partition's replica.
    let ops: Vec<UpdateOp> = (0..N)
        .flat_map(|v| {
            (1..=5u64).map(move |k| {
                UpdateOp::Insert(Edge::new(
                    VertexId(v),
                    VertexId((v + k * 11) % N),
                    1.0 + k as f64 * 0.25,
                ))
            })
        })
        .collect();
    let report = fleet.apply_updates(&ops).expect("ingest");
    let per_server: Vec<usize> = members
        .iter()
        .map(|(node, _)| node.cluster().num_edges())
        .collect();
    println!(
        "partition-routed ingest: {} ops applied, per-server edge counts {:?}",
        report.applied_ops, per_server
    );

    // 4. Train one epoch through the fleet.
    let provider = HashFeatures::new(16, 2, 7);
    let seeds: Vec<VertexId> = (0..N).map(VertexId).collect();
    let labels: Vec<usize> = seeds.iter().map(|&v| provider.label(v)).collect();
    let pipe_cfg = PipelineConfig::builder()
        .etype(ET)
        .fanouts(vec![3, 3])
        .batch_size(25)
        .prefetch_depth(0)
        .workers(0)
        .seed(42)
        .build()
        .expect("valid pipeline config");
    let pipeline = TrainingPipeline::new(&*fleet, pipe_cfg);
    let mut net = SageNet::new(SageNetConfig {
        fanouts: vec![3, 3],
        lr: 0.05,
        seed: 17,
        ..Default::default()
    });
    let epoch1 = pipeline.run_epoch(&mut net, &provider, &seeds, &labels, 0);
    println!(
        "epoch 1 over the fleet: {} batches, mean loss {:.4}, {} degraded",
        epoch1.batches, epoch1.mean_loss, epoch1.degraded_batches
    );

    // 5. A fourth empty server joins and its share of the partitions
    //    live-migrates onto it while epoch 2 trains.
    let (joiner_node, joiner_server) = boot_member(4);
    let joiner_addr = joiner_server.local_addr().to_string();
    let migrator = {
        let fleet = Arc::clone(&fleet);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            fleet.join_and_migrate(&joiner_addr, 4).expect("joins live")
        })
    };
    let epoch2 = pipeline.run_epoch(&mut net, &provider, &seeds, &labels, 1);
    let joined = migrator.join().expect("migration thread");
    assert_eq!(epoch2.degraded_batches, 0);
    println!(
        "epoch 2 trained through a live migration: {} batches, 0 degraded",
        epoch2.batches
    );
    println!(
        "server {} joined: {} partitions migrated, {} edges streamed, map epoch {}",
        joined.server_id,
        joined.moved.len(),
        joined.moved.iter().map(|m| m.edges_streamed).sum::<u64>(),
        fleet.map_epoch()
    );
    assert!(joiner_node.cluster().num_edges() > 0);
    let map = fleet.map_snapshot();
    for report in &joined.moved {
        let owner = &map.servers()[map.owner_index(report.partition) as usize];
        assert_eq!(owner.id, joined.server_id);
    }
    println!("joiner owns its migrated partitions and serves their data");

    // 6. The fleet telemetry plane: a traced sample fans out across the
    //    widened fleet, then the admin server stitches the cross-process
    //    span tree (`/debug/trace/<id>`) and merges every member's
    //    registry into one labelled exposition (`/fleet/metrics`).
    let admin = AdminServer::bind_fleet("127.0.0.1:0", Arc::clone(&fleet)).expect("bind admin");
    const TRACE: u64 = 0x0DD_BA11;
    let reqs: Vec<SampleRequest> = (0..N)
        .map(|v| SampleRequest::new(VertexId(v), ET, 3).with_trace_id(TRACE))
        .collect();
    let mut rng = StdRng::seed_from_u64(7);
    let sampled = fleet.sample_many(&reqs, &mut rng);
    assert!(sampled.iter().all(|r| !r.degraded));

    let (status, trace) = http_get(admin.local_addr(), &format!("/debug/trace/{TRACE}"));
    assert_eq!(status, 200, "{trace}");
    let processes = trace
        .split_once("\"processes\":[")
        .map(|(_, rest)| rest.split(']').next().unwrap_or(""))
        .unwrap_or("");
    let process_count = processes.matches('"').count() / 2;
    assert!(process_count >= 2, "{trace}");
    println!("fleet admin /debug/trace: one stitched tree spanning {process_count} processes");

    let (status, metrics) = http_get(admin.local_addr(), "/fleet/metrics");
    assert_eq!(status, 200, "{metrics}");
    assert!(metrics.contains("{server=\"fleet\"}"), "{metrics}");
    let member_rows = metrics
        .lines()
        .filter(|l| l.starts_with("plato_cluster_requests_total{server=\"server-"))
        .count();
    println!(
        "fleet admin /fleet/metrics: merged exposition, {member_rows} member rows + fleet aggregate"
    );
    admin.shutdown();

    for (_, server) in members {
        server.shutdown();
    }
    joiner_server.shutdown();
    println!("fleet shut down cleanly");
}
