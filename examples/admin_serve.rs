//! Boot a cluster, start the admin introspection server on an ephemeral
//! port, and probe every endpoint over a plain `TcpStream` — no curl, no
//! HTTP client crate. `scripts/verify.sh` greps the marker lines this
//! prints, so the example doubles as the CI smoke test for the admin
//! plane.
//!
//! The run exercises the full story the endpoints tell:
//!
//! 1. load a graph, make one shard slow, send a traced sample request
//!    over the slow-op threshold → `/debug/slow` captures it with its
//!    span tree;
//! 2. hard-fail a shard → `/healthz` turns 503; heal it → 200 again;
//! 3. scrape `/metrics` and `/debug/memory` → live `graph.mem.*` gauges.
//!
//! Run with: `cargo run -p platod2gl --release --example admin_serve`

use platod2gl::{
    AdminServer, Cluster, ClusterConfig, Edge, EdgeType, GraphStore, SampleRequest, VertexId,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Minimal HTTP/1.0 GET over a std socket: returns (status, body).
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to admin server");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\nHost: admin\r\n\r\n").as_bytes())
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code in response line");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn main() {
    // A low threshold so the scripted slow shard trips capture without
    // making the example take long.
    let config = ClusterConfig::builder()
        .num_shards(3)
        .slow_op_threshold(Duration::from_millis(2))
        .build()
        .expect("valid config");
    let cluster = Arc::new(Cluster::new(config));
    for v in 0..200u64 {
        for k in 1..=4u64 {
            cluster.insert_edge(Edge::new(
                VertexId(v),
                VertexId((v * 7 + k * 31) % 200),
                1.0,
            ));
        }
    }

    let admin = AdminServer::bind("127.0.0.1:0", Arc::clone(&cluster)).expect("bind admin server");
    let addr = admin.local_addr();
    println!("admin: serving on {addr}");

    // 1. Trace a slow request: brown out the shard owning vertex 0, then
    //    sample it with a trace id. The 10ms injected delay clears the 2ms
    //    threshold, so the slow-op log captures the whole span tree.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let shard = cluster.route(VertexId(0));
    cluster
        .faults()
        .slow_shard(shard, Duration::from_millis(10));
    let req = SampleRequest::new(VertexId(0), EdgeType::DEFAULT, 8).with_trace_id(0xC0FFEE);
    let resp = cluster.sample(&req, &mut rng);
    assert!(!resp.degraded, "slow is not failed");
    cluster.faults().clear(shard);

    let (status, slow) = http_get(addr, "/debug/slow");
    assert_eq!(status, 200);
    assert!(slow.contains("\"trace_id\":12648430"), "{slow}");
    assert!(slow.contains("cluster.sample"), "{slow}");
    assert!(slow.contains("samtree.fts_draw"), "{slow}");
    println!("admin: slow-op log captured a traced sample request");

    // 2. Fail a shard and watch the health probe flip. The router marks a
    //    shard failed when a request actually hits it.
    cluster.faults().fail_shard(shard);
    let _ = cluster.sample(
        &SampleRequest::new(VertexId(0), EdgeType::DEFAULT, 4),
        &mut rng,
    );
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 503, "{body}");
    println!("admin: GET /healthz -> 503 (shard {shard} failed)");
    cluster.heal_shard(shard);
    let (status, _) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    println!("admin: GET /healthz -> 200 (healed)");

    // 3. Probe every endpoint and assert the load-bearing content.
    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("plato_cluster_requests_total"),
        "{metrics}"
    );
    assert!(
        metrics.contains("plato_graph_mem_samtree_bytes"),
        "{metrics}"
    );
    println!("admin: GET /metrics -> 200");

    let (status, memory) = http_get(addr, "/debug/memory");
    assert_eq!(status, 200);
    assert!(memory.contains("\"samtree_leaf_bytes\""), "{memory}");
    println!("admin: GET /debug/memory -> 200");

    let (status, spans) = http_get(addr, "/debug/spans");
    assert_eq!(status, 200);
    assert!(spans.contains("\"spans\":["), "{spans}");
    println!("admin: GET /debug/spans -> 200");

    let (status, _) = http_get(addr, "/");
    assert_eq!(status, 200);
    let (status, _) = http_get(addr, "/no-such-endpoint");
    assert_eq!(status, 404);
    println!("admin: GET /no-such-endpoint -> 404");

    admin.shutdown();
    println!("admin: all endpoints probed, server shut down");
}
