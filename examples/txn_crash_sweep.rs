//! Crash-matrix sweep for the transactional durability plane: arm every
//! enumerable [`CrashPoint`], kill the store there mid-transaction (or
//! mid-checkpoint), reopen, and prove recovery lands on *exactly* the
//! pre-txn or post-txn graph — never in between — by topology checksum.
//!
//! Also proves backward compatibility: a marker-less WAL (the v5 format,
//! plain records only) still replays cleanly under the marker-aware
//! replayer.
//!
//! Run with: `cargo run -p platod2gl --release --example txn_crash_sweep`

use platod2gl::{
    CrashPoint, DurableGraphStore, Edge, EdgeType, GraphTxn, StoreConfig, UpdateOp, VertexId,
};
use std::path::{Path, PathBuf};

const ET: EdgeType = EdgeType::DEFAULT;

/// Order-independent checksum of the full adjacency structure: src, etype,
/// dst, exact weight bits, and edge timestamps all participate. Two stores
/// checksum equal iff they hold the same topology.
fn topology_checksum(store: &DurableGraphStore) -> u64 {
    let mut entries = store.store().export_adjacency();
    for (_, pairs) in entries.iter_mut() {
        pairs.sort_by_key(|&(dst, _, _)| dst);
    }
    entries.sort_by_key(|&((src, etype), _)| (src, etype));
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for ((src, etype), pairs) in &entries {
        mix(*src);
        mix(u64::from(*etype));
        for &(dst, w, ts) in pairs {
            mix(dst);
            mix(w.to_bits());
            mix(ts);
        }
    }
    h
}

fn edge(src: u64, dst: u64, w: f64) -> Edge {
    Edge::new(VertexId(src), VertexId(dst), w)
}

/// A fresh store seeded with the base graph and checkpointed, so every
/// sweep iteration starts from an identical durable state.
fn base_store(dir: &Path) -> DurableGraphStore {
    let _ = std::fs::remove_dir_all(dir);
    let (store, _) = DurableGraphStore::open(dir, StoreConfig::default()).expect("open");
    let base: Vec<UpdateOp> = (0..40u64)
        .map(|v| UpdateOp::Insert(edge(v, v + 100, 1.0 + v as f64)))
        .collect();
    store.try_apply_batch(&base, 2).expect("seed");
    store.checkpoint().expect("checkpoint");
    store
}

/// The transaction under test: inserts, a weight patch, and a delete, so
/// recovery divergence on any op kind would shift the checksum.
fn sweep_txn() -> GraphTxn {
    GraphTxn::new(900)
        .insert_edge(edge(500, 600, 2.5))
        .insert_edge(edge(501, 601, 3.5))
        .patch_weight(edge(3, 103, 42.0))
        .delete_edge(VertexId(7), VertexId(107), ET)
}

fn main() {
    let root = std::env::temp_dir().join(format!("platod2gl-txn-sweep-{}", std::process::id()));

    // Reference checksums: the base graph, and the base graph after a
    // clean (uninjected) commit of the sweep transaction.
    let dir = root.join("reference");
    let store = base_store(&dir);
    let pre = topology_checksum(&store);
    store.try_apply_txn(&sweep_txn(), 2).expect("clean commit");
    let post = topology_checksum(&store);
    assert_ne!(pre, post, "the sweep txn must move the checksum");
    drop(store);

    let mut verified = 0usize;

    // --- transaction-path crash points -----------------------------------
    for point in CrashPoint::TXN {
        let dir: PathBuf = root.join(point.name());
        let store = base_store(&dir);
        store.crash_injector().arm(point);
        let err = store
            .try_apply_txn(&sweep_txn(), 2)
            .expect_err("armed point must fire");
        assert!(err.to_string().contains(point.name()), "{err}");
        // Anything past BatchBegin leaves a dirty tail: the store must
        // fail-stop instead of appending after an unknown tail state.
        if point != CrashPoint::TxnBeforeBegin {
            assert!(store.is_wal_poisoned(), "{point}: tail is dirty");
        }
        drop(store); // the "kill"

        let (recovered, report) =
            DurableGraphStore::open(&dir, StoreConfig::default()).expect("reopen");
        let got = topology_checksum(&recovered);
        let (want, label) = if point.txn_is_committed() {
            (post, "post-txn")
        } else {
            (pre, "pre-txn")
        };
        assert_eq!(
            got, want,
            "{point}: recovery must yield exactly the {label} graph"
        );
        assert_ne!(
            got,
            if point.txn_is_committed() { pre } else { post },
            "{point}: never the other side"
        );
        let expect_dropped =
            u64::from(!point.txn_is_committed() && point != CrashPoint::TxnBeforeBegin);
        assert_eq!(report.dropped_batches, expect_dropped, "{point}");
        println!(
            "crash at {point}: recovered {label} graph, {} uncommitted batch(es) dropped",
            report.dropped_batches
        );
        verified += 1;
    }

    // --- plain-append crash point -----------------------------------------
    {
        let dir = root.join(CrashPoint::WalAppend.name());
        let store = base_store(&dir);
        let pre_append = topology_checksum(&store);
        store.crash_injector().arm(CrashPoint::WalAppend);
        store
            .try_apply(&UpdateOp::Insert(edge(900, 901, 1.0)))
            .expect_err("armed point must fire");
        drop(store);
        let (recovered, _) = DurableGraphStore::open(&dir, StoreConfig::default()).expect("reopen");
        assert_eq!(topology_checksum(&recovered), pre_append);
        println!(
            "crash at {}: recovered pre-append graph",
            CrashPoint::WalAppend
        );
        verified += 1;
    }

    // --- checkpoint-path crash points -------------------------------------
    // A checkpoint crash must never lose data: whatever phase it died in,
    // the snapshot+WAL pair on disk still reconstructs the full graph.
    for point in [
        CrashPoint::CheckpointAfterSnapshotWrite,
        CrashPoint::CheckpointAfterRename,
        CrashPoint::CheckpointAfterDirSync,
        CrashPoint::CheckpointAfterWalReset,
    ] {
        let dir = root.join(point.name());
        let store = base_store(&dir);
        // Leave both a committed txn and plain records in the WAL so the
        // dying checkpoint has real state to preserve.
        store.try_apply_txn(&sweep_txn(), 2).expect("commit");
        store
            .try_apply(&UpdateOp::Insert(edge(800, 801, 5.0)))
            .expect("append");
        let want = topology_checksum(&store);
        store.crash_injector().arm(point);
        store.checkpoint().expect_err("armed point must fire");
        drop(store);
        let (recovered, _) = DurableGraphStore::open(&dir, StoreConfig::default()).expect("reopen");
        assert_eq!(
            topology_checksum(&recovered),
            want,
            "{point}: checkpoint crash must lose nothing"
        );
        println!("crash at {point}: checkpoint crash lost nothing");
        verified += 1;
    }

    assert_eq!(verified, CrashPoint::ALL.len());
    println!(
        "crash matrix: {verified}/{} crash points verified",
        CrashPoint::ALL.len()
    );

    // --- marker-less (v5) WAL backward compatibility ----------------------
    // A WAL written entirely through the pre-transactional API carries no
    // Begin/Commit markers; the marker-aware replayer must treat it as it
    // always did.
    let dir = root.join("v5-compat");
    let _ = std::fs::remove_dir_all(&dir);
    let (store, _) = DurableGraphStore::open(&dir, StoreConfig::default()).expect("open");
    for v in 0..20u64 {
        store
            .try_apply(&UpdateOp::Insert(edge(v, v + 50, 1.0)))
            .expect("append");
    }
    store
        .try_apply_batch(
            &(0..10u64)
                .map(|v| UpdateOp::Insert(edge(v, v + 70, 2.0)))
                .collect::<Vec<_>>(),
            2,
        )
        .expect("batch");
    let want = topology_checksum(&store);
    drop(store);
    let (recovered, report) =
        DurableGraphStore::open(&dir, StoreConfig::default()).expect("reopen");
    assert_eq!(topology_checksum(&recovered), want);
    assert_eq!(report.dropped_batches, 0);
    assert!(report.torn_tail.is_none());
    println!(
        "marker-less v5 WAL replayed cleanly: {} ops, 0 batches dropped",
        report.wal_ops
    );

    drop(recovered);
    let _ = std::fs::remove_dir_all(&root);
}
