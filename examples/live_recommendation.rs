//! Live-streaming recommendation: the paper's motivating WeChat scenario.
//!
//! A heterogeneous User/Live/Tag graph evolves in real time as users click
//! into live rooms. The recommender must (a) absorb update batches fast and
//! (b) answer metapath sampling queries (User-Live -> Live-Tag) with fresh
//! topology, because "if a GNN-based recommendation model cannot capture the
//! instant user interest, the user might not be interested in the
//! recommended items" (paper Sec. I).
//!
//! Run with: `cargo run -p platod2gl --release --example live_recommendation`

use platod2gl::{DatasetProfile, EdgeType, MetapathSampler, PlatoD2GL, UpdateOp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    // WeChat profile (Table III shape: User-Live, User-Attr, Live-Live,
    // Live-Tag) scaled to ~400k edges for a laptop run.
    let profile = DatasetProfile::wechat().scaled_to_edges(400_000);
    println!("dataset: {} relations", profile.relations.len());
    for r in &profile.relations {
        println!(
            "  {:<10} {:>9} src x {:>9} dst, {:>9} edges (density {:.2})",
            r.name,
            r.num_src,
            r.num_dst,
            r.num_edges,
            r.density()
        );
    }

    let system = PlatoD2GL::builder()
        .num_shards(4)
        .threads_per_shard(2)
        .build();

    // --- Initial bulk build ---------------------------------------------
    let report = system.ingest_profile(&profile, 1);
    println!(
        "\nbuilt {} edges in {:.2?} ({:.0} edges/s)",
        report.edges_stored,
        report.elapsed,
        report.edges_offered as f64 / report.elapsed.as_secs_f64()
    );

    // --- Live update stream ----------------------------------------------
    // Users keep clicking: apply 20 batches of 4096 mixed updates and watch
    // per-batch latency (the paper's Fig. 9 regime).
    let mut stream = profile.update_stream(7);
    let mut latencies = Vec::new();
    for _ in 0..20 {
        let batch: Vec<UpdateOp> = stream.next_batch(4096);
        let t = Instant::now();
        system.apply_updates(&batch);
        latencies.push(t.elapsed());
    }
    latencies.sort();
    println!(
        "update batches of 4096: median {:.2?}, p95 {:.2?}",
        latencies[latencies.len() / 2],
        latencies[latencies.len() * 19 / 20]
    );

    // --- Recommendation queries ------------------------------------------
    // Metapath User -[User-Live]-> Live -[Live-Tag]-> Tag: which tags is
    // this user's neighborhood about right now?
    let users = profile.sample_sources(8, 99);
    let metapath = MetapathSampler::new(vec![(EdgeType(0), 10), (EdgeType(3), 5)]);
    let mut rng = StdRng::seed_from_u64(5);
    let t = Instant::now();
    let mut total_tags = 0usize;
    for &user in &users {
        let layers = metapath.sample(system.store(), &[user], &mut rng);
        total_tags += layers[2].len();
    }
    println!(
        "metapath (User-Live -> Live-Tag) for {} users: {} tags reached in {:.2?}",
        users.len(),
        total_tags,
        t.elapsed()
    );

    // --- Fresh-interest check ---------------------------------------------
    // A user clicks into a brand-new live room; the next recommendation
    // query must already see it.
    let user = users[0];
    let new_live = platod2gl::VertexId::compose(platod2gl::VertexType(1), 999_999);
    system.apply_updates(&[UpdateOp::Insert(platod2gl::Edge {
        src: user,
        dst: new_live,
        etype: EdgeType(0),
        weight: 50.0, // a strong, fresh interest signal
        ts: 0,
    })]);
    let samples = system.neighbor_sample(&[user], EdgeType(0), 200, 11);
    let hits = samples[0].iter().filter(|v| **v == new_live).count();
    println!("after one live click with weight 50: new room appears in {hits}/200 samples");
    assert!(hits > 0, "fresh interest must be sampled immediately");

    let mem = system.memory_report();
    println!(
        "\ntopology memory {} | shard edges {:?}",
        platod2gl::human_bytes(mem.topology_bytes),
        system.store().shard_edge_counts()
    );
}
