//! Crash-safe durability walkthrough: WAL + checksummed snapshots, a
//! simulated kill -9, recovery, and shard fault injection with graceful
//! degradation (DESIGN.md "Durability & failure model").
//!
//! Acts out the failure story a production deployment lives with:
//!
//! 1. a durable store absorbs batched updates (every batch WAL-logged),
//! 2. a checkpoint writes an atomically-renamed, CRC-checksummed snapshot,
//! 3. more updates land, then the process "crashes" before the next
//!    checkpoint,
//! 4. reopening replays snapshot + WAL and loses nothing durable,
//! 5. separately, one cluster shard fails: sampling degrades instead of
//!    panicking, updates queue, and healing drains the backlog.
//!
//! Run with: `cargo run -p platod2gl --release --example crash_recovery`

use platod2gl::{
    DatasetProfile, DurableGraphStore, Edge, EdgeType, GraphStore, PlatoD2GL, SampleRequest,
    StoreConfig, UpdateOp, VertexId,
};

fn main() {
    let dir = std::env::temp_dir().join(format!("platod2gl-crash-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let profile = DatasetProfile::tiny();
    let ops: Vec<UpdateOp> = profile.update_stream(42).next_batch(6_000);

    // --- 1-3: write, checkpoint, write more, crash -----------------------
    let edges_at_crash;
    {
        let (durable, _) = DurableGraphStore::open(&dir, StoreConfig::default()).expect("open");
        let (before_cp, after_cp) = ops.split_at(ops.len() / 2);
        for chunk in before_cp.chunks(512) {
            durable.try_apply_batch(chunk, 2).expect("apply");
        }
        durable.checkpoint().expect("checkpoint");
        println!(
            "checkpointed {} edges; WAL reset to {} bytes",
            durable.num_edges(),
            durable.wal_bytes()
        );
        for chunk in after_cp.chunks(512) {
            durable.try_apply_batch(chunk, 2).expect("apply");
        }
        edges_at_crash = durable.num_edges();
        println!(
            "crashing with {} edges, {} WAL records ({} bytes) not yet checkpointed",
            edges_at_crash,
            durable.wal_records(),
            durable.wal_bytes()
        );
        // Dropped here without a checkpoint: the snapshot on disk is stale
        // and only the WAL knows about the second half of the stream.
    }

    // --- 4: recover ------------------------------------------------------
    let (recovered, report) =
        DurableGraphStore::open(&dir, StoreConfig::default()).expect("recover");
    println!(
        "recovered: snapshot={}, wal_records={}, wal_ops={}, torn_tail={:?}",
        report.restored_snapshot, report.wal_records, report.wal_ops, report.torn_tail
    );
    assert_eq!(
        recovered.num_edges(),
        edges_at_crash,
        "no durable edge lost"
    );
    recovered.store().check_invariants().expect("invariants");
    println!(
        "recovered store matches the pre-crash state: {} edges\n",
        recovered.num_edges()
    );
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);

    // --- 5: shard failure with graceful degradation ----------------------
    let system = PlatoD2GL::builder().num_shards(4).build();
    let cluster = system.store();
    for e in profile.edge_stream(7) {
        cluster.insert_edge(e);
    }
    let dead_shard = 1;
    cluster.faults().fail_shard(dead_shard);
    let dead_vertex = (0..)
        .map(VertexId)
        .find(|v| cluster.route(*v) == dead_shard)
        .expect("every shard owns vertices");

    let served = {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
        cluster.sample(
            &SampleRequest::new(dead_vertex, EdgeType::DEFAULT, 8),
            &mut rng,
        )
    };
    println!(
        "shard {dead_shard} failed: sampling {dead_vertex:?} -> degraded={}, {} neighbors",
        served.degraded,
        served.neighbors.len()
    );

    system.apply_updates(&[UpdateOp::Insert(Edge::new(
        dead_vertex,
        VertexId(424_242),
        1.0,
    ))]);
    println!(
        "update to the failed shard queued ({} pending)",
        cluster.pending_ops(dead_shard)
    );

    let drained = cluster.heal_shard(dead_shard);
    println!(
        "healed shard {dead_shard}: drained {drained} queued op(s), health={:?}",
        cluster.shard_health(dead_shard)
    );
    let t = cluster.traffic();
    println!(
        "traffic: {} requests, {} failed, {} retried, {} degraded, {} queued",
        t.requests, t.failed_requests, t.retried_requests, t.degraded_responses, t.queued_ops
    );
}
