//! Quickstart: boot a PlatoD2GL system, build a small dynamic graph, sample
//! neighbors while the graph changes, and inspect memory/operation stats.
//!
//! Run with: `cargo run -p platod2gl --release --example quickstart`

use platod2gl::{human_bytes, Edge, EdgeType, GraphStore, PlatoD2GL, VertexId};

fn main() {
    // A system with 2 simulated graph servers and the paper's default
    // samtree parameters (capacity 256, alpha 0, CP-ID compression on).
    let system = PlatoD2GL::builder().num_shards(2).build();
    let store = system.store();

    // --- Build the paper's Fig. 3 example graph ------------------------
    let edges = [
        (1u64, 2u64, 0.1),
        (1, 3, 0.4),
        (1, 5, 0.2),
        (3, 4, 0.6),
        (3, 7, 0.7),
    ];
    for (src, dst, w) in edges {
        store.insert_edge(Edge::new(VertexId(src), VertexId(dst), w));
    }
    println!("built graph with {} edges", store.num_edges());
    println!(
        "out-degree of v1 = {}, weight sum = {:.1}",
        store.degree(VertexId(1), EdgeType::DEFAULT),
        store.weight_sum(VertexId(1), EdgeType::DEFAULT),
    );

    // --- Weighted neighbor sampling ------------------------------------
    // v1's neighbors are {2: 0.1, 3: 0.4, 5: 0.2}; neighbor 3 should be
    // drawn roughly 4x more often than neighbor 2.
    let samples = system.neighbor_sample(&[VertexId(1)], EdgeType::DEFAULT, 10_000, 42);
    let mut counts = std::collections::BTreeMap::new();
    for v in &samples[0] {
        *counts.entry(v.raw()).or_insert(0usize) += 1;
    }
    println!("10k weighted samples from v1: {counts:?}");

    // --- The graph is dynamic ------------------------------------------
    // Crank up the weight of edge (1 -> 2); sampling reflects it instantly,
    // in O(log n) maintenance time instead of PlatoGL's O(n).
    store.update_weight(Edge::new(VertexId(1), VertexId(2), 10.0));
    let samples = system.neighbor_sample(&[VertexId(1)], EdgeType::DEFAULT, 10_000, 43);
    let heavy = samples[0].iter().filter(|v| v.raw() == 2).count();
    println!("after boosting w(1->2) to 10.0: neighbor 2 drawn {heavy}/10000 times");

    // Delete an edge; it can never be sampled again.
    store.delete_edge(VertexId(1), VertexId(5), EdgeType::DEFAULT);
    let samples = system.neighbor_sample(&[VertexId(1)], EdgeType::DEFAULT, 1_000, 44);
    assert!(samples[0].iter().all(|v| v.raw() != 5));
    println!("after deleting (1 -> 5): neighbor 5 never sampled again");

    // --- 2-hop subgraph sampling ----------------------------------------
    let sg = system.subgraph_sample(&[VertexId(1)], EdgeType::DEFAULT, &[3, 3], 45);
    println!(
        "2-hop subgraph from v1: layers {:?}, {} sampled edges",
        sg.layers
            .iter()
            .map(|l| l.iter().map(|v| v.raw()).collect::<Vec<_>>())
            .collect::<Vec<_>>(),
        sg.edges.len()
    );

    // --- Introspection ---------------------------------------------------
    let mem = system.memory_report();
    let stats = system.op_stats();
    println!(
        "topology memory: {} across {} shards; {:.2}% of update ops hit samtree leaves",
        human_bytes(mem.topology_bytes),
        mem.per_shard.len(),
        stats.leaf_fraction() * 100.0
    );
}
