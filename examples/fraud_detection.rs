//! Fraud detection: train a GraphSAGE classifier on a *dynamic* transaction
//! graph (one of the paper's motivating GNN applications, Sec. I).
//!
//! Accounts form two behavioral communities (normal / fraud-adjacent) that
//! mostly transact internally. We train on the initial graph, then inject a
//! burst of new edges and keep training — the trainer samples straight from
//! the dynamic store, so no rebuild or re-partitioning is needed.
//!
//! Run with: `cargo run -p platod2gl --release --example fraud_detection`

use platod2gl::{
    Edge, GraphStore, HashFeatures, PlatoD2GL, SageNet, SageNetConfig, UpdateOp, VertexId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// xorshift for reproducible synthetic edges.
struct Xs(u64);
impl Xs {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn community_edges(
    provider: &HashFeatures,
    vertices: &[VertexId],
    per_vertex: usize,
    intra_pct: u64,
    rng: &mut Xs,
) -> Vec<Edge> {
    let by_label: Vec<Vec<VertexId>> = (0..2)
        .map(|c| {
            vertices
                .iter()
                .copied()
                .filter(|&v| provider.label(v) == c)
                .collect()
        })
        .collect();
    let mut out = Vec::new();
    for &v in vertices {
        let c = provider.label(v);
        for _ in 0..per_vertex {
            let pool = if rng.next() % 100 < intra_pct {
                &by_label[c]
            } else {
                &by_label[1 - c]
            };
            let dst = pool[(rng.next() % pool.len() as u64) as usize];
            if dst != v {
                out.push(Edge::new(v, dst, 1.0));
            }
        }
    }
    out
}

fn main() {
    let provider = HashFeatures::new(16, 2, 2024);
    let accounts: Vec<VertexId> = (0..400).map(VertexId).collect();
    let labels: Vec<usize> = accounts.iter().map(|&v| provider.label(v)).collect();

    let system = PlatoD2GL::builder().num_shards(2).build();
    let mut rng_edges = Xs(0xfeed_beef);
    let initial = community_edges(&provider, &accounts, 6, 90, &mut rng_edges);
    system.apply_updates(
        &initial
            .iter()
            .map(|&e| UpdateOp::Insert(e))
            .collect::<Vec<_>>(),
    );
    println!(
        "transaction graph: {} accounts, {} edges",
        accounts.len(),
        system.store().num_edges()
    );

    let mut net = SageNet::new(SageNetConfig {
        feature_dim: 16,
        hidden_dim: 32,
        num_classes: 2,
        fanouts: vec![4, 4],
        lr: 0.1,
        ..Default::default()
    });
    let mut rng = StdRng::seed_from_u64(1);

    // --- Phase 1: train on the initial graph -----------------------------
    println!("\nphase 1: initial training");
    for epoch in 0..10 {
        let mut loss_sum = 0.0;
        let mut acc_sum = 0.0;
        let mut batches = 0.0;
        for chunk in accounts.chunks(64) {
            let batch_labels: Vec<usize> = chunk.iter().map(|v| labels[v.raw() as usize]).collect();
            let stats = net.train_step(system.store(), &provider, chunk, &batch_labels, &mut rng);
            loss_sum += stats.loss;
            acc_sum += stats.accuracy;
            batches += 1.0;
        }
        println!(
            "  epoch {epoch:>2}: loss {:.4}  acc {:.1}%",
            loss_sum / batches,
            acc_sum / batches * 100.0
        );
    }

    // --- Phase 2: the graph changes under the trainer --------------------
    // A burst of fresh transactions (including some cross-community noise)
    // lands while training continues — PlatoD2GL absorbs it in place.
    println!("\nphase 2: injecting 30% more edges, training continues");
    let burst = community_edges(&provider, &accounts, 2, 80, &mut rng_edges);
    system.apply_updates(
        &burst
            .iter()
            .map(|&e| UpdateOp::Insert(e))
            .collect::<Vec<_>>(),
    );
    println!("  graph now has {} edges", system.store().num_edges());
    let mut final_acc = 0.0;
    for epoch in 0..5 {
        let mut acc_sum = 0.0;
        let mut batches = 0.0;
        for chunk in accounts.chunks(64) {
            let batch_labels: Vec<usize> = chunk.iter().map(|v| labels[v.raw() as usize]).collect();
            let stats = net.train_step(system.store(), &provider, chunk, &batch_labels, &mut rng);
            acc_sum += stats.accuracy;
            batches += 1.0;
        }
        final_acc = acc_sum / batches;
        println!("  epoch {epoch:>2}: acc {:.1}%", final_acc * 100.0);
    }

    // --- Evaluate ----------------------------------------------------------
    let preds = net.predict(system.store(), &provider, &accounts, &mut rng);
    let correct = preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
    println!(
        "\nfinal: {}/{} accounts classified correctly ({:.1}%)",
        correct,
        accounts.len(),
        correct as f64 / accounts.len() as f64 * 100.0
    );
    assert!(
        final_acc > 0.7,
        "model should keep learning on the dynamic graph"
    );
}
