//! One observability snapshot for the whole stack.
//!
//! Boots a sharded cluster, a durable (WAL-backed) storage sidecar, and the
//! mini-batch training pipeline — all recording into **one** shared
//! registry — then runs a short training session and dumps the unified
//! snapshot twice: as JSON (the bench harness shape) and as Prometheus
//! exposition text. Every subsystem shows up in the same dump: `samtree.*`
//! and `storage.*` from the shard stores, `wal.*` from the sidecar,
//! `cluster.*` from the router, `pipeline.*` from the trainer.
//!
//! Run with: `cargo run -p platod2gl --release --example obs_snapshot`

use platod2gl::{
    Cluster, ClusterConfig, DurableGraphStore, Edge, EdgeType, FeatureProvider, GraphStore,
    HashFeatures, PipelineConfig, Registry, SageNet, SageNetConfig, StoreConfig, TrainingPipeline,
    UpdateOp, VertexId,
};
use std::sync::Arc;

fn main() {
    let registry = Arc::new(Registry::new());

    // The serving cluster: every shard store records samtree/storage
    // metrics into the shared registry.
    let config = ClusterConfig::builder()
        .num_shards(4)
        .build()
        .expect("valid config");
    let cluster = Cluster::with_registry(config, Arc::clone(&registry));

    // A durability sidecar: a WAL-backed store receiving the same update
    // stream, so `wal.*` metrics land in the same snapshot.
    let dir = std::env::temp_dir().join(format!("platod2gl-obs-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (durable, _report) =
        DurableGraphStore::open_with_registry(&dir, StoreConfig::default(), Arc::clone(&registry))
            .expect("open durable store");

    // Two-community graph: the label is a pure function of the vertex's
    // hash features, so a couple of epochs visibly learn it.
    let n = 400u64;
    let provider = HashFeatures::new(16, 2, 7);
    let vertices: Vec<VertexId> = (0..n).map(VertexId).collect();
    let labels: Vec<usize> = vertices.iter().map(|&v| provider.label(v)).collect();
    let mut state = 0x00c0_ffeeu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut ops = Vec::new();
    for &v in &vertices {
        for _ in 0..6 {
            let mut u = VertexId(next() % n);
            for _ in 0..8 {
                if provider.label(u) == provider.label(v) {
                    break;
                }
                u = VertexId(next() % n);
            }
            ops.push(UpdateOp::Insert(Edge::new(v, u, 1.0)));
        }
    }
    cluster.apply_batch_sharded(&ops).expect("bulk load");
    durable.try_apply_batch(&ops, 2).expect("wal apply");
    durable.checkpoint().expect("wal checkpoint");

    // Train a short session; pipeline telemetry lands in the registry too.
    let cfg = PipelineConfig::builder()
        .fanouts(vec![5, 5])
        .batch_size(64)
        .seed(7)
        .build()
        .expect("valid pipeline config");
    let pipeline = TrainingPipeline::new(&cluster, cfg);
    let mut net = SageNet::new(SageNetConfig {
        feature_dim: provider.dim(),
        fanouts: vec![5, 5],
        lr: 0.1,
        ..Default::default()
    });
    for epoch in 0..2 {
        let report = pipeline.run_epoch(&mut net, &provider, &vertices, &labels, epoch);
        eprintln!(
            "epoch {epoch}: loss {:.4}, accuracy {:.3}",
            report.mean_loss, report.mean_accuracy
        );
    }
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let _ = cluster.sample_neighbors(VertexId(0), EdgeType::DEFAULT, 8, &mut rng);

    let snap = registry.snapshot();
    println!("== JSON ==");
    println!("{}", snap.to_json());
    println!();
    println!("== Prometheus ==");
    print!("{}", snap.to_prometheus());

    let _ = std::fs::remove_dir_all(&dir);
}
