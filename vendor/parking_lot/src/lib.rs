//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! primitives with parking_lot's non-poisoning, guard-returning API.

// Vendored API stand-in: exempt from clippy polish (see vendor/README.md).
#![allow(clippy::all)]

use std::fmt;
use std::sync::{self, PoisonError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// `parking_lot::Mutex`: `lock()` returns the guard directly and a
/// poisoned lock (panicked holder) is simply re-entered.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// `parking_lot::RwLock` with the same non-poisoning semantics.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_is_reentered() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock must survive a panicking holder");
    }
}
