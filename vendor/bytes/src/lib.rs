//! Offline stand-in for the `bytes` crate: just the refcounted [`Bytes`]
//! handle (clone = refcount bump, no copy), which is all this workspace
//! uses for attribute blobs.

// Vendored API stand-in: exempt from clippy polish (see vendor/README.md).
#![allow(clippy::all)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes(Repr::Static(&[]))
    }

    /// Wrap a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Repr::Static(bytes))
    }

    /// Copy a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Repr::Shared(Arc::from(data)))
    }

    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Repr::Shared(Arc::from(v)))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from_static(b"feat");
        let b = Bytes::from(b"feat".to_vec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert_eq!(&a[..], b"feat");
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![7u8; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        match (&a.0, &b.0) {
            (Repr::Shared(x), Repr::Shared(y)) => assert!(Arc::ptr_eq(x, y)),
            _ => panic!("expected shared representation"),
        }
    }

    #[test]
    fn deref_and_as_ref() {
        let a = Bytes::from_static(b"xyz");
        let opt = Some(a.clone());
        assert_eq!(opt.as_deref(), Some(&b"xyz"[..]));
        assert_eq!(a.as_ref(), b"xyz");
    }
}
