//! Offline stand-in for the `rand` crate (0.9 API surface used by this
//! workspace). The generator is xoshiro256** seeded via splitmix64 — a
//! different stream than upstream `StdRng`, but every consumer here only
//! relies on determinism-under-seed and uniformity, not the exact stream.

// Vendored API stand-in: exempt from clippy polish (see vendor/README.md).
#![allow(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// Core random number generation interface (object-safe).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        // splitmix64 expansion, the same scheme upstream uses.
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                // Modulo with a 64-bit draw: bias is negligible for the
                // simulation-scale spans used in this workspace.
                let off = if span == 0 { rng.next_u64() } else { rng.next_u64() % span };
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = if span > u64::MAX as u128 {
                    rng.next_u64()
                } else {
                    rng.next_u64() % span as u64
                };
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    fn random_range<T, SR: SampleRange<T>>(&mut self, range: SR) -> T {
        range.sample_single(self)
    }

    /// A uniform draw in `[0, 1)` (f64) / full-range (integers).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a canonical uniform distribution for [`Rng::random`].
pub trait Random {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — small, fast, and plenty for simulation workloads.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 0xbf58_476d_1ce4_e5b9, 1, 2];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    /// Process-global lazily seeded generator handle.
    #[derive(Clone, Debug)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest)
        }
    }
}

/// A fresh, non-deterministically seeded generator (`rand::rng()`).
pub fn rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5eed);
    let seed = nanos
        ^ COUNTER
            .fetch_add(0x9e37_79b9, Ordering::Relaxed)
            .wrapping_shl(32);
    rngs::ThreadRng(rngs::StdRng::seed_from_u64(seed))
}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling / choosing helpers.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "100 elements virtually never shuffle to identity"
        );
    }

    #[test]
    fn dyn_rng_core_is_usable() {
        let mut rng = StdRng::seed_from_u64(5);
        let dynrng: &mut dyn RngCore = &mut rng;
        let x = dynrng.next_u64();
        let _ = dynrng.next_u32();
        let mut buf = [0u8; 5];
        dynrng.fill_bytes(&mut buf);
        assert_ne!(x, 0);
    }

    #[test]
    fn global_rng_works() {
        let mut r = super::rng();
        let a: f64 = r.random();
        assert!((0.0..1.0).contains(&a));
    }
}
