//! Offline stand-in for `criterion`: a minimal benchmark harness with the
//! API surface the workspace benches use. Under `cargo bench` (cargo passes
//! `--bench`) each benchmark is timed over a short fixed budget and a
//! `name/param: median ns/iter` line is printed — no statistics, plots, or
//! baselines. Under `cargo test` the bench binaries exit immediately so the
//! test suite stays fast.

// Vendored API stand-in: exempt from clippy polish (see vendor/README.md).
#![allow(clippy::all)]

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark identifier: `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Throughput annotation (accepted, not reported).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Batch-size hint for `iter_batched` (accepted, not used for planning).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    /// Wall-clock budget for the measurement loop.
    budget: Duration,
    /// Median ns/iter of the last `iter*` call.
    last_ns: f64,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            budget,
            last_ns: f64::NAN,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warmup call, then time batches until the budget runs out.
        black_box(routine());
        let started = Instant::now();
        let mut samples: Vec<f64> = Vec::new();
        let mut batch = 1u64;
        while started.elapsed() < self.budget {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            samples.push(ns);
            // Grow batches until one batch takes ≥ ~1ms, bounding timer noise.
            if t.elapsed() < Duration::from_millis(1) && batch < 1 << 20 {
                batch *= 2;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.last_ns = samples[samples.len() / 2];
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let started = Instant::now();
        let mut samples: Vec<f64> = Vec::new();
        while started.elapsed() < self.budget {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            samples.push(t.elapsed().as_nanos() as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.last_ns = samples[samples.len() / 2];
    }

    pub fn iter_batched_ref<I, O, S, F>(&mut self, setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, |mut input| routine(&mut input), _size)
    }
}

/// Root harness handle.
pub struct Criterion {
    enabled: bool,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo passes `--bench` when running bench targets via
        // `cargo bench`; under `cargo test` nothing should run.
        let enabled = std::env::args().any(|a| a == "--bench");
        Criterion {
            enabled,
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            enabled: self.enabled,
            measurement_time: self.measurement_time,
            _marker: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let time = self.measurement_time;
        let enabled = self.enabled;
        run_one("", enabled, time, id.into(), f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    enabled: bool,
    measurement_time: Duration,
    // Tie the group's lifetime to the Criterion handle like upstream.
    _marker: std::marker::PhantomData<&'a mut ()>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time.min(Duration::from_secs(3));
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            self.enabled,
            self.measurement_time,
            id.into(),
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.name,
            self.enabled,
            self.measurement_time,
            id.into(),
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    enabled: bool,
    time: Duration,
    id: BenchmarkId,
    mut f: F,
) {
    if !enabled {
        return;
    }
    let mut bencher = Bencher::new(time);
    f(&mut bencher);
    let full = if group.is_empty() {
        id.label
    } else {
        format!("{group}/{}", id.label)
    };
    if bencher.last_ns.is_nan() {
        println!("{full}: no measurement");
    } else {
        println!("{full}: {:.0} ns/iter", bencher.last_ns);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_harness_skips_measurement() {
        // Tests don't pass --bench, so the default harness must be inert.
        let mut c = Criterion::default();
        let mut ran = false;
        let mut group = c.benchmark_group("g");
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        group.finish();
        assert!(!ran, "bench closures must not run under cargo test");
    }

    #[test]
    fn enabled_bencher_measures() {
        let mut b = Bencher::new(Duration::from_millis(10));
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.last_ns.is_finite() && b.last_ns >= 0.0);
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert!(b.last_ns.is_finite());
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("CSTable", 256).label, "CSTable/256");
        assert_eq!(BenchmarkId::from_parameter("2^10").label, "2^10");
    }
}
