//! Offline stand-in for `serde`: the workspace only uses
//! `#[derive(Serialize, Deserialize)]` as forward-compatible annotations on
//! value types (nothing serializes yet — there is no serde_json or similar
//! in the tree). These no-op derives let the annotations compile without
//! the real proc-macro stack.

// Vendored API stand-in: exempt from clippy polish (see vendor/README.md).
#![allow(clippy::all)]

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
