//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`proptest!`] macro, range/tuple/`Just`/`any`/vec/hash_set strategies,
//! `prop_map`, `prop_oneof!`, and the `prop_assert*` macros. Each property
//! runs a fixed number of deterministically seeded cases (default 256,
//! override with the `PROPTEST_CASES` env var). Failing cases are reported
//! with their case index but are **not shrunk**.

// Vendored API stand-in: exempt from clippy polish (see vendor/README.md).
#![allow(clippy::all)]

use std::collections::HashSet;
use std::ops::Range;

/// Deterministic generator driving case generation (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test's fully qualified name so every property gets a
    /// distinct but reproducible stream.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Result of one generated case: `Reject` skips (from `prop_assume!`),
/// `Fail` fails the test.
#[derive(Debug)]
pub enum TestCaseError {
    Reject,
    Fail(String),
}

impl TestCaseError {
    /// Constructor mirroring upstream's `TestCaseError::fail(reason)`.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Constructor mirroring upstream's `TestCaseError::reject(reason)`.
    pub fn reject(_reason: impl Into<String>) -> Self {
        TestCaseError::Reject
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// A value generator. Unlike real proptest there is no shrink tree: a
/// strategy is just a deterministic sampler.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// `.prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct OneOf<S>(pub Vec<S>);

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one option");
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types `any::<T>()` can generate.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    // Finite values only; the workspace never relies on NaN/inf generation.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.unit_f64() - 0.5) * 2e12
    }
}

/// `any::<T>()` strategy handle.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full uniform strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// `Vec` strategy with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end.saturating_sub(self.len.start).max(1);
            let n = self.len.start + rng.below(span as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `HashSet` strategy; generation retries duplicates, so the element
    /// strategy's domain must comfortably exceed the requested size.
    pub struct HashSetStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn hash_set<S>(element: S, len: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, len }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let span = self.len.end.saturating_sub(self.len.start).max(1);
            let n = self.len.start + rng.below(span as u64) as usize;
            let mut out = HashSet::with_capacity(n);
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 10 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            assert!(
                out.len() >= self.len.start,
                "hash_set strategy could not reach minimum size {} (domain too small?)",
                self.len.start
            );
            out
        }
    }
}

pub mod test_runner {
    pub use super::{ProptestConfig, TestCaseError, TestRng};
}

pub mod prelude {
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

// `Strategy` passthrough for references lets helper fns hand out borrowed
// strategies if they want to.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

// Boxed strategies compose with `OneOf` when variants have distinct types.
impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Helper so `HashSet` appears in the crate root like upstream re-exports.
pub type PropHashSet<T> = HashSet<T>;

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} == {:?}`",
                lhs, rhs
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                lhs, rhs,
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($strategy),+])
    };
}

/// The property-test entry macro. Grammar supported:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]   // optional
///     #[test]
///     fn my_prop(x in 0usize..10, v in collection::vec(any::<u64>(), 0..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {case} failed: {msg}");
                    }
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = super::TestRng::for_test("bounds");
        for _ in 0..1000 {
            let x = (0u8..3).generate(&mut rng);
            assert!(x < 3);
            let (a, b, c) = (0u8..3, 0u64..64, 0.5f64..2.0).generate(&mut rng);
            assert!(a < 3 && b < 64 && (0.5..2.0).contains(&c));
        }
    }

    #[test]
    fn collections_respect_lengths() {
        let mut rng = super::TestRng::for_test("collections");
        for _ in 0..200 {
            let v = super::collection::vec(any::<u8>(), 2..10).generate(&mut rng);
            assert!((2..10).contains(&v.len()));
            let s = super::collection::hash_set(any::<u64>(), 3..8).generate(&mut rng);
            assert!(s.len() >= 3 && s.len() < 8);
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let mut rng = super::TestRng::for_test("compose");
        let st = prop_oneof![Just(4usize), Just(8), Just(64)];
        let doubled = (0u64..5).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert!(matches!(st.generate(&mut rng), 4 | 8 | 64));
            assert!(doubled.generate(&mut rng) % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn the_macro_itself_works(x in 1usize..50, v in super::collection::vec(0u8..10, 0..20)) {
            prop_assume!(x != 13);
            prop_assert!(x >= 1 && x < 50);
            prop_assert_eq!(v.len(), v.iter().count());
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
