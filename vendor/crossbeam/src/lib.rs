//! Offline stand-in for `crossbeam`: the scoped-thread API used by this
//! workspace, implemented over `std::thread::scope` (stable since 1.63).
//!
//! Behavioral difference: when a spawned thread panics, `std::thread::scope`
//! re-raises the panic after joining instead of returning `Err` — callers
//! here all `.expect()` the result, so the observable outcome (process/test
//! aborts with the panic message) is identical.

// Vendored API stand-in: exempt from clippy polish (see vendor/README.md).
#![allow(clippy::all)]

pub use thread::scope;

pub mod thread {
    use std::any::Any;

    /// Mirror of `crossbeam::thread::Scope`, wrapping the std scope handle.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Mirror of `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(self.inner.spawn(move || {
                let nested = Scope { inner };
                f(&nested)
            }))
        }
    }

    /// `crossbeam::thread::scope`: run `f` with a scope handle; all spawned
    /// threads are joined before this returns. A child panic propagates as a
    /// panic (see module docs) rather than an `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let wrapper = Scope { inner: s };
            f(&wrapper)
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .expect("scope");
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_scope_handle_can_spawn() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .expect("scope");
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn join_returns_thread_result() {
        let out = super::scope(|s| s.spawn(|_| 41 + 1).join().expect("join")).expect("scope");
        assert_eq!(out, 42);
    }
}
