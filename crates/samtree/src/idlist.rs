//! Vertex-ID lists with CP-ID dynamic prefix compression (paper Sec. VI-A).
//!
//! Every samtree node holds a list of 64-bit vertex IDs. Because the tree
//! orders IDs by value across children, the IDs inside one node are
//! value-clustered and usually share a long big-endian byte prefix (the
//! paper's Fig. 7 shows four IDs sharing their first 7 bytes). CP-ID storage
//! keeps `z` shared prefix bytes once plus an `(8 - z)`-byte suffix per ID,
//! with `z ∈ {0, 4, 6, 7}` "for fast compression" — suffix widths of 8, 4,
//! 2 and 1 bytes, all power-of-two sized so suffix access is a single
//! aligned load.

use platod2gl_mem::DeepSize;

/// The prefix lengths (in bytes) the paper allows; 0 means uncompressed.
pub const PREFIX_LENGTHS: [u8; 3] = [7, 6, 4];

/// A list of vertex IDs, stored raw or CP-ID compressed.
///
/// The list preserves insertion order (samtree leaves rely on positions that
/// mirror their FSTable; internal nodes keep separators sorted by using the
/// positional `insert_at`/`remove_at` operations).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IdList {
    /// One `u64` per ID.
    Plain(Vec<u64>),
    /// `z` shared prefix bytes + `(8 - z)`-byte big-endian suffixes.
    Compressed {
        /// Number of shared prefix bytes (4, 6 or 7).
        z: u8,
        /// The shared prefix, right-aligned: the top `z` bytes of every ID.
        prefix: u64,
        /// Packed `(8 - z)`-byte big-endian suffixes.
        suffixes: Vec<u8>,
    },
}

impl Default for IdList {
    fn default() -> Self {
        IdList::Plain(Vec::new())
    }
}

/// Number of leading bytes shared by `a` and `b`.
fn common_prefix_bytes(a: u64, b: u64) -> u8 {
    ((a ^ b).leading_zeros() / 8) as u8
}

/// The largest allowed prefix length `<= max_bytes`, or 0 (no compression).
fn choose_z(max_bytes: u8) -> u8 {
    PREFIX_LENGTHS
        .iter()
        .copied()
        .find(|&z| z <= max_bytes)
        .unwrap_or(0)
}

impl IdList {
    /// An empty uncompressed list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from IDs; compresses with the best allowed prefix when
    /// `compression` is set.
    pub fn from_ids(ids: &[u64], compression: bool) -> Self {
        if !compression || ids.is_empty() {
            return IdList::Plain(ids.to_vec());
        }
        // All elements share exactly the bytes shared by the min and max.
        let min = *ids.iter().min().expect("non-empty");
        let max = *ids.iter().max().expect("non-empty");
        let z = choose_z(common_prefix_bytes(min, max).min(7));
        if z == 0 {
            return IdList::Plain(ids.to_vec());
        }
        let width = 8 - z as usize;
        let mut suffixes = Vec::with_capacity(ids.len() * width);
        for &id in ids {
            suffixes.extend_from_slice(&id.to_be_bytes()[z as usize..]);
        }
        IdList::Compressed {
            z,
            prefix: min >> (8 * width),
            suffixes,
        }
    }

    /// Number of IDs.
    pub fn len(&self) -> usize {
        match self {
            IdList::Plain(v) => v.len(),
            IdList::Compressed { z, suffixes, .. } => suffixes.len() / (8 - *z as usize),
        }
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ID at position `i`.
    pub fn get(&self, i: usize) -> u64 {
        match self {
            IdList::Plain(v) => v[i],
            IdList::Compressed {
                z,
                prefix,
                suffixes,
            } => {
                let width = 8 - *z as usize;
                let mut bytes = [0u8; 8];
                bytes[8 - width..].copy_from_slice(&suffixes[i * width..(i + 1) * width]);
                (prefix << (8 * width)) | u64::from_be_bytes(bytes)
            }
        }
    }

    /// Whether `id` fits under the current shared prefix.
    fn compatible(&self, id: u64) -> bool {
        match self {
            IdList::Plain(_) => true,
            IdList::Compressed { z, prefix, .. } => {
                let width = 8 - *z as usize;
                (id >> (8 * width)) == *prefix
            }
        }
    }

    /// Re-encode with a (shorter) prefix that also covers `incoming`
    /// (the paper's CP-ID update rule, Appendix A: an incompatible insert
    /// falls back to a wider suffix format).
    fn recode_for(&mut self, incoming: u64) {
        let mut ids = self.to_vec();
        ids.push(incoming);
        let min = *ids.iter().min().expect("non-empty");
        let max = *ids.iter().max().expect("non-empty");
        let z = choose_z(common_prefix_bytes(min, max).min(7));
        ids.pop();
        *self = Self::with_exact_z(&ids, z);
    }

    /// Encode `ids` with an explicit prefix length (0 = plain). The caller
    /// guarantees all IDs share at least `z` leading bytes.
    fn with_exact_z(ids: &[u64], z: u8) -> Self {
        if z == 0 || ids.is_empty() {
            return IdList::Plain(ids.to_vec());
        }
        let width = 8 - z as usize;
        let mut suffixes = Vec::with_capacity(ids.len() * width);
        for &id in ids {
            suffixes.extend_from_slice(&id.to_be_bytes()[z as usize..]);
        }
        IdList::Compressed {
            z,
            prefix: ids[0] >> (8 * width),
            suffixes,
        }
    }

    /// Append an ID (leaf fast path — leaves are unordered, Sec. IV-A).
    pub fn push(&mut self, id: u64) {
        if !self.compatible(id) {
            self.recode_for(id);
        }
        match self {
            IdList::Plain(v) => v.push(id),
            IdList::Compressed { z, suffixes, .. } => {
                suffixes.extend_from_slice(&id.to_be_bytes()[*z as usize..]);
            }
        }
    }

    /// Overwrite the ID at position `i`.
    pub fn set(&mut self, i: usize, id: u64) {
        if !self.compatible(id) {
            self.recode_for(id);
        }
        match self {
            IdList::Plain(v) => v[i] = id,
            IdList::Compressed { z, suffixes, .. } => {
                let width = 8 - *z as usize;
                suffixes[i * width..(i + 1) * width]
                    .copy_from_slice(&id.to_be_bytes()[*z as usize..]);
            }
        }
    }

    /// Remove position `i` by swapping in the last element (leaf deletion,
    /// Sec. IV-D), returning the removed ID.
    pub fn swap_remove(&mut self, i: usize) -> u64 {
        let removed = self.get(i);
        let last = self.len() - 1;
        if i != last {
            let last_id = self.get(last);
            self.set(i, last_id);
        }
        self.truncate(last);
        removed
    }

    /// Insert at position `i`, shifting later elements (ordered internal
    /// nodes).
    pub fn insert_at(&mut self, i: usize, id: u64) {
        if !self.compatible(id) {
            self.recode_for(id);
        }
        match self {
            IdList::Plain(v) => v.insert(i, id),
            IdList::Compressed { z, suffixes, .. } => {
                let z = *z as usize;
                let width = 8 - z;
                let bytes = id.to_be_bytes();
                // Insert `width` bytes at offset i*width.
                let at = i * width;
                for (k, &b) in bytes[z..].iter().enumerate() {
                    suffixes.insert(at + k, b);
                }
            }
        }
    }

    /// Remove position `i`, shifting later elements (ordered internal
    /// nodes), returning the removed ID.
    pub fn remove_at(&mut self, i: usize) -> u64 {
        let removed = self.get(i);
        match self {
            IdList::Plain(v) => {
                v.remove(i);
            }
            IdList::Compressed { z, suffixes, .. } => {
                let width = 8 - *z as usize;
                suffixes.drain(i * width..(i + 1) * width);
            }
        }
        removed
    }

    /// Truncate to `new_len` elements.
    pub fn truncate(&mut self, new_len: usize) {
        match self {
            IdList::Plain(v) => v.truncate(new_len),
            IdList::Compressed { z, suffixes, .. } => {
                suffixes.truncate(new_len * (8 - *z as usize));
            }
        }
    }

    /// All IDs, decompressed.
    pub fn to_vec(&self) -> Vec<u64> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Iterate over IDs.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Position of `id`, by linear scan (leaves are unordered).
    ///
    /// On compressed lists the scan compares raw suffix bytes after one
    /// prefix check, so lookups never reconstruct full IDs.
    pub fn position(&self, id: u64) -> Option<usize> {
        match self {
            IdList::Plain(v) => v.iter().position(|&x| x == id),
            IdList::Compressed {
                z,
                prefix,
                suffixes,
            } => {
                let width = 8 - *z as usize;
                if (id >> (8 * width)) != *prefix {
                    return None;
                }
                let target = &id.to_be_bytes()[*z as usize..];
                suffixes.chunks_exact(width).position(|c| c == target)
            }
        }
    }

    /// Re-pick the best prefix for the current contents. Called when a node
    /// is (re)built after a split or merge.
    pub fn recompress(&mut self, compression: bool) {
        let ids = self.to_vec();
        *self = IdList::from_ids(&ids, compression);
    }

    /// The current prefix length in bytes (0 when uncompressed).
    pub fn prefix_len(&self) -> u8 {
        match self {
            IdList::Plain(_) => 0,
            IdList::Compressed { z, .. } => *z,
        }
    }

    /// Bytes used per stored ID (8 for plain; the suffix width otherwise).
    pub fn bytes_per_id(&self) -> usize {
        match self {
            IdList::Plain(_) => 8,
            IdList::Compressed { z, .. } => 8 - *z as usize,
        }
    }
}

impl DeepSize for IdList {
    fn heap_bytes(&self) -> usize {
        match self {
            IdList::Plain(v) => v.capacity() * 8,
            IdList::Compressed { suffixes, .. } => suffixes.capacity(),
        }
    }
}

impl FromIterator<u64> for IdList {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        IdList::Plain(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig7_example_compresses_with_seven_byte_prefix() {
        // Fig. 7: IDs 0x10, 0x81, 0x2b, 0x5a share their first 7 bytes
        // (all zero), so CP-IDs stores z=7 and 1-byte suffixes.
        let ids = [0x10u64, 0x81, 0x2b, 0x5a];
        let list = IdList::from_ids(&ids, true);
        assert_eq!(list.prefix_len(), 7);
        assert_eq!(list.bytes_per_id(), 1);
        assert_eq!(list.to_vec(), ids);
    }

    #[test]
    fn choose_z_picks_largest_allowed() {
        assert_eq!(choose_z(8), 7);
        assert_eq!(choose_z(7), 7);
        assert_eq!(choose_z(6), 6);
        assert_eq!(choose_z(5), 4);
        assert_eq!(choose_z(4), 4);
        assert_eq!(choose_z(3), 0);
        assert_eq!(choose_z(0), 0);
    }

    #[test]
    fn from_ids_without_compression_stays_plain() {
        let list = IdList::from_ids(&[1, 2, 3], false);
        assert_eq!(list.prefix_len(), 0);
        assert_eq!(list.bytes_per_id(), 8);
    }

    #[test]
    fn wide_spread_ids_stay_plain() {
        let list = IdList::from_ids(&[0x0000_0000_0000_0001, 0xffff_0000_0000_0000], true);
        assert_eq!(list.prefix_len(), 0);
    }

    #[test]
    fn six_and_four_byte_prefixes() {
        // Differ in the low 2 bytes -> z = 6.
        let list = IdList::from_ids(&[0xAABB_CCDD_EEFF_0001, 0xAABB_CCDD_EEFF_1234], true);
        assert_eq!(list.prefix_len(), 6);
        assert_eq!(
            list.to_vec(),
            vec![0xAABB_CCDD_EEFF_0001, 0xAABB_CCDD_EEFF_1234]
        );
        // Differ in byte 4 (0-indexed from the top) -> common 4 bytes -> z = 4.
        let list = IdList::from_ids(&[0xAABB_CCDD_0000_0000, 0xAABB_CCDD_FF00_0000], true);
        assert_eq!(list.prefix_len(), 4);
        assert_eq!(
            list.to_vec(),
            vec![0xAABB_CCDD_0000_0000, 0xAABB_CCDD_FF00_0000]
        );
    }

    #[test]
    fn push_within_prefix_keeps_compression() {
        let mut list = IdList::from_ids(&[0x10, 0x81], true);
        assert_eq!(list.prefix_len(), 7);
        list.push(0x2b);
        assert_eq!(list.prefix_len(), 7);
        assert_eq!(list.to_vec(), vec![0x10, 0x81, 0x2b]);
    }

    #[test]
    fn incompatible_push_falls_back_to_wider_suffix() {
        let mut list = IdList::from_ids(&[0x10, 0x81], true);
        assert_eq!(list.prefix_len(), 7);
        // 0x1_0000 differs from the others in byte 5, so only the top five
        // bytes stay common; the largest allowed prefix <= 5 is z = 4.
        list.push(0x1_0000);
        assert_eq!(list.prefix_len(), 4);
        assert_eq!(list.to_vec(), vec![0x10, 0x81, 0x1_0000]);
    }

    #[test]
    fn incompatible_push_can_fall_all_the_way_to_plain() {
        let mut list = IdList::from_ids(&[0x10, 0x81], true);
        list.push(0xffff_ffff_ffff_ffff);
        assert_eq!(list.prefix_len(), 0);
        assert_eq!(list.to_vec(), vec![0x10, 0x81, 0xffff_ffff_ffff_ffff]);
    }

    #[test]
    fn set_swap_remove_roundtrip_compressed() {
        let mut list = IdList::from_ids(&[0x10, 0x81, 0x2b, 0x5a], true);
        list.set(1, 0x99);
        assert_eq!(list.to_vec(), vec![0x10, 0x99, 0x2b, 0x5a]);
        let removed = list.swap_remove(0);
        assert_eq!(removed, 0x10);
        assert_eq!(list.to_vec(), vec![0x5a, 0x99, 0x2b]);
        let removed = list.swap_remove(2);
        assert_eq!(removed, 0x2b);
        assert_eq!(list.to_vec(), vec![0x5a, 0x99]);
    }

    #[test]
    fn insert_at_and_remove_at_shift_compressed() {
        let mut list = IdList::from_ids(&[0x10, 0x30], true);
        list.insert_at(1, 0x20);
        assert_eq!(list.to_vec(), vec![0x10, 0x20, 0x30]);
        list.insert_at(0, 0x05);
        assert_eq!(list.to_vec(), vec![0x05, 0x10, 0x20, 0x30]);
        list.insert_at(4, 0x40);
        assert_eq!(list.to_vec(), vec![0x05, 0x10, 0x20, 0x30, 0x40]);
        assert_eq!(list.remove_at(2), 0x20);
        assert_eq!(list.to_vec(), vec![0x05, 0x10, 0x30, 0x40]);
    }

    #[test]
    fn position_finds_ids() {
        let list = IdList::from_ids(&[7, 3, 9], false);
        assert_eq!(list.position(3), Some(1));
        assert_eq!(list.position(8), None);
    }

    #[test]
    fn recompress_upgrades_after_narrowing() {
        let mut list = IdList::from_ids(&[0x10, 0xffff_ffff_ffff_ffff], true);
        assert_eq!(list.prefix_len(), 0);
        list.swap_remove(1);
        list.push(0x20);
        list.recompress(true);
        assert_eq!(list.prefix_len(), 7);
        assert_eq!(list.to_vec(), vec![0x10, 0x20]);
    }

    #[test]
    fn compression_memory_savings_are_real() {
        use platod2gl_mem::DeepSize;
        // 256 clustered IDs: 1-byte suffixes vs 8-byte raw.
        let ids: Vec<u64> = (0..256u64).map(|i| 0xAABB_CCDD_EEFF_1100 | i).collect();
        let plain = IdList::from_ids(&ids, false);
        let packed = IdList::from_ids(&ids, true);
        assert_eq!(packed.prefix_len(), 7);
        assert_eq!(plain.heap_bytes(), 256 * 8);
        assert_eq!(packed.heap_bytes(), 256);
    }

    #[test]
    fn get_reconstructs_full_ids_across_widths() {
        for ids in [
            vec![0xAABB_CCDD_EEFF_1122u64, 0xAABB_CCDD_EEFF_1133],
            vec![0xAABB_CCDD_EE00_0000, 0xAABB_CCDD_EEFF_FFFF],
            vec![0xAABB_CCDD_0000_0000, 0xAABB_CCDD_FFFF_FFFF],
        ] {
            let list = IdList::from_ids(&ids, true);
            assert!(list.prefix_len() > 0);
            assert_eq!(list.to_vec(), ids);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Clustered IDs: a shared random high part with small offsets.
    fn clustered_ids() -> impl Strategy<Value = Vec<u64>> {
        (
            any::<u64>(),
            proptest::collection::vec(0u64..0x1_0000, 1..64),
        )
            .prop_map(|(base, offs)| {
                let base = base & 0xffff_ffff_ffff_0000;
                offs.iter().map(|o| base | o).collect()
            })
    }

    proptest! {
        #[test]
        fn roundtrip_any_ids(ids in proptest::collection::vec(any::<u64>(), 0..64)) {
            let list = IdList::from_ids(&ids, true);
            prop_assert_eq!(list.to_vec(), ids);
        }

        #[test]
        fn ops_match_reference_vec(
            init in clustered_ids(),
            ops in proptest::collection::vec((0u8..4, any::<u64>(), 0usize..128), 0..64),
        ) {
            let mut reference = init.clone();
            let mut list = IdList::from_ids(&init, true);
            for (kind, id, idx) in ops {
                match kind {
                    0 => { reference.push(id); list.push(id); }
                    1 if !reference.is_empty() => {
                        let i = idx % reference.len();
                        reference[i] = id;
                        list.set(i, id);
                    }
                    2 if !reference.is_empty() => {
                        let i = idx % reference.len();
                        reference.swap_remove(i);
                        list.swap_remove(i);
                    }
                    3 => {
                        let i = idx % (reference.len() + 1);
                        reference.insert(i, id);
                        list.insert_at(i, id);
                    }
                    _ => {}
                }
                prop_assert_eq!(list.len(), reference.len());
            }
            prop_assert_eq!(list.to_vec(), reference);
        }

        #[test]
        fn compressed_never_larger_than_plain(ids in clustered_ids()) {
            use platod2gl_mem::DeepSize;
            let plain = IdList::from_ids(&ids, false);
            let packed = IdList::from_ids(&ids, true);
            prop_assert!(packed.heap_bytes() <= plain.heap_bytes());
        }
    }
}
