//! # samtree — PlatoD2GL's non-key-value dynamic topology structure
//!
//! A *samtree* (paper Def. 1, Sec. IV) stores the out-neighborhood of one
//! source vertex as a B-tree-shaped structure tuned for two operations at
//! once: **dynamic updates** and **weighted neighbor sampling**.
//!
//! The four constraints from Sec. IV-A:
//!
//! 1. Leaves store the neighbors; internal nodes store aggregation
//!    information about their children.
//! 2. Leaf ID lists are **unordered** (so insertion is an append and the
//!    FSTable stays valid under swap-deletion); internal ID lists are
//!    **ordered** (so routing is a binary search).
//! 3. Every internal node carries a [`CsTable`](platod2gl_sampling::CsTable)
//!    over its children's subtree weights: one ITS step picks a child.
//! 4. Every leaf carries an [`FsTable`](platod2gl_fenwick::FsTable): one FTS
//!    step picks a neighbor, and all leaf maintenance is `O(log n_L)`.
//!
//! Insertion uses the [`alpha_split`](split::alpha_split) algorithm to split
//! full leaves in `O(n)` without sorting (Alg. 1/2); deletion swap-removes
//! in the leaf and merges underfull nodes with a sibling (Sec. IV-D).
//! Sampling draws one random number and threads it down the tree: ITS at
//! each internal node, FTS at the leaf (Sec. V-C).
//!
//! Vertex IDs inside nodes can be CP-ID prefix-compressed ([`IdList`],
//! Sec. VI-A), which is where most of the paper's Table IV memory saving
//! over key-value stores comes from.

mod idlist;
mod split;
mod tree;

pub use idlist::IdList;
pub use split::{alpha_split, IdWeight};
pub use tree::{InsertOutcome, SamTree};

/// Which index structure samtree *leaves* use for their weights — the
/// paper's central design choice, exposed so the ablation can measure it
/// in situ (Table II microbenchmarks isolate the structures; this isolates
/// their effect inside the full tree under real workloads).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LeafIndex {
    /// FSTable: `O(log n_L)` for every maintenance case (the paper's
    /// design).
    #[default]
    Fenwick,
    /// CSTable: `O(1)` append but `O(n_L)` in-place update and deletion —
    /// what a PlatoGL-style leaf would pay.
    CumSum,
}

/// Tuning parameters shared by all samtrees in a store.
///
/// Kept outside the tree (passed into each operation) so that a graph with
/// hundreds of millions of source vertices does not replicate the
/// configuration per tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SamTreeConfig {
    /// Node capacity `c` (Def. 1). The paper's default is 256 (Sec. VII-A),
    /// the value its Fig. 11b sensitivity sweep found fastest.
    pub capacity: usize,
    /// Split slackness `α` (Alg. 1). The paper's default is 0.
    pub alpha: usize,
    /// Enable CP-ID prefix compression of node ID lists (Sec. VI-A).
    pub compression: bool,
    /// Leaf weight-index structure (ablation knob; default Fenwick).
    pub leaf_index: LeafIndex,
}

impl Default for SamTreeConfig {
    fn default() -> Self {
        Self {
            capacity: 256,
            alpha: 0,
            compression: true,
            leaf_index: LeafIndex::Fenwick,
        }
    }
}

impl SamTreeConfig {
    /// Validate parameter combinations.
    ///
    /// # Panics
    /// If `capacity < 4` or `alpha >= capacity / 2` (a slackness that large
    /// would let splits produce empty nodes).
    pub fn validated(self) -> Self {
        assert!(self.capacity >= 4, "samtree capacity must be at least 4");
        assert!(
            self.alpha < self.capacity / 2,
            "alpha must be below capacity/2 (paper Remark, Sec. IV-C)"
        );
        self
    }

    /// Minimum fill of a non-root node: `c/2 - α` (paper Remark after
    /// Thm. 2), floored at 1 — α-Split may legitimately produce nodes this
    /// small, and deletion merges any node that drops below the bound.
    pub fn min_fill(&self) -> usize {
        (self.capacity / 2).saturating_sub(self.alpha).max(1)
    }
}

/// Counters distinguishing where update work lands (the paper's Table V:
/// >98 % of updating operations hit leaf nodes, justifying the
/// > FSTable-in-leaves / CSTable-in-internals hybrid).
///
/// A *leaf op* is any modification of a leaf's ID list or FSTable (insert,
/// weight update, swap-delete). An *internal op* is a structural
/// modification of an internal node — a separator inserted or removed by a
/// child split or merge, an internal split, or a root change. Pure CSTable
/// value refreshes along the search path are bookkeeping every scheme pays
/// and are not counted as operations, matching the paper's accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Modifications applied to leaf nodes.
    pub leaf_ops: u64,
    /// Structural modifications applied to internal nodes.
    pub internal_ops: u64,
    /// Number of leaf splits (each also counts as one internal op at the
    /// parent).
    pub leaf_splits: u64,
    /// Number of internal-node splits.
    pub internal_splits: u64,
    /// Number of node merges triggered by deletions.
    pub merges: u64,
}

impl OpStats {
    /// Fold another counter set into this one.
    pub fn merge(&mut self, other: &OpStats) {
        self.leaf_ops += other.leaf_ops;
        self.internal_ops += other.internal_ops;
        self.leaf_splits += other.leaf_splits;
        self.internal_splits += other.internal_splits;
        self.merges += other.merges;
    }

    /// Fraction of operations that landed on leaves (Table V's top row).
    pub fn leaf_fraction(&self) -> f64 {
        let total = self.leaf_ops + self.internal_ops;
        if total == 0 {
            return 0.0;
        }
        self.leaf_ops as f64 / total as f64
    }
}

#[cfg(test)]
mod config_tests {
    use super::*;

    #[test]
    fn default_matches_paper_defaults() {
        let cfg = SamTreeConfig::default();
        assert_eq!(cfg.capacity, 256);
        assert_eq!(cfg.alpha, 0);
        assert!(cfg.compression);
    }

    #[test]
    fn min_fill_is_half_capacity_minus_alpha() {
        let cfg = SamTreeConfig {
            capacity: 64,
            alpha: 8,
            compression: false,
            leaf_index: LeafIndex::Fenwick,
        };
        assert_eq!(cfg.min_fill(), 24);
        let cfg = SamTreeConfig {
            capacity: 4,
            alpha: 1,
            compression: false,
            leaf_index: LeafIndex::Fenwick,
        };
        assert_eq!(cfg.min_fill(), 1);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn oversized_alpha_rejected() {
        SamTreeConfig {
            capacity: 16,
            alpha: 8,
            compression: false,
            leaf_index: LeafIndex::Fenwick,
        }
        .validated();
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn tiny_capacity_rejected() {
        SamTreeConfig {
            capacity: 2,
            alpha: 0,
            compression: false,
            leaf_index: LeafIndex::Fenwick,
        }
        .validated();
    }

    #[test]
    fn op_stats_merge_and_fraction() {
        let mut a = OpStats {
            leaf_ops: 98,
            internal_ops: 2,
            ..Default::default()
        };
        let b = OpStats {
            leaf_ops: 2,
            internal_ops: 0,
            leaf_splits: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.leaf_ops, 100);
        assert_eq!(a.leaf_splits, 1);
        assert!((a.leaf_fraction() - 100.0 / 102.0).abs() < 1e-12);
        assert_eq!(OpStats::default().leaf_fraction(), 0.0);
    }
}
