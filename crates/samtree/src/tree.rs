//! The samtree proper: nodes, insertion (Alg. 2), deletion (Sec. IV-D) and
//! the combined ITS + FTS neighbor sampling descent (Sec. V-C).

use crate::idlist::IdList;
use crate::split::{alpha_split, IdWeight};
use crate::{LeafIndex, OpStats, SamTreeConfig};
use platod2gl_fenwick::FsTable;
use platod2gl_mem::DeepSize;
use platod2gl_sampling::CsTable;
use rand::Rng;

/// What an insert did (Alg. 2 lines 3-6: an existing neighbor gets its
/// weight updated instead of a second entry).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The neighbor was new and has been appended.
    Inserted,
    /// The neighbor already existed; its weight was set to the new value.
    Updated,
}

/// A samtree node: leaves carry neighbor IDs plus an FSTable, internal
/// nodes carry ordered separators, a CSTable over child subtree weights and
/// the children themselves.
#[derive(Clone, Debug)]
pub enum Node {
    Leaf(Leaf),
    Internal(Internal),
}

impl Default for Node {
    fn default() -> Self {
        Node::Leaf(Leaf::default())
    }
}

/// The weight index of a leaf: FSTable in the paper's design, CSTable for
/// the in-situ ablation (`LeafIndex::CumSum`). Same interface, different
/// maintenance complexity (Table II).
#[derive(Clone, Debug)]
pub(crate) enum LeafTable {
    Fs(FsTable),
    Cs(CsTable),
}

impl Default for LeafTable {
    fn default() -> Self {
        LeafTable::Fs(FsTable::new())
    }
}

impl LeafTable {
    fn new(kind: LeafIndex) -> Self {
        match kind {
            LeafIndex::Fenwick => LeafTable::Fs(FsTable::new()),
            LeafIndex::CumSum => LeafTable::Cs(CsTable::new()),
        }
    }

    fn from_weights(kind: LeafIndex, weights: &[f64]) -> Self {
        match kind {
            LeafIndex::Fenwick => LeafTable::Fs(FsTable::from_weights(weights)),
            LeafIndex::CumSum => LeafTable::Cs(CsTable::from_weights(weights)),
        }
    }

    fn len(&self) -> usize {
        match self {
            LeafTable::Fs(t) => t.len(),
            LeafTable::Cs(t) => t.len(),
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Swap the (empty) table to the configured kind; no-op when occupied.
    fn ensure_kind(&mut self, kind: LeafIndex) {
        if self.is_empty() {
            *self = LeafTable::new(kind);
        }
    }

    fn get(&self, i: usize) -> f64 {
        match self {
            LeafTable::Fs(t) => t.get(i),
            LeafTable::Cs(t) => t.get(i),
        }
    }

    fn set(&mut self, i: usize, w: f64) {
        match self {
            LeafTable::Fs(t) => t.set(i, w), // O(log n)
            LeafTable::Cs(t) => t.set(i, w), // O(n)
        }
    }

    /// Decay slot `i` by `factor`, clamped at a strictly positive `floor`
    /// (see [`FsTable::decay`] for the underflow-hardening contract).
    /// Returns the weight delta applied.
    fn decay(&mut self, i: usize, factor: f64, floor: f64) -> f64 {
        match self {
            LeafTable::Fs(t) => {
                let old = t.get(i);
                t.decay(i, factor, floor) - old
            }
            LeafTable::Cs(t) => {
                let old = t.get(i);
                if old <= floor {
                    return 0.0;
                }
                let new = (old * factor).max(floor);
                t.set(i, new);
                new - old
            }
        }
    }

    fn push(&mut self, w: f64) {
        match self {
            LeafTable::Fs(t) => t.push(w), // O(log n)
            LeafTable::Cs(t) => t.push(w), // O(1)
        }
    }

    fn swap_delete(&mut self, i: usize) -> f64 {
        match self {
            LeafTable::Fs(t) => t.swap_delete(i), // O(log n)
            LeafTable::Cs(t) => {
                // O(n): mirror the swap-with-last semantics on a CSTable.
                let last = t.len() - 1;
                let w_i = t.get(i);
                if i != last {
                    let w_last = t.get(last);
                    t.set(i, w_last);
                }
                t.remove(last);
                w_i
            }
        }
    }

    fn total(&self) -> f64 {
        match self {
            LeafTable::Fs(t) => t.total(),
            LeafTable::Cs(t) => {
                use platod2gl_sampling::WeightedIndex;
                t.total()
            }
        }
    }

    fn sample_with(&self, r: f64) -> usize {
        match self {
            LeafTable::Fs(t) => t.sample_with(r), // FTS (Alg. 5)
            LeafTable::Cs(t) => t.its_search(r),  // ITS (Sec. II-B)
        }
    }

    fn weights(&self) -> Vec<f64> {
        match self {
            LeafTable::Fs(t) => t.weights(),
            LeafTable::Cs(t) => t.weights(),
        }
    }

    /// Multiply every weight by `factor` in one pass. Both tables are
    /// linear in the weights, so scaling the stored entries directly is
    /// exact — no rebuild needed.
    fn scale(&mut self, factor: f64) {
        match self {
            LeafTable::Fs(t) => t.scale(factor),
            LeafTable::Cs(t) => t.scale(factor),
        }
    }
}

impl DeepSize for LeafTable {
    fn heap_bytes(&self) -> usize {
        match self {
            LeafTable::Fs(t) => t.heap_bytes(),
            LeafTable::Cs(t) => t.heap_bytes(),
        }
    }
}

#[derive(Clone, Debug, Default)]
pub struct Leaf {
    /// Unordered neighbor IDs (Sec. IV-A constraint 2).
    ids: IdList,
    /// Positional weights: `fs.get(i)` is the weight of `ids.get(i)`.
    fs: LeafTable,
}

#[derive(Clone, Debug)]
pub struct Internal {
    /// Ordered separators: `seps.get(j)` is a lower bound for every ID in
    /// child `j` (initialized to the child's minimum; deletions may leave it
    /// stale-but-valid).
    seps: IdList,
    /// Cumulative subtree weights of the children (ITS per Sec. V-C).
    cs: CsTable,
    children: Vec<Node>,
}

impl Leaf {
    fn from_pairs_cfg(pairs: &[IdWeight], cfg: &SamTreeConfig) -> Self {
        let ids: Vec<u64> = pairs.iter().map(|p| p.0).collect();
        let weights: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        Self {
            ids: IdList::from_ids(&ids, cfg.compression),
            fs: LeafTable::from_weights(cfg.leaf_index, &weights),
        }
    }

    fn pairs(&self) -> Vec<IdWeight> {
        self.ids.iter().zip(self.fs.weights()).collect()
    }

    fn min_id(&self) -> u64 {
        self.ids.iter().min().expect("non-empty leaf")
    }
}

impl Internal {
    /// Child index for `id`: the largest `j` with `seps[j] <= id`, clamped
    /// to child 0 when `id` undercuts every separator.
    fn route(&self, id: u64) -> usize {
        let mut lo = 0usize;
        let mut hi = self.seps.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.seps.get(mid) <= id {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo.saturating_sub(1)
    }
}

impl Node {
    /// Number of entries (neighbors in a leaf, children in an internal).
    fn slot_len(&self) -> usize {
        match self {
            Node::Leaf(l) => l.ids.len(),
            Node::Internal(i) => i.children.len(),
        }
    }

    fn min_id(&self) -> u64 {
        match self {
            Node::Leaf(l) => l.min_id(),
            Node::Internal(i) => i.seps.get(0),
        }
    }

    fn total_weight(&self) -> f64 {
        match self {
            Node::Leaf(l) => l.fs.total(),
            Node::Internal(i) => {
                use platod2gl_sampling::WeightedIndex;
                i.cs.total()
            }
        }
    }
}

/// Result of a child split bubbling up to the parent.
struct SplitInfo {
    /// Separator (minimum ID) of the new right node.
    sep: u64,
    right: Node,
    right_weight: f64,
}

struct InsertResult {
    /// Change in this subtree's total weight.
    delta: f64,
    outcome: InsertOutcome,
    split: Option<SplitInfo>,
}

/// Split an over-capacity node, returning the info the parent needs.
/// Leaves use α-Split (unordered); internal nodes split evenly at the
/// median position because their entries are already ordered (Sec. IV-C).
fn split_node(node: &mut Node, cfg: &SamTreeConfig, stats: &mut OpStats) -> SplitInfo {
    match node {
        Node::Leaf(leaf) => {
            stats.leaf_splits += 1;
            let mut pairs = leaf.pairs();
            let khat = alpha_split(&mut pairs, cfg.alpha);
            let sep = pairs[khat].0;
            let right = Leaf::from_pairs_cfg(&pairs[khat..], cfg);
            let right_weight = right.fs.total();
            *leaf = Leaf::from_pairs_cfg(&pairs[..khat], cfg);
            SplitInfo {
                sep,
                right_weight,
                right: Node::Leaf(right),
            }
        }
        Node::Internal(int) => {
            stats.internal_splits += 1;
            let m = int.children.len() / 2;
            let right_children: Vec<Node> = int.children.drain(m..).collect();
            let all_seps = int.seps.to_vec();
            let weights = int.cs.weights();
            let right = Internal {
                seps: IdList::from_ids(&all_seps[m..], cfg.compression),
                cs: CsTable::from_weights(&weights[m..]),
                children: right_children,
            };
            int.seps = IdList::from_ids(&all_seps[..m], cfg.compression);
            int.cs = CsTable::from_weights(&weights[..m]);
            let sep = right.seps.get(0);
            let right_weight = {
                use platod2gl_sampling::WeightedIndex;
                right.cs.total()
            };
            SplitInfo {
                sep,
                right_weight,
                right: Node::Internal(right),
            }
        }
    }
}

fn insert_node(
    node: &mut Node,
    id: u64,
    weight: f64,
    cfg: &SamTreeConfig,
    stats: &mut OpStats,
) -> InsertResult {
    match node {
        Node::Leaf(leaf) => {
            stats.leaf_ops += 1;
            if let Some(i) = leaf.ids.position(id) {
                let old = leaf.fs.get(i);
                leaf.fs.set(i, weight);
                return InsertResult {
                    delta: weight - old,
                    outcome: InsertOutcome::Updated,
                    split: None,
                };
            }
            if leaf.ids.is_empty() {
                leaf.fs.ensure_kind(cfg.leaf_index);
                if cfg.compression {
                    // Seed the CP-ID encoding on first insert; later pushes
                    // auto-downgrade the prefix as IDs spread (Sec. VI-A).
                    leaf.ids = IdList::from_ids(&[id], true);
                } else {
                    leaf.ids.push(id);
                }
            } else {
                leaf.ids.push(id);
            }
            leaf.fs.push(weight);
            let split = if leaf.ids.len() > cfg.capacity {
                Some(split_node(node, cfg, stats))
            } else {
                None
            };
            InsertResult {
                delta: weight,
                outcome: InsertOutcome::Inserted,
                split,
            }
        }
        Node::Internal(int) => {
            let j = int.route(id);
            if id < int.seps.get(0) {
                // Keep separator 0 a true minimum (cheap, tightens routing).
                int.seps.set(0, id);
            }
            let res = insert_node(&mut int.children[j], id, weight, cfg, stats);
            match res.split {
                None => int.cs.add(j, res.delta),
                Some(s) => {
                    stats.internal_ops += 1;
                    int.cs.add(j, res.delta - s.right_weight);
                    int.cs.insert(j + 1, s.right_weight);
                    int.seps.insert_at(j + 1, s.sep);
                    int.children.insert(j + 1, s.right);
                }
            }
            let split = if int.children.len() > cfg.capacity {
                stats.internal_ops += 1;
                Some(split_node(node, cfg, stats))
            } else {
                None
            };
            InsertResult {
                delta: res.delta,
                outcome: res.outcome,
                split,
            }
        }
    }
}

/// Partition an oversized pair set into α-split chunks, each within node
/// capacity (used by batched insertion, where one leaf can overflow several
/// times within a single batch).
fn split_into_parts(pairs: &mut [IdWeight], cfg: &SamTreeConfig, out: &mut Vec<Vec<IdWeight>>) {
    if pairs.len() <= cfg.capacity {
        out.push(pairs.to_vec());
        return;
    }
    let khat = alpha_split(pairs, cfg.alpha);
    // Split in place around the pivot; both halves shrink strictly.
    let (left, right) = pairs.split_at_mut(khat);
    split_into_parts(left, cfg, out);
    split_into_parts(right, cfg, out);
}

/// Batched insertion state bubbling up to the parent: total weight change,
/// number of *new* neighbors, and any new right siblings created by
/// (possibly repeated) splits, ordered left-to-right.
struct BatchResult {
    delta: f64,
    inserted: usize,
    siblings: Vec<SplitInfo>,
}

/// Apply a dst-sorted run of `(id, weight)` upserts to a subtree with one
/// descent and one aggregation-table rebuild per touched node — the
/// bottom-up batch processing of the paper's Appendix B.
fn insert_batch_rec(
    node: &mut Node,
    ops: &[IdWeight],
    cfg: &SamTreeConfig,
    stats: &mut OpStats,
) -> BatchResult {
    match node {
        Node::Leaf(leaf) => {
            let mut delta = 0.0;
            let mut inserted = 0usize;
            for &(id, w) in ops {
                stats.leaf_ops += 1;
                if let Some(i) = leaf.ids.position(id) {
                    let old = leaf.fs.get(i);
                    leaf.fs.set(i, w);
                    delta += w - old;
                } else {
                    if leaf.ids.is_empty() {
                        leaf.fs.ensure_kind(cfg.leaf_index);
                        if cfg.compression {
                            leaf.ids = IdList::from_ids(&[id], true);
                        } else {
                            leaf.ids.push(id);
                        }
                    } else {
                        leaf.ids.push(id);
                    }
                    leaf.fs.push(w);
                    delta += w;
                    inserted += 1;
                }
            }
            let mut siblings = Vec::new();
            if leaf.ids.len() > cfg.capacity {
                let mut pairs = leaf.pairs();
                let mut parts = Vec::new();
                split_into_parts(&mut pairs, cfg, &mut parts);
                stats.leaf_splits += (parts.len() - 1) as u64;
                let mut iter = parts.into_iter();
                *leaf = Leaf::from_pairs_cfg(&iter.next().expect("at least one part"), cfg);
                for part in iter {
                    let right = Leaf::from_pairs_cfg(&part, cfg);
                    let sep = right.min_id();
                    let right_weight = right.fs.total();
                    siblings.push(SplitInfo {
                        sep,
                        right_weight,
                        right: Node::Leaf(right),
                    });
                }
            }
            BatchResult {
                delta,
                inserted,
                siblings,
            }
        }
        Node::Internal(int) => {
            // Route the sorted run onto children: ops[lo..hi] for child j
            // are those below sep[j+1].
            let n = int.children.len();
            let mut delta = 0.0;
            let mut inserted = 0usize;
            // Tighten separator 0 so the batch minimum routes to child 0.
            if ops.first().is_some_and(|&(id, _)| id < int.seps.get(0)) {
                int.seps.set(0, ops[0].0);
            }
            // Collect per-child op ranges first (child list mutates later).
            let mut ranges: Vec<(usize, usize, usize)> = Vec::new(); // (child, lo, hi)
            let mut lo = 0usize;
            for j in 0..n {
                if lo >= ops.len() {
                    break;
                }
                let hi = if j + 1 < n {
                    let bound = int.seps.get(j + 1);
                    lo + ops[lo..].partition_point(|&(id, _)| id < bound)
                } else {
                    ops.len()
                };
                if hi > lo {
                    ranges.push((j, lo, hi));
                }
                lo = hi;
            }
            // Process children right-to-left so sibling insertion does not
            // shift pending child indices.
            let mut new_children: Vec<(usize, Vec<SplitInfo>)> = Vec::new();
            for &(j, lo, hi) in ranges.iter().rev() {
                let res = insert_batch_rec(&mut int.children[j], &ops[lo..hi], cfg, stats);
                delta += res.delta;
                inserted += res.inserted;
                if !res.siblings.is_empty() {
                    new_children.push((j, res.siblings));
                }
            }
            // `new_children` holds descending j; inserting each group's
            // siblings in reverse at j+1 lands them left-to-right.
            for (j, sibs) in new_children {
                stats.internal_ops += sibs.len() as u64;
                for sib in sibs.into_iter().rev() {
                    int.seps.insert_at(j + 1, sib.sep);
                    int.children.insert(j + 1, sib.right);
                    int.cs.insert(j + 1, 0.0); // placeholder; rebuilt below
                }
            }
            // One aggregation rebuild per node per batch (App. B's
            // "retrieves the updates that should be performed by its parent
            // node" aggregation step).
            let weights: Vec<f64> = int.children.iter().map(Node::total_weight).collect();
            int.cs = CsTable::from_weights(&weights);
            // Multiway split if the batch overflowed this node.
            let mut siblings = Vec::new();
            if int.children.len() > cfg.capacity {
                let sizes = even_chunks(
                    int.children.len(),
                    cfg.capacity / 2,
                    cfg.min_fill(),
                    cfg.capacity,
                );
                stats.internal_splits += (sizes.len() - 1) as u64;
                stats.internal_ops += (sizes.len() - 1) as u64;
                let all_seps = int.seps.to_vec();
                let all_weights = int.cs.weights();
                let mut at = int.children.len();
                // Carve off right chunks back-to-front.
                for &s in sizes.iter().skip(1).rev() {
                    let children: Vec<Node> = int.children.drain(at - s..).collect();
                    at -= s;
                    let right = Internal {
                        seps: IdList::from_ids(&all_seps[at..at + s], cfg.compression),
                        cs: CsTable::from_weights(&all_weights[at..at + s]),
                        children,
                    };
                    let sep = right.seps.get(0);
                    let right_weight = {
                        use platod2gl_sampling::WeightedIndex;
                        right.cs.total()
                    };
                    siblings.push(SplitInfo {
                        sep,
                        right_weight,
                        right: Node::Internal(right),
                    });
                }
                siblings.reverse();
                int.seps = IdList::from_ids(&all_seps[..at], cfg.compression);
                int.cs = CsTable::from_weights(&all_weights[..at]);
            }
            BatchResult {
                delta,
                inserted,
                siblings,
            }
        }
    }
}

fn update_node(node: &mut Node, id: u64, weight: f64, stats: &mut OpStats) -> Option<f64> {
    match node {
        Node::Leaf(leaf) => {
            let i = leaf.ids.position(id)?;
            let old = leaf.fs.get(i);
            leaf.fs.set(i, weight);
            stats.leaf_ops += 1;
            Some(weight - old)
        }
        Node::Internal(int) => {
            let j = int.route(id);
            let delta = update_node(&mut int.children[j], id, weight, stats)?;
            int.cs.add(j, delta);
            Some(delta)
        }
    }
}

/// Floored in-place decay: the leaf applies the clamp (never writing a
/// value in `(0, floor)`), ancestors fold the exact delta into their
/// cumulative tables — the same bottom-up propagation as `update_node`.
fn decay_node(
    node: &mut Node,
    id: u64,
    factor: f64,
    floor: f64,
    stats: &mut OpStats,
) -> Option<f64> {
    match node {
        Node::Leaf(leaf) => {
            let i = leaf.ids.position(id)?;
            stats.leaf_ops += 1;
            Some(leaf.fs.decay(i, factor, floor))
        }
        Node::Internal(int) => {
            let j = int.route(id);
            let delta = decay_node(&mut int.children[j], id, factor, floor, stats)?;
            if delta != 0.0 {
                int.cs.add(j, delta);
            }
            Some(delta)
        }
    }
}

/// Merge `right` into `left` (same level by construction).
fn merge_into(left: &mut Node, right: Node, cfg: &SamTreeConfig) {
    match (left, right) {
        (Node::Leaf(l), Node::Leaf(r)) => {
            let mut pairs = l.pairs();
            pairs.extend(r.pairs());
            *l = Leaf::from_pairs_cfg(&pairs, cfg);
        }
        (Node::Internal(l), Node::Internal(r)) => {
            let mut seps = l.seps.to_vec();
            seps.extend(r.seps.iter());
            let mut weights = l.cs.weights();
            weights.extend(r.cs.weights());
            l.children.extend(r.children);
            l.seps = IdList::from_ids(&seps, cfg.compression);
            l.cs = CsTable::from_weights(&weights);
        }
        _ => unreachable!("samtree leaves all live at the same level (Def. 1)"),
    }
}

fn delete_node(node: &mut Node, id: u64, cfg: &SamTreeConfig, stats: &mut OpStats) -> Option<f64> {
    match node {
        Node::Leaf(leaf) => {
            let i = leaf.ids.position(id)?;
            leaf.ids.swap_remove(i);
            let w = leaf.fs.swap_delete(i);
            stats.leaf_ops += 1;
            Some(w)
        }
        Node::Internal(int) => {
            let j = int.route(id);
            let w = delete_node(&mut int.children[j], id, cfg, stats)?;
            int.cs.add(j, -w);
            if int.children[j].slot_len() < cfg.min_fill() && int.children.len() >= 2 {
                rebalance(int, j, cfg, stats);
            }
            Some(w)
        }
    }
}

/// Merge underfull child `j` with its nearest sibling; if the merged node
/// exceeds capacity, immediately re-split it (redistribution) so no node
/// ever exceeds `c` (Sec. IV-D).
fn rebalance(int: &mut Internal, j: usize, cfg: &SamTreeConfig, stats: &mut OpStats) {
    stats.merges += 1;
    stats.internal_ops += 1;
    let sib = if j + 1 < int.children.len() {
        j + 1
    } else {
        j - 1
    };
    let l = j.min(sib);
    let r = j.max(sib);
    let right = int.children.remove(r);
    int.seps.remove_at(r);
    let right_w = int.cs.remove(r);
    int.cs.add(l, right_w);
    merge_into(&mut int.children[l], right, cfg);
    if int.children[l].slot_len() > cfg.capacity {
        let s = split_node(&mut int.children[l], cfg, stats);
        int.cs.add(l, -s.right_weight);
        int.cs.insert(l + 1, s.right_weight);
        int.seps.insert_at(l + 1, s.sep);
        int.children.insert(l + 1, s.right);
    }
}

/// Split `len` items into chunk sizes near `target`, each within
/// `[min_fill, capacity]` (a single chunk may undercut `min_fill`: it
/// becomes the root, which is exempt). Sizes differ by at most one.
fn even_chunks(len: usize, target: usize, min_fill: usize, capacity: usize) -> Vec<usize> {
    debug_assert!(len > 0 && target > 0);
    let mut groups = len.div_ceil(target);
    // Respect the minimum fill: fewer, larger chunks if needed.
    if groups > 1 && len / groups < min_fill {
        groups = (len / min_fill).max(1);
    }
    // Respect capacity: more, smaller chunks if needed.
    groups = groups.max(len.div_ceil(capacity));
    let base = len / groups;
    let extra = len % groups;
    (0..groups)
        .map(|g| if g < extra { base + 1 } else { base })
        .collect()
}

/// Stack a left-to-right ordered, same-level node list under internal
/// levels until a single root remains.
fn stack_levels(mut nodes: Vec<Node>, target: usize, cfg: &SamTreeConfig) -> Node {
    debug_assert!(!nodes.is_empty());
    while nodes.len() > 1 {
        let sizes = even_chunks(nodes.len(), target.max(2), cfg.min_fill(), cfg.capacity);
        let mut level: Vec<Node> = Vec::with_capacity(sizes.len());
        let mut rest = nodes;
        for s in sizes {
            let tail = rest.split_off(s);
            let children = rest;
            rest = tail;
            let seps: Vec<u64> = children.iter().map(Node::min_id).collect();
            let weights: Vec<f64> = children.iter().map(Node::total_weight).collect();
            level.push(Node::Internal(Internal {
                seps: IdList::from_ids(&seps, cfg.compression),
                cs: CsTable::from_weights(&weights),
                children,
            }));
        }
        nodes = level;
    }
    nodes.pop().expect("non-empty")
}

/// The samtree for one source vertex: its whole out-neighborhood with
/// per-edge weights, supporting `O(H · n_L)` updates and `O(H · log n_L)`
/// weighted sampling.
///
/// ```
/// use platod2gl_samtree::{LeafIndex, OpStats, SamTree, SamTreeConfig};
///
/// let cfg = SamTreeConfig { capacity: 4, alpha: 0, compression: true, leaf_index: LeafIndex::Fenwick }.validated();
/// let mut stats = OpStats::default();
/// let mut tree = SamTree::new();
/// for id in 0..100u64 {
///     tree.insert(&cfg, id, 1.0 + id as f64, &mut stats);
/// }
/// assert_eq!(tree.len(), 100);
/// assert!(tree.height() >= 3, "capacity 4 forces a deep tree");
///
/// tree.update_weight(&cfg, 7, 100.0, &mut stats);
/// tree.delete(&cfg, 3, &mut stats);
/// assert_eq!(tree.get(7), Some(100.0));
/// assert!(!tree.contains(3));
/// tree.check_invariants(&cfg).expect("structure stays valid");
///
/// // Weighted sampling threads one residual mass down the tree
/// // (ITS at internal nodes, FTS in the leaf).
/// let picked = tree.sample_with(0.5).expect("non-empty");
/// assert!(tree.contains(picked));
/// ```
#[derive(Clone, Debug, Default)]
pub struct SamTree {
    root: Node,
    len: usize,
}

impl SamTree {
    /// An empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bulk-load a tree bottom-up in `O(n log n)` (sort) + `O(n)` (build),
    /// producing leaves filled to ~3/4 capacity — the initial-ingest fast
    /// path used when a snapshot or full edge dump is replayed, avoiding
    /// per-edge descents and incremental splits entirely.
    ///
    /// Duplicate IDs keep the last weight, matching repeated
    /// [`insert`](Self::insert) semantics.
    pub fn bulk_load(cfg: &SamTreeConfig, pairs: &[IdWeight]) -> Self {
        let mut pairs = pairs.to_vec();
        pairs.sort_by_key(|p| p.0);
        // Keep the last weight per duplicate ID.
        pairs.reverse();
        pairs.dedup_by_key(|p| p.0);
        pairs.reverse();
        if pairs.is_empty() {
            return Self::new();
        }
        let len = pairs.len();
        // Fill nodes to ~3/4 so immediate post-load inserts do not split,
        // while keeping every non-root node within [min_fill, capacity].
        let target = (cfg.capacity * 3 / 4).max(cfg.min_fill()).max(1);
        let sizes = even_chunks(len, target, cfg.min_fill(), cfg.capacity);
        let mut nodes: Vec<Node> = Vec::with_capacity(sizes.len());
        let mut at = 0;
        for s in sizes {
            nodes.push(Node::Leaf(Leaf::from_pairs_cfg(&pairs[at..at + s], cfg)));
            at += s;
        }
        Self {
            root: stack_levels(nodes, target, cfg),
            len,
        }
    }

    /// Number of neighbors stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree stores no neighbors.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sum of all neighbor weights (`w_s` in the paper).
    pub fn total_weight(&self) -> f64 {
        self.root.total_weight()
    }

    /// Tree height `H` (1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Internal(i) = node {
            h += 1;
            node = &i.children[0];
        }
        h
    }

    /// Insert neighbor `id` with `weight` (Alg. 2). If the neighbor already
    /// exists its weight is set to `weight`.
    pub fn insert(
        &mut self,
        cfg: &SamTreeConfig,
        id: u64,
        weight: f64,
        stats: &mut OpStats,
    ) -> InsertOutcome {
        let res = insert_node(&mut self.root, id, weight, cfg, stats);
        if let Some(s) = res.split {
            // Grow a new root (Alg. 2's split can propagate past the top).
            stats.internal_ops += 1;
            let left = std::mem::take(&mut self.root);
            let left_min = left.min_id();
            let left_w = left.total_weight();
            self.root = Node::Internal(Internal {
                seps: IdList::from_ids(&[left_min, s.sep], cfg.compression),
                cs: CsTable::from_weights(&[left_w, s.right_weight]),
                children: vec![left, s.right],
            });
        }
        if res.outcome == InsertOutcome::Inserted {
            self.len += 1;
        }
        res.outcome
    }

    /// Batched upsert (Appendix B): apply a run of `(id, weight)` inserts /
    /// weight-sets with a single descent per touched leaf and one
    /// aggregation-table rebuild per touched node, instead of per-op
    /// root-to-leaf refreshes. Returns the number of *new* neighbors.
    ///
    /// Ops may arrive unsorted; they are applied in ascending-ID order
    /// (stable for duplicate IDs, so the last op on an ID wins — identical
    /// to sequential [`insert`](Self::insert) semantics under the storage
    /// layer's sorted batching).
    pub fn insert_batch(
        &mut self,
        cfg: &SamTreeConfig,
        ops: &[IdWeight],
        stats: &mut OpStats,
    ) -> usize {
        if ops.is_empty() {
            return 0;
        }
        let sorted_buf: Vec<IdWeight>;
        let ops = if ops.windows(2).all(|w| w[0].0 <= w[1].0) {
            ops
        } else {
            let mut v = ops.to_vec();
            v.sort_by_key(|p| p.0);
            sorted_buf = v;
            &sorted_buf
        };
        let res = insert_batch_rec(&mut self.root, ops, cfg, stats);
        if !res.siblings.is_empty() {
            stats.internal_ops += 1;
            let mut nodes = vec![std::mem::take(&mut self.root)];
            nodes.extend(res.siblings.into_iter().map(|s| s.right));
            self.root = stack_levels(nodes, (cfg.capacity * 3 / 4).max(2), cfg);
        }
        self.len += res.inserted;
        res.inserted
    }

    /// Set the weight of an existing neighbor; `false` if absent.
    pub fn update_weight(
        &mut self,
        _cfg: &SamTreeConfig,
        id: u64,
        weight: f64,
        stats: &mut OpStats,
    ) -> bool {
        update_node(&mut self.root, id, weight, stats).is_some()
    }

    /// Decay neighbor `id`'s weight by `factor`, clamped at a strictly
    /// positive `floor` (the recency-decay primitive: `O(log n)` like
    /// [`SamTree::update_weight`], with underflow hardening at the leaf).
    /// Returns the applied weight delta (`<= 0`), or `None` if absent.
    pub fn decay_weight(
        &mut self,
        _cfg: &SamTreeConfig,
        id: u64,
        factor: f64,
        floor: f64,
        stats: &mut OpStats,
    ) -> Option<f64> {
        decay_node(&mut self.root, id, factor, floor, stats)
    }

    /// Delete a neighbor, returning its weight; `None` if absent
    /// (Sec. IV-D).
    pub fn delete(&mut self, cfg: &SamTreeConfig, id: u64, stats: &mut OpStats) -> Option<f64> {
        let w = delete_node(&mut self.root, id, cfg, stats)?;
        self.len -= 1;
        // Collapse a root left with a single child (height shrink).
        if let Node::Internal(int) = &mut self.root {
            if int.children.len() == 1 {
                stats.internal_ops += 1;
                self.root = int.children.pop().expect("one child");
            }
        }
        Some(w)
    }

    /// Weight of neighbor `id`, if present.
    pub fn get(&self, id: u64) -> Option<f64> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(l) => {
                    let i = l.ids.position(id)?;
                    return Some(l.fs.get(i));
                }
                Node::Internal(i) => node = &i.children[i.route(id)],
            }
        }
    }

    /// Whether neighbor `id` is present.
    pub fn contains(&self, id: u64) -> bool {
        self.get(id).is_some()
    }

    /// Weighted sample driven by an externally drawn residual mass
    /// `r ∈ [0, total_weight())`: ITS at each internal node, FTS at the leaf
    /// (Sec. V-C).
    pub fn sample_with(&self, mut r: f64) -> Option<u64> {
        if self.is_empty() {
            return None;
        }
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(l) => {
                    let i = l.fs.sample_with(r);
                    return Some(l.ids.get(i));
                }
                Node::Internal(int) => {
                    let j = int.cs.its_search(r);
                    if j > 0 {
                        r -= int.cs.prefix_sum(j - 1);
                    }
                    node = &int.children[j];
                }
            }
        }
    }

    /// Draw one neighbor with probability `w_{s,u} / w_s`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u64> {
        let total = self.total_weight();
        if self.is_empty() || total <= 0.0 {
            return None;
        }
        self.sample_with(rng.random_range(0.0..total))
    }

    /// Draw `k` neighbors with replacement.
    pub fn sample_k<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Vec<u64> {
        let total = self.total_weight();
        if self.is_empty() || total <= 0.0 {
            return Vec::new();
        }
        (0..k)
            .filter_map(|_| self.sample_with(rng.random_range(0.0..total)))
            .collect()
    }

    /// Multiply every edge weight by `factor` in one `O(n)` pass — the
    /// time-decay primitive of real-time recommenders ("instant user
    /// interest", paper Sec. I): periodic decay shrinks stale interactions
    /// while fresh inserts arrive at full weight. Both table kinds are
    /// linear in the weights, so every aggregate stays exact.
    pub fn scale_weights(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor >= 0.0);
        fn walk(node: &mut Node, factor: f64) {
            match node {
                Node::Leaf(l) => l.fs.scale(factor),
                Node::Internal(i) => {
                    i.cs.scale(factor);
                    for c in &mut i.children {
                        walk(c, factor);
                    }
                }
            }
        }
        walk(&mut self.root, factor);
    }

    /// The `k` heaviest neighbors as `(id, weight)` pairs, heaviest first —
    /// the deterministic "strongest interests" query serving layers run
    /// next to weighted sampling. `O(n)` scan + `O(n log k)` selection.
    pub fn top_k(&self, k: usize) -> Vec<IdWeight> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let mut all = self.entries();
        let take = k.min(all.len());
        all.select_nth_unstable_by(take - 1, |a, b| {
            b.1.partial_cmp(&a.1).expect("finite weights")
        });
        all.truncate(take);
        all.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite weights"));
        all
    }

    /// All `(id, weight)` pairs, in tree (left-to-right) order.
    pub fn entries(&self) -> Vec<IdWeight> {
        fn collect(node: &Node, out: &mut Vec<IdWeight>) {
            match node {
                Node::Leaf(l) => out.extend(l.pairs()),
                Node::Internal(i) => {
                    for c in &i.children {
                        collect(c, out);
                    }
                }
            }
        }
        let mut out = Vec::with_capacity(self.len);
        collect(&self.root, &mut out);
        out
    }

    /// Split the tree's heap footprint into `(leaf_bytes, internal_bytes)`.
    ///
    /// Leaf bytes are the id lists plus Fenwick tables holding actual
    /// edges; internal bytes are separator/cumulative-sum tables and the
    /// child spines — pure index overhead. The two always sum to
    /// [`DeepSize::heap_bytes`], so the admin `/debug/memory` breakdown
    /// stays consistent with the `graph.mem.samtree_bytes` gauge.
    pub fn memory_breakdown(&self) -> (usize, usize) {
        fn split(node: &Node) -> (usize, usize) {
            match node {
                Node::Leaf(l) => (l.ids.heap_bytes() + l.fs.heap_bytes(), 0),
                Node::Internal(i) => {
                    let mut leaf = 0;
                    let mut internal = i.seps.heap_bytes()
                        + i.cs.heap_bytes()
                        + i.children.capacity() * std::mem::size_of::<Node>();
                    for c in &i.children {
                        let (l, n) = split(c);
                        leaf += l;
                        internal += n;
                    }
                    (leaf, internal)
                }
            }
        }
        split(&self.root)
    }

    /// Number of (leaf, internal) nodes.
    pub fn node_counts(&self) -> (usize, usize) {
        fn count(node: &Node, acc: &mut (usize, usize)) {
            match node {
                Node::Leaf(_) => acc.0 += 1,
                Node::Internal(i) => {
                    acc.1 += 1;
                    for c in &i.children {
                        count(c, acc);
                    }
                }
            }
        }
        let mut acc = (0, 0);
        count(&self.root, &mut acc);
        acc
    }

    /// Verify every structural invariant; returns a description of the
    /// first violation. Test/debug aid — walks the whole tree.
    pub fn check_invariants(&self, cfg: &SamTreeConfig) -> Result<(), String> {
        // Returns (min_id, max_id, total_weight, leaf_depth).
        fn walk(
            node: &Node,
            cfg: &SamTreeConfig,
            is_root: bool,
        ) -> Result<(u64, u64, f64, usize), String> {
            match node {
                Node::Leaf(l) => {
                    if l.ids.len() != l.fs.len() {
                        return Err(format!(
                            "leaf ids/fs length mismatch: {} vs {}",
                            l.ids.len(),
                            l.fs.len()
                        ));
                    }
                    if l.ids.len() > cfg.capacity {
                        return Err(format!("leaf over capacity: {}", l.ids.len()));
                    }
                    if !is_root && l.ids.len() < cfg.min_fill() {
                        return Err(format!("leaf underfull: {}", l.ids.len()));
                    }
                    if l.ids.is_empty() {
                        if is_root {
                            return Ok((u64::MAX, 0, 0.0, 1));
                        }
                        return Err("empty non-root leaf".into());
                    }
                    let ids = l.ids.to_vec();
                    let mut sorted = ids.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    if sorted.len() != ids.len() {
                        return Err("duplicate IDs in leaf".into());
                    }
                    let min = *sorted.first().expect("non-empty");
                    let max = *sorted.last().expect("non-empty");
                    Ok((min, max, l.fs.total(), 1))
                }
                Node::Internal(int) => {
                    let n = int.children.len();
                    if n != int.seps.len() || n != int.cs.len() {
                        return Err("internal seps/cs/children length mismatch".into());
                    }
                    if n > cfg.capacity {
                        return Err(format!("internal over capacity: {n}"));
                    }
                    if is_root && n < 2 {
                        return Err("internal root with fewer than 2 children".into());
                    }
                    if !is_root && n < cfg.min_fill() {
                        return Err(format!("internal underfull: {n}"));
                    }
                    let mut prev_max: Option<u64> = None;
                    let mut total = 0.0;
                    let mut depth: Option<usize> = None;
                    for j in 0..n {
                        let (cmin, cmax, cw, cd) = walk(&int.children[j], cfg, false)?;
                        let sep = int.seps.get(j);
                        if sep > cmin {
                            return Err(format!("separator {sep} exceeds child {j} min {cmin}"));
                        }
                        if let Some(pm) = prev_max {
                            if cmin <= pm {
                                return Err(format!(
                                    "child {j} min {cmin} overlaps previous max {pm}"
                                ));
                            }
                            if sep <= pm {
                                return Err(format!("separator {sep} not above previous max {pm}"));
                            }
                        }
                        prev_max = Some(cmax);
                        let entry = int.cs.get(j);
                        if (entry - cw).abs() > 1e-6 * (1.0 + cw.abs()) {
                            return Err(format!("cs entry {j} = {entry} != child weight {cw}"));
                        }
                        total += cw;
                        match depth {
                            None => depth = Some(cd),
                            Some(d) if d != cd => return Err("leaves at different levels".into()),
                            _ => {}
                        }
                    }
                    let min = int.children[0].min_id().min(int.seps.get(0));
                    Ok((
                        min,
                        prev_max.expect("at least one child"),
                        total,
                        depth.expect("at least one child") + 1,
                    ))
                }
            }
        }
        let (_, _, total, _) = walk(&self.root, cfg, true)?;
        let expected: usize = self.entries().len();
        if expected != self.len {
            return Err(format!("len {} != entries {}", self.len, expected));
        }
        if (total - self.total_weight()).abs() > 1e-6 * (1.0 + total.abs()) {
            return Err("root weight mismatch".into());
        }
        Ok(())
    }
}

impl DeepSize for Node {
    fn heap_bytes(&self) -> usize {
        match self {
            Node::Leaf(l) => l.ids.heap_bytes() + l.fs.heap_bytes(),
            Node::Internal(i) => {
                i.seps.heap_bytes()
                    + i.cs.heap_bytes()
                    + i.children.capacity() * std::mem::size_of::<Node>()
                    + i.children.iter().map(DeepSize::heap_bytes).sum::<usize>()
            }
        }
    }
}

impl DeepSize for SamTree {
    fn heap_bytes(&self) -> usize {
        self.root.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(capacity: usize, alpha: usize) -> SamTreeConfig {
        SamTreeConfig {
            capacity,
            alpha,
            compression: true,
            leaf_index: LeafIndex::Fenwick,
        }
        .validated()
    }

    fn build(cfg_: &SamTreeConfig, pairs: &[(u64, f64)]) -> SamTree {
        let mut t = SamTree::new();
        let mut stats = OpStats::default();
        for &(id, w) in pairs {
            t.insert(cfg_, id, w, &mut stats);
        }
        t
    }

    #[test]
    fn paper_example1_single_leaf() {
        // Fig. 3: v3 has two out-neighbors (4, 0.6) and (7, 0.7); with
        // capacity >= 2 they fit one leaf, and FSTable = [0.6, 1.3].
        let c = cfg(4, 0);
        let t = build(&c, &[(4, 0.6), (7, 0.7)]);
        assert_eq!(t.height(), 1);
        assert_eq!(t.len(), 2);
        assert!((t.total_weight() - 1.3).abs() < 1e-9);
        assert!((t.get(4).expect("present") - 0.6).abs() < 1e-9);
        assert!((t.get(7).expect("present") - 0.7).abs() < 1e-9);
        t.check_invariants(&c).expect("invariants");
    }

    #[test]
    fn grows_to_two_levels_like_fig3_v1() {
        // Fig. 3: v1 has 3 out-neighbors with capacity 2 => one internal,
        // two leaves.
        let c = cfg(4, 0); // capacity 4: need 5 neighbors to split
        let t = build(&c, &[(2, 0.1), (3, 0.4), (5, 0.2), (6, 0.3), (9, 0.5)]);
        assert_eq!(t.height(), 2);
        assert_eq!(t.len(), 5);
        let (leaves, internals) = t.node_counts();
        assert_eq!(internals, 1);
        assert_eq!(leaves, 2);
        t.check_invariants(&c).expect("invariants");
    }

    #[test]
    fn insert_existing_updates_weight() {
        let c = cfg(4, 0);
        let mut t = build(&c, &[(1, 0.5)]);
        let mut stats = OpStats::default();
        assert_eq!(t.insert(&c, 1, 0.9, &mut stats), InsertOutcome::Updated);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(1), Some(0.9));
        assert!((t.total_weight() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn thousands_of_inserts_keep_invariants() {
        for capacity in [4usize, 8, 16, 64] {
            for alpha in [0usize, 1] {
                let alpha = alpha.min(capacity / 2 - 1);
                let c = cfg(capacity, alpha);
                let mut t = SamTree::new();
                let mut stats = OpStats::default();
                // Scrambled insertion order.
                for k in 0..3000u64 {
                    let id = (k * 2654435761) % 100_000;
                    t.insert(&c, id, (id % 13) as f64 + 0.5, &mut stats);
                }
                t.check_invariants(&c)
                    .unwrap_or_else(|e| panic!("capacity {capacity}: {e}"));
                let min_height = if capacity <= 16 { 3 } else { 2 };
                assert!(
                    t.height() >= min_height,
                    "tree should be deep at capacity {capacity}"
                );
            }
        }
    }

    #[test]
    fn entries_match_reference_map() {
        use std::collections::BTreeMap;
        let c = cfg(8, 0);
        let mut t = SamTree::new();
        let mut reference = BTreeMap::new();
        let mut stats = OpStats::default();
        for k in 0..2000u64 {
            let id = (k * 48271) % 5000;
            let w = (k % 7) as f64 + 0.25;
            t.insert(&c, id, w, &mut stats);
            reference.insert(id, w);
        }
        assert_eq!(t.len(), reference.len());
        let entries = t.entries();
        // Tree order is sorted across leaves but unordered within; compare
        // as a map.
        let got: BTreeMap<u64, u64> = entries.iter().map(|&(i, w)| (i, w.to_bits())).collect();
        let want: BTreeMap<u64, u64> = reference.iter().map(|(&i, &w)| (i, w.to_bits())).collect();
        assert_eq!(got.len(), want.len());
        for (k, v) in &want {
            let g = got.get(k).copied().unwrap_or(0);
            assert!(
                (f64::from_bits(g) - f64::from_bits(*v)).abs() < 1e-6,
                "id {k}"
            );
        }
    }

    #[test]
    fn delete_removes_and_rebalances() {
        let c = cfg(4, 0);
        let mut t = SamTree::new();
        let mut stats = OpStats::default();
        for id in 0..200u64 {
            t.insert(&c, id, 1.0, &mut stats);
        }
        assert!(t.height() >= 3);
        for id in 0..150u64 {
            let w = t.delete(&c, id, &mut stats);
            assert_eq!(w, Some(1.0), "id {id}");
            t.check_invariants(&c)
                .unwrap_or_else(|e| panic!("after deleting {id}: {e}"));
        }
        assert_eq!(t.len(), 50);
        for id in 0..150u64 {
            assert!(!t.contains(id));
        }
        for id in 150..200u64 {
            assert!(t.contains(id));
        }
    }

    #[test]
    fn delete_everything_then_reinsert() {
        let c = cfg(4, 0);
        let mut t = SamTree::new();
        let mut stats = OpStats::default();
        for id in 0..100u64 {
            t.insert(&c, id, 0.5, &mut stats);
        }
        for id in (0..100u64).rev() {
            assert!(t.delete(&c, id, &mut stats).is_some());
        }
        assert!(t.is_empty());
        assert_eq!(t.total_weight(), 0.0);
        t.insert(&c, 42, 1.0, &mut stats);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(42), Some(1.0));
        t.check_invariants(&c).expect("invariants");
    }

    #[test]
    fn delete_missing_returns_none() {
        let c = cfg(4, 0);
        let mut t = build(&c, &[(1, 1.0), (2, 2.0)]);
        let mut stats = OpStats::default();
        assert_eq!(t.delete(&c, 99, &mut stats), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn update_weight_propagates_to_root_tables() {
        let c = cfg(4, 0);
        let mut t = SamTree::new();
        let mut stats = OpStats::default();
        for id in 0..50u64 {
            t.insert(&c, id, 1.0, &mut stats);
        }
        assert!(t.update_weight(&c, 30, 5.0, &mut stats));
        assert_eq!(t.get(30), Some(5.0));
        assert!((t.total_weight() - 54.0).abs() < 1e-6);
        t.check_invariants(&c).expect("invariants");
        assert!(!t.update_weight(&c, 999, 1.0, &mut stats));
    }

    #[test]
    fn decay_weight_propagates_and_clamps_at_floor() {
        let c = cfg(4, 0);
        let mut t = SamTree::new();
        let mut stats = OpStats::default();
        for id in 0..50u64 {
            t.insert(&c, id, 1.0, &mut stats);
        }
        let floor = 1e-3;
        let delta = t
            .decay_weight(&c, 30, 0.5, floor, &mut stats)
            .expect("present");
        assert!((delta - (-0.5)).abs() < 1e-9);
        assert_eq!(t.get(30), Some(0.5));
        assert!((t.total_weight() - 49.5).abs() < 1e-6);
        // Repeated aggressive decay converges to the floor, never below.
        for _ in 0..100 {
            t.decay_weight(&c, 30, 0.1, floor, &mut stats);
        }
        assert!((t.get(30).unwrap() - floor).abs() < 1e-12);
        t.check_invariants(&c).expect("invariants after decay");
        assert!(t.decay_weight(&c, 999, 0.5, floor, &mut stats).is_none());
    }

    #[test]
    fn sampling_distribution_matches_weights_across_levels() {
        let c = cfg(4, 0); // deep tree
        let mut t = SamTree::new();
        let mut stats = OpStats::default();
        // Weights proportional to id+1 over 64 ids.
        for id in 0..64u64 {
            t.insert(&c, id, (id + 1) as f64, &mut stats);
        }
        assert!(t.height() >= 3);
        let total: f64 = (1..=64u64).sum::<u64>() as f64;
        let mut rng = StdRng::seed_from_u64(99);
        let draws = 200_000;
        let mut counts = vec![0usize; 64];
        for _ in 0..draws {
            counts[t.sample(&mut rng).expect("non-empty") as usize] += 1;
        }
        for (id, &count) in counts.iter().enumerate() {
            let expected = draws as f64 * (id + 1) as f64 / total;
            let got = count as f64;
            assert!(
                (got - expected).abs() < expected * 0.25 + 30.0,
                "id {id}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn sample_k_draws_with_replacement() {
        let c = cfg(4, 0);
        let t = build(&c, &[(1, 1.0)]);
        let mut rng = StdRng::seed_from_u64(1);
        let s = t.sample_k(10, &mut rng);
        assert_eq!(s, vec![1; 10]);
        assert!(SamTree::new().sample_k(5, &mut rng).is_empty());
    }

    #[test]
    fn zero_total_weight_sampling_is_none() {
        let c = cfg(4, 0);
        let t = build(&c, &[(1, 0.0), (2, 0.0)]);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(t.sample(&mut rng), None);
    }

    #[test]
    fn table5_style_leaf_fraction_increases_with_capacity() {
        let mut fractions = Vec::new();
        for capacity in [8usize, 32, 128] {
            let c = cfg(capacity, 0);
            let mut t = SamTree::new();
            let mut stats = OpStats::default();
            for k in 0..20_000u64 {
                let id = (k * 2654435761) % 1_000_000;
                t.insert(&c, id, 1.0, &mut stats);
            }
            fractions.push(stats.leaf_fraction());
        }
        assert!(
            fractions[0] < fractions[1] && fractions[1] < fractions[2],
            "leaf fraction should grow with capacity: {fractions:?}"
        );
        assert!(
            fractions[2] > 0.98,
            "capacity 128 should exceed 98% leaf ops (paper Table V): {}",
            fractions[2]
        );
    }

    #[test]
    fn compression_reduces_tree_memory_on_clustered_ids() {
        let base = 0x00AB_CDEF_0000_0000u64;
        let mut on = SamTree::new();
        let mut off = SamTree::new();
        let c_on = cfg(64, 0);
        let c_off = SamTreeConfig {
            compression: false,
            ..c_on
        };
        let mut stats = OpStats::default();
        for i in 0..5_000u64 {
            on.insert(&c_on, base | i, 1.0, &mut stats);
            off.insert(&c_off, base | i, 1.0, &mut stats);
        }
        let (b_on, b_off) = (on.heap_bytes(), off.heap_bytes());
        assert!(
            (b_on as f64) < b_off as f64 * 0.8,
            "compressed {b_on} should be well below plain {b_off}"
        );
        on.check_invariants(&c_on).expect("invariants");
    }

    #[test]
    fn memory_breakdown_sums_to_heap_bytes() {
        let c = cfg(16, 0);
        let mut t = SamTree::new();
        let mut stats = OpStats::default();
        for i in 0..5_000u64 {
            t.insert(&c, (i * 2654435761) % 100_000, 1.0, &mut stats);
        }
        let (leaf, internal) = t.memory_breakdown();
        assert_eq!(leaf + internal, t.heap_bytes(), "breakdown is exact");
        assert!(leaf > 0, "edges live in leaves");
        assert!(internal > 0, "a 5k-entry tree has internal levels");
        let empty = SamTree::new();
        assert_eq!(empty.memory_breakdown().1, 0, "a lone leaf has no index");
        assert_eq!(
            empty.memory_breakdown().0 + empty.memory_breakdown().1,
            empty.heap_bytes()
        );
    }

    #[test]
    fn bulk_load_equals_incremental_build() {
        let c = cfg(16, 0);
        let pairs: Vec<(u64, f64)> = (0..5_000u64)
            .map(|k| ((k * 2654435761) % 100_000, (k % 9) as f64 + 0.5))
            .collect();
        let bulk = SamTree::bulk_load(&c, &pairs);
        bulk.check_invariants(&c).expect("bulk invariants");
        let mut inc = SamTree::new();
        let mut stats = OpStats::default();
        for &(id, w) in &pairs {
            inc.insert(&c, id, w, &mut stats);
        }
        assert_eq!(bulk.len(), inc.len());
        assert!((bulk.total_weight() - inc.total_weight()).abs() < 1e-4);
        for &(id, _) in &pairs {
            let (a, b) = (bulk.get(id), inc.get(id));
            assert!(a.is_some() && b.is_some(), "id {id}");
            assert!((a.expect("present") - b.expect("present")).abs() < 1e-6);
        }
    }

    #[test]
    fn scale_weights_decays_everything_exactly() {
        let c = cfg(8, 0);
        let mut t = SamTree::new();
        let mut stats = OpStats::default();
        for id in 0..500u64 {
            t.insert(&c, id, (id + 1) as f64, &mut stats);
        }
        let before = t.total_weight();
        t.scale_weights(0.5);
        assert!((t.total_weight() - before * 0.5).abs() < 1e-6);
        for id in (0..500u64).step_by(37) {
            assert!((t.get(id).expect("present") - (id + 1) as f64 * 0.5).abs() < 1e-6);
        }
        t.check_invariants(&c).expect("invariants after decay");
        // Fresh inserts arrive at full weight and dominate sampling.
        t.insert(&c, 10_000, 1e6, &mut stats);
        let mut rng = StdRng::seed_from_u64(5);
        let hits = t
            .sample_k(100, &mut rng)
            .into_iter()
            .filter(|&x| x == 10_000)
            .count();
        assert!(hits > 80, "fresh heavy edge should dominate: {hits}");
    }

    #[test]
    fn top_k_returns_heaviest_first() {
        let c = cfg(8, 0);
        let mut t = SamTree::new();
        let mut stats = OpStats::default();
        for id in 0..200u64 {
            t.insert(&c, id, ((id * 7919) % 1000) as f64 + 0.5, &mut stats);
        }
        let top = t.top_k(10);
        assert_eq!(top.len(), 10);
        for pair in top.windows(2) {
            assert!(pair[0].1 >= pair[1].1, "not descending: {pair:?}");
        }
        // The first entry must be the global max.
        let max = t.entries().into_iter().map(|p| p.1).fold(0.0, f64::max);
        assert_eq!(top[0].1, max);
        // Oversized k clamps; k=0 is empty.
        assert_eq!(t.top_k(10_000).len(), 200);
        assert!(t.top_k(0).is_empty());
        assert!(SamTree::new().top_k(5).is_empty());
    }

    #[test]
    fn insert_batch_equals_sequential_inserts() {
        for capacity in [4usize, 8, 64] {
            let c = cfg(capacity, 0);
            let ops: Vec<(u64, f64)> = (0..4_000u64)
                .map(|k| ((k * 2654435761) % 10_000, (k % 11) as f64 + 0.5))
                .collect();
            let mut batched = SamTree::new();
            let mut seq = SamTree::new();
            let mut stats = OpStats::default();
            for chunk in ops.chunks(257) {
                batched.insert_batch(&c, chunk, &mut stats);
            }
            for &(id, w) in &ops {
                seq.insert(&c, id, w, &mut stats);
            }
            assert_eq!(batched.len(), seq.len(), "capacity {capacity}");
            batched
                .check_invariants(&c)
                .unwrap_or_else(|e| panic!("capacity {capacity}: {e}"));
            assert!((batched.total_weight() - seq.total_weight()).abs() < 1e-3);
            for &(id, _) in &ops {
                let (a, b) = (batched.get(id), seq.get(id));
                assert!(
                    (a.expect("present") - b.expect("present")).abs() < 1e-6,
                    "id {id}"
                );
            }
        }
    }

    #[test]
    fn insert_batch_single_giant_batch_multiway_splits() {
        let c = cfg(8, 0);
        let ops: Vec<(u64, f64)> = (0..2_000u64).map(|i| (i, 1.0)).collect();
        let mut t = SamTree::new();
        let mut stats = OpStats::default();
        let inserted = t.insert_batch(&c, &ops, &mut stats);
        assert_eq!(inserted, 2_000);
        assert_eq!(t.len(), 2_000);
        t.check_invariants(&c).expect("invariants");
        assert!(t.height() >= 3, "giant batch must build a deep tree");
    }

    #[test]
    fn insert_batch_duplicate_ids_last_wins() {
        let c = cfg(4, 0);
        let mut t = SamTree::new();
        let mut stats = OpStats::default();
        let inserted = t.insert_batch(&c, &[(5, 1.0), (5, 2.0), (5, 3.0)], &mut stats);
        assert_eq!(inserted, 1);
        assert!((t.get(5).expect("present") - 3.0).abs() < 1e-9);
    }

    #[test]
    fn insert_batch_unsorted_input_is_sorted_internally() {
        let c = cfg(4, 0);
        let mut t = SamTree::new();
        let mut stats = OpStats::default();
        t.insert_batch(&c, &[(9, 1.0), (1, 2.0), (5, 3.0)], &mut stats);
        assert_eq!(t.len(), 3);
        t.check_invariants(&c).expect("invariants");
    }

    #[test]
    fn insert_batch_into_existing_tree() {
        let c = cfg(8, 1);
        let mut t = SamTree::bulk_load(&c, &(0..300u64).map(|i| (i * 2, 1.0)).collect::<Vec<_>>());
        let mut stats = OpStats::default();
        let ops: Vec<(u64, f64)> = (0..300u64).map(|i| (i * 2 + 1, 2.0)).collect();
        let inserted = t.insert_batch(&c, &ops, &mut stats);
        assert_eq!(inserted, 300);
        assert_eq!(t.len(), 600);
        t.check_invariants(&c).expect("invariants");
        assert!((t.total_weight() - 900.0).abs() < 1e-6);
    }

    #[test]
    fn bulk_load_duplicates_keep_last_weight() {
        let c = cfg(4, 0);
        let t = SamTree::bulk_load(&c, &[(1, 1.0), (2, 2.0), (1, 9.0)]);
        assert_eq!(t.len(), 2);
        assert!((t.get(1).expect("present") - 9.0).abs() < 1e-9);
    }

    #[test]
    fn bulk_load_edge_sizes() {
        let c = cfg(8, 0);
        assert!(SamTree::bulk_load(&c, &[]).is_empty());
        for n in [1u64, 2, 5, 6, 7, 8, 9, 13, 48, 49, 100] {
            let pairs: Vec<(u64, f64)> = (0..n).map(|i| (i, 1.0)).collect();
            let t = SamTree::bulk_load(&c, &pairs);
            assert_eq!(t.len(), n as usize, "n={n}");
            t.check_invariants(&c)
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn bulk_loaded_tree_accepts_further_updates() {
        let c = cfg(8, 1);
        let pairs: Vec<(u64, f64)> = (0..500u64).map(|i| (i * 3, 1.0)).collect();
        let mut t = SamTree::bulk_load(&c, &pairs);
        let mut stats = OpStats::default();
        for i in 0..500u64 {
            t.insert(&c, i * 3 + 1, 2.0, &mut stats);
        }
        for i in 0..250u64 {
            assert!(t.delete(&c, i * 3, &mut stats).is_some());
        }
        assert_eq!(t.len(), 750);
        t.check_invariants(&c).expect("invariants after mixed ops");
    }

    #[test]
    fn alpha_slack_trees_stay_valid() {
        let c = cfg(16, 4);
        let mut t = SamTree::new();
        let mut stats = OpStats::default();
        for k in 0..5_000u64 {
            let id = (k * 1_000_003) % 50_000;
            t.insert(&c, id, (k % 5) as f64 + 0.5, &mut stats);
        }
        t.check_invariants(&c).expect("invariants with alpha=4");
        // Delete half, still valid.
        for k in 0..2_500u64 {
            let id = (k * 1_000_003) % 50_000;
            t.delete(&c, id, &mut stats);
        }
        t.check_invariants(&c).expect("invariants after deletes");
    }
}

#[cfg(test)]
mod chunk_tests {
    use super::even_chunks;

    #[test]
    fn chunks_sum_to_len_and_respect_bounds() {
        for len in 1usize..500 {
            for (target, min_fill, capacity) in [(6, 4, 8), (12, 8, 16), (192, 128, 256)] {
                let sizes = even_chunks(len, target, min_fill, capacity);
                assert_eq!(sizes.iter().sum::<usize>(), len);
                assert!(sizes.iter().all(|&s| s <= capacity), "len={len}");
                if sizes.len() > 1 {
                    assert!(
                        sizes.iter().all(|&s| s >= min_fill),
                        "len={len} target={target}: {sizes:?}"
                    );
                }
                // Balanced: sizes differ by at most one.
                let (min, max) = (
                    sizes.iter().min().expect("non-empty"),
                    sizes.iter().max().expect("non-empty"),
                );
                assert!(max - min <= 1);
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        #[test]
        fn bulk_load_any_size_is_valid(
            n in 0usize..2_000,
            capacity in prop_oneof![Just(4usize), Just(8), Just(64)],
        ) {
            let cfg = SamTreeConfig { capacity, alpha: 0, compression: true, leaf_index: LeafIndex::Fenwick }.validated();
            let pairs: Vec<(u64, f64)> =
                (0..n as u64).map(|i| (i * 7919 % 65_536, 1.0)).collect();
            let t = SamTree::bulk_load(&cfg, &pairs);
            t.check_invariants(&cfg)
                .map_err(|e| TestCaseError::fail(format!("n={n} c={capacity}: {e}")))?;
            let mut distinct: Vec<u64> = pairs.iter().map(|p| p.0).collect();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assert_eq!(t.len(), distinct.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn random_ops_match_hashmap(
            capacity in prop_oneof![Just(4usize), Just(8), Just(16)],
            alpha in 0usize..2,
            ops in proptest::collection::vec((0u8..4, 0u64..500, 0.1f64..10.0), 1..400),
        ) {
            let cfg = SamTreeConfig { capacity, alpha, compression: true, leaf_index: LeafIndex::Fenwick }.validated();
            let mut t = SamTree::new();
            let mut reference: HashMap<u64, f64> = HashMap::new();
            let mut stats = OpStats::default();
            for (kind, id, w) in ops {
                match kind {
                    0 | 1 => {
                        let outcome = t.insert(&cfg, id, w, &mut stats);
                        let existed = reference.insert(id, w).is_some();
                        prop_assert_eq!(
                            outcome == InsertOutcome::Updated,
                            existed
                        );
                    }
                    2 => {
                        let got = t.delete(&cfg, id, &mut stats);
                        let want = reference.remove(&id);
                        prop_assert_eq!(got.is_some(), want.is_some());
                        if let (Some(g), Some(wv)) = (got, want) {
                            prop_assert!((g - wv).abs() < 1e-6);
                        }
                    }
                    _ => {
                        let got = t.update_weight(&cfg, id, w, &mut stats);
                        let want = reference.get_mut(&id);
                        prop_assert_eq!(got, want.is_some());
                        if let Some(r) = want {
                            *r = w;
                        }
                    }
                }
            }
            prop_assert_eq!(t.len(), reference.len());
            t.check_invariants(&cfg).map_err(|e| {
                TestCaseError::fail(format!("invariants: {e}"))
            })?;
            // Every key readable with the right weight.
            for (&id, &w) in &reference {
                let got = t.get(id);
                prop_assert!(got.is_some(), "missing id {}", id);
                prop_assert!((got.expect("present") - w).abs() < 1e-6);
            }
            // Total weight consistent.
            let want_total: f64 = reference.values().sum();
            prop_assert!((t.total_weight() - want_total).abs() < 1e-4);
        }
    }
}
