//! The α-Split algorithm (paper Sec. IV-C, Alg. 1).
//!
//! A full leaf must split into two halves such that every ID in the left
//! half is smaller than every ID in the right half (the parent's ordered
//! separator invariant), but sorting the unordered leaf would cost
//! `O(n log n)` per split. α-Split instead *partitions*: it selects a pivot
//! whose final position `k̂` is within `α` of the true median position `k`
//! and rearranges the elements around it, in `O(n)` average time (Thm. 1).
//! With `α = 0` this degenerates to exact QuickSelect; larger `α` accepts
//! earlier, less balanced pivots in exchange for fewer partition rounds
//! (the trade-off measured in Fig. 11d).
//!
//! Split convention (paper Example 2: `{1,2,3,4,6}` splits into `{1,2}` and
//! `{3,4,6}`): the node divides into `a[..k̂]` and `a[k̂..]`, the pivot
//! `a[k̂]` leading the right half. Because the pivot is the right half's
//! minimum, it doubles as the new separator in the parent's ordered ID list.

/// An (ID, weight) pair moved together during partitioning — the leaf's
/// FSTable is positional, so weights must follow their IDs.
pub type IdWeight = (u64, f64);

/// Partition `a` around `a[0]` and return the pivot's final index: all
/// elements left of it compare `<` the pivot, all elements right of it `>`.
///
/// The paper invokes Hoare's partition scheme [15]; we use the
/// pivot-at-front variant that leaves the pivot at its exact final position
/// (which Alg. 1 requires for its `pos ∈ [k-α, k+α]` test) with the same
/// linear scan cost. IDs within one samtree are distinct, so ties need no
/// special handling.
fn partition_around_first(a: &mut [IdWeight]) -> usize {
    debug_assert!(!a.is_empty());
    let pivot = a[0].0;
    let mut store = 0;
    for i in 1..a.len() {
        if a[i].0 < pivot {
            store += 1;
            a.swap(store, i);
        }
    }
    a.swap(0, store);
    store
}

/// α-Split (Alg. 1): rearrange `a` and return a position `k̂` with
/// `|k̂ - len/2| <= α` (clamped so neither side is empty) such that
/// `a[..k̂] < a[k̂] <= a[k̂..]` element-wise.
///
/// The caller splits the node into `a[..k̂]` and `a[k̂..]`; `a[k̂].0` is the
/// right half's minimum and thus its parent separator.
///
/// ```
/// use platod2gl_samtree::alpha_split;
///
/// // The paper's Example 2: {1,2,3,4,6} splits into {1,2} and {3,4,6}.
/// let mut pairs = vec![(3u64, 0.3), (1, 0.1), (4, 0.4), (2, 0.2), (6, 0.6)];
/// let khat = alpha_split(&mut pairs, 0);
/// assert_eq!(khat, 2);
/// assert_eq!(pairs[khat].0, 3); // pivot = right half's minimum
/// assert!(pairs[..khat].iter().all(|p| p.0 < 3));
/// ```
pub fn alpha_split(a: &mut [IdWeight], alpha: usize) -> usize {
    let n = a.len();
    assert!(n >= 2, "splitting needs at least two elements");
    let k = n / 2;
    // Slack window, clamped so both halves stay non-empty.
    let wlo = k.saturating_sub(alpha).max(1);
    let whi = (k + alpha).min(n - 1);
    debug_assert!(wlo <= k && k <= whi);
    let mut lo = 0usize;
    let mut hi = n;
    // Iterative form of Alg. 1's recursion: each round partitions the
    // current window around its median-position element (lines 1-3) and
    // either accepts it (line 4-5) or recurses into the half that contains
    // the target position k (lines 6-11).
    loop {
        let sub = &mut a[lo..hi];
        let mid = sub.len() / 2;
        sub.swap(0, mid);
        let pos = lo + partition_around_first(sub);
        if (wlo..=whi).contains(&pos) {
            return pos;
        }
        // pos is outside the window, hence pos != k: QuickSelect descent.
        if pos > k {
            hi = pos;
        } else {
            lo = pos + 1;
        }
        debug_assert!(lo <= k && k < hi, "target position escaped the window");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(ids: &[u64]) -> Vec<IdWeight> {
        ids.iter().map(|&i| (i, i as f64 * 0.5)).collect()
    }

    fn assert_valid_split(a: &[IdWeight], khat: usize) {
        assert!(khat > 0 && khat < a.len(), "both halves must be non-empty");
        let pivot = a[khat].0;
        for p in &a[..khat] {
            assert!(p.0 < pivot, "{} !< pivot {}", p.0, pivot);
        }
        for p in &a[khat..] {
            assert!(p.0 >= pivot, "{} !>= pivot {}", p.0, pivot);
        }
    }

    #[test]
    fn alpha_zero_is_exact_quickselect() {
        // "the QuickSelect algorithm can be regarded as a special case of
        //  our α-Split algorithm by setting alpha as 0"
        let mut a = pairs(&[9, 1, 8, 2, 7, 3, 6, 4, 5, 0]);
        let khat = alpha_split(&mut a, 0);
        assert_eq!(khat, a.len() / 2);
        assert_eq!(a[khat].0, 5); // the k-th smallest value
        assert_valid_split(&a, khat);
    }

    #[test]
    fn paper_example2_shape() {
        // Example 2: five neighbors {1,2,3,4,6} split into {1,2} and
        // {3,4,6} — left gets k = 5/2 = 2 elements.
        let mut a = pairs(&[3, 1, 4, 2, 6]);
        let khat = alpha_split(&mut a, 0);
        assert_eq!(khat, 2);
        let mut left: Vec<u64> = a[..khat].iter().map(|p| p.0).collect();
        let mut right: Vec<u64> = a[khat..].iter().map(|p| p.0).collect();
        left.sort_unstable();
        right.sort_unstable();
        assert_eq!(left, vec![1, 2]);
        assert_eq!(right, vec![3, 4, 6]);
        // The pivot is the right half's minimum => the parent separator.
        assert_eq!(a[khat].0, 3);
    }

    #[test]
    fn slack_window_is_respected() {
        for alpha in [0usize, 1, 2, 4, 8] {
            for n in [2usize, 3, 5, 16, 257, 1000] {
                let mut ids: Vec<u64> = (0..n as u64).collect();
                ids.reverse();
                if n > 4 {
                    ids.swap(0, n / 2);
                    ids.swap(1, n - 2);
                }
                let mut a = pairs(&ids);
                let khat = alpha_split(&mut a, alpha);
                let k = n / 2;
                assert!(
                    khat + alpha >= k && khat <= k + alpha,
                    "n={n} alpha={alpha}: khat={khat} outside [{k}±{alpha}]"
                );
                assert_valid_split(&a, khat);
            }
        }
    }

    #[test]
    fn weights_travel_with_their_ids() {
        let mut a = pairs(&[5, 3, 9, 1, 7]);
        let khat = alpha_split(&mut a, 0);
        assert_valid_split(&a, khat);
        for &(id, w) in a.iter() {
            assert_eq!(w, id as f64 * 0.5, "weight detached from id {id}");
        }
    }

    #[test]
    fn two_elements() {
        let mut a = pairs(&[10, 4]);
        let khat = alpha_split(&mut a, 0);
        assert_eq!(khat, 1);
        assert_eq!(a[0].0, 4);
        assert_eq!(a[1].0, 10);
    }

    #[test]
    fn already_sorted_input() {
        let mut a = pairs(&(0..100).collect::<Vec<_>>());
        let khat = alpha_split(&mut a, 0);
        assert_eq!(khat, 50);
        assert_valid_split(&a, khat);
    }

    #[test]
    fn large_alpha_still_never_empties_a_side() {
        for n in [2usize, 3, 4, 7] {
            let ids: Vec<u64> = (0..n as u64).rev().collect();
            let mut a = pairs(&ids);
            let khat = alpha_split(&mut a, 1_000);
            assert_valid_split(&a, khat);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    proptest! {
        #[test]
        fn split_is_a_valid_partition(
            ids in proptest::collection::hash_set(any::<u64>(), 2..300),
            alpha in 0usize..16,
        ) {
            let ids: Vec<u64> = ids.into_iter().collect();
            let before: HashSet<u64> = ids.iter().copied().collect();
            let mut a: Vec<IdWeight> = ids.iter().map(|&i| (i, 1.0)).collect();
            let khat = alpha_split(&mut a, alpha);
            // Partition property.
            prop_assert!(khat > 0 && khat < a.len());
            let pivot = a[khat].0;
            prop_assert!(a[..khat].iter().all(|p| p.0 < pivot));
            prop_assert!(a[khat..].iter().all(|p| p.0 >= pivot));
            // Pivot is the right half's minimum.
            prop_assert_eq!(a[khat..].iter().map(|p| p.0).min().expect("non-empty"), pivot);
            // Permutation property: nothing lost or duplicated.
            let after: HashSet<u64> = a.iter().map(|p| p.0).collect();
            prop_assert_eq!(before, after);
            // Slack property.
            let k = a.len() / 2;
            prop_assert!(khat + alpha >= k.min(khat + alpha) && khat <= k + alpha);
            prop_assert!(khat + alpha >= k);
        }
    }
}
