//! # Baseline storage engines
//!
//! The paper evaluates PlatoD2GL against two prior systems. Neither is open
//! in the exact form benchmarked, so this crate reimplements their *storage
//! and sampling designs* as the paper describes them:
//!
//! * [`PlatoGlStore`] — PlatoGL's **block-based key-value** topology store
//!   (paper Sec. I, IV "Challenges"): a vertex's neighborhood is cut into
//!   fixed-size blocks, each stored as a separate key-value pair whose key
//!   carries "various information except the unique identifier". Weighted
//!   sampling uses CSTables + ITS. Its two weaknesses — per-block key/index
//!   overhead and `O(n)` CSTable maintenance — are inherent to the design
//!   and reproduce here.
//! * [`AliGraphStore`] — AliGraph's hash-by-source storage (Sec. VIII):
//!   per-vertex adjacency arrays plus an **alias table** per vertex for fast
//!   sampling. The alias table duplicates the neighborhood-sized arrays
//!   (the paper: "it takes expensive memory cost ... since it has to
//!   duplicate the graph topology for supporting fast sampling") and must be
//!   rebuilt from scratch on any change.
//!
//! Both implement `GraphStore` and pass the same conformance suite as
//! PlatoD2GL's store — they differ in cost, not behavior.

mod aligraph;
mod platogl;

pub use aligraph::AliGraphStore;
pub use platogl::{PlatoGlConfig, PlatoGlStore};
