//! The AliGraph-like hash-by-source store with alias-table sampling.

use platod2gl_cuckoo::CuckooMap;
use platod2gl_graph::{Edge, EdgeType, GraphStore, VertexId};
use platod2gl_mem::DeepSize;
use platod2gl_sampling::{AliasTable, WeightedIndex};
use rand::{Rng, RngCore};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-vertex adjacency: raw arrays plus a pre-built alias table.
///
/// The alias table is the "duplicated topology for fast sampling" the paper
/// charges AliGraph with: a probability and an alias slot per neighbor, on
/// top of the IDs and weights, and it must be rebuilt in `O(n)` whenever the
/// neighborhood changes.
#[derive(Clone, Debug, Default)]
struct AdjList {
    ids: Vec<u64>,
    weights: Vec<f64>,
    alias: AliasTable,
}

impl AdjList {
    fn rebuild_alias(&mut self) {
        self.alias = AliasTable::from_weights(&self.weights);
    }
}

impl DeepSize for AdjList {
    fn heap_bytes(&self) -> usize {
        self.ids.capacity() * 8 + self.weights.capacity() * 8 + self.alias.heap_bytes()
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct VKey {
    src: u64,
    etype: u16,
}

impl DeepSize for VKey {
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// The AliGraph-like store: hash-by-source adjacency + per-vertex alias
/// tables. `O(1)` sampling, `O(n)` updates, ~2.5× topology memory.
pub struct AliGraphStore {
    adj: CuckooMap<VKey, AdjList>,
    num_edges: AtomicUsize,
}

impl Default for AliGraphStore {
    fn default() -> Self {
        Self::new()
    }
}

impl AliGraphStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self {
            adj: CuckooMap::with_shards_and_capacity(64, 1024),
            num_edges: AtomicUsize::new(0),
        }
    }
}

impl GraphStore for AliGraphStore {
    fn name(&self) -> &'static str {
        "AliGraph"
    }

    fn insert_edge(&self, edge: Edge) {
        let vkey = VKey {
            src: edge.src.raw(),
            etype: edge.etype.0,
        };
        let inserted = self.adj.update_or_insert_with(vkey, AdjList::default, |a| {
            let inserted = match a.ids.iter().position(|&x| x == edge.dst.raw()) {
                Some(i) => {
                    a.weights[i] = edge.weight;
                    false
                }
                None => {
                    a.ids.push(edge.dst.raw());
                    a.weights.push(edge.weight);
                    true
                }
            };
            a.rebuild_alias(); // O(n) on every change
            inserted
        });
        if inserted {
            self.num_edges.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn delete_edge(&self, src: VertexId, dst: VertexId, etype: EdgeType) -> bool {
        let vkey = VKey {
            src: src.raw(),
            etype: etype.0,
        };
        let deleted = self
            .adj
            .update(&vkey, |a| {
                if let Some(i) = a.ids.iter().position(|&x| x == dst.raw()) {
                    a.ids.swap_remove(i);
                    a.weights.swap_remove(i);
                    a.rebuild_alias();
                    true
                } else {
                    false
                }
            })
            .unwrap_or(false);
        if deleted {
            self.num_edges.fetch_sub(1, Ordering::Relaxed);
        }
        deleted
    }

    fn update_weight(&self, edge: Edge) -> bool {
        let vkey = VKey {
            src: edge.src.raw(),
            etype: edge.etype.0,
        };
        self.adj
            .update(&vkey, |a| {
                if let Some(i) = a.ids.iter().position(|&x| x == edge.dst.raw()) {
                    a.weights[i] = edge.weight;
                    a.rebuild_alias();
                    true
                } else {
                    false
                }
            })
            .unwrap_or(false)
    }

    fn degree(&self, v: VertexId, etype: EdgeType) -> usize {
        self.adj
            .read(
                &VKey {
                    src: v.raw(),
                    etype: etype.0,
                },
                |a| a.ids.len(),
            )
            .unwrap_or(0)
    }

    fn weight_sum(&self, v: VertexId, etype: EdgeType) -> f64 {
        self.adj
            .read(
                &VKey {
                    src: v.raw(),
                    etype: etype.0,
                },
                |a| a.weights.iter().sum(),
            )
            .unwrap_or(0.0)
    }

    fn edge_weight(&self, src: VertexId, dst: VertexId, etype: EdgeType) -> Option<f64> {
        self.adj
            .read(
                &VKey {
                    src: src.raw(),
                    etype: etype.0,
                },
                |a| {
                    a.ids
                        .iter()
                        .position(|&x| x == dst.raw())
                        .map(|i| a.weights[i])
                },
            )
            .flatten()
    }

    /// AliGraph-style sampling: the client "retrieve\[s\] all the neighbours
    /// of a source node from different graph servers into memory"
    /// (paper Sec. V) — modeled as materializing a copy of the adjacency
    /// and its alias table — and then draws from the local copy in O(1).
    fn sample_neighbors(
        &self,
        v: VertexId,
        etype: EdgeType,
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<VertexId> {
        let Some(local): Option<AdjList> = self.adj.read(
            &VKey {
                src: v.raw(),
                etype: etype.0,
            },
            |a| a.clone(), // the retrieve-into-memory step
        ) else {
            return Vec::new();
        };
        let total = local.alias.total();
        if local.ids.is_empty() || total <= 0.0 {
            return Vec::new();
        }
        (0..k)
            .map(|_| {
                let r: f64 = rng.random_range(0.0..total);
                VertexId(local.ids[local.alias.sample_with(r)])
            })
            .collect()
    }

    fn neighbors(&self, v: VertexId, etype: EdgeType) -> Vec<(VertexId, f64)> {
        self.adj
            .read(
                &VKey {
                    src: v.raw(),
                    etype: etype.0,
                },
                |a| {
                    a.ids
                        .iter()
                        .zip(&a.weights)
                        .map(|(&id, &w)| (VertexId(id), w))
                        .collect()
                },
            )
            .unwrap_or_default()
    }

    fn num_edges(&self) -> usize {
        self.num_edges.load(Ordering::Relaxed)
    }

    fn topology_bytes(&self) -> usize {
        self.adj.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platod2gl_graph::conformance;

    #[test]
    fn conformance_suite() {
        conformance::run_all(AliGraphStore::new);
    }

    #[test]
    fn alias_duplication_costs_memory() {
        let ali = AliGraphStore::new();
        for i in 0..10_000u64 {
            ali.insert_edge(Edge::new(VertexId(i % 10), VertexId(1_000 + i), 1.0));
        }
        // 10k edges x (8B id + 8B weight) = 160KB payload; the alias table
        // adds 12B per edge on top, so > 1.5x payload even before KV slack.
        let payload = 10_000 * 16;
        assert!(
            ali.topology_bytes() > payload * 3 / 2,
            "alias duplication missing: {}",
            ali.topology_bytes()
        );
    }

    #[test]
    fn sampling_is_fresh_after_updates() {
        let store = AliGraphStore::new();
        store.insert_edge(Edge::new(VertexId(1), VertexId(2), 1.0));
        store.insert_edge(Edge::new(VertexId(1), VertexId(3), 1.0));
        store.delete_edge(VertexId(1), VertexId(2), EdgeType(0));
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let s = store.sample_neighbors(VertexId(1), EdgeType(0), 100, &mut rng);
        assert!(s.iter().all(|v| v.raw() == 3));
    }

    #[test]
    fn concurrent_disjoint_sources() {
        let store = AliGraphStore::new();
        crossbeam::scope(|s| {
            for t in 0..4u64 {
                let store = &store;
                s.spawn(move |_| {
                    for i in 0..1_000u64 {
                        store.insert_edge(Edge::new(VertexId(t), VertexId(i), 1.0));
                    }
                });
            }
        })
        .expect("threads join");
        assert_eq!(store.num_edges(), 4_000);
    }
}
