//! The PlatoGL-like block-based key-value store.

use platod2gl_cuckoo::CuckooMap;
use platod2gl_graph::{Edge, EdgeType, GraphStore, VertexId};
use platod2gl_mem::DeepSize;
use platod2gl_sampling::{CsTable, WeightedIndex};
use rand::{Rng, RngCore};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Bytes of non-ID information PlatoGL packs into every block key
/// ("each key designed by PlatoGL consist of various information except the
/// unique identifier (ID) of vertex s for uniquely mapping to a specific
/// block"): edge type, block sequence, partition epoch, versioning. Sixteen
/// bytes is a conservative model of that envelope.
pub const KEY_META_BYTES: usize = 16;

/// PlatoGL tuning.
#[derive(Clone, Copy, Debug)]
pub struct PlatoGlConfig {
    /// Neighbors per block. Production block KV stores keep values small
    /// (cache-line / memtable friendly); 64 neighbors per block is the
    /// regime in which PlatoGL's per-block composite keys visibly inflate
    /// memory, which is what the paper measures.
    pub block_size: usize,
    /// Lock shards of the underlying KV maps.
    pub shards: usize,
}

impl Default for PlatoGlConfig {
    fn default() -> Self {
        Self {
            block_size: 64,
            shards: 64,
        }
    }
}

/// Per-(vertex, relation) directory entry.
#[derive(Clone, Debug, Default)]
struct VertexMeta {
    degree: u32,
    num_blocks: u32,
    /// Vertex-level CSTable over per-block weight sums: the first ITS stage.
    block_sums: CsTable,
}

impl DeepSize for VertexMeta {
    fn heap_bytes(&self) -> usize {
        self.block_sums.heap_bytes()
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct VKey {
    src: u64,
    etype: u16,
}

impl DeepSize for VKey {
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// The composite block key: vertex ID plus the metadata envelope. The
/// envelope is dead weight per block — exactly the overhead the samtree's
/// non-key-value layout eliminates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct BlockKey {
    src: u64,
    etype: u16,
    seq: u32,
    meta: [u8; KEY_META_BYTES],
}

impl DeepSize for BlockKey {
    fn heap_bytes(&self) -> usize {
        0
    }
}

fn block_key(src: u64, etype: u16, seq: u32) -> BlockKey {
    // Deterministic stand-in for PlatoGL's real key envelope (graph epoch,
    // store version, partition tag, ...).
    let mut meta = [0u8; KEY_META_BYTES];
    meta[..8].copy_from_slice(&src.rotate_left(17).to_be_bytes());
    meta[8..12].copy_from_slice(&seq.to_be_bytes());
    meta[12..14].copy_from_slice(&etype.to_be_bytes());
    BlockKey {
        src,
        etype,
        seq,
        meta,
    }
}

/// One block: a slice of the neighborhood plus its CSTable.
#[derive(Clone, Debug, Default)]
struct Block {
    ids: Vec<u64>,
    cs: CsTable,
}

impl DeepSize for Block {
    fn heap_bytes(&self) -> usize {
        self.ids.capacity() * 8 + self.cs.heap_bytes()
    }
}

/// The PlatoGL-like store. See the crate docs.
pub struct PlatoGlStore {
    config: PlatoGlConfig,
    meta: CuckooMap<VKey, VertexMeta>,
    blocks: CuckooMap<BlockKey, Block>,
    num_edges: AtomicUsize,
}

impl PlatoGlStore {
    /// Create an empty store.
    pub fn new(config: PlatoGlConfig) -> Self {
        Self {
            config,
            meta: CuckooMap::with_shards_and_capacity(config.shards, 1024),
            blocks: CuckooMap::with_shards_and_capacity(config.shards, 1024),
            num_edges: AtomicUsize::new(0),
        }
    }

    /// Create with defaults (block size 64).
    pub fn with_defaults() -> Self {
        Self::new(PlatoGlConfig::default())
    }

    /// Number of blocks currently allocated (each one a KV pair with its
    /// own composite key).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Find `dst` among the vertex's blocks; runs `f` on the containing
    /// block and the in-block index, returning the weight delta to fold into
    /// the vertex-level CSTable. Concurrent per-vertex mutators are
    /// serialized by running inside the meta entry's shard lock.
    fn with_found_edge(
        &self,
        m: &VertexMeta,
        src: u64,
        etype: u16,
        dst: u64,
        f: impl Fn(&mut Block, usize) -> f64,
    ) -> Option<(u32, f64)> {
        for seq in 0..m.num_blocks {
            let key = block_key(src, etype, seq);
            let hit = self.blocks.update(&key, |b| {
                b.ids.iter().position(|&x| x == dst).map(|i| f(b, i))
            });
            if let Some(Some(delta)) = hit {
                return Some((seq, delta));
            }
        }
        None
    }
}

impl GraphStore for PlatoGlStore {
    fn name(&self) -> &'static str {
        "PlatoGL"
    }

    fn insert_edge(&self, edge: Edge) {
        let (src, etype, dst, w) = (edge.src.raw(), edge.etype.0, edge.dst.raw(), edge.weight);
        let vkey = VKey { src, etype };
        let inserted = self
            .meta
            .update_or_insert_with(vkey, VertexMeta::default, |m| {
                // Existing edge: in-place CSTable rewrite (O(block size)).
                if let Some((seq, delta)) = self.with_found_edge(m, src, etype, dst, |b, i| {
                    let old = b.cs.get(i);
                    b.cs.set(i, w);
                    w - old
                }) {
                    m.block_sums.add(seq as usize, delta);
                    return false;
                }
                // Append: last block, or a fresh one when full/absent.
                let mut seq = m.num_blocks.saturating_sub(1);
                let mut need_new = m.num_blocks == 0;
                if !need_new {
                    let full = self
                        .blocks
                        .read(&block_key(src, etype, seq), |b| {
                            b.ids.len() >= self.config.block_size
                        })
                        .unwrap_or(true);
                    if full {
                        need_new = true;
                    }
                }
                if need_new {
                    seq = m.num_blocks;
                    m.num_blocks += 1;
                    m.block_sums.push(0.0);
                    self.blocks
                        .insert(block_key(src, etype, seq), Block::default());
                }
                self.blocks.update(&block_key(src, etype, seq), |b| {
                    b.ids.push(dst);
                    b.cs.push(w);
                });
                m.block_sums.add(seq as usize, w);
                m.degree += 1;
                true
            });
        if inserted {
            self.num_edges.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn delete_edge(&self, src: VertexId, dst: VertexId, etype: EdgeType) -> bool {
        let vkey = VKey {
            src: src.raw(),
            etype: etype.0,
        };
        let deleted = self
            .meta
            .update(&vkey, |m| {
                // O(block size): CSTable compaction after removal.
                if let Some((seq, delta)) =
                    self.with_found_edge(m, src.raw(), etype.0, dst.raw(), |b, i| {
                        b.ids.remove(i);
                        -b.cs.remove(i)
                    })
                {
                    m.block_sums.add(seq as usize, delta);
                    m.degree -= 1;
                    true
                } else {
                    false
                }
            })
            .unwrap_or(false);
        if deleted {
            self.num_edges.fetch_sub(1, Ordering::Relaxed);
        }
        deleted
    }

    fn update_weight(&self, edge: Edge) -> bool {
        let vkey = VKey {
            src: edge.src.raw(),
            etype: edge.etype.0,
        };
        self.meta
            .update(&vkey, |m| {
                if let Some((seq, delta)) =
                    self.with_found_edge(m, edge.src.raw(), edge.etype.0, edge.dst.raw(), |b, i| {
                        let old = b.cs.get(i);
                        b.cs.set(i, edge.weight); // O(block size)
                        edge.weight - old
                    })
                {
                    m.block_sums.add(seq as usize, delta);
                    true
                } else {
                    false
                }
            })
            .unwrap_or(false)
    }

    fn degree(&self, v: VertexId, etype: EdgeType) -> usize {
        self.meta
            .read(
                &VKey {
                    src: v.raw(),
                    etype: etype.0,
                },
                |m| m.degree as usize,
            )
            .unwrap_or(0)
    }

    fn weight_sum(&self, v: VertexId, etype: EdgeType) -> f64 {
        self.meta
            .read(
                &VKey {
                    src: v.raw(),
                    etype: etype.0,
                },
                |m| m.block_sums.total(),
            )
            .unwrap_or(0.0)
    }

    fn edge_weight(&self, src: VertexId, dst: VertexId, etype: EdgeType) -> Option<f64> {
        let num_blocks = self.meta.read(
            &VKey {
                src: src.raw(),
                etype: etype.0,
            },
            |m| m.num_blocks,
        )?;
        for seq in 0..num_blocks {
            let key = block_key(src.raw(), etype.0, seq);
            let hit = self
                .blocks
                .read(&key, |b| {
                    b.ids
                        .iter()
                        .position(|&x| x == dst.raw())
                        .map(|i| b.cs.get(i))
                })
                .flatten();
            if hit.is_some() {
                return hit;
            }
        }
        None
    }

    /// Two-stage ITS (PlatoGL's block-based sampling method): a vertex-level
    /// CSTable picks the block, the block's CSTable picks the neighbor. Each
    /// draw performs fresh KV gets, as a real block store must.
    fn sample_neighbors(
        &self,
        v: VertexId,
        etype: EdgeType,
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<VertexId> {
        let vkey = VKey {
            src: v.raw(),
            etype: etype.0,
        };
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            let picked = self.meta.read(&vkey, |m| {
                let total = m.block_sums.total();
                if m.degree == 0 || total <= 0.0 {
                    return None;
                }
                let r: f64 = rng.random_range(0.0..total);
                let seq = m.block_sums.its_search(r);
                let rem = if seq == 0 {
                    r
                } else {
                    r - m.block_sums.prefix_sum(seq - 1)
                };
                Some((seq as u32, rem))
            });
            let Some(Some((seq, rem))) = picked else {
                break;
            };
            let id = self
                .blocks
                .read(&block_key(v.raw(), etype.0, seq), |b| {
                    if b.ids.is_empty() {
                        None
                    } else {
                        Some(b.ids[b.cs.its_search(rem).min(b.ids.len() - 1)])
                    }
                })
                .flatten();
            if let Some(id) = id {
                out.push(VertexId(id));
            }
        }
        out
    }

    fn neighbors(&self, v: VertexId, etype: EdgeType) -> Vec<(VertexId, f64)> {
        let Some(num_blocks) = self.meta.read(
            &VKey {
                src: v.raw(),
                etype: etype.0,
            },
            |m| m.num_blocks,
        ) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for seq in 0..num_blocks {
            self.blocks.read(&block_key(v.raw(), etype.0, seq), |b| {
                for (i, &id) in b.ids.iter().enumerate() {
                    out.push((VertexId(id), b.cs.get(i)));
                }
            });
        }
        out
    }

    fn num_edges(&self) -> usize {
        self.num_edges.load(Ordering::Relaxed)
    }

    fn topology_bytes(&self) -> usize {
        self.meta.heap_bytes() + self.blocks.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platod2gl_graph::conformance;

    fn small() -> PlatoGlStore {
        PlatoGlStore::new(PlatoGlConfig {
            block_size: 8,
            shards: 8,
        })
    }

    #[test]
    fn conformance_suite() {
        conformance::run_all(small);
    }

    #[test]
    fn conformance_suite_default_config() {
        conformance::run_all(PlatoGlStore::with_defaults);
    }

    #[test]
    fn blocks_chain_when_full() {
        let store = small();
        for i in 0..20u64 {
            store.insert_edge(Edge::new(VertexId(1), VertexId(100 + i), 1.0));
        }
        // 20 neighbors at block size 8 => 3 blocks, each its own KV pair.
        assert_eq!(store.num_blocks(), 3);
        assert_eq!(store.degree(VertexId(1), EdgeType(0)), 20);
        assert!((store.weight_sum(VertexId(1), EdgeType(0)) - 20.0).abs() < 1e-6);
    }

    #[test]
    fn per_block_keys_inflate_memory_vs_payload() {
        let store = small();
        for i in 0..4096u64 {
            store.insert_edge(Edge::new(VertexId(i % 8), VertexId(10_000 + i), 1.0));
        }
        let payload = 4096 * 16; // id + weight
        let measured = store.topology_bytes();
        // The KV design pays for keys, slack slots and block CSTables: the
        // measured footprint must be well above raw payload.
        assert!(
            measured > payload * 2,
            "expected heavy index overhead, got {measured} for payload {payload}"
        );
    }

    #[test]
    fn concurrent_disjoint_sources() {
        let store = PlatoGlStore::with_defaults();
        crossbeam::scope(|s| {
            for t in 0..4u64 {
                let store = &store;
                s.spawn(move |_| {
                    for i in 0..2_000u64 {
                        store.insert_edge(Edge::new(VertexId(t), VertexId(1_000 + i), 1.0));
                    }
                });
            }
        })
        .expect("threads join");
        assert_eq!(store.num_edges(), 8_000);
        for t in 0..4u64 {
            assert_eq!(store.degree(VertexId(t), EdgeType(0)), 2_000);
        }
    }
}
