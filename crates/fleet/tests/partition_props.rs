//! Property tests for the partition map: rendezvous hashing moves only
//! ~1/(N+1) of the keyspace when a server joins, every remapped vertex
//! moves *to* the new server, and routing survives an encode/decode
//! round-trip unchanged.

use platod2gl_fleet::{PartitionMap, ServerEntry};
use platod2gl_graph::VertexId;
use proptest::prelude::*;

const PARTITIONS: u32 = 128;
const VERTICES: u64 = 10_000;

fn roster(n: u64, id_salt: u64) -> Vec<ServerEntry> {
    (0..n)
        .map(|i| ServerEntry {
            id: i * 31 + 1 + id_salt,
            addr: format!("10.0.0.{}:7000", i + 1),
        })
        .collect()
}

/// Owner server id of every vertex in the 10k keyspace under a map.
fn owner_ids(map: &PartitionMap) -> Vec<u64> {
    (0..VERTICES)
        .map(|v| map.servers()[map.owner_of(VertexId(v)) as usize].id)
        .collect()
}

proptest! {
    /// Growing a fleet from N to N+1 servers remaps at most ~1/(N+1) of
    /// a 10k-vertex keyspace (plus slack for partition granularity), and
    /// every vertex that moved, moved to the new server.
    #[test]
    fn join_remaps_about_one_over_n_plus_one(n in 1u64..8, id_salt in 0u64..1000) {
        let before = PartitionMap::build(roster(n, id_salt), PARTITIONS).expect("valid roster");
        let joiner = ServerEntry { id: 100_000 + id_salt, addr: "10.0.1.1:7000".into() };
        let (staged, moves) = before.with_server(joiner.clone()).expect("joins");

        // The staged map itself moves nothing: migration does, one
        // partition at a time. Promote every scheduled move to get the
        // steady-state assignment.
        let mut after = staged.clone();
        let new_idx = after.index_of(joiner.id).expect("joiner in roster");
        for &p in &moves {
            after = after.promote(p, new_idx).expect("promotes");
        }

        let a = owner_ids(&before);
        let b = owner_ids(&after);
        let moved: Vec<u64> = (0..VERTICES)
            .filter(|&v| a[v as usize] != b[v as usize])
            .collect();

        // Expected fraction 1/(N+1). Each of the 128 partitions moves
        // independently with that probability, so allow four binomial
        // standard deviations of slack for granularity.
        let fraction = moved.len() as f64 / VERTICES as f64;
        let q = 1.0 / (n as f64 + 1.0);
        let sigma = (q * (1.0 - q) / f64::from(PARTITIONS)).sqrt();
        let bound = q + 4.0 * sigma + 0.01;
        prop_assert!(
            fraction <= bound,
            "N={n}: {} of {VERTICES} vertices moved ({fraction:.3} > {bound:.3})",
            moved.len()
        );
        for v in moved {
            prop_assert_eq!(
                b[v as usize], joiner.id,
                "vertex {} moved somewhere other than the joining server", v
            );
        }
    }

    /// Routing is stable under serialization: a decoded map answers every
    /// ownership question exactly like the original.
    #[test]
    fn routing_survives_encode_decode(n in 1u64..6, id_salt in 0u64..1000, promotes in 0u32..5) {
        let mut map = PartitionMap::build(roster(n, id_salt), PARTITIONS).expect("valid roster");
        // Exercise non-trivial maps: a few promotes scatter owners and
        // replicas away from the pure rendezvous assignment.
        if n > 1 {
            for k in 0..promotes {
                let p = (k * 37) % PARTITIONS;
                let owner = map.owner_index(p);
                let next = (owner + 1) % n as u32;
                map = map.promote(p, next).expect("promotes");
            }
        }
        let decoded = PartitionMap::decode(&map.encode()).expect("round-trips");
        prop_assert_eq!(decoded.epoch(), map.epoch());
        for v in 0..VERTICES {
            prop_assert_eq!(decoded.owner_of(VertexId(v)), map.owner_of(VertexId(v)));
        }
        for p in 0..PARTITIONS {
            prop_assert_eq!(decoded.replica_index(p), map.replica_index(p));
        }
    }
}
