//! Horizontal scale-out for PlatoD2GL: a partition-routed fleet of graph
//! servers with leader/replica replication and live shard migration.
//!
//! The paper's deployment (Sec. VII) shards billion-scale graphs across a
//! fleet of graph servers; trainers route sampling and update RPCs to the
//! owning server. This crate is that tier:
//!
//! * [`PartitionMap`] — the versioned routing table. Vertices hash onto a
//!   fixed partition keyspace; partitions map onto servers by rendezvous
//!   hashing, so membership changes move only ~1/(N+1) of the keyspace. A
//!   monotone epoch makes staleness detectable and installs safe.
//! * [`FleetNode`] — the server-side member: a local `Cluster` that fans
//!   first-hand writes out to each partition's replica (over dedicated
//!   replica-channel frames that are never re-forwarded) and relays
//!   stale-routed writes to the current owner.
//! * [`FleetCluster`] — the client: implements `GraphService` by routing
//!   every request to the owning server, retrying reads on the replica
//!   with the *same pinned seed* (bit-identical failover), and falling
//!   back to the request's `DegradedPolicy` only when both copies fail.
//!   `KHopSampler` and `TrainingPipeline` run on top unmodified.
//! * [`FleetCluster::migrate_partition`] / [`FleetCluster::join_and_migrate`]
//!   — live migration: stream a partition to a new owner while serving,
//!   drain the source's op journal, bump the map epoch, re-route. A
//!   training run straddling a migration sees zero failed batches.

mod admin_view;
mod cluster;
mod map;
mod migrate;
mod node;

pub use cluster::{FleetCluster, FleetClusterConfig};
pub use map::{PartitionMap, ServerEntry, DEFAULT_PARTITIONS};
pub use migrate::{JoinReport, MigrationReport};
pub use node::FleetNode;
