//! The fleet's admin-plane view: [`FleetIntrospect`] for [`FleetCluster`].
//!
//! `AdminServer::bind_fleet` serves `/healthz` and `/debug/partitions`
//! off this implementation. Each snapshot probes every roster member once
//! and fetches per-partition key counts from reachable servers, so the
//! rendered table is live — an operator watching a migration sees owners
//! flip and key counts drain in real time.

use crate::cluster::FleetCluster;
use platod2gl_admin::{FleetIntrospect, FleetPartitionView, FleetServerView, FleetSnapshot};
use platod2gl_obs::{ExportedSpan, Registry, RegistryExport};
use platod2gl_server::GraphService;
use std::sync::Arc;

impl FleetIntrospect for FleetCluster {
    fn fleet_snapshot(&self) -> FleetSnapshot {
        let map = self.map_snapshot();
        let mut servers = Vec::with_capacity(map.servers().len());
        let mut key_counts: Vec<Option<Vec<u64>>> = Vec::with_capacity(map.servers().len());
        for entry in map.servers() {
            let conn = self.conn_by_id(entry.id);
            let reachable = conn.as_ref().is_some_and(|c| c.probe().is_ok());
            key_counts.push(if reachable {
                conn.map(|c| c.partition_key_counts(map.num_partitions()))
            } else {
                None
            });
            servers.push(FleetServerView {
                id: entry.id,
                addr: entry.addr.clone(),
                reachable,
            });
        }
        let partitions = (0..map.num_partitions())
            .map(|p| {
                let owner_idx = map.owner_index(p) as usize;
                let replica_idx = map.replica_index(p).map(|r| r as usize);
                FleetPartitionView {
                    partition: p,
                    owner: map.servers()[owner_idx].id,
                    replica: replica_idx.map(|r| map.servers()[r].id),
                    owner_up: servers[owner_idx].reachable,
                    replica_up: replica_idx.is_some_and(|r| servers[r].reachable),
                    keys: key_counts[owner_idx]
                        .as_ref()
                        .map_or(0, |counts| counts[p as usize]),
                }
            })
            .collect();
        FleetSnapshot {
            epoch: map.epoch(),
            num_partitions: map.num_partitions(),
            servers,
            partitions,
        }
    }

    fn registry(&self) -> &Arc<Registry> {
        GraphService::registry(self)
    }

    fn fleet_trace(&self, trace_id: u64) -> Vec<(String, Vec<ExportedSpan>)> {
        FleetCluster::fleet_trace(self, trace_id)
    }

    fn fleet_obs(&self) -> Vec<(String, RegistryExport)> {
        FleetCluster::fleet_obs(self)
    }
}
