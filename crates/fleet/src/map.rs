//! The fleet partition map: versioned, rendezvous-hashed vertex routing.
//!
//! A [`PartitionMap`] answers "which server owns this vertex" for every
//! client and server in a fleet. Vertices hash onto a fixed keyspace of
//! partitions ([`platod2gl_server::partition_for`]); partitions map onto
//! servers by highest-random-weight (rendezvous) hashing, so adding the
//! N+1th server moves only the ~1/(N+1) of partitions whose top-ranked
//! server changed — no global reshuffle, which is what makes live
//! migration incremental.
//!
//! The map carries a monotone **epoch**. Every routing-relevant change —
//! a server joining the roster, a partition promoted to a new owner —
//! bumps it, and installs everywhere are epoch-gated
//! ([`PartitionMap::decode`] + the service's `install_fleet_map`), so a
//! stale map can never overwrite a newer one and clients detect staleness
//! by comparing epochs.

use platod2gl_graph::{Error, VertexId};
use platod2gl_server::partition_for;

/// Default partition-keyspace size: enough granularity that a handful of
/// servers balance well, small enough that per-partition metadata is free.
pub const DEFAULT_PARTITIONS: u32 = 64;

/// Decode guard rails: a corrupt or hostile map payload must not drive
/// huge allocations.
const MAX_SERVERS: usize = 4096;
const MAX_MAP_PARTITIONS: u32 = 1 << 20;
const MAX_ADDR_BYTES: usize = 1024;

/// One server in the fleet roster.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerEntry {
    /// Stable server id — the replication/routing identity. Never reused.
    pub id: u64,
    /// Dialable address (`host:port`) of the server's graph service.
    pub addr: String,
}

/// The versioned routing table of a fleet: servers, partition owners,
/// partition replicas.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionMap {
    epoch: u64,
    num_partitions: u32,
    servers: Vec<ServerEntry>,
    /// Owner server *index* (into `servers`) per partition.
    owners: Vec<u32>,
    /// Replica server index per partition; `None` in a one-server fleet.
    replicas: Vec<Option<u32>>,
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Rendezvous score of a server for a partition. Ties broken by id in
/// [`rank_servers`], so the assignment is a pure function of the roster.
fn hrw_score(server_id: u64, partition: u32) -> u64 {
    splitmix64(splitmix64(server_id ^ 0x8163_995d_a9c1_77c3) ^ u64::from(partition))
}

/// Server indices ranked best-first for one partition.
fn rank_servers(servers: &[ServerEntry], partition: u32) -> Vec<u32> {
    let mut ranked: Vec<u32> = (0..servers.len() as u32).collect();
    ranked.sort_by_key(|&i| {
        let s = &servers[i as usize];
        std::cmp::Reverse((hrw_score(s.id, partition), s.id))
    });
    ranked
}

fn corrupt(what: &str) -> Error {
    Error::Corrupt {
        what: what.to_string(),
    }
}

impl PartitionMap {
    /// Build the epoch-1 map for an initial roster: owner is the
    /// top-ranked server per partition, replica the runner-up.
    pub fn build(servers: Vec<ServerEntry>, num_partitions: u32) -> Result<Self, Error> {
        if servers.is_empty() {
            return Err(Error::invalid_config("fleet roster is empty"));
        }
        if servers.len() > MAX_SERVERS {
            return Err(Error::invalid_config("fleet roster too large"));
        }
        if num_partitions == 0 || num_partitions > MAX_MAP_PARTITIONS {
            return Err(Error::invalid_config("num_partitions must be in 1..=2^20"));
        }
        let mut ids: Vec<u64> = servers.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() != servers.len() {
            return Err(Error::invalid_config("duplicate server id in roster"));
        }
        let mut owners = Vec::with_capacity(num_partitions as usize);
        let mut replicas = Vec::with_capacity(num_partitions as usize);
        for p in 0..num_partitions {
            let ranked = rank_servers(&servers, p);
            owners.push(ranked[0]);
            replicas.push(ranked.get(1).copied());
        }
        Ok(Self {
            epoch: 1,
            num_partitions,
            servers,
            owners,
            replicas,
        })
    }

    /// The map's version; every routing-relevant change bumps it.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Size of the partition keyspace.
    pub fn num_partitions(&self) -> u32 {
        self.num_partitions
    }

    /// The server roster, index order.
    pub fn servers(&self) -> &[ServerEntry] {
        &self.servers
    }

    /// Roster index of the server with this id.
    pub fn index_of(&self, server_id: u64) -> Option<u32> {
        self.servers
            .iter()
            .position(|s| s.id == server_id)
            .map(|i| i as u32)
    }

    /// Partition of a vertex under this map's keyspace.
    pub fn partition_of(&self, v: VertexId) -> u32 {
        partition_for(v, self.num_partitions)
    }

    /// Owner server index of a partition.
    pub fn owner_index(&self, partition: u32) -> u32 {
        self.owners[partition as usize]
    }

    /// Replica server index of a partition, if the fleet has one.
    pub fn replica_index(&self, partition: u32) -> Option<u32> {
        self.replicas[partition as usize]
    }

    /// Owner server index of a vertex (partition hash + owner lookup).
    pub fn owner_of(&self, v: VertexId) -> u32 {
        self.owner_index(self.partition_of(v))
    }

    /// Add a server to the roster **without moving any data**: owners and
    /// replicas are unchanged, the epoch bumps (membership is
    /// routing-relevant — clients must learn the new address), and the
    /// returned partition list is what rendezvous ranking says *should*
    /// move to the new server. Migration promotes them one at a time.
    pub fn with_server(&self, entry: ServerEntry) -> Result<(Self, Vec<u32>), Error> {
        if self.servers.iter().any(|s| s.id == entry.id) {
            return Err(Error::invalid_config("server id already in roster"));
        }
        if self.servers.len() + 1 > MAX_SERVERS {
            return Err(Error::invalid_config("fleet roster too large"));
        }
        let mut servers = self.servers.clone();
        servers.push(entry);
        let new_idx = (servers.len() - 1) as u32;
        let moves: Vec<u32> = (0..self.num_partitions)
            .filter(|&p| rank_servers(&servers, p)[0] == new_idx)
            .collect();
        Ok((
            Self {
                epoch: self.epoch + 1,
                num_partitions: self.num_partitions,
                servers,
                owners: self.owners.clone(),
                replicas: self.replicas.clone(),
            },
            moves,
        ))
    }

    /// Hand a partition to a new owner. The old owner becomes the
    /// replica — it keeps its copy, so clients still routing on the old
    /// epoch read correct data — and the epoch bumps.
    pub fn promote(&self, partition: u32, new_owner: u32) -> Result<Self, Error> {
        if partition >= self.num_partitions {
            return Err(Error::invalid_config("partition out of range"));
        }
        if new_owner as usize >= self.servers.len() {
            return Err(Error::invalid_config("owner index out of range"));
        }
        let old = self.owners[partition as usize];
        if old == new_owner {
            return Err(Error::invalid_config("server already owns partition"));
        }
        let mut next = self.clone();
        next.owners[partition as usize] = new_owner;
        next.replicas[partition as usize] = Some(old);
        next.epoch = self.epoch + 1;
        Ok(next)
    }

    /// Serialize for the MapReply/MapInstall wire frames.
    ///
    /// Layout (all little-endian):
    /// `epoch u64 | num_partitions u32 | num_servers u32 |
    ///  servers (id u64, addr_len u32, addr bytes) |
    ///  owners u32 × P | replicas (present u8 [, idx u32]) × P`
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.num_partitions as usize * 9);
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.num_partitions.to_le_bytes());
        out.extend_from_slice(&(self.servers.len() as u32).to_le_bytes());
        for s in &self.servers {
            out.extend_from_slice(&s.id.to_le_bytes());
            out.extend_from_slice(&(s.addr.len() as u32).to_le_bytes());
            out.extend_from_slice(s.addr.as_bytes());
        }
        for &o in &self.owners {
            out.extend_from_slice(&o.to_le_bytes());
        }
        for r in &self.replicas {
            match r {
                Some(i) => {
                    out.push(1);
                    out.extend_from_slice(&i.to_le_bytes());
                }
                None => out.push(0),
            }
        }
        out
    }

    /// Parse and validate an encoded map. Every structural invariant is
    /// checked — index ranges, UTF-8 addresses, exact length — so a
    /// corrupt install can never poison routing.
    pub fn decode(bytes: &[u8]) -> Result<Self, Error> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], Error> {
            let end = pos
                .checked_add(n)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| corrupt("partition map truncated"))?;
            let slice = &bytes[*pos..end];
            *pos = end;
            Ok(slice)
        };
        let get_u32 = |pos: &mut usize| -> Result<u32, Error> {
            Ok(u32::from_le_bytes(take(pos, 4)?.try_into().unwrap()))
        };
        let get_u64 = |pos: &mut usize| -> Result<u64, Error> {
            Ok(u64::from_le_bytes(take(pos, 8)?.try_into().unwrap()))
        };

        let epoch = get_u64(&mut pos)?;
        let num_partitions = get_u32(&mut pos)?;
        if num_partitions == 0 || num_partitions > MAX_MAP_PARTITIONS {
            return Err(corrupt("partition map: bad partition count"));
        }
        let num_servers = get_u32(&mut pos)? as usize;
        if num_servers == 0 || num_servers > MAX_SERVERS {
            return Err(corrupt("partition map: bad server count"));
        }
        let mut servers = Vec::with_capacity(num_servers);
        for _ in 0..num_servers {
            let id = get_u64(&mut pos)?;
            let alen = get_u32(&mut pos)? as usize;
            if alen > MAX_ADDR_BYTES {
                return Err(corrupt("partition map: address too long"));
            }
            let addr = std::str::from_utf8(take(&mut pos, alen)?)
                .map_err(|_| corrupt("partition map: address not UTF-8"))?
                .to_string();
            servers.push(ServerEntry { id, addr });
        }
        let mut ids: Vec<u64> = servers.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() != servers.len() {
            return Err(corrupt("partition map: duplicate server id"));
        }
        let mut owners = Vec::with_capacity(num_partitions as usize);
        for _ in 0..num_partitions {
            let o = get_u32(&mut pos)?;
            if o as usize >= num_servers {
                return Err(corrupt("partition map: owner index out of range"));
            }
            owners.push(o);
        }
        let mut replicas = Vec::with_capacity(num_partitions as usize);
        for &owner in &owners {
            let flag = take(&mut pos, 1)?[0];
            match flag {
                0 => replicas.push(None),
                1 => {
                    let r = get_u32(&mut pos)?;
                    if r as usize >= num_servers {
                        return Err(corrupt("partition map: replica index out of range"));
                    }
                    if r == owner {
                        return Err(corrupt("partition map: replica equals owner"));
                    }
                    replicas.push(Some(r));
                }
                _ => return Err(corrupt("partition map: bad replica flag")),
            }
        }
        if pos != bytes.len() {
            return Err(corrupt("partition map: trailing bytes"));
        }
        Ok(Self {
            epoch,
            num_partitions,
            servers,
            owners,
            replicas,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roster(n: u64) -> Vec<ServerEntry> {
        (0..n)
            .map(|i| ServerEntry {
                id: i + 1,
                addr: format!("127.0.0.1:{}", 7000 + i),
            })
            .collect()
    }

    #[test]
    fn build_assigns_every_partition_an_owner_and_distinct_replica() {
        let map = PartitionMap::build(roster(3), 64).expect("valid");
        assert_eq!(map.epoch(), 1);
        for p in 0..64 {
            let o = map.owner_index(p);
            assert!((o as usize) < 3);
            let r = map.replica_index(p).expect("3-server fleet has replicas");
            assert_ne!(o, r);
        }
        // Deterministic: rebuilding the same roster yields the same map.
        assert_eq!(map, PartitionMap::build(roster(3), 64).expect("valid"));
    }

    #[test]
    fn one_server_fleet_has_no_replicas() {
        let map = PartitionMap::build(roster(1), 16).expect("valid");
        for p in 0..16 {
            assert_eq!(map.owner_index(p), 0);
            assert_eq!(map.replica_index(p), None);
        }
    }

    #[test]
    fn with_server_bumps_epoch_but_moves_no_owners() {
        let map = PartitionMap::build(roster(3), 64).expect("valid");
        let (staged, moves) = map
            .with_server(ServerEntry {
                id: 9,
                addr: "127.0.0.1:7999".into(),
            })
            .expect("joins");
        assert_eq!(staged.epoch(), map.epoch() + 1);
        assert_eq!(staged.servers().len(), 4);
        for p in 0..64 {
            assert_eq!(staged.owner_index(p), map.owner_index(p));
        }
        assert!(!moves.is_empty(), "a joining server should attract work");
        // Every move target is the new server under rendezvous ranking.
        for &p in &moves {
            assert_eq!(rank_servers(staged.servers(), p)[0], 3);
        }
    }

    #[test]
    fn promote_hands_over_ownership_and_demotes_old_owner_to_replica() {
        let map = PartitionMap::build(roster(2), 8).expect("valid");
        let p = 3;
        let old = map.owner_index(p);
        let new = 1 - old;
        let next = map.promote(p, new).expect("promotes");
        assert_eq!(next.epoch(), map.epoch() + 1);
        assert_eq!(next.owner_index(p), new);
        assert_eq!(next.replica_index(p), Some(old));
        assert!(map.promote(p, old).is_err(), "no-op promote rejected");
        assert!(map.promote(99, 0).is_err());
        assert!(map.promote(p, 7).is_err());
    }

    #[test]
    fn encode_decode_round_trips_and_rejects_corruption() {
        let map = PartitionMap::build(roster(3), 32)
            .expect("valid")
            .promote(0, {
                let base = PartitionMap::build(roster(3), 32).expect("valid");
                (base.owner_index(0) + 1) % 3
            })
            .expect("promotes");
        let bytes = map.encode();
        assert_eq!(PartitionMap::decode(&bytes).expect("round-trips"), map);
        // Truncation at every prefix either errors or (never) parses whole.
        for cut in 0..bytes.len() {
            assert!(PartitionMap::decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
        // Out-of-range owner index.
        let mut bad = bytes.clone();
        let owners_at = 8
            + 4
            + 4
            + map
                .servers()
                .iter()
                .map(|s| 12 + s.addr.len())
                .sum::<usize>();
        bad[owners_at..owners_at + 4].copy_from_slice(&99u32.to_le_bytes());
        assert!(PartitionMap::decode(&bad).is_err());
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(PartitionMap::decode(&long).is_err());
    }
}
