//! The server-side fleet member: a [`Cluster`] plus routing awareness.
//!
//! A [`FleetNode`] wraps one in-process `Cluster` and makes it a citizen
//! of a fleet: it carries (a copy of) the [`PartitionMap`], fans writes it
//! owns out to the partition's replica, and relays writes it does *not*
//! own to the current owner — the path that keeps clients routing on a
//! stale map correct during a migration.
//!
//! ## Why replication cannot loop
//!
//! First-hand writes (`apply_updates` / `apply_txn`) fan out; writes that
//! arrive on the **replica channel** (`apply_replica_updates` /
//! `apply_replica_txn`, dedicated wire frames) apply locally and are never
//! re-forwarded. Owner → replica is therefore always one hop.
//!
//! Relays (stale-routed first-hand writes) forward first-hand, so the
//! receiving owner does its own replica fan-out. Both write paths relay
//! **only the foreign subset** of a batch/txn — the receiver owns
//! everything it is handed (under the sender's map), so it has nothing of
//! the sender's to bounce back. A relay ping-pong would additionally need
//! two servers that each believe the *other* owns a partition, which
//! epoch-monotonic installs plus the migration driver's install order
//! (new owner first — see [`crate::FleetCluster::migrate_partition`])
//! rule out: by the time the old owner relays, the new owner's map
//! already names itself. And because a relayed txn keeps its original id,
//! even a pathological bounce dedupes against the sender's ledger instead
//! of re-applying.

use crate::map::PartitionMap;
use platod2gl_graph::{
    Error, GraphTxn, ShardHealth, TxnError, TxnOp, TxnReceipt, UpdateOp, VertexId,
};
use platod2gl_obs::{Counter, Registry};
use platod2gl_rpc::{RemoteCluster, RemoteClusterConfig};
use platod2gl_server::{
    BatchReport, Cluster, GraphService, PartitionChunk, SampleRequest, SampleResponse,
};
use rand::RngCore;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

/// The source vertex a typed txn op routes by — the same key
/// `UpdateOp::src()` provides for lowered ops.
pub(crate) fn txn_op_src(op: &TxnOp) -> VertexId {
    match op {
        TxnOp::InsertEdge(e) | TxnOp::PatchWeight(e) => e.src,
        TxnOp::DeleteEdge { src, .. } => *src,
        TxnOp::UpsertVertex { vertex } | TxnOp::DeleteVertex { vertex, .. } => *vertex,
    }
}

/// Channel tag for the client-side cross-owner split
/// ([`crate::FleetCluster::apply_txn`]).
pub(crate) const CH_OWNER_SPLIT: u64 = 1;
/// Channel tag for owner → replica sub-txns ([`FleetNode::apply_txn`]).
pub(crate) const CH_REPLICA: u64 = 2;

/// splitmix64's finalizer: a full-avalanche 64-bit mix.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The id a per-server sub-txn carries in place of its parent's.
/// Deterministic, so a retried leg dedupes at the receiver; fully mixed,
/// so a derived id colliding with an unrelated client txn id in a
/// server's dedupe ledger is a 64-bit birthday event, not (as a plain
/// XOR derivation was) a single-flip coincidence. The channel tag keeps
/// the owner-split and replica legs a server may receive for the *same*
/// parent txn from deduping each other away.
pub(crate) fn derive_txn_id(base: u64, server_id: u64, channel: u64) -> u64 {
    mix64(base ^ mix64(server_id ^ channel.rotate_left(56)))
}

struct NodeMetrics {
    replica_fanouts: Arc<Counter>,
    replica_errors: Arc<Counter>,
    relayed_ops: Arc<Counter>,
    map_installs: Arc<Counter>,
}

/// One fleet member: a local [`Cluster`] served over RPC, plus the
/// partition map and peer connections that make it replicate and relay.
pub struct FleetNode {
    cluster: Arc<Cluster>,
    server_id: u64,
    peer_cfg: RemoteClusterConfig,
    map: RwLock<Option<PartitionMap>>,
    peers: Mutex<HashMap<u64, Arc<RemoteCluster>>>,
    m: NodeMetrics,
}

impl FleetNode {
    /// Wrap a cluster as fleet member `server_id`. The node starts
    /// map-less (it behaves exactly like the bare cluster) until a map is
    /// installed — locally via [`FleetNode::install`] during bootstrap, or
    /// over the wire via the `MapInstall` frame.
    pub fn new(cluster: Arc<Cluster>, server_id: u64, peer_cfg: RemoteClusterConfig) -> Self {
        let registry = cluster.obs().clone();
        let m = NodeMetrics {
            replica_fanouts: registry.counter("fleet.node.replica_fanouts"),
            replica_errors: registry.counter("fleet.node.replica_errors"),
            relayed_ops: registry.counter("fleet.node.relayed_ops"),
            map_installs: registry.counter("fleet.node.map_installs"),
        };
        Self {
            cluster,
            server_id,
            peer_cfg,
            map: RwLock::new(None),
            peers: Mutex::new(HashMap::new()),
            m,
        }
    }

    /// This node's stable fleet identity.
    pub fn server_id(&self) -> u64 {
        self.server_id
    }

    /// The wrapped cluster (tests and admin wiring reach through).
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// Install a map directly (bootstrap path). Epoch-monotonic: an
    /// install at or below the resident epoch is a no-op. Returns the
    /// epoch now in effect.
    pub fn install(&self, map: PartitionMap) -> u64 {
        let mut slot = self.map.write().unwrap_or_else(|e| e.into_inner());
        match slot.as_ref() {
            Some(cur) if cur.epoch() >= map.epoch() => cur.epoch(),
            _ => {
                let epoch = map.epoch();
                *slot = Some(map);
                self.m.map_installs.inc();
                epoch
            }
        }
    }

    /// Snapshot the resident map.
    pub fn map_snapshot(&self) -> Option<PartitionMap> {
        self.map.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// A pooled connection to the peer at roster index `idx`.
    fn peer(&self, map: &PartitionMap, idx: u32) -> Result<Arc<RemoteCluster>, Error> {
        let entry = &map.servers()[idx as usize];
        if entry.id == self.server_id {
            return Err(Error::invalid_config("peer lookup resolved to self"));
        }
        let mut peers = self.peers.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(p) = peers.get(&entry.id) {
            return Ok(p.clone());
        }
        let conn = Arc::new(RemoteCluster::connect(entry.addr.as_str(), self.peer_cfg)?);
        peers.insert(entry.id, conn.clone());
        Ok(conn)
    }

    /// Partition ops into (owned-by-me, foreign-owner → ops) under `map`.
    fn split_by_owner(
        &self,
        map: &PartitionMap,
        my_idx: u32,
        ops: &[UpdateOp],
    ) -> (Vec<UpdateOp>, HashMap<u32, Vec<UpdateOp>>) {
        let mut owned = Vec::with_capacity(ops.len());
        let mut foreign: HashMap<u32, Vec<UpdateOp>> = HashMap::new();
        for op in ops {
            let owner = map.owner_of(op.src());
            if owner == my_idx {
                owned.push(*op);
            } else {
                foreign.entry(owner).or_default().push(*op);
            }
        }
        (owned, foreign)
    }
}

impl GraphService for FleetNode {
    fn sample_one(&self, req: &SampleRequest, rng: &mut dyn RngCore) -> SampleResponse {
        GraphService::sample_one(&*self.cluster, req, rng)
    }

    fn sample_many(&self, reqs: &[SampleRequest], rng: &mut dyn RngCore) -> Vec<SampleResponse> {
        GraphService::sample_many(&*self.cluster, reqs, rng)
    }

    fn apply_updates(&self, ops: &[UpdateOp]) -> Result<BatchReport, Error> {
        let map = self.map_snapshot();
        let Some(map) = map else {
            return self.cluster.apply_batch_sharded(ops);
        };
        let Some(my_idx) = map.index_of(self.server_id) else {
            return self.cluster.apply_batch_sharded(ops);
        };
        let (owned, foreign) = self.split_by_owner(&map, my_idx, ops);
        let mut report = self.cluster.apply_batch_sharded(&owned)?;

        // Leader → replica fan-out for the ops we own. Best-effort: a
        // down replica degrades reads (clients fall back to the owner's
        // answer), it must not fail the owner's write path.
        let mut per_replica: HashMap<u32, Vec<UpdateOp>> = HashMap::new();
        for op in &owned {
            let p = map.partition_of(op.src());
            if let Some(r) = map.replica_index(p) {
                if r != my_idx {
                    per_replica.entry(r).or_default().push(*op);
                }
            }
        }
        for (ridx, batch) in per_replica {
            let sent = self
                .peer(&map, ridx)
                .and_then(|peer| peer.apply_replica_updates(&batch));
            match sent {
                Ok(_) => self.m.replica_fanouts.inc(),
                Err(_) => self.m.replica_errors.inc(),
            }
        }

        // Stale-routed ops: relay first-hand to the real owner, who does
        // its own replica fan-out. Losing these would silently drop
        // writes, so relay failures are hard errors.
        for (owner, batch) in foreign {
            let peer = self.peer(&map, owner)?;
            let relayed = peer.apply_updates(&batch)?;
            self.m.relayed_ops.add(batch.len() as u64);
            report.applied_ops += relayed.applied_ops;
            report.queued_ops += relayed.queued_ops;
        }
        Ok(report)
    }

    fn apply_txn(&self, txn: &GraphTxn) -> Result<TxnReceipt, TxnError> {
        let Some(map) = self.map_snapshot() else {
            return self.cluster.apply_txn(txn);
        };
        let Some(my_idx) = map.index_of(self.server_id) else {
            return self.cluster.apply_txn(txn);
        };
        // Split exactly as `apply_updates` does: ops this node owns apply
        // locally and fan out to their replicas; stale-routed ops relay to
        // their owner *without* applying here — a local copy of a foreign
        // partition would never see the owner's later deletes, and could
        // resurrect them if the partition ever migrates here. Relaying
        // only the foreign subset is also what keeps relays loop-free
        // (see the module docs): the receiver owns everything in its leg.
        let mut owned = GraphTxn::new(txn.id());
        let mut foreign: Vec<(u32, GraphTxn)> = Vec::new();
        for op in txn.ops() {
            let owner = map.owner_index(map.partition_of(txn_op_src(op)));
            if owner == my_idx {
                owned.push(*op);
            } else if let Some((_, sub)) = foreign.iter_mut().find(|(o, _)| *o == owner) {
                sub.push(*op);
            } else {
                // The relay leg keeps the *original* txn id: a client
                // retry landing on either server dedupes, and a bounce
                // from a staler receiver dedupes against our own ledger.
                let mut sub = GraphTxn::new(txn.id());
                sub.push(*op);
                foreign.push((owner, sub));
            }
        }

        let mut receipt = if owned.is_empty() {
            // Nothing of ours — the receipt aggregates the relay legs.
            TxnReceipt {
                txn_id: txn.id(),
                deduped: true,
                ..TxnReceipt::default()
            }
        } else {
            self.cluster.apply_txn(&owned)?
        };

        // Owner → replica fan-out: one sub-txn per replica holding exactly
        // the partitions it replicates, under a derived id (a server can
        // receive a relay leg and a replica leg of the same parent txn —
        // distinct ids keep them from deduping each other away).
        // Best-effort: a down replica degrades reads, it must not fail
        // the owner's write path.
        let mut per_replica: Vec<(u32, GraphTxn)> = Vec::new();
        for op in owned.ops() {
            let p = map.partition_of(txn_op_src(op));
            let Some(r) = map.replica_index(p) else {
                continue;
            };
            if r == my_idx {
                continue;
            }
            if let Some((_, sub)) = per_replica.iter_mut().find(|(idx, _)| *idx == r) {
                sub.push(*op);
            } else {
                let id = derive_txn_id(txn.id(), map.servers()[r as usize].id, CH_REPLICA);
                let mut sub = GraphTxn::new(id);
                sub.push(*op);
                per_replica.push((r, sub));
            }
        }
        for (ridx, sub) in per_replica {
            let sent = self
                .peer(&map, ridx)
                .map_err(TxnError::Store)
                .and_then(|peer| peer.apply_replica_txn(&sub));
            match sent {
                Ok(_) => self.m.replica_fanouts.inc(),
                Err(_) => self.m.replica_errors.inc(),
            }
        }

        // Stale-routed legs: hard errors, exactly like the update path —
        // this node no longer applies them locally, so a dropped relay
        // would silently lose an acked write.
        for (oidx, sub) in foreign {
            let peer = self.peer(&map, oidx).map_err(TxnError::Store)?;
            let r = peer.apply_txn(&sub)?;
            self.m.relayed_ops.add(sub.len() as u64);
            receipt.ops_applied += r.ops_applied;
            receipt.graph_version = receipt.graph_version.max(r.graph_version);
            receipt.deduped &= r.deduped;
        }
        Ok(receipt)
    }

    fn apply_replica_updates(&self, ops: &[UpdateOp]) -> Result<BatchReport, Error> {
        // Replica channel: apply locally, never re-forward. The
        // version-silent variant keeps replication and migration streams
        // from masquerading as logical writes to fleet clients (whose
        // trainer caches invalidate on the fleet-wide version sum).
        self.cluster.apply_batch_replicated(ops)
    }

    fn apply_replica_txn(&self, txn: &GraphTxn) -> Result<TxnReceipt, TxnError> {
        self.cluster.apply_txn_replicated(txn)
    }

    fn fleet_map_bytes(&self) -> Option<(u64, Vec<u8>)> {
        self.map_snapshot().map(|m| (m.epoch(), m.encode()))
    }

    fn install_fleet_map(&self, epoch: u64, bytes: &[u8]) -> Result<u64, Error> {
        let map = PartitionMap::decode(bytes)?;
        if map.epoch() != epoch {
            return Err(Error::invalid_config(
                "map install frame epoch disagrees with encoded map",
            ));
        }
        Ok(self.install(map))
    }

    fn begin_migration(&self, partition: u32, num_partitions: u32) -> Result<u64, Error> {
        self.cluster.begin_migration(partition, num_partitions)
    }

    fn migration_tail(&self, partition: u32, from_seq: u64) -> Result<(Vec<UpdateOp>, u64), Error> {
        self.cluster.migration_tail(partition, from_seq)
    }

    fn end_migration(&self, partition: u32) -> Result<u64, Error> {
        self.cluster.end_migration(partition)
    }

    fn export_partition(
        &self,
        partition: u32,
        num_partitions: u32,
        cursor: Option<(u64, u16)>,
        max_edges: usize,
    ) -> Result<PartitionChunk, Error> {
        self.cluster
            .export_partition(partition, num_partitions, cursor, max_edges)
    }

    fn partition_key_counts(&self, num_partitions: u32) -> Vec<u64> {
        self.cluster.partition_key_counts(num_partitions)
    }

    fn graph_version(&self) -> u64 {
        self.cluster.graph_version()
    }

    fn num_shards(&self) -> usize {
        self.cluster.num_shards()
    }

    fn shard_healths(&self) -> Vec<ShardHealth> {
        self.cluster.health()
    }

    fn heal(&self, shard: usize) -> usize {
        self.cluster.heal_shard(shard)
    }

    fn registry(&self) -> &Arc<Registry> {
        self.cluster.obs()
    }
}

#[cfg(test)]
mod tests {
    use super::{derive_txn_id, CH_OWNER_SPLIT, CH_REPLICA};
    use std::collections::HashSet;

    #[test]
    fn derived_txn_ids_are_distinct_per_leg_and_well_mixed() {
        let mut seen = HashSet::new();
        for base in [0u64, 1, 42, u64::MAX, 0x4242_4242] {
            assert!(seen.insert(base), "bases themselves are distinct");
            for server_id in 1..=8u64 {
                for channel in [CH_OWNER_SPLIT, CH_REPLICA] {
                    let id = derive_txn_id(base, server_id, channel);
                    assert!(
                        seen.insert(id),
                        "derived ids must collide with neither bases nor each other"
                    );
                }
            }
        }
        // Deterministic: a retried leg re-derives the same id.
        assert_eq!(
            derive_txn_id(7, 3, CH_REPLICA),
            derive_txn_id(7, 3, CH_REPLICA)
        );
    }
}
