//! The server-side fleet member: a [`Cluster`] plus routing awareness.
//!
//! A [`FleetNode`] wraps one in-process `Cluster` and makes it a citizen
//! of a fleet: it carries (a copy of) the [`PartitionMap`], fans writes it
//! owns out to the partition's replica, and relays writes it does *not*
//! own to the current owner — the path that keeps clients routing on a
//! stale map correct during a migration.
//!
//! ## Why replication cannot loop
//!
//! First-hand writes (`apply_updates` / `apply_txn`) fan out; writes that
//! arrive on the **replica channel** (`apply_replica_updates` /
//! `apply_replica_txn`, dedicated wire frames) apply locally and are never
//! re-forwarded. Owner → replica is therefore always one hop.
//!
//! Relays (stale-routed first-hand writes) forward first-hand, so the
//! receiving owner does its own replica fan-out. A relay ping-pong would
//! need two servers that each believe the *other* owns a partition, which
//! epoch-monotonic installs plus the migration driver's install order
//! (new owner first — see [`crate::FleetCluster::migrate_partition`])
//! rule out: by the time the old owner relays, the new owner's map
//! already names itself.

use crate::map::PartitionMap;
use platod2gl_graph::{
    Error, GraphTxn, ShardHealth, TxnError, TxnOp, TxnReceipt, UpdateOp, VertexId,
};
use platod2gl_obs::{Counter, Registry};
use platod2gl_rpc::{RemoteCluster, RemoteClusterConfig};
use platod2gl_server::{
    BatchReport, Cluster, GraphService, PartitionChunk, SampleRequest, SampleResponse,
};
use rand::RngCore;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

/// The source vertex a typed txn op routes by — the same key
/// `UpdateOp::src()` provides for lowered ops.
pub(crate) fn txn_op_src(op: &TxnOp) -> VertexId {
    match op {
        TxnOp::InsertEdge(e) | TxnOp::PatchWeight(e) => e.src,
        TxnOp::DeleteEdge { src, .. } => *src,
        TxnOp::UpsertVertex { vertex } | TxnOp::DeleteVertex { vertex, .. } => *vertex,
    }
}

struct NodeMetrics {
    replica_fanouts: Arc<Counter>,
    replica_errors: Arc<Counter>,
    relayed_ops: Arc<Counter>,
    map_installs: Arc<Counter>,
}

/// One fleet member: a local [`Cluster`] served over RPC, plus the
/// partition map and peer connections that make it replicate and relay.
pub struct FleetNode {
    cluster: Arc<Cluster>,
    server_id: u64,
    peer_cfg: RemoteClusterConfig,
    map: RwLock<Option<PartitionMap>>,
    peers: Mutex<HashMap<u64, Arc<RemoteCluster>>>,
    m: NodeMetrics,
}

impl FleetNode {
    /// Wrap a cluster as fleet member `server_id`. The node starts
    /// map-less (it behaves exactly like the bare cluster) until a map is
    /// installed — locally via [`FleetNode::install`] during bootstrap, or
    /// over the wire via the `MapInstall` frame.
    pub fn new(cluster: Arc<Cluster>, server_id: u64, peer_cfg: RemoteClusterConfig) -> Self {
        let registry = cluster.obs().clone();
        let m = NodeMetrics {
            replica_fanouts: registry.counter("fleet.node.replica_fanouts"),
            replica_errors: registry.counter("fleet.node.replica_errors"),
            relayed_ops: registry.counter("fleet.node.relayed_ops"),
            map_installs: registry.counter("fleet.node.map_installs"),
        };
        Self {
            cluster,
            server_id,
            peer_cfg,
            map: RwLock::new(None),
            peers: Mutex::new(HashMap::new()),
            m,
        }
    }

    /// This node's stable fleet identity.
    pub fn server_id(&self) -> u64 {
        self.server_id
    }

    /// The wrapped cluster (tests and admin wiring reach through).
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// Install a map directly (bootstrap path). Epoch-monotonic: an
    /// install at or below the resident epoch is a no-op. Returns the
    /// epoch now in effect.
    pub fn install(&self, map: PartitionMap) -> u64 {
        let mut slot = self.map.write().unwrap_or_else(|e| e.into_inner());
        match slot.as_ref() {
            Some(cur) if cur.epoch() >= map.epoch() => cur.epoch(),
            _ => {
                let epoch = map.epoch();
                *slot = Some(map);
                self.m.map_installs.inc();
                epoch
            }
        }
    }

    /// Snapshot the resident map.
    pub fn map_snapshot(&self) -> Option<PartitionMap> {
        self.map.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// A pooled connection to the peer at roster index `idx`.
    fn peer(&self, map: &PartitionMap, idx: u32) -> Result<Arc<RemoteCluster>, Error> {
        let entry = &map.servers()[idx as usize];
        if entry.id == self.server_id {
            return Err(Error::invalid_config("peer lookup resolved to self"));
        }
        let mut peers = self.peers.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(p) = peers.get(&entry.id) {
            return Ok(p.clone());
        }
        let conn = Arc::new(RemoteCluster::connect(entry.addr.as_str(), self.peer_cfg)?);
        peers.insert(entry.id, conn.clone());
        Ok(conn)
    }

    /// Partition ops into (owned-by-me, foreign-owner → ops) under `map`.
    fn split_by_owner(
        &self,
        map: &PartitionMap,
        my_idx: u32,
        ops: &[UpdateOp],
    ) -> (Vec<UpdateOp>, HashMap<u32, Vec<UpdateOp>>) {
        let mut owned = Vec::with_capacity(ops.len());
        let mut foreign: HashMap<u32, Vec<UpdateOp>> = HashMap::new();
        for op in ops {
            let owner = map.owner_of(op.src());
            if owner == my_idx {
                owned.push(*op);
            } else {
                foreign.entry(owner).or_default().push(*op);
            }
        }
        (owned, foreign)
    }
}

impl GraphService for FleetNode {
    fn sample_one(&self, req: &SampleRequest, rng: &mut dyn RngCore) -> SampleResponse {
        GraphService::sample_one(&*self.cluster, req, rng)
    }

    fn sample_many(&self, reqs: &[SampleRequest], rng: &mut dyn RngCore) -> Vec<SampleResponse> {
        GraphService::sample_many(&*self.cluster, reqs, rng)
    }

    fn apply_updates(&self, ops: &[UpdateOp]) -> Result<BatchReport, Error> {
        let map = self.map_snapshot();
        let Some(map) = map else {
            return self.cluster.apply_batch_sharded(ops);
        };
        let Some(my_idx) = map.index_of(self.server_id) else {
            return self.cluster.apply_batch_sharded(ops);
        };
        let (owned, foreign) = self.split_by_owner(&map, my_idx, ops);
        let mut report = self.cluster.apply_batch_sharded(&owned)?;

        // Leader → replica fan-out for the ops we own. Best-effort: a
        // down replica degrades reads (clients fall back to the owner's
        // answer), it must not fail the owner's write path.
        let mut per_replica: HashMap<u32, Vec<UpdateOp>> = HashMap::new();
        for op in &owned {
            let p = map.partition_of(op.src());
            if let Some(r) = map.replica_index(p) {
                if r != my_idx {
                    per_replica.entry(r).or_default().push(*op);
                }
            }
        }
        for (ridx, batch) in per_replica {
            let sent = self
                .peer(&map, ridx)
                .and_then(|peer| peer.apply_replica_updates(&batch));
            match sent {
                Ok(_) => self.m.replica_fanouts.inc(),
                Err(_) => self.m.replica_errors.inc(),
            }
        }

        // Stale-routed ops: relay first-hand to the real owner, who does
        // its own replica fan-out. Losing these would silently drop
        // writes, so relay failures are hard errors.
        for (owner, batch) in foreign {
            let peer = self.peer(&map, owner)?;
            let relayed = peer.apply_updates(&batch)?;
            self.m.relayed_ops.add(batch.len() as u64);
            report.applied_ops += relayed.applied_ops;
            report.queued_ops += relayed.queued_ops;
        }
        Ok(report)
    }

    fn apply_txn(&self, txn: &GraphTxn) -> Result<TxnReceipt, TxnError> {
        let receipt = self.cluster.apply_txn(txn)?;
        let Some(map) = self.map_snapshot() else {
            return Ok(receipt);
        };
        let Some(my_idx) = map.index_of(self.server_id) else {
            return Ok(receipt);
        };
        // Forward under the *original* txn id: owned partitions to their
        // replicas (replica channel — never re-forwarded), stale-routed
        // partitions to their owner (first-hand — the owner fans out).
        // Dedupe ledgers absorb the overlap when a txn touches several
        // partitions that share a server.
        let mut replica_targets: Vec<u32> = Vec::new();
        let mut owner_targets: Vec<u32> = Vec::new();
        for op in txn.ops() {
            let p = map.partition_of(txn_op_src(op));
            let owner = map.owner_index(p);
            if owner == my_idx {
                if let Some(r) = map.replica_index(p) {
                    if r != my_idx && !replica_targets.contains(&r) {
                        replica_targets.push(r);
                    }
                }
            } else if !owner_targets.contains(&owner) {
                owner_targets.push(owner);
            }
        }
        for ridx in replica_targets {
            let sent = self
                .peer(&map, ridx)
                .map_err(TxnError::Store)
                .and_then(|peer| peer.apply_replica_txn(txn));
            match sent {
                Ok(_) => self.m.replica_fanouts.inc(),
                Err(_) => self.m.replica_errors.inc(),
            }
        }
        for oidx in owner_targets {
            // Best-effort like the replica leg: this node is (or is
            // becoming) the partition's replica, so the data is not lost
            // and degraded reads keep serving it if the relay fails.
            let sent = self
                .peer(&map, oidx)
                .map_err(TxnError::Store)
                .and_then(|peer| peer.apply_txn(txn));
            match sent {
                Ok(r) => self.m.relayed_ops.add(r.ops_applied),
                Err(_) => self.m.replica_errors.inc(),
            }
        }
        Ok(receipt)
    }

    fn apply_replica_updates(&self, ops: &[UpdateOp]) -> Result<BatchReport, Error> {
        // Replica channel: apply locally, never re-forward. The
        // version-silent variant keeps replication and migration streams
        // from masquerading as logical writes to fleet clients (whose
        // trainer caches invalidate on the fleet-wide version sum).
        self.cluster.apply_batch_replicated(ops)
    }

    fn apply_replica_txn(&self, txn: &GraphTxn) -> Result<TxnReceipt, TxnError> {
        self.cluster.apply_txn_replicated(txn)
    }

    fn fleet_map_bytes(&self) -> Option<(u64, Vec<u8>)> {
        self.map_snapshot().map(|m| (m.epoch(), m.encode()))
    }

    fn install_fleet_map(&self, epoch: u64, bytes: &[u8]) -> Result<u64, Error> {
        let map = PartitionMap::decode(bytes)?;
        if map.epoch() != epoch {
            return Err(Error::invalid_config(
                "map install frame epoch disagrees with encoded map",
            ));
        }
        Ok(self.install(map))
    }

    fn begin_migration(&self, partition: u32, num_partitions: u32) -> Result<u64, Error> {
        self.cluster.begin_migration(partition, num_partitions)
    }

    fn migration_tail(&self, partition: u32, from_seq: u64) -> Result<(Vec<UpdateOp>, u64), Error> {
        self.cluster.migration_tail(partition, from_seq)
    }

    fn end_migration(&self, partition: u32) -> Result<u64, Error> {
        self.cluster.end_migration(partition)
    }

    fn export_partition(
        &self,
        partition: u32,
        num_partitions: u32,
        cursor: Option<(u64, u16)>,
        max_edges: usize,
    ) -> Result<PartitionChunk, Error> {
        self.cluster
            .export_partition(partition, num_partitions, cursor, max_edges)
    }

    fn partition_key_counts(&self, num_partitions: u32) -> Vec<u64> {
        self.cluster.partition_key_counts(num_partitions)
    }

    fn graph_version(&self) -> u64 {
        self.cluster.graph_version()
    }

    fn num_shards(&self) -> usize {
        self.cluster.num_shards()
    }

    fn shard_healths(&self) -> Vec<ShardHealth> {
        self.cluster.health()
    }

    fn heal(&self, shard: usize) -> usize {
        self.cluster.heal_shard(shard)
    }

    fn registry(&self) -> &Arc<Registry> {
        self.cluster.obs()
    }
}
