//! Live shard migration: move a partition to a new owner while serving.
//!
//! The state machine, driven from the client side against the owning
//! server's migration plane (`begin_migration` / `export_partition` /
//! `migration_tail` / `end_migration`):
//!
//! 1. **Arm** the source's migration journal — every op touching the
//!    partition from now on is recorded alongside being applied.
//! 2. **Stream** the partition as resumable snapshot-v2 chunks into the
//!    target over the replica channel (no fan-out from the target). The
//!    source keeps serving; writes race the copy but land in the journal.
//! 3. **Drain** the journal tail in rounds until a round comes back
//!    empty — the copies have converged up to in-flight writes.
//! 4. **Promote**: bump the map epoch with the target as owner and the
//!    source as replica, and install it — *target first* (so a relay
//!    from a staler server can never bounce back), then the rest of the
//!    fleet, then this client.
//! 5. **Final drain + disarm**: tail rounds run until one comes back
//!    empty, catching every write that landed on the source between the
//!    last pre-promote drain and its map install (those are journaled;
//!    post-install writes relay to the target directly, and
//!    replica-channel echoes are never journaled, so the loop terminates
//!    once every server holds the promoted map). `end_migration` then
//!    disarms the journal — and the move fails loudly if the journal
//!    advanced past the last drained sequence, rather than silently
//!    dropping an acked write.
//!
//! Every streamed op is idempotent and replica-channel retries are
//! absorbed by the target, so a crashed migration is safe to re-run.
//! The source keeps its copy as the partition's replica — clients still
//! routing on the old epoch read correct data until they refresh.

use crate::cluster::FleetCluster;
use crate::map::ServerEntry;
use platod2gl_graph::{Error, UpdateOp};
use platod2gl_obs::current_trace_context;
use platod2gl_rpc::RemoteCluster;
use platod2gl_server::GraphService;
use platod2gl_storage::read_snapshot;
use std::net::ToSocketAddrs;
use std::sync::Arc;

/// Edge budget per streamed chunk.
const CHUNK_EDGES: usize = 4096;
/// Convergence drain rounds before promoting regardless (the post-promote
/// final drain still catches the remainder).
const MAX_TAIL_ROUNDS: usize = 10;
/// Cap on post-promote drain rounds. Once every server holds the promoted
/// map nothing new is journaled (first-hand writes relay to the target,
/// replica echoes are not journaled), so hitting this cap means writes
/// are still racing the drain and the move must fail rather than drop
/// them.
const MAX_FINAL_DRAIN_ROUNDS: usize = 64;

/// What one partition move did.
#[derive(Clone, Copy, Debug, Default)]
pub struct MigrationReport {
    /// The migrated partition.
    pub partition: u32,
    /// Edges streamed in snapshot chunks.
    pub edges_streamed: u64,
    /// Snapshot chunks shipped.
    pub chunks: usize,
    /// Journal-tail ops replayed onto the target.
    pub tail_ops: usize,
    /// Total ops the source journaled while armed.
    pub journaled: u64,
    /// Map epoch after the promote.
    pub epoch: u64,
}

/// What a server join did: the identity it was assigned and each
/// partition move rendezvous ranking demanded.
#[derive(Clone, Debug, Default)]
pub struct JoinReport {
    /// The stable id assigned to the joining server.
    pub server_id: u64,
    /// One report per migrated partition.
    pub moved: Vec<MigrationReport>,
}

impl FleetCluster {
    /// Move one partition to the server with `target_server_id`, live.
    /// Serving continues throughout; see the module docs for the state
    /// machine and why no write is lost.
    pub fn migrate_partition(
        &self,
        partition: u32,
        target_server_id: u64,
    ) -> Result<MigrationReport, Error> {
        let map = self.map_snapshot();
        if partition >= map.num_partitions() {
            return Err(Error::invalid_config("partition out of range"));
        }
        let tgt_idx = map
            .index_of(target_server_id)
            .ok_or_else(|| Error::invalid_config("target server not in roster"))?;
        let src_idx = map.owner_index(partition);
        if src_idx == tgt_idx {
            return Err(Error::invalid_config("target already owns the partition"));
        }
        let conn_of = |idx: u32| -> Result<Arc<RemoteCluster>, Error> {
            self.conn_by_index(&map, idx)
                .ok_or(Error::ShardUnavailable {
                    shard: idx as usize,
                })
        };
        let src = conn_of(src_idx)?;
        let tgt = conn_of(tgt_idx)?;
        let num_partitions = map.num_partitions();

        // Every RPC of the move (snapshot chunks, tail drains, map
        // installs) runs under one span, so the whole migration stitches
        // into a single cross-server trace. Inherit an ambient trace if
        // the caller opened one; otherwise derive a deterministic id from
        // the epoch being superseded and the partition.
        let _mig_span = match current_trace_context() {
            Some(_) => self.registry().span("fleet.migrate"),
            None => self.registry().span_traced(
                "fleet.migrate",
                0xF1EE_0000_0000_0000 | (u64::from(partition) << 32) | (map.epoch() & 0xFFFF_FFFF),
            ),
        };

        // 1. Arm the journal.
        src.begin_migration(partition, num_partitions)?;

        // 2. Stream snapshot chunks (resumable (src, etype) cursor).
        let mut report = MigrationReport {
            partition,
            ..MigrationReport::default()
        };
        let mut cursor = None;
        loop {
            let chunk = src.export_partition(partition, num_partitions, cursor, CHUNK_EDGES)?;
            let mut ops: Vec<UpdateOp> = Vec::new();
            read_snapshot(&chunk.snapshot[..], |batch| {
                ops.extend(batch.into_iter().map(UpdateOp::Insert));
            })?;
            if !ops.is_empty() {
                tgt.apply_replica_updates(&ops)?;
            }
            report.edges_streamed += chunk.edges;
            report.chunks += 1;
            cursor = chunk.cursor;
            if chunk.done {
                break;
            }
        }

        // 3. Drain the journal until a round comes back empty.
        let mut from_seq = 0u64;
        for _ in 0..MAX_TAIL_ROUNDS {
            let (ops, next) = src.migration_tail(partition, from_seq)?;
            from_seq = next;
            if ops.is_empty() {
                break;
            }
            report.tail_ops += ops.len();
            tgt.apply_replica_updates(&ops)?;
        }

        // 4. Promote and install: target first, then the fleet, then us.
        let promoted = map.promote(partition, tgt_idx)?;
        let bytes = promoted.encode();
        tgt.install_fleet_map(promoted.epoch(), &bytes)?;
        for (i, entry) in promoted.servers().iter().enumerate() {
            if i as u32 == tgt_idx {
                continue;
            }
            if let Some(conn) = self.conn_by_id(entry.id) {
                conn.install_fleet_map(promoted.epoch(), &bytes)?;
            }
        }
        report.epoch = promoted.epoch();

        // 5. Final drain until an empty round, then disarm. Every server
        // now holds the promoted map, so the journal only still carries
        // writes that landed before a server's install — a finite set;
        // an empty round proves the target has every acked write.
        let mut rounds = 0usize;
        loop {
            let (ops, next) = src.migration_tail(partition, from_seq)?;
            from_seq = next;
            if ops.is_empty() {
                break;
            }
            rounds += 1;
            if rounds > MAX_FINAL_DRAIN_ROUNDS {
                src.end_migration(partition)?;
                return Err(Error::Corrupt {
                    what: format!(
                        "partition {partition} migration final drain did not converge \
                         in {MAX_FINAL_DRAIN_ROUNDS} rounds; restart the migration"
                    ),
                });
            }
            report.tail_ops += ops.len();
            tgt.apply_replica_updates(&ops)?;
        }
        report.journaled = src.end_migration(partition)?;
        if report.journaled > from_seq {
            // Ops raced the disarm itself — impossible once every server
            // routes on the promoted map, so surface it instead of
            // silently losing acked writes.
            return Err(Error::Corrupt {
                what: format!(
                    "partition {partition} journaled {} op(s) after the final drain",
                    report.journaled - from_seq
                ),
            });
        }
        self.install_local(promoted)?;
        Ok(report)
    }

    /// Bring a freshly-started server into the fleet under the identity it
    /// was booted with: announce the widened roster (epoch bump, ownership
    /// unchanged), then live-migrate every partition rendezvous ranking
    /// hands it. Training through this call sees zero failed batches.
    ///
    /// `new_id` must match the `server_id` the node at `addr` was created
    /// with — the node recognizes its own writes (vs ops to relay) by
    /// finding that id in the installed map.
    pub fn join_and_migrate(&self, addr: &str, new_id: u64) -> Result<JoinReport, Error> {
        let conn = Arc::new(RemoteCluster::connect(addr, self.cfg.client)?);
        let resolved = addr
            .to_socket_addrs()?
            .next()
            .map(|a| a.to_string())
            .unwrap_or_else(|| addr.to_string());
        let map = self.map_snapshot();
        if map.index_of(new_id).is_some() {
            return Err(Error::invalid_config("joining server id already in roster"));
        }
        let (staged, moves) = map.with_server(ServerEntry {
            id: new_id,
            addr: resolved,
        })?;
        let bytes = staged.encode();
        // The joining server learns the roster (and its own place in it)
        // first, then the incumbents, then this client.
        conn.install_fleet_map(staged.epoch(), &bytes)?;
        for entry in map.servers() {
            if let Some(c) = self.conn_by_id(entry.id) {
                c.install_fleet_map(staged.epoch(), &bytes)?;
            }
        }
        self.register_conn(new_id, conn);
        self.install_local(staged)?;

        let mut joined = JoinReport {
            server_id: new_id,
            moved: Vec::with_capacity(moves.len()),
        };
        for p in moves {
            joined.moved.push(self.migrate_partition(p, new_id)?);
        }
        Ok(joined)
    }
}
