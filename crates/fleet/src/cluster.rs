//! The fleet client: one [`GraphService`] routed across N servers.
//!
//! [`FleetCluster`] holds a [`PartitionMap`] plus a [`RemoteCluster`]
//! connection per fleet server and implements [`GraphService`], so
//! `KHopSampler` and `TrainingPipeline` train through a whole fleet
//! unmodified — exactly as they run against one `Cluster` or one
//! `RemoteCluster`.
//!
//! ## Determinism
//!
//! [`FleetCluster::sample_many`] honors the service determinism contract:
//! it draws exactly one `next_u64` per request, *in request order, before
//! any I/O*, then partitions `(request, seed)` pairs by owning server and
//! ships each group with its seeds pinned. Each server derives the same
//! per-request RNG a single server would have, so a fixed-seed trainer
//! produces bit-identical batches whether the graph lives on one server
//! or ten — and a replica retry with the same pinned seed is bit-identical
//! too, which is what makes failover invisible to a training run.
//!
//! ## Degraded reads
//!
//! A request whose owner cannot answer (connection dead, or the owning
//! shard faulted) retries on the partition's replica with the same seed.
//! Only when both copies fail does the request degrade under its own
//! [`DegradedPolicy`], client-side.

use crate::map::{PartitionMap, ServerEntry, DEFAULT_PARTITIONS};
use platod2gl_graph::{Error, GraphTxn, ShardHealth, TxnError, TxnReceipt, UpdateOp};
use platod2gl_obs::{current_trace_context, Counter, ExportedSpan, Registry, RegistryExport};
use platod2gl_rpc::{RemoteCluster, RemoteClusterConfig};
use platod2gl_server::{
    BatchReport, DegradedPolicy, GraphService, SampleRequest, SampleResponse, SlotSource,
};
use rand::RngCore;
use std::collections::HashMap;
use std::net::ToSocketAddrs;
use std::sync::{Arc, RwLock};

/// Fleet client shape: the per-server connection config plus the
/// partition-keyspace size used when the servers carry no map.
#[derive(Clone, Copy, Debug)]
pub struct FleetClusterConfig {
    /// Per-server connection config (timeouts, retries, pooling).
    pub client: RemoteClusterConfig,
    /// Partition count for a client-built map (servers without a resident
    /// map, e.g. plain graph servers fronted only for sampling
    /// scale-out). Ignored when a server supplies its map.
    pub num_partitions: u32,
}

impl Default for FleetClusterConfig {
    fn default() -> Self {
        Self {
            client: RemoteClusterConfig::default(),
            num_partitions: DEFAULT_PARTITIONS,
        }
    }
}

struct FleetMetrics {
    replica_reads: Arc<Counter>,
    degraded_requests: Arc<Counter>,
    map_refreshes: Arc<Counter>,
}

struct FleetState {
    map: PartitionMap,
    /// Connections keyed by stable server id.
    conns: HashMap<u64, Arc<RemoteCluster>>,
}

/// A partition-routed client over a fleet of graph servers.
pub struct FleetCluster {
    pub(crate) cfg: FleetClusterConfig,
    registry: Arc<Registry>,
    state: RwLock<FleetState>,
    m: FleetMetrics,
}

/// Build the degraded fallback a request's policy asks for — the same
/// shape the in-process router and the single-server client produce.
fn degraded_response(req: &SampleRequest) -> SampleResponse {
    match req.on_degraded {
        DegradedPolicy::EmptySet => SampleResponse {
            neighbors: Vec::new(),
            sources: Vec::new(),
            degraded: true,
            shard: 0,
        },
        DegradedPolicy::SelfLoop => SampleResponse {
            neighbors: vec![req.vertex; req.fanout],
            sources: vec![SlotSource::SelfLoop; req.fanout],
            degraded: true,
            shard: 0,
        },
    }
}

impl FleetCluster {
    /// Connect to every address and adopt the fleet's partition map (the
    /// first server that carries one wins; highest epoch is reconciled on
    /// [`FleetCluster::refresh_map`]). When *no* server carries a map —
    /// plain graph servers — the client builds its own over the address
    /// list, which scales sampling out without server-side replication.
    pub fn connect<A: AsRef<str>>(addrs: &[A], cfg: FleetClusterConfig) -> Result<Self, Error> {
        if addrs.is_empty() {
            return Err(Error::invalid_config("fleet address list is empty"));
        }
        let mut dialed = Vec::with_capacity(addrs.len());
        for a in addrs {
            dialed.push(Arc::new(RemoteCluster::connect(a.as_ref(), cfg.client)?));
        }
        let fetched = dialed.iter().find_map(|c| c.fleet_map_bytes());
        let map = match fetched {
            Some((_, bytes)) => PartitionMap::decode(&bytes)?,
            None => {
                let roster: Vec<ServerEntry> = dialed
                    .iter()
                    .enumerate()
                    .map(|(i, c)| ServerEntry {
                        id: i as u64 + 1,
                        addr: c.server_addr().to_string(),
                    })
                    .collect();
                PartitionMap::build(roster, cfg.num_partitions)?
            }
        };
        Self::from_map(map, dialed, cfg)
    }

    /// Join an existing fleet through any one member: fetch its map,
    /// dial every server the map names. Errors if the seed carries no
    /// map — joining requires a fleet, not a bag of plain servers.
    pub fn join(seed_addr: &str, cfg: FleetClusterConfig) -> Result<Self, Error> {
        let seed = Arc::new(RemoteCluster::connect(seed_addr, cfg.client)?);
        let (_, bytes) = seed
            .fleet_map_bytes()
            .ok_or_else(|| Error::invalid_config("seed server carries no fleet partition map"))?;
        let map = PartitionMap::decode(&bytes)?;
        Self::from_map(map, vec![seed], cfg)
    }

    fn from_map(
        map: PartitionMap,
        dialed: Vec<Arc<RemoteCluster>>,
        cfg: FleetClusterConfig,
    ) -> Result<Self, Error> {
        let registry = Arc::new(Registry::new());
        let m = FleetMetrics {
            replica_reads: registry.counter("fleet.client.replica_reads"),
            degraded_requests: registry.counter("fleet.client.degraded_requests"),
            map_refreshes: registry.counter("fleet.client.map_refreshes"),
        };
        let conns = Self::conns_for(&map, &dialed, cfg.client)?;
        Ok(Self {
            cfg,
            registry,
            state: RwLock::new(FleetState { map, conns }),
            m,
        })
    }

    /// Match dialed connections to roster entries by address; dial any
    /// roster member not yet connected.
    fn conns_for(
        map: &PartitionMap,
        dialed: &[Arc<RemoteCluster>],
        client_cfg: RemoteClusterConfig,
    ) -> Result<HashMap<u64, Arc<RemoteCluster>>, Error> {
        let mut conns = HashMap::with_capacity(map.servers().len());
        for entry in map.servers() {
            let resolved = entry.addr.as_str().to_socket_addrs()?.next();
            let reuse = dialed
                .iter()
                .find(|c| Some(c.server_addr()) == resolved)
                .cloned();
            let conn = match reuse {
                Some(c) => c,
                None => Arc::new(RemoteCluster::connect(entry.addr.as_str(), client_cfg)?),
            };
            conns.insert(entry.id, conn);
        }
        Ok(conns)
    }

    fn snapshot(&self) -> (PartitionMap, HashMap<u64, Arc<RemoteCluster>>) {
        let s = self.state.read().unwrap_or_else(|e| e.into_inner());
        (s.map.clone(), s.conns.clone())
    }

    /// The resident map's epoch.
    pub fn map_epoch(&self) -> u64 {
        self.state
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .epoch()
    }

    /// Snapshot the resident map.
    pub fn map_snapshot(&self) -> PartitionMap {
        self.state
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .clone()
    }

    /// Ask every reachable server for its map and adopt the highest
    /// epoch seen (dialing any newly-listed servers). Returns the epoch
    /// in effect afterwards — how a client catches up after a migration.
    pub fn refresh_map(&self) -> Result<u64, Error> {
        let (cur, conns) = self.snapshot();
        let mut best: Option<PartitionMap> = None;
        for conn in conns.values() {
            if let Some((epoch, bytes)) = conn.fleet_map_bytes() {
                if epoch > best.as_ref().map_or(cur.epoch(), |b| b.epoch()) {
                    best = Some(PartitionMap::decode(&bytes)?);
                }
            }
        }
        match best {
            Some(map) => self.install_local(map),
            None => Ok(cur.epoch()),
        }
    }

    /// Adopt a newer map (no-op at or below the resident epoch), dialing
    /// any servers it names that we are not yet connected to.
    pub(crate) fn install_local(&self, map: PartitionMap) -> Result<u64, Error> {
        let (cur, _) = self.snapshot();
        if map.epoch() <= cur.epoch() {
            return Ok(cur.epoch());
        }
        let dialed: Vec<Arc<RemoteCluster>> = {
            let s = self.state.read().unwrap_or_else(|e| e.into_inner());
            s.conns.values().cloned().collect()
        };
        let conns = Self::conns_for(&map, &dialed, self.cfg.client)?;
        let mut s = self.state.write().unwrap_or_else(|e| e.into_inner());
        if map.epoch() <= s.map.epoch() {
            return Ok(s.map.epoch());
        }
        let epoch = map.epoch();
        s.map = map;
        s.conns = conns;
        self.m.map_refreshes.inc();
        Ok(epoch)
    }

    /// Register an already-dialed connection for a server id (used by the
    /// join path before the staged map is installed).
    pub(crate) fn register_conn(&self, id: u64, conn: Arc<RemoteCluster>) {
        let mut s = self.state.write().unwrap_or_else(|e| e.into_inner());
        s.conns.insert(id, conn);
    }

    fn conn(
        conns: &HashMap<u64, Arc<RemoteCluster>>,
        map: &PartitionMap,
        idx: u32,
    ) -> Option<Arc<RemoteCluster>> {
        conns.get(&map.servers()[idx as usize].id).cloned()
    }

    /// Connection to the server at roster index `idx` under `map`.
    pub(crate) fn conn_by_index(&self, map: &PartitionMap, idx: u32) -> Option<Arc<RemoteCluster>> {
        let s = self.state.read().unwrap_or_else(|e| e.into_inner());
        Self::conn(&s.conns, map, idx)
    }

    /// Connection to the server with this stable id.
    pub(crate) fn conn_by_id(&self, id: u64) -> Option<Arc<RemoteCluster>> {
        let s = self.state.read().unwrap_or_else(|e| e.into_inner());
        s.conns.get(&id).cloned()
    }

    /// Sample one owner-group, falling back per-request to the replica
    /// and then to the degraded policy. Returns responses parallel to
    /// `idxs`. Runs on its own thread, so `(root_id, trace)` re-anchor
    /// the fan-out span there — the outbound RPCs then carry the trace
    /// context the thread-local stack would otherwise lose.
    #[allow(clippy::too_many_arguments)]
    fn sample_group(
        &self,
        map: &PartitionMap,
        conns: &HashMap<u64, Arc<RemoteCluster>>,
        owner: u32,
        reqs: &[SampleRequest],
        seeds: &[u64],
        idxs: &[usize],
        root_id: u64,
        trace: u64,
    ) -> Vec<SampleResponse> {
        let _group_span = self
            .registry
            .span_with_parent("fleet.sample_group", root_id, trace);
        let batch: Vec<(SampleRequest, u64)> = idxs.iter().map(|&i| (reqs[i], seeds[i])).collect();
        let primary = Self::conn(conns, map, owner).and_then(|c| c.sample_with_seeds(&batch).ok());
        let mut out: Vec<Option<SampleResponse>> = match primary {
            Some(v) => v.into_iter().map(Some).collect(),
            None => vec![None; idxs.len()],
        };

        // Collect the positions that still need an answer, grouped by
        // the partition's replica server.
        let mut retry: HashMap<u32, Vec<usize>> = HashMap::new();
        for (pos, slot) in out.iter().enumerate() {
            if slot.as_ref().is_none_or(|r| r.degraded) {
                let p = map.partition_of(batch[pos].0.vertex);
                if let Some(r) = map.replica_index(p) {
                    if r != owner {
                        retry.entry(r).or_default().push(pos);
                    }
                }
            }
        }
        for (ridx, positions) in retry {
            // The failover leg gets its own span (child of the group
            // span), so a stitched trace shows the replica read under the
            // retrying client rather than as a second unexplained RPC.
            let _retry_span = self.registry.span("fleet.replica_retry");
            let sub: Vec<(SampleRequest, u64)> = positions.iter().map(|&pos| batch[pos]).collect();
            let replies = Self::conn(conns, map, ridx).and_then(|c| c.sample_with_seeds(&sub).ok());
            if let Some(replies) = replies {
                for (k, &pos) in positions.iter().enumerate() {
                    let better = !replies[k].degraded || out[pos].is_none();
                    if better {
                        if !replies[k].degraded {
                            self.m.replica_reads.inc();
                        }
                        out[pos] = Some(replies[k].clone());
                    }
                }
            }
        }

        out.into_iter()
            .enumerate()
            .map(|(pos, slot)| match slot {
                Some(r) => {
                    if r.degraded {
                        self.m.degraded_requests.inc();
                    }
                    r
                }
                None => {
                    self.m.degraded_requests.inc();
                    degraded_response(&batch[pos].0)
                }
            })
            .collect()
    }

    /// Label a roster member for merged telemetry: stable across map
    /// epochs (the id survives migrations; the address may not).
    fn member_label(id: u64) -> String {
        format!("server-{id}")
    }

    /// Pull every span of `trace_id` from this client's own registry and
    /// from every roster member (`SpanExport` RPC), labeled by member in
    /// roster order. Unreachable members contribute an empty list — the
    /// trace view degrades, it does not fail.
    pub fn fleet_trace(&self, trace_id: u64) -> Vec<(String, Vec<ExportedSpan>)> {
        let (map, conns) = self.snapshot();
        let mut out = vec![("client".to_string(), self.registry.trace_spans(trace_id))];
        for entry in map.servers() {
            let spans = conns
                .get(&entry.id)
                .and_then(|c| c.export_spans(trace_id).ok())
                .unwrap_or_default();
            out.push((Self::member_label(entry.id), spans));
        }
        out
    }

    /// Pull the full registry export (metrics with exact histogram
    /// buckets, plus recent slow ops) from this client and every
    /// reachable roster member, labeled by member in roster order.
    pub fn fleet_obs(&self) -> Vec<(String, RegistryExport)> {
        let (map, conns) = self.snapshot();
        let mut out = vec![("client".to_string(), self.registry.export())];
        for entry in map.servers() {
            if let Some(export) = conns.get(&entry.id).and_then(|c| c.export_obs().ok()) {
                out.push((Self::member_label(entry.id), export));
            }
        }
        out
    }

    /// Per-server shard-index offsets, map roster order — the fleet's
    /// global shard numbering for `shard_healths`/`heal`.
    fn shard_layout(
        map: &PartitionMap,
        conns: &HashMap<u64, Arc<RemoteCluster>>,
    ) -> Vec<(Arc<RemoteCluster>, usize)> {
        map.servers()
            .iter()
            .filter_map(|e| conns.get(&e.id).cloned())
            .map(|c| {
                let n = c.num_shards();
                (c, n)
            })
            .collect()
    }
}

impl GraphService for FleetCluster {
    fn sample_one(&self, req: &SampleRequest, rng: &mut dyn RngCore) -> SampleResponse {
        self.sample_many(std::slice::from_ref(req), rng)
            .pop()
            .expect("one request yields one response")
    }

    fn sample_many(&self, reqs: &[SampleRequest], rng: &mut dyn RngCore) -> Vec<SampleResponse> {
        // Seeds first, in request order: the determinism contract.
        let seeds: Vec<u64> = reqs.iter().map(|_| rng.next_u64()).collect();
        if reqs.is_empty() {
            return Vec::new();
        }
        // Root span of the whole fan-out. An ambient trace (the caller
        // opened one) is inherited; otherwise the first traced request
        // names the trace, so one request id stitches client, owner, and
        // replica spans across processes.
        let root = match (
            current_trace_context(),
            reqs.iter().find_map(|r| r.trace_id),
        ) {
            (None, Some(t)) => self.registry.span_traced("fleet.sample", t),
            _ => self.registry.span("fleet.sample"),
        };
        let (root_id, trace) = (root.id(), root.trace_id());
        let (map, conns) = self.snapshot();
        let mut groups: HashMap<u32, Vec<usize>> = HashMap::new();
        for (i, req) in reqs.iter().enumerate() {
            groups.entry(map.owner_of(req.vertex)).or_default().push(i);
        }
        let groups: Vec<(u32, Vec<usize>)> = groups.into_iter().collect();
        let mut out: Vec<Option<SampleResponse>> = vec![None; reqs.len()];
        // One thread per owner group: the groups hit different servers,
        // so their round trips overlap.
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(groups.len());
            for (owner, idxs) in &groups {
                let (map, conns, seeds) = (&map, &conns, &seeds);
                handles.push(scope.spawn(move || {
                    self.sample_group(map, conns, *owner, reqs, seeds, idxs, root_id, trace)
                }));
            }
            for (handle, (_, idxs)) in handles.into_iter().zip(&groups) {
                let responses = handle.join().expect("sampler thread never panics");
                for (resp, &i) in responses.into_iter().zip(idxs) {
                    out[i] = Some(resp);
                }
            }
        });
        out.into_iter()
            .map(|r| r.expect("every request answered"))
            .collect()
    }

    fn apply_updates(&self, ops: &[UpdateOp]) -> Result<BatchReport, Error> {
        let (map, conns) = self.snapshot();
        let mut groups: HashMap<u32, Vec<UpdateOp>> = HashMap::new();
        for op in ops {
            groups.entry(map.owner_of(op.src())).or_default().push(*op);
        }
        let mut report = BatchReport::default();
        for (owner, batch) in groups {
            let conn = Self::conn(&conns, &map, owner).ok_or(Error::ShardUnavailable {
                shard: owner as usize,
            })?;
            let r = conn.apply_updates(&batch)?;
            report.applied_ops += r.applied_ops;
            report.queued_ops += r.queued_ops;
        }
        Ok(report)
    }

    fn apply_txn(&self, txn: &GraphTxn) -> Result<TxnReceipt, TxnError> {
        let (map, conns) = self.snapshot();
        let mut owners: Vec<u32> = Vec::new();
        for op in txn.ops() {
            let owner = map.owner_index(map.partition_of(crate::node::txn_op_src(op)));
            if !owners.contains(&owner) {
                owners.push(owner);
            }
        }
        let route = |owner: u32| -> Result<Arc<RemoteCluster>, TxnError> {
            Self::conn(&conns, &map, owner).ok_or(TxnError::Store(Error::ShardUnavailable {
                shard: owner as usize,
            }))
        };
        match owners.as_slice() {
            [] => route(0)?.apply_txn(txn),
            [owner] => route(*owner)?.apply_txn(txn),
            many => {
                // A txn spanning owners splits into per-owner sub-txns
                // with ids derived deterministically from the original —
                // each leg stays idempotent on retry, but atomicity is
                // per-server, not fleet-wide (see DESIGN.md §6g).
                let mut receipt = TxnReceipt {
                    txn_id: txn.id(),
                    ..TxnReceipt::default()
                };
                receipt.deduped = true;
                for &owner in many {
                    let server_id = map.servers()[owner as usize].id;
                    let mut sub = GraphTxn::new(crate::node::derive_txn_id(
                        txn.id(),
                        server_id,
                        crate::node::CH_OWNER_SPLIT,
                    ));
                    for op in txn.ops() {
                        if map.owner_index(map.partition_of(crate::node::txn_op_src(op))) == owner {
                            sub.push(*op);
                        }
                    }
                    let r = route(owner)?.apply_txn(&sub)?;
                    receipt.ops_applied += r.ops_applied;
                    receipt.graph_version = receipt.graph_version.max(r.graph_version);
                    receipt.deduped &= r.deduped;
                }
                Ok(receipt)
            }
        }
    }

    fn graph_version(&self) -> u64 {
        let (map, conns) = self.snapshot();
        Self::shard_layout(&map, &conns)
            .iter()
            .map(|(c, _)| c.graph_version())
            .sum()
    }

    fn num_shards(&self) -> usize {
        let (map, conns) = self.snapshot();
        Self::shard_layout(&map, &conns)
            .iter()
            .map(|(_, n)| n)
            .sum()
    }

    fn shard_healths(&self) -> Vec<ShardHealth> {
        let (map, conns) = self.snapshot();
        Self::shard_layout(&map, &conns)
            .iter()
            .flat_map(|(c, _)| c.shard_healths())
            .collect()
    }

    fn heal(&self, shard: usize) -> usize {
        let (map, conns) = self.snapshot();
        let mut offset = 0usize;
        for (conn, n) in Self::shard_layout(&map, &conns) {
            if shard < offset + n {
                return conn.heal(shard - offset);
            }
            offset += n;
        }
        0
    }

    fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }
}
