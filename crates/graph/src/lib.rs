//! # Graph model, dataset profiles and workload generators
//!
//! PlatoD2GL operates on *simple directed weighted heterogeneous* graphs
//! (paper Sec. II-A): multiple vertex/edge types, one weight per edge, and a
//! stream of updates over time.
//!
//! This crate provides:
//!
//! * the core value types ([`VertexId`], [`Edge`], [`UpdateOp`], …),
//! * the [`GraphStore`] trait every storage engine in the workspace
//!   implements (PlatoD2GL's samtree store and both baselines), so the
//!   operator layer and benchmarks are engine-agnostic,
//! * [`DatasetProfile`]s reproducing the paper's Table III datasets (OGBN,
//!   Reddit, WeChat) at configurable scale, and
//! * deterministic [`EdgeStream`] / [`UpdateStream`] generators with
//!   Zipf-distributed degrees, standing in for the production traces we do
//!   not have (see DESIGN.md §3 for the substitution argument).

pub mod conformance;
mod edgelist;
mod error;
mod generator;
mod health;
mod profile;
mod store;
mod txn;

pub use edgelist::{for_each_edge, read_edge_list, write_edge_list};
pub use error::Error;
pub use generator::{EdgeStream, UpdateStream, ZipfSampler};
pub use health::{Served, ShardHealth};
pub use profile::{DatasetProfile, RelationSpec};
pub use store::GraphStore;
pub use txn::{
    validate_and_lower, GraphTxn, StoreTxnView, TxnError, TxnOp, TxnReceipt, TxnView, TxnViolation,
    ViolationKind,
};

use serde::{Deserialize, Serialize};

/// A vertex identifier: 64 bits, with the vertex type packed into the top 16
/// bits and the per-type index in the low 48.
///
/// Packing the type into the ID mirrors production deployments (and the
/// paper's Fig. 7 compression example, where IDs in one tree node share long
/// hexadecimal prefixes): vertices of one type form a contiguous ID range,
/// so samtree nodes hold IDs with common prefixes that CP-ID compression can
/// exploit.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VertexId(pub u64);

impl VertexId {
    /// Compose an ID from a vertex type and a per-type index.
    ///
    /// # Panics
    /// If `index` does not fit in 48 bits.
    pub fn compose(vtype: VertexType, index: u64) -> Self {
        assert!(index < (1 << 48), "vertex index overflows 48 bits");
        Self(((vtype.0 as u64) << 48) | index)
    }

    /// The raw 64-bit value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The vertex type packed in the top 16 bits.
    #[inline]
    pub fn vtype(self) -> VertexType {
        VertexType((self.0 >> 48) as u16)
    }

    /// The per-type index in the low 48 bits.
    #[inline]
    pub fn index(self) -> u64 {
        self.0 & ((1 << 48) - 1)
    }
}

impl std::fmt::Debug for VertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}:{}", self.vtype().0, self.index())
    }
}

impl std::fmt::Display for VertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

/// A vertex type tag (user, live-room, tag, …).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct VertexType(pub u16);

/// An edge type tag (relation), e.g. the WeChat dataset's `User-Live`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct EdgeType(pub u16);

impl EdgeType {
    /// The default relation for homogeneous graphs.
    pub const DEFAULT: EdgeType = EdgeType(0);
}

/// A directed weighted typed edge `e(u, v, w)` with an event timestamp.
///
/// `ts` is the edge's event time in whatever unit the workload chooses
/// (seconds, milliseconds, logical ticks). `ts == 0` means "no timestamp":
/// static workloads never set it, v1/v2 snapshots restore with it, and the
/// temporal plane (windowed sampling, recency decay) treats such edges as
/// timeless — always in-window, never decayed.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct Edge {
    pub src: VertexId,
    pub dst: VertexId,
    pub etype: EdgeType,
    pub weight: f64,
    pub ts: u64,
}

impl Edge {
    /// An edge in the default relation (timeless: `ts == 0`).
    pub fn new(src: VertexId, dst: VertexId, weight: f64) -> Self {
        Self {
            src,
            dst,
            etype: EdgeType::DEFAULT,
            weight,
            ts: 0,
        }
    }

    /// The same edge stamped with an event time.
    pub fn at(self, ts: u64) -> Self {
        Self { ts, ..self }
    }

    /// The same edge in the opposite direction (the paper's datasets are all
    /// bi-directed).
    pub fn reversed(&self) -> Self {
        Self {
            src: self.dst,
            dst: self.src,
            etype: self.etype,
            weight: self.weight,
            ts: self.ts,
        }
    }
}

/// An inclusive event-time window `[min_ts, max_ts]` constraining sampling.
///
/// A windowed sample request only returns neighbors whose edge timestamp
/// lies inside the window; edges with `ts == 0` (timeless) are always
/// considered in-window so static data keeps working when a window is
/// applied. The window is part of the `NeighborCache` key, the wire v2
/// sample-batch trailer, and the k-hop sampler's hop-to-hop propagation
/// contract (a child hop can never see edges newer than its seed allows).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct TimeWindow {
    pub min_ts: u64,
    pub max_ts: u64,
}

impl TimeWindow {
    /// A window covering `[min_ts, max_ts]` inclusive.
    pub fn new(min_ts: u64, max_ts: u64) -> Self {
        Self { min_ts, max_ts }
    }

    /// Everything at or before `max_ts` — the time-respecting sampler's
    /// "never newer than the seed" contract.
    pub fn until(max_ts: u64) -> Self {
        Self { min_ts: 0, max_ts }
    }

    /// Whether an edge timestamp is inside the window. Timeless edges
    /// (`ts == 0`) always pass.
    #[inline]
    pub fn contains(&self, ts: u64) -> bool {
        ts == 0 || (self.min_ts <= ts && ts <= self.max_ts)
    }
}

/// Ingest-boundary policy for edge weights.
///
/// Sampling probabilities are `w_{v,u} / w_v`: a single NaN or infinite
/// weight poisons every weight sum and CDF above it in the samtree, turning
/// one bad record into corrupted sampling for the whole neighborhood. Every
/// storage engine therefore sanitizes weights once, at the ingest boundary
/// (insert / update-weight / batch apply):
///
/// * debug builds **assert**, so tests catch the producer of the bad value;
/// * release builds **clamp** non-finite weights to `0.0` (the edge exists
///   but is never sampled), preferring a degraded edge over a poisoned
///   index or a crashed ingest pipeline.
pub fn sanitize_weight(weight: f64) -> f64 {
    debug_assert!(
        weight.is_finite(),
        "non-finite edge weight {weight} reached the ingest boundary"
    );
    if weight.is_finite() {
        weight
    } else {
        0.0
    }
}

/// A dynamic-graph update operation (paper Sec. II-B lists the three cases:
/// new insertion, in-place weight update, deletion).
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum UpdateOp {
    /// Insert a new edge (or, if it already exists, update its weight — the
    /// semantics of Alg. 2 lines 3-6).
    Insert(Edge),
    /// Remove an edge.
    Delete {
        src: VertexId,
        dst: VertexId,
        etype: EdgeType,
    },
    /// Set the weight of an existing edge.
    UpdateWeight(Edge),
}

impl UpdateOp {
    /// The source vertex the op routes on (all stores shard by source).
    pub fn src(&self) -> VertexId {
        match self {
            UpdateOp::Insert(e) | UpdateOp::UpdateWeight(e) => e.src,
            UpdateOp::Delete { src, .. } => *src,
        }
    }

    /// The destination vertex.
    pub fn dst(&self) -> VertexId {
        match self {
            UpdateOp::Insert(e) | UpdateOp::UpdateWeight(e) => e.dst,
            UpdateOp::Delete { dst, .. } => *dst,
        }
    }

    /// The edge type.
    pub fn etype(&self) -> EdgeType {
        match self {
            UpdateOp::Insert(e) | UpdateOp::UpdateWeight(e) => e.etype,
            UpdateOp::Delete { etype, .. } => *etype,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_packs_type_and_index() {
        let v = VertexId::compose(VertexType(3), 12345);
        assert_eq!(v.vtype(), VertexType(3));
        assert_eq!(v.index(), 12345);
        assert_eq!(v.raw(), (3u64 << 48) | 12345);
    }

    #[test]
    fn vertex_ids_of_same_type_are_contiguous() {
        let a = VertexId::compose(VertexType(1), 0);
        let b = VertexId::compose(VertexType(1), 1);
        assert_eq!(b.raw(), a.raw() + 1);
        // Different types live in disjoint ranges.
        let c = VertexId::compose(VertexType(2), 0);
        assert!(c.raw() > VertexId::compose(VertexType(1), (1 << 48) - 1).raw());
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn vertex_index_overflow_panics() {
        VertexId::compose(VertexType(0), 1 << 48);
    }

    #[test]
    fn edge_reversed_swaps_endpoints() {
        let e = Edge::new(VertexId(1), VertexId(2), 0.5).at(42);
        let r = e.reversed();
        assert_eq!(r.src, VertexId(2));
        assert_eq!(r.dst, VertexId(1));
        assert_eq!(r.weight, 0.5);
        assert_eq!(r.ts, 42);
        assert_eq!(r.reversed(), e);
    }

    #[test]
    fn time_window_contains_is_inclusive_and_timeless_edges_pass() {
        let w = TimeWindow::new(10, 20);
        assert!(w.contains(10));
        assert!(w.contains(20));
        assert!(!w.contains(9));
        assert!(!w.contains(21));
        // ts == 0 means "no timestamp": always in-window.
        assert!(w.contains(0));
        let u = TimeWindow::until(5);
        assert!(u.contains(1) && u.contains(5) && !u.contains(6));
    }

    #[test]
    fn update_op_accessors() {
        let e = Edge::new(VertexId(1), VertexId(2), 1.0);
        assert_eq!(UpdateOp::Insert(e).src(), VertexId(1));
        assert_eq!(UpdateOp::Insert(e).dst(), VertexId(2));
        let d = UpdateOp::Delete {
            src: VertexId(9),
            dst: VertexId(8),
            etype: EdgeType(2),
        };
        assert_eq!(d.src(), VertexId(9));
        assert_eq!(d.dst(), VertexId(8));
        assert_eq!(d.etype(), EdgeType(2));
    }

    #[test]
    fn display_is_hex_like_the_papers_compression_figure() {
        let v = VertexId(0x10);
        assert_eq!(v.to_string(), "0x0000000000000010");
    }
}
