//! Shard health and degradation types shared by routing layers.
//!
//! A production PlatoD2GL deployment spans hundreds of graph servers; the
//! paper's sharded simulation (`platod2gl-server`) models a shard failing
//! or slowing down. These types are defined here — next to [`GraphStore`] —
//! so engine-agnostic callers (trainers, benchmarks) can observe degraded
//! service without depending on the server crate.
//!
//! [`GraphStore`]: crate::GraphStore

/// The router's view of one shard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShardHealth {
    /// Serving normally.
    #[default]
    Healthy,
    /// Serving, but recent requests needed retries or returned degraded
    /// results; updates still apply.
    Degraded,
    /// Not serving. Reads against the shard return degraded (empty)
    /// results; updates are queued until the shard is healed.
    Failed,
}

impl ShardHealth {
    /// Whether requests should be sent to the shard at all.
    pub fn is_serving(self) -> bool {
        !matches!(self, ShardHealth::Failed)
    }
}

/// A read served by a possibly-degraded cluster: the value plus an explicit
/// flag telling the caller whether any shard involved failed to answer.
///
/// Degraded sampling returns an *empty* neighbor set rather than a panic or
/// a silently wrong one — GNN training tolerates missing neighborhoods for
/// a minibatch far better than a crashed trainer (the motivating scenario
/// for graceful degradation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Served<T> {
    pub value: T,
    /// True when a shard could not answer and `value` is a fallback.
    pub degraded: bool,
}

impl<T> Served<T> {
    /// A normal, full-fidelity response.
    pub fn ok(value: T) -> Self {
        Served {
            value,
            degraded: false,
        }
    }

    /// A fallback response from a failed shard.
    pub fn degraded(value: T) -> Self {
        Served {
            value,
            degraded: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_serving_states() {
        assert!(ShardHealth::Healthy.is_serving());
        assert!(ShardHealth::Degraded.is_serving());
        assert!(!ShardHealth::Failed.is_serving());
        assert_eq!(ShardHealth::default(), ShardHealth::Healthy);
    }

    #[test]
    fn served_constructors() {
        let s = Served::ok(vec![1, 2]);
        assert!(!s.degraded);
        let d: Served<Vec<i32>> = Served::degraded(Vec::new());
        assert!(d.degraded);
        assert!(d.value.is_empty());
    }
}
