//! The unified error type for every public fallible API in the workspace.
//!
//! Before this module the workspace's signatures mixed three shapes:
//! `Result<_, StoreError>` on the sharded router, bare `std::io::Result`
//! on the durability layer, and panics on config validation. One enum with
//! `From` impls lets `?` flow through every layer and gives callers a
//! single type to match on.
//!
//! Low-level byte-format primitives (WAL record framing, snapshot
//! encode/decode, edge-list parsing) intentionally keep `std::io::Result`:
//! they are file-format code where an io error *is* the whole story, and
//! the durability layer converts at its public boundary.

use std::fmt;
use std::io;

/// Any error surfaced by a public PlatoD2GL API.
#[derive(Debug)]
pub enum Error {
    /// The shard is failed (or exhausted its retry budget) and cannot take
    /// the request.
    ShardUnavailable { shard: usize },
    /// A shard worker panicked while applying updates; the shard is marked
    /// [`ShardHealth::Failed`] and its in-flight ops may be partially
    /// applied.
    ///
    /// [`ShardHealth::Failed`]: crate::ShardHealth::Failed
    ShardPanicked { shard: usize, detail: String },
    /// An I/O error from the durability layer (WAL, snapshots).
    Io(io::Error),
    /// A configuration was rejected by validation (builder `build()`).
    InvalidConfig { what: String },
    /// Persisted state failed an integrity check during recovery.
    Corrupt { what: String },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShardUnavailable { shard } => {
                write!(f, "shard {shard} is unavailable")
            }
            Error::ShardPanicked { shard, detail } => {
                write!(f, "worker for shard {shard} panicked: {detail}")
            }
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            Error::Corrupt { what } => write!(f, "corrupt persisted state: {what}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

impl Error {
    /// Shorthand for an [`Error::InvalidConfig`].
    pub fn invalid_config(what: impl Into<String>) -> Self {
        Error::InvalidConfig { what: what.into() }
    }

    /// True when the error is transient shard trouble (unavailable or
    /// panicked) rather than persistent-state or configuration damage.
    pub fn is_shard_fault(&self) -> bool {
        matches!(
            self,
            Error::ShardUnavailable { .. } | Error::ShardPanicked { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_name_the_shard() {
        let e = Error::ShardUnavailable { shard: 3 };
        assert!(e.to_string().contains("shard 3"));
        let p = Error::ShardPanicked {
            shard: 1,
            detail: "boom".into(),
        };
        assert!(p.to_string().contains("shard 1"));
        assert!(p.to_string().contains("boom"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let io = io::Error::new(io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(e.to_string().contains("gone"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(!e.is_shard_fault());
    }

    #[test]
    fn shard_faults_are_classified() {
        assert!(Error::ShardUnavailable { shard: 0 }.is_shard_fault());
        assert!(!Error::invalid_config("zero shards").is_shard_fault());
        let c = Error::Corrupt {
            what: "bad checksum".into(),
        };
        assert!(c.to_string().contains("bad checksum"));
    }
}
