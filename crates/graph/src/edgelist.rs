//! Plain-text edge-list I/O, the lingua franca of graph datasets (SNAP,
//! OGB dumps, internal TSV exports). Lets users load their own data instead
//! of the synthetic profiles.
//!
//! Line format (whitespace-separated):
//!
//! ```text
//! <src:u64> <dst:u64> [weight:f64] [etype:u16]
//! ```
//!
//! Missing weight defaults to `1.0`; missing etype to relation 0. Empty
//! lines and lines starting with `#` or `%` (SNAP headers) are skipped.

use crate::{Edge, EdgeType, VertexId};
use std::io::{self, BufRead, Write};

/// Parse one edge-list line; `Ok(None)` for blank/comment lines.
fn parse_line(line: &str, lineno: usize) -> io::Result<Option<Edge>> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
        return Ok(None);
    }
    let bad = |what: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("line {lineno}: {what}: {trimmed:?}"),
        )
    };
    let mut parts = trimmed.split_whitespace();
    let src: u64 = parts
        .next()
        .ok_or_else(|| bad("missing source"))?
        .parse()
        .map_err(|_| bad("bad source id"))?;
    let dst: u64 = parts
        .next()
        .ok_or_else(|| bad("missing destination"))?
        .parse()
        .map_err(|_| bad("bad destination id"))?;
    let weight: f64 = match parts.next() {
        None => 1.0,
        Some(w) => w.parse().map_err(|_| bad("bad weight"))?,
    };
    if !weight.is_finite() || weight < 0.0 {
        return Err(bad("weight must be finite and non-negative"));
    }
    let etype: u16 = match parts.next() {
        None => 0,
        Some(t) => t.parse().map_err(|_| bad("bad edge type"))?,
    };
    if parts.next().is_some() {
        return Err(bad("trailing fields"));
    }
    Ok(Some(Edge {
        src: VertexId(src),
        dst: VertexId(dst),
        etype: EdgeType(etype),
        weight,
        ts: 0,
    }))
}

/// Read edges from a text edge list, reusing one line buffer (no per-line
/// allocation). Returns the parsed edges.
pub fn read_edge_list(reader: impl BufRead) -> io::Result<Vec<Edge>> {
    let mut out = Vec::new();
    for_each_edge(reader, |e| out.push(e))?;
    Ok(out)
}

/// Streaming variant of [`read_edge_list`]: invoke `f` per edge.
pub fn for_each_edge(mut reader: impl BufRead, mut f: impl FnMut(Edge)) -> io::Result<()> {
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(());
        }
        lineno += 1;
        if let Some(edge) = parse_line(&line, lineno)? {
            f(edge);
        }
    }
}

/// Write edges as a text edge list (always four fields, stable round-trip).
pub fn write_edge_list<'a>(
    mut w: impl Write,
    edges: impl IntoIterator<Item = &'a Edge>,
) -> io::Result<()> {
    for e in edges {
        writeln!(
            w,
            "{} {} {} {}",
            e.src.raw(),
            e.dst.raw(),
            e.weight,
            e.etype.0
        )?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_field_arities() {
        let text = "\
# a comment
% a snap header

1 2
3 4 0.5
5 6 2.5 3
";
        let edges = read_edge_list(text.as_bytes()).expect("parse");
        assert_eq!(edges.len(), 3);
        assert_eq!(edges[0], Edge::new(VertexId(1), VertexId(2), 1.0));
        assert_eq!(edges[1], Edge::new(VertexId(3), VertexId(4), 0.5));
        assert_eq!(
            edges[2],
            Edge {
                src: VertexId(5),
                dst: VertexId(6),
                etype: EdgeType(3),
                weight: 2.5,
                ts: 0,
            }
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = read_edge_list("1 2\nx y\n".as_bytes()).expect_err("bad line");
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = read_edge_list("1\n".as_bytes()).expect_err("short line");
        assert!(err.to_string().contains("missing destination"), "{err}");
        let err = read_edge_list("1 2 nan\n".as_bytes()).expect_err("nan");
        assert!(err.to_string().contains("line 1"), "{err}");
        let err = read_edge_list("1 2 1.0 0 extra\n".as_bytes()).expect_err("extra");
        assert!(err.to_string().contains("trailing"), "{err}");
        let err = read_edge_list("1 2 -3\n".as_bytes()).expect_err("negative");
        assert!(err.to_string().contains("non-negative"), "{err}");
    }

    #[test]
    fn roundtrip_through_text() {
        let edges = vec![
            Edge::new(VertexId(1), VertexId(2), 0.25),
            Edge {
                src: VertexId(9),
                dst: VertexId(8),
                etype: EdgeType(7),
                weight: 1.5,
                ts: 0,
            },
        ];
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &edges).expect("write");
        let back = read_edge_list(buf.as_slice()).expect("read");
        assert_eq!(back, edges);
    }

    #[test]
    fn streaming_reader_sees_every_edge() {
        let mut count = 0;
        for_each_edge("1 2\n3 4\n5 6\n".as_bytes(), |_| count += 1).expect("parse");
        assert_eq!(count, 3);
    }
}
