//! Typed graph transactions: the two-phase validated batch-op layer.
//!
//! PlatoD2GL's dynamic-graph premise is only trustworthy if a batch of
//! updates is all-or-nothing — across shards and across crashes. A
//! [`GraphTxn`] is the typed front half of that contract:
//!
//! * **Phase 1** ([`validate_and_lower`]) checks the *whole* batch against
//!   live topology (through a [`TxnView`]) before anything mutates:
//!   dangling deletes and weight patches, duplicate ops on one key,
//!   non-finite weights, unknown edge types, empty transactions. Any
//!   violation aborts the transaction with a structured [`TxnError`]
//!   carrying *every* violation found — zero changes applied.
//! * **Phase 2** applies the lowered [`UpdateOp`] list atomically through
//!   the executing store (the durable store brackets it with WAL
//!   batch-commit markers; the cluster fans it out per shard). Phase 2
//!   never revalidates: lowering already resolved every op against
//!   pre-transaction state, and the duplicate-key rule guarantees the
//!   lowered ops are key-disjoint, so apply order within the batch cannot
//!   change the outcome.
//!
//! The op vocabulary is deliberately higher-level than [`UpdateOp`]:
//! [`TxnOp::DeleteVertex`] expands to deletes of the vertex's *current*
//! out-neighbors at validation time, and [`TxnOp::UpsertVertex`] is a
//! validation anchor that lowers to nothing (vertices materialize with
//! their first edge in every engine here).
//!
//! All ops in one transaction read **pre-transaction state**: that is what
//! the duplicate-key rejection buys. Two ops on one `(src, dst, etype)`
//! key — or an edge op under a [`TxnOp::DeleteVertex`] claiming the whole
//! `(src, etype, *)` range — would make the outcome order-dependent, so
//! phase 1 rejects the pair instead of picking a winner.

use crate::{Edge, EdgeType, Error, GraphStore, UpdateOp, VertexId};
use std::collections::HashMap;
use std::fmt;

/// One typed operation inside a [`GraphTxn`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TxnOp {
    /// Insert an edge (or update its weight if present — Alg. 2 upsert
    /// semantics, same as [`UpdateOp::Insert`]).
    InsertEdge(Edge),
    /// Delete an edge that must exist at validation time.
    DeleteEdge {
        src: VertexId,
        dst: VertexId,
        etype: EdgeType,
    },
    /// Set the weight of an edge that must exist at validation time.
    PatchWeight(Edge),
    /// Assert a vertex into existence. Engines here materialize vertices
    /// with their first edge, so this lowers to no [`UpdateOp`]s; it
    /// participates in duplicate-key validation and documents intent.
    UpsertVertex { vertex: VertexId },
    /// Delete every current out-edge of `vertex` in the relation. Expands
    /// at validation time to one delete per neighbor; claims the whole
    /// `(vertex, etype, *)` keyspace for conflict purposes.
    DeleteVertex { vertex: VertexId, etype: EdgeType },
}

/// A transaction: a client-chosen id plus its typed ops.
///
/// The id is the retry/idempotence token: a remote client re-sends the
/// same id when a reply is lost, and the server's transaction ledger
/// answers replays from the committed receipt instead of re-applying.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GraphTxn {
    id: u64,
    ops: Vec<TxnOp>,
}

impl GraphTxn {
    /// Start an empty transaction with a client-chosen id.
    pub fn new(id: u64) -> Self {
        GraphTxn {
            id,
            ops: Vec::new(),
        }
    }

    /// The transaction id (idempotence token).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The typed ops, in submission order.
    pub fn ops(&self) -> &[TxnOp] {
        &self.ops
    }

    /// Number of typed ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no ops have been added (phase 1 rejects empty txns).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Append any op.
    pub fn push(&mut self, op: TxnOp) {
        self.ops.push(op);
    }

    /// Builder: insert (or upsert) an edge.
    pub fn insert_edge(mut self, edge: Edge) -> Self {
        self.ops.push(TxnOp::InsertEdge(edge));
        self
    }

    /// Builder: delete an existing edge.
    pub fn delete_edge(mut self, src: VertexId, dst: VertexId, etype: EdgeType) -> Self {
        self.ops.push(TxnOp::DeleteEdge { src, dst, etype });
        self
    }

    /// Builder: set the weight of an existing edge.
    pub fn patch_weight(mut self, edge: Edge) -> Self {
        self.ops.push(TxnOp::PatchWeight(edge));
        self
    }

    /// Builder: assert a vertex into existence.
    pub fn upsert_vertex(mut self, vertex: VertexId) -> Self {
        self.ops.push(TxnOp::UpsertVertex { vertex });
        self
    }

    /// Builder: delete all of a vertex's out-edges in one relation.
    pub fn delete_vertex(mut self, vertex: VertexId, etype: EdgeType) -> Self {
        self.ops.push(TxnOp::DeleteVertex { vertex, etype });
        self
    }
}

/// Why one op failed phase-1 validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// [`TxnOp::DeleteEdge`] names an edge that does not exist.
    DanglingDelete,
    /// [`TxnOp::PatchWeight`] names an edge that does not exist.
    DanglingPatch,
    /// Two ops touch one key (or a [`TxnOp::DeleteVertex`] claim overlaps
    /// an edge op), making the outcome order-dependent.
    DuplicateKey,
    /// A NaN or infinite weight reached the transaction boundary.
    NonFiniteWeight,
    /// The op names an edge type outside the view's registered range.
    UnknownEtype,
    /// The transaction carries no ops.
    Empty,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ViolationKind::DanglingDelete => "dangling delete",
            ViolationKind::DanglingPatch => "dangling weight patch",
            ViolationKind::DuplicateKey => "duplicate key",
            ViolationKind::NonFiniteWeight => "non-finite weight",
            ViolationKind::UnknownEtype => "unknown edge type",
            ViolationKind::Empty => "empty transaction",
        })
    }
}

/// One phase-1 violation: which op, what rule, and the specifics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxnViolation {
    /// Index of the offending op in [`GraphTxn::ops`].
    pub op_index: usize,
    pub kind: ViolationKind,
    /// Human-readable specifics (the key, the conflicting op index, …).
    pub detail: String,
}

impl fmt::Display for TxnViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op {}: {}: {}", self.op_index, self.kind, self.detail)
    }
}

/// Why a transaction did not commit.
#[derive(Debug)]
pub enum TxnError {
    /// Phase 1 rejected the batch; zero changes were applied. Carries
    /// every violation found, not just the first.
    Rejected {
        txn_id: u64,
        violations: Vec<TxnViolation>,
    },
    /// Phase 2 could not run (shard down/panicked, WAL I/O failure). For
    /// the durable store, a missing commit marker makes recovery drop the
    /// partial batch, so the on-disk outcome is still all-or-nothing.
    Store(Error),
}

impl TxnError {
    /// The phase-1 violations, empty for store-side failures.
    pub fn violations(&self) -> &[TxnViolation] {
        match self {
            TxnError::Rejected { violations, .. } => violations,
            TxnError::Store(_) => &[],
        }
    }

    /// True when phase 1 rejected the batch (a clean, zero-change abort).
    pub fn is_rejected(&self) -> bool {
        matches!(self, TxnError::Rejected { .. })
    }
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Rejected { txn_id, violations } => {
                write!(
                    f,
                    "txn {txn_id} rejected with {} violation(s)",
                    violations.len()
                )?;
                for v in violations {
                    write!(f, "; {v}")?;
                }
                Ok(())
            }
            TxnError::Store(e) => write!(f, "txn store failure: {e}"),
        }
    }
}

impl std::error::Error for TxnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TxnError::Store(e) => Some(e),
            TxnError::Rejected { .. } => None,
        }
    }
}

impl From<Error> for TxnError {
    fn from(e: Error) -> Self {
        TxnError::Store(e)
    }
}

impl From<std::io::Error> for TxnError {
    fn from(e: std::io::Error) -> Self {
        TxnError::Store(Error::Io(e))
    }
}

/// Commit acknowledgement: what a successful [`GraphTxn`] applied.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TxnReceipt {
    /// The transaction id echoed back.
    pub txn_id: u64,
    /// Lowered [`UpdateOp`]s applied (0 for pure-upsert transactions).
    pub ops_applied: u64,
    /// The service's graph version after the commit (0 where the executor
    /// has no version counter, e.g. a bare durable store).
    pub graph_version: u64,
    /// True when this receipt answered a replayed txn id from the ledger
    /// instead of a fresh apply (idempotent retry).
    pub deduped: bool,
}

/// Read access to live topology for phase-1 validation.
///
/// Implemented by any executor that can answer point lookups: the durable
/// store validates against its in-memory store, the cluster against its
/// routed shards. `known_etype` defaults to accepting everything — views
/// with a registered relation schema override it.
pub trait TxnView {
    /// Weight of the edge, if it exists.
    fn edge_weight(&self, src: VertexId, dst: VertexId, etype: EdgeType) -> Option<f64>;

    /// All current out-neighbors of `v` with weights (drives
    /// [`TxnOp::DeleteVertex`] expansion).
    fn neighbors(&self, v: VertexId, etype: EdgeType) -> Vec<(VertexId, f64)>;

    /// Whether the edge type is registered. Defaults to `true` (no schema).
    fn known_etype(&self, etype: EdgeType) -> bool {
        let _ = etype;
        true
    }
}

/// A [`TxnView`] over any [`GraphStore`], with an optional edge-type limit
/// (`etype.0 < limit` is known; `None` accepts everything).
pub struct StoreTxnView<'a> {
    store: &'a dyn GraphStore,
    etype_limit: Option<u16>,
}

impl<'a> StoreTxnView<'a> {
    /// View with no relation schema: every etype is known.
    pub fn new(store: &'a dyn GraphStore) -> Self {
        StoreTxnView {
            store,
            etype_limit: None,
        }
    }

    /// Restrict known edge types to `0..limit`.
    pub fn with_etype_limit(mut self, limit: u16) -> Self {
        self.etype_limit = Some(limit);
        self
    }
}

impl TxnView for StoreTxnView<'_> {
    fn edge_weight(&self, src: VertexId, dst: VertexId, etype: EdgeType) -> Option<f64> {
        self.store.edge_weight(src, dst, etype)
    }

    fn neighbors(&self, v: VertexId, etype: EdgeType) -> Vec<(VertexId, f64)> {
        self.store.neighbors(v, etype)
    }

    fn known_etype(&self, etype: EdgeType) -> bool {
        self.etype_limit.is_none_or(|limit| etype.0 < limit)
    }
}

/// Phase 1: validate the whole transaction against `view` and lower it to
/// a key-disjoint, deterministically ordered [`UpdateOp`] batch.
///
/// Collects **every** violation before returning (an operator fixing a
/// rejected feed batch wants the full list, not a fix-one-resubmit loop).
/// On success the lowered ops are sorted by `(src, etype, dst)` — a total
/// order, because duplicate-key rejection made the keys disjoint — so the
/// WAL bytes and the commit CRC of a given logical transaction are
/// reproducible regardless of submission order.
pub fn validate_and_lower(txn: &GraphTxn, view: &dyn TxnView) -> Result<Vec<UpdateOp>, TxnError> {
    let mut violations: Vec<TxnViolation> = Vec::new();
    if txn.ops.is_empty() {
        violations.push(TxnViolation {
            op_index: 0,
            kind: ViolationKind::Empty,
            detail: "transaction carries no ops".to_string(),
        });
        return Err(TxnError::Rejected {
            txn_id: txn.id,
            violations,
        });
    }

    // Conflict tracking. Keys are raw ids so one map covers all op kinds:
    //  * edge_keys    — first op per (src, etype, dst)
    //  * edge_sources — first edge op per (src, etype) (DeleteVertex overlap)
    //  * source_claims— DeleteVertex claims on a whole (src, etype) range
    //  * vertex_claims— UpsertVertex claims per vertex
    let mut edge_keys: HashMap<(u64, u16, u64), usize> = HashMap::new();
    let mut edge_sources: HashMap<(u64, u16), usize> = HashMap::new();
    let mut source_claims: HashMap<(u64, u16), usize> = HashMap::new();
    let mut vertex_claims: HashMap<u64, usize> = HashMap::new();
    let mut lowered: Vec<UpdateOp> = Vec::with_capacity(txn.ops.len());

    let violate = |violations: &mut Vec<TxnViolation>, i: usize, kind, detail: String| {
        violations.push(TxnViolation {
            op_index: i,
            kind,
            detail,
        });
    };

    for (i, op) in txn.ops.iter().enumerate() {
        // Edge-granular ops share the key bookkeeping.
        let mut claim_edge_key =
            |violations: &mut Vec<TxnViolation>, src: VertexId, dst: VertexId, etype: EdgeType| {
                let key = (src.raw(), etype.0, dst.raw());
                if let Some(&j) = edge_keys.get(&key) {
                    violate(
                        violations,
                        i,
                        ViolationKind::DuplicateKey,
                        format!(
                            "edge ({src:?} -> {dst:?}, etype {}) already touched by op {j}",
                            etype.0
                        ),
                    );
                } else {
                    edge_keys.insert(key, i);
                }
                if let Some(&j) = source_claims.get(&(src.raw(), etype.0)) {
                    violate(
                        violations,
                        i,
                        ViolationKind::DuplicateKey,
                        format!(
                            "op {j} deletes vertex {src:?} in etype {}, covering this edge",
                            etype.0
                        ),
                    );
                }
                edge_sources.entry((src.raw(), etype.0)).or_insert(i);
            };

        match op {
            TxnOp::InsertEdge(e) => {
                claim_edge_key(&mut violations, e.src, e.dst, e.etype);
                if !view.known_etype(e.etype) {
                    violate(
                        &mut violations,
                        i,
                        ViolationKind::UnknownEtype,
                        format!("etype {} is not registered", e.etype.0),
                    );
                }
                if !e.weight.is_finite() {
                    violate(
                        &mut violations,
                        i,
                        ViolationKind::NonFiniteWeight,
                        format!(
                            "insert of ({:?} -> {:?}) carries weight {}",
                            e.src, e.dst, e.weight
                        ),
                    );
                }
                lowered.push(UpdateOp::Insert(*e));
            }
            TxnOp::DeleteEdge { src, dst, etype } => {
                claim_edge_key(&mut violations, *src, *dst, *etype);
                if !view.known_etype(*etype) {
                    violate(
                        &mut violations,
                        i,
                        ViolationKind::UnknownEtype,
                        format!("etype {} is not registered", etype.0),
                    );
                } else if view.edge_weight(*src, *dst, *etype).is_none() {
                    violate(
                        &mut violations,
                        i,
                        ViolationKind::DanglingDelete,
                        format!(
                            "edge ({src:?} -> {dst:?}, etype {}) does not exist",
                            etype.0
                        ),
                    );
                }
                lowered.push(UpdateOp::Delete {
                    src: *src,
                    dst: *dst,
                    etype: *etype,
                });
            }
            TxnOp::PatchWeight(e) => {
                claim_edge_key(&mut violations, e.src, e.dst, e.etype);
                if !view.known_etype(e.etype) {
                    violate(
                        &mut violations,
                        i,
                        ViolationKind::UnknownEtype,
                        format!("etype {} is not registered", e.etype.0),
                    );
                } else if view.edge_weight(e.src, e.dst, e.etype).is_none() {
                    violate(
                        &mut violations,
                        i,
                        ViolationKind::DanglingPatch,
                        format!(
                            "edge ({:?} -> {:?}, etype {}) does not exist",
                            e.src, e.dst, e.etype.0
                        ),
                    );
                }
                if !e.weight.is_finite() {
                    violate(
                        &mut violations,
                        i,
                        ViolationKind::NonFiniteWeight,
                        format!(
                            "patch of ({:?} -> {:?}) carries weight {}",
                            e.src, e.dst, e.weight
                        ),
                    );
                }
                lowered.push(UpdateOp::UpdateWeight(*e));
            }
            TxnOp::UpsertVertex { vertex } => {
                if let Some(&j) = vertex_claims.get(&vertex.raw()) {
                    violate(
                        &mut violations,
                        i,
                        ViolationKind::DuplicateKey,
                        format!("vertex {vertex:?} already upserted by op {j}"),
                    );
                } else {
                    vertex_claims.insert(vertex.raw(), i);
                }
                // Lowers to nothing: vertices materialize with their first
                // edge in every engine here.
            }
            TxnOp::DeleteVertex { vertex, etype } => {
                let range = (vertex.raw(), etype.0);
                if let Some(&j) = source_claims.get(&range) {
                    violate(
                        &mut violations,
                        i,
                        ViolationKind::DuplicateKey,
                        format!(
                            "vertex {vertex:?} etype {} already deleted by op {j}",
                            etype.0
                        ),
                    );
                } else {
                    source_claims.insert(range, i);
                }
                if let Some(&j) = edge_sources.get(&range) {
                    violate(
                        &mut violations,
                        i,
                        ViolationKind::DuplicateKey,
                        format!(
                            "op {j} touches an edge of {vertex:?} etype {} covered by this delete",
                            etype.0
                        ),
                    );
                }
                if !view.known_etype(*etype) {
                    violate(
                        &mut violations,
                        i,
                        ViolationKind::UnknownEtype,
                        format!("etype {} is not registered", etype.0),
                    );
                } else {
                    // Expand against pre-transaction topology. A vertex
                    // with no out-edges is a legal no-op delete.
                    for (dst, _w) in view.neighbors(*vertex, *etype) {
                        lowered.push(UpdateOp::Delete {
                            src: *vertex,
                            dst,
                            etype: *etype,
                        });
                    }
                }
            }
        }
    }

    if !violations.is_empty() {
        return Err(TxnError::Rejected {
            txn_id: txn.id,
            violations,
        });
    }
    // Keys are disjoint, so (src, etype, dst) is a total order: the lowered
    // batch (and therefore its WAL bytes and commit CRC) is canonical.
    lowered.sort_by_key(|op| (op.src().raw(), op.etype().0, op.dst().raw()));
    Ok(lowered)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// In-memory view: a set of (src, etype, dst) -> weight.
    #[derive(Default)]
    struct MockView {
        edges: HashMap<(u64, u16, u64), f64>,
        etype_limit: Option<u16>,
    }

    impl MockView {
        fn with(edges: &[(u64, u16, u64, f64)]) -> Self {
            MockView {
                edges: edges.iter().map(|&(s, t, d, w)| ((s, t, d), w)).collect(),
                etype_limit: None,
            }
        }
    }

    impl TxnView for MockView {
        fn edge_weight(&self, src: VertexId, dst: VertexId, etype: EdgeType) -> Option<f64> {
            self.edges.get(&(src.raw(), etype.0, dst.raw())).copied()
        }

        fn neighbors(&self, v: VertexId, etype: EdgeType) -> Vec<(VertexId, f64)> {
            let mut out: Vec<(VertexId, f64)> = self
                .edges
                .iter()
                .filter(|(&(s, t, _), _)| s == v.raw() && t == etype.0)
                .map(|(&(_, _, d), &w)| (VertexId(d), w))
                .collect();
            out.sort_by_key(|(d, _)| d.raw());
            out
        }

        fn known_etype(&self, etype: EdgeType) -> bool {
            self.etype_limit.is_none_or(|limit| etype.0 < limit)
        }
    }

    fn v(i: u64) -> VertexId {
        VertexId(i)
    }

    fn kinds(err: &TxnError) -> Vec<ViolationKind> {
        err.violations().iter().map(|vl| vl.kind).collect()
    }

    #[test]
    fn builder_collects_ops_in_order() {
        let txn = GraphTxn::new(7)
            .insert_edge(Edge::new(v(1), v(2), 1.0))
            .delete_edge(v(3), v(4), EdgeType(1))
            .upsert_vertex(v(9));
        assert_eq!(txn.id(), 7);
        assert_eq!(txn.len(), 3);
        assert!(matches!(txn.ops()[2], TxnOp::UpsertVertex { .. }));
    }

    #[test]
    fn valid_txn_lowers_sorted_by_key() {
        let view = MockView::with(&[(5, 0, 6, 1.0)]);
        let txn = GraphTxn::new(1)
            .insert_edge(Edge::new(v(9), v(1), 2.0))
            .delete_edge(v(5), v(6), EdgeType::DEFAULT)
            .insert_edge(Edge::new(v(2), v(3), 1.0));
        let lowered = validate_and_lower(&txn, &view).expect("valid");
        let srcs: Vec<u64> = lowered.iter().map(|op| op.src().raw()).collect();
        assert_eq!(srcs, vec![2, 5, 9], "canonical (src, etype, dst) order");
    }

    #[test]
    fn empty_txn_is_rejected() {
        let err = validate_and_lower(&GraphTxn::new(3), &MockView::default()).unwrap_err();
        assert_eq!(kinds(&err), vec![ViolationKind::Empty]);
        assert!(err.is_rejected());
    }

    #[test]
    fn dangling_delete_and_patch_are_rejected_together() {
        let view = MockView::with(&[(1, 0, 2, 1.0)]);
        let txn = GraphTxn::new(4)
            .delete_edge(v(1), v(9), EdgeType::DEFAULT) // missing
            .patch_weight(Edge::new(v(8), v(9), 3.0)) // missing
            .delete_edge(v(1), v(2), EdgeType::DEFAULT); // fine
        let err = validate_and_lower(&txn, &view).unwrap_err();
        assert_eq!(
            kinds(&err),
            vec![ViolationKind::DanglingDelete, ViolationKind::DanglingPatch],
            "all violations reported, valid op not flagged"
        );
        assert_eq!(err.violations()[0].op_index, 0);
        assert_eq!(err.violations()[1].op_index, 1);
    }

    #[test]
    fn duplicate_edge_key_is_rejected() {
        let view = MockView::with(&[(1, 0, 2, 1.0)]);
        let txn = GraphTxn::new(5)
            .patch_weight(Edge::new(v(1), v(2), 3.0))
            .delete_edge(v(1), v(2), EdgeType::DEFAULT);
        let err = validate_and_lower(&txn, &view).unwrap_err();
        assert_eq!(kinds(&err), vec![ViolationKind::DuplicateKey]);
        assert!(err.violations()[0].detail.contains("op 0"));
    }

    #[test]
    fn delete_vertex_conflicts_with_edge_ops_in_both_orders() {
        let view = MockView::with(&[(1, 0, 2, 1.0), (1, 0, 3, 1.0)]);
        // DeleteVertex after an edge op on the claimed range.
        let txn = GraphTxn::new(6)
            .delete_edge(v(1), v(2), EdgeType::DEFAULT)
            .delete_vertex(v(1), EdgeType::DEFAULT);
        let err = validate_and_lower(&txn, &view).unwrap_err();
        assert_eq!(kinds(&err), vec![ViolationKind::DuplicateKey]);
        // And before.
        let txn = GraphTxn::new(7)
            .delete_vertex(v(1), EdgeType::DEFAULT)
            .insert_edge(Edge::new(v(1), v(9), 1.0));
        let err = validate_and_lower(&txn, &view).unwrap_err();
        assert_eq!(kinds(&err), vec![ViolationKind::DuplicateKey]);
        // A different etype does not conflict.
        let txn = GraphTxn::new(8)
            .delete_vertex(v(1), EdgeType::DEFAULT)
            .insert_edge(Edge {
                src: v(1),
                dst: v(9),
                etype: EdgeType(1),
                weight: 1.0,
                ts: 0,
            });
        assert!(validate_and_lower(&txn, &view).is_ok());
    }

    #[test]
    fn delete_vertex_expands_to_current_neighbors() {
        let view = MockView::with(&[(4, 0, 7, 1.0), (4, 0, 8, 2.0), (4, 1, 9, 1.0)]);
        let txn = GraphTxn::new(9).delete_vertex(v(4), EdgeType::DEFAULT);
        let lowered = validate_and_lower(&txn, &view).expect("valid");
        assert_eq!(
            lowered,
            vec![
                UpdateOp::Delete {
                    src: v(4),
                    dst: v(7),
                    etype: EdgeType::DEFAULT
                },
                UpdateOp::Delete {
                    src: v(4),
                    dst: v(8),
                    etype: EdgeType::DEFAULT
                },
            ],
            "only the claimed relation is expanded"
        );
        // No out-edges: a legal no-op.
        let txn = GraphTxn::new(10).delete_vertex(v(99), EdgeType::DEFAULT);
        assert!(validate_and_lower(&txn, &view).expect("valid").is_empty());
    }

    #[test]
    fn upsert_vertex_lowers_to_nothing_and_dedupes() {
        let view = MockView::default();
        let txn = GraphTxn::new(11).upsert_vertex(v(5)).upsert_vertex(v(6));
        assert!(validate_and_lower(&txn, &view).expect("valid").is_empty());
        let txn = GraphTxn::new(12).upsert_vertex(v(5)).upsert_vertex(v(5));
        let err = validate_and_lower(&txn, &view).unwrap_err();
        assert_eq!(kinds(&err), vec![ViolationKind::DuplicateKey]);
    }

    #[test]
    fn non_finite_weights_are_rejected() {
        let view = MockView::with(&[(1, 0, 2, 1.0)]);
        let txn = GraphTxn::new(13)
            .insert_edge(Edge::new(v(3), v(4), f64::NAN))
            .patch_weight(Edge::new(v(1), v(2), f64::INFINITY));
        let err = validate_and_lower(&txn, &view).unwrap_err();
        assert_eq!(
            kinds(&err),
            vec![
                ViolationKind::NonFiniteWeight,
                ViolationKind::NonFiniteWeight
            ]
        );
    }

    #[test]
    fn unknown_etype_is_rejected_under_a_limit() {
        let mut view = MockView::with(&[(1, 0, 2, 1.0)]);
        view.etype_limit = Some(2);
        let ok = GraphTxn::new(14).insert_edge(Edge {
            src: v(1),
            dst: v(9),
            etype: EdgeType(1),
            weight: 1.0,
            ts: 0,
        });
        assert!(validate_and_lower(&ok, &view).is_ok());
        let bad = GraphTxn::new(15).insert_edge(Edge {
            src: v(1),
            dst: v(9),
            etype: EdgeType(2),
            weight: 1.0,
            ts: 0,
        });
        let err = validate_and_lower(&bad, &view).unwrap_err();
        assert_eq!(kinds(&err), vec![ViolationKind::UnknownEtype]);
    }

    #[test]
    fn rejection_display_names_every_violation() {
        let view = MockView::default();
        let txn = GraphTxn::new(16)
            .delete_edge(v(1), v(2), EdgeType::DEFAULT)
            .delete_edge(v(1), v(2), EdgeType::DEFAULT);
        let err = validate_and_lower(&txn, &view).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("txn 16 rejected"), "{msg}");
        assert!(msg.contains("dangling delete"), "{msg}");
        assert!(msg.contains("duplicate key"), "{msg}");
    }
}
