//! Dataset profiles reproducing the paper's Table III.
//!
//! We do not have the production WeChat trace (2.1 B nodes, 63.9 B edges) or
//! the authors' OGBN/Reddit preprocessing, so each dataset is described by a
//! [`DatasetProfile`]: per-relation node counts, edge counts and degree-skew
//! parameters taken from Table III. A profile can be *scaled* down so the
//! same shape runs on one machine; the benchmarks report which scale they
//! used. Degree skew is Zipf-distributed, which matches the hub-dominated
//! degree profile of social and e-commerce graphs and exercises the same
//! deep-samtree code paths the production trace would.

use crate::generator::{EdgeStream, UpdateStream};
use crate::{EdgeType, VertexId, VertexType};
use serde::{Deserialize, Serialize};

/// One relation (edge type) of a heterogeneous dataset: the paper's
/// Table III rows.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RelationSpec {
    /// Human name, e.g. `User-Live`.
    pub name: String,
    pub etype: EdgeType,
    pub src_type: VertexType,
    pub dst_type: VertexType,
    /// Number of distinct source vertices (`#S`).
    pub num_src: u64,
    /// Number of distinct target vertices (`#T`).
    pub num_dst: u64,
    /// Number of edges in the relation.
    pub num_edges: u64,
    /// Zipf exponent for source/destination popularity (degree skew).
    pub zipf_exponent: f64,
}

impl RelationSpec {
    /// Average out-degree (`Density` in Table III).
    pub fn density(&self) -> f64 {
        self.num_edges as f64 / self.num_src as f64
    }
}

/// A heterogeneous dataset description; see the module docs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DatasetProfile {
    pub name: String,
    pub relations: Vec<RelationSpec>,
    /// Emit each generated edge in both directions (all the paper's datasets
    /// are bi-directed).
    pub bidirected: bool,
}

const DEFAULT_SKEW: f64 = 0.9;

impl DatasetProfile {
    /// OGBN-Products (Table III): 2.4 M × 2.4 M products, 61.9 M edges,
    /// density 25.8.
    pub fn ogbn() -> Self {
        Self {
            name: "OGBN".into(),
            bidirected: true,
            relations: vec![RelationSpec {
                name: "Product-Product".into(),
                etype: EdgeType(0),
                src_type: VertexType(0),
                dst_type: VertexType(0),
                num_src: 2_400_000,
                num_dst: 2_400_000,
                num_edges: 61_900_000,
                zipf_exponent: DEFAULT_SKEW,
            }],
        }
    }

    /// Reddit (Table III): 233 K posts/communities, 114 M edges, density
    /// 489.3 — the densest dataset, stressing deep samtrees.
    pub fn reddit() -> Self {
        Self {
            name: "Reddit".into(),
            bidirected: true,
            relations: vec![RelationSpec {
                name: "Post-Community".into(),
                etype: EdgeType(0),
                src_type: VertexType(0),
                dst_type: VertexType(1),
                num_src: 233_000,
                num_dst: 233_000,
                num_edges: 114_000_000,
                zipf_exponent: DEFAULT_SKEW,
            }],
        }
    }

    /// WeChat (Table III): the production live-streaming graph with four
    /// relations, 2.1 B nodes and 63.9 B edges in total.
    pub fn wechat() -> Self {
        Self {
            name: "WeChat".into(),
            bidirected: true,
            relations: vec![
                RelationSpec {
                    name: "User-Live".into(),
                    etype: EdgeType(0),
                    src_type: VertexType(0),
                    dst_type: VertexType(1),
                    num_src: 1_020_000_000,
                    num_dst: 1_020_000_000,
                    num_edges: 63_300_000_000,
                    zipf_exponent: DEFAULT_SKEW,
                },
                RelationSpec {
                    name: "User-Attr".into(),
                    etype: EdgeType(1),
                    src_type: VertexType(0),
                    dst_type: VertexType(2),
                    num_src: 970_000_000,
                    num_dst: 970_000_000,
                    num_edges: 1_900_000_000,
                    zipf_exponent: DEFAULT_SKEW,
                },
                RelationSpec {
                    name: "Live-Live".into(),
                    etype: EdgeType(2),
                    src_type: VertexType(1),
                    dst_type: VertexType(1),
                    num_src: 13_100_000,
                    num_dst: 13_100_000,
                    num_edges: 650_000_000,
                    zipf_exponent: DEFAULT_SKEW,
                },
                RelationSpec {
                    name: "Live-Tag".into(),
                    etype: EdgeType(3),
                    src_type: VertexType(1),
                    dst_type: VertexType(3),
                    num_src: 15_100_000,
                    num_dst: 15_100_000,
                    num_edges: 30_100_000,
                    zipf_exponent: DEFAULT_SKEW,
                },
            ],
        }
    }

    /// A small fixed profile for unit and integration tests.
    pub fn tiny() -> Self {
        Self {
            name: "Tiny".into(),
            bidirected: false,
            relations: vec![RelationSpec {
                name: "T-T".into(),
                etype: EdgeType(0),
                src_type: VertexType(0),
                dst_type: VertexType(0),
                num_src: 200,
                num_dst: 200,
                num_edges: 2_000,
                zipf_exponent: DEFAULT_SKEW,
            }],
        }
    }

    /// Scale every node and edge count by `factor` (keeping density roughly
    /// constant requires scaling both, which this does). Counts are clamped
    /// to at least 1.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0);
        let scale = |x: u64| ((x as f64 * factor).round() as u64).max(1);
        Self {
            name: self.name.clone(),
            bidirected: self.bidirected,
            relations: self
                .relations
                .iter()
                .map(|r| RelationSpec {
                    name: r.name.clone(),
                    etype: r.etype,
                    src_type: r.src_type,
                    dst_type: r.dst_type,
                    num_src: scale(r.num_src),
                    num_dst: scale(r.num_dst),
                    num_edges: scale(r.num_edges),
                    zipf_exponent: r.zipf_exponent,
                })
                .collect(),
        }
    }

    /// Scale the profile so the total directed edge count is roughly
    /// `target_edges` (the benchmark entry point: "WeChat at 2 M edges").
    pub fn scaled_to_edges(&self, target_edges: u64) -> Self {
        let total = self.total_edges().max(1);
        self.scaled(target_edges as f64 / total as f64)
    }

    /// Scale sources, destinations and edges independently.
    ///
    /// Uniform scaling caps every neighborhood at the shrunken destination
    /// space, erasing the big-hub regime the paper's production graph lives
    /// in (hubs with up to millions of distinct neighbors). Shrinking the
    /// source space harder than the destination space restores realistic
    /// absolute degrees at laptop scale.
    pub fn scaled_split(&self, src_factor: f64, dst_factor: f64, edge_factor: f64) -> Self {
        assert!(src_factor > 0.0 && dst_factor > 0.0 && edge_factor > 0.0);
        let scale = |x: u64, f: f64| ((x as f64 * f).round() as u64).max(1);
        Self {
            name: self.name.clone(),
            bidirected: self.bidirected,
            relations: self
                .relations
                .iter()
                .map(|r| RelationSpec {
                    name: r.name.clone(),
                    etype: r.etype,
                    src_type: r.src_type,
                    dst_type: r.dst_type,
                    num_src: scale(r.num_src, src_factor),
                    num_dst: scale(r.num_dst, dst_factor),
                    num_edges: scale(r.num_edges, edge_factor),
                    zipf_exponent: r.zipf_exponent,
                })
                .collect(),
        }
    }

    /// A WeChat-like profile preserving the production *degree* regime at
    /// laptop scale: `target_edges` User-Live interactions over a source
    /// space sized for the paper's mean density (~62) and a destination
    /// space large enough that Zipf hubs accumulate tens of thousands of
    /// distinct neighbors — the regime where O(n) index maintenance
    /// (PlatoGL's CSTable) actually hurts.
    pub fn wechat_hub(target_edges: u64) -> Self {
        let num_src = (target_edges / 62).max(16);
        let num_dst = (target_edges / 2).max(64);
        Self {
            name: "WeChat-hub".into(),
            bidirected: false,
            relations: vec![RelationSpec {
                name: "User-Live".into(),
                etype: EdgeType(0),
                src_type: VertexType(0),
                dst_type: VertexType(1),
                num_src,
                num_dst,
                num_edges: target_edges,
                zipf_exponent: DEFAULT_SKEW,
            }],
        }
    }

    /// Total directed edges across relations (before bi-directing).
    pub fn total_edges(&self) -> u64 {
        self.relations.iter().map(|r| r.num_edges).sum()
    }

    /// Total distinct vertices, approximated as the per-type maxima of the
    /// relation endpoints.
    pub fn total_vertices(&self) -> u64 {
        use std::collections::HashMap;
        let mut per_type: HashMap<u16, u64> = HashMap::new();
        for r in &self.relations {
            let s = per_type.entry(r.src_type.0).or_insert(0);
            *s = (*s).max(r.num_src);
            let t = per_type.entry(r.dst_type.0).or_insert(0);
            *t = (*t).max(r.num_dst);
        }
        per_type.values().sum()
    }

    /// Deterministic edge stream for building the graph.
    pub fn edge_stream(&self, seed: u64) -> EdgeStream {
        EdgeStream::new(self, seed)
    }

    /// Deterministic mixed update stream (inserts / weight updates /
    /// deletions) for the dynamic-update experiments.
    pub fn update_stream(&self, seed: u64) -> UpdateStream {
        UpdateStream::new(self, seed)
    }

    /// Draw `count` query vertices from the source-popularity distribution
    /// (high-degree vertices appear often, as real inference batches do).
    pub fn sample_sources(&self, count: usize, seed: u64) -> Vec<VertexId> {
        EdgeStream::new(self, seed)
            .take(count)
            .map(|e| e.src)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_densities_match_paper() {
        let ogbn = DatasetProfile::ogbn();
        assert!((ogbn.relations[0].density() - 25.8).abs() < 0.1);
        let reddit = DatasetProfile::reddit();
        assert!((reddit.relations[0].density() - 489.3).abs() < 0.2);
        let wechat = DatasetProfile::wechat();
        let d: Vec<f64> = wechat.relations.iter().map(|r| r.density()).collect();
        assert!((d[0] - 62.06).abs() < 0.1, "User-Live density {}", d[0]);
        assert!((d[1] - 1.96).abs() < 0.01, "User-Attr density {}", d[1]);
        assert!((d[2] - 49.62).abs() < 0.1, "Live-Live density {}", d[2]);
        assert!((d[3] - 1.99).abs() < 0.01, "Live-Tag density {}", d[3]);
    }

    #[test]
    fn wechat_totals_match_paper_headline() {
        let w = DatasetProfile::wechat();
        // "2.1 billion nodes and 63.9 billion edges in total"
        assert!((w.total_edges() as f64 - 65.88e9).abs() < 0.1e9);
        assert!(w.total_vertices() as f64 > 2.0e9);
    }

    #[test]
    fn scaling_preserves_density() {
        let w = DatasetProfile::wechat().scaled(1e-4);
        for (orig, scaled) in DatasetProfile::wechat().relations.iter().zip(&w.relations) {
            let ratio = scaled.density() / orig.density();
            assert!((ratio - 1.0).abs() < 0.05, "{}: {}", scaled.name, ratio);
        }
    }

    #[test]
    fn scaled_to_edges_hits_target() {
        let p = DatasetProfile::ogbn().scaled_to_edges(100_000);
        let total = p.total_edges();
        assert!((total as i64 - 100_000i64).abs() < 2_000, "total {total}");
    }

    #[test]
    fn scaling_clamps_to_one() {
        let p = DatasetProfile::tiny().scaled(1e-9);
        assert!(p
            .relations
            .iter()
            .all(|r| r.num_src >= 1 && r.num_edges >= 1));
    }

    #[test]
    fn sample_sources_is_deterministic() {
        let p = DatasetProfile::tiny();
        assert_eq!(p.sample_sources(32, 5), p.sample_sources(32, 5));
        assert_ne!(p.sample_sources(32, 5), p.sample_sources(32, 6));
    }
}
