//! A behavioral conformance suite for [`GraphStore`] implementations.
//!
//! PlatoD2GL's store and both baselines (PlatoGL-like, AliGraph-like) must
//! agree on *what* they compute — they differ only in cost. Each engine's
//! test module calls [`run_all`] with a factory for a fresh store.

use crate::{DatasetProfile, Edge, EdgeType, GraphStore, UpdateOp, VertexId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn v(x: u64) -> VertexId {
    VertexId(x)
}

/// Insert / lookup / delete / update basics.
pub fn basic_crud<S: GraphStore>(store: &S) {
    let et = EdgeType::DEFAULT;
    assert_eq!(store.num_edges(), 0);
    store.insert_edge(Edge::new(v(1), v(2), 0.5));
    store.insert_edge(Edge::new(v(1), v(3), 1.5));
    store.insert_edge(Edge::new(v(2), v(3), 2.0));
    assert_eq!(store.num_edges(), 3);
    assert_eq!(store.degree(v(1), et), 2);
    assert_eq!(store.degree(v(2), et), 1);
    assert_eq!(store.degree(v(99), et), 0);
    assert!((store.weight_sum(v(1), et) - 2.0).abs() < 1e-6);
    assert!((store.edge_weight(v(1), v(2), et).expect("present") - 0.5).abs() < 1e-6);
    assert_eq!(store.edge_weight(v(1), v(9), et), None);

    // Re-inserting an existing edge updates the weight, not the count.
    store.insert_edge(Edge::new(v(1), v(2), 0.9));
    assert_eq!(store.num_edges(), 3);
    assert!((store.edge_weight(v(1), v(2), et).expect("present") - 0.9).abs() < 1e-6);

    // Explicit weight update.
    assert!(store.update_weight(Edge::new(v(1), v(3), 3.0)));
    assert!((store.edge_weight(v(1), v(3), et).expect("present") - 3.0).abs() < 1e-6);
    assert!(!store.update_weight(Edge::new(v(1), v(9), 3.0)));

    // Deletion.
    assert!(store.delete_edge(v(1), v(2), et));
    assert!(!store.delete_edge(v(1), v(2), et));
    assert_eq!(store.num_edges(), 2);
    assert_eq!(store.degree(v(1), et), 1);

    // Neighbors listing.
    let mut n = store.neighbors(v(1), et);
    n.sort_by_key(|(id, _)| id.raw());
    assert_eq!(n.len(), 1);
    assert_eq!(n[0].0, v(3));
    assert!((n[0].1 - 3.0).abs() < 1e-6);
}

/// Relations are independent: the same (src, dst) pair may exist per etype.
pub fn heterogeneous_relations<S: GraphStore>(store: &S) {
    let a = EdgeType(0);
    let b = EdgeType(1);
    store.insert_edge(Edge {
        src: v(1),
        dst: v(2),
        etype: a,
        weight: 1.0,
        ts: 0,
    });
    store.insert_edge(Edge {
        src: v(1),
        dst: v(2),
        etype: b,
        weight: 2.0,
        ts: 0,
    });
    assert_eq!(store.num_edges(), 2);
    assert_eq!(store.degree(v(1), a), 1);
    assert_eq!(store.degree(v(1), b), 1);
    assert!((store.edge_weight(v(1), v(2), a).expect("present") - 1.0).abs() < 1e-6);
    assert!((store.edge_weight(v(1), v(2), b).expect("present") - 2.0).abs() < 1e-6);
    assert!(store.delete_edge(v(1), v(2), a));
    assert_eq!(store.degree(v(1), a), 0);
    assert_eq!(store.degree(v(1), b), 1);
}

/// Weighted sampling must track the edge-weight distribution.
pub fn sampling_distribution<S: GraphStore>(store: &S) {
    let et = EdgeType::DEFAULT;
    let weights = [1.0, 2.0, 3.0, 4.0];
    for (i, &w) in weights.iter().enumerate() {
        store.insert_edge(Edge::new(v(0), v(i as u64 + 1), w));
    }
    let mut rng = StdRng::seed_from_u64(17);
    let draws = 40_000;
    let got = store.sample_neighbors(v(0), et, draws, &mut rng);
    assert_eq!(got.len(), draws);
    let mut counts = [0usize; 4];
    for id in got {
        counts[(id.raw() - 1) as usize] += 1;
    }
    let total: f64 = weights.iter().sum();
    for i in 0..4 {
        let expected = draws as f64 * weights[i] / total;
        let g = counts[i] as f64;
        assert!(
            (g - expected).abs() < expected * 0.12,
            "neighbor {}: got {g}, expected {expected}",
            i + 1
        );
    }
    // Sampling a vertex with no out-edges returns nothing.
    assert!(store.sample_neighbors(v(777), et, 5, &mut rng).is_empty());
}

/// Sampling reflects dynamic changes immediately (the paper's whole point).
pub fn sampling_tracks_updates<S: GraphStore>(store: &S) {
    let et = EdgeType::DEFAULT;
    store.insert_edge(Edge::new(v(0), v(1), 1.0));
    store.insert_edge(Edge::new(v(0), v(2), 1.0));
    let mut rng = StdRng::seed_from_u64(3);
    // Crush neighbor 1's weight; neighbor 2 should dominate.
    store.update_weight(Edge::new(v(0), v(1), 1e-9));
    let got = store.sample_neighbors(v(0), et, 2_000, &mut rng);
    let ones = got.iter().filter(|id| id.raw() == 1).count();
    assert!(ones < 20, "neighbor 1 still sampled {ones} times");
    // Delete neighbor 2; only neighbor 1 remains.
    store.delete_edge(v(0), v(2), et);
    let got = store.sample_neighbors(v(0), et, 100, &mut rng);
    assert!(got.iter().all(|id| id.raw() == 1));
}

/// A batch of mixed ops must land exactly like sequential application.
pub fn batch_matches_sequential<S: GraphStore>(batch_store: &S, seq_store: &S) {
    let profile = DatasetProfile::tiny();
    let mut stream = profile.update_stream(11);
    let ops: Vec<UpdateOp> = stream.next_batch(4_000);
    batch_store.apply_batch(&ops);
    for op in &ops {
        seq_store.apply(op);
    }
    assert_eq!(batch_store.num_edges(), seq_store.num_edges());
    // Spot-check a set of vertices.
    for src in profile.sample_sources(64, 13) {
        for et in [EdgeType(0)] {
            assert_eq!(
                batch_store.degree(src, et),
                seq_store.degree(src, et),
                "degree mismatch at {src:?}"
            );
            let mut a = batch_store.neighbors(src, et);
            let mut b = seq_store.neighbors(src, et);
            a.sort_by_key(|(id, _)| id.raw());
            b.sort_by_key(|(id, _)| id.raw());
            assert_eq!(a.len(), b.len(), "neighbor count mismatch at {src:?}");
            for ((ia, wa), (ib, wb)) in a.iter().zip(&b) {
                assert_eq!(ia, ib);
                assert!((wa - wb).abs() < 1e-6);
            }
        }
    }
}

/// Build from a generated stream and verify against a reference adjacency.
pub fn stream_ingest_matches_reference<S: GraphStore>(store: &S) {
    let profile = DatasetProfile::tiny();
    let mut reference: HashMap<(u64, u16, u64), f64> = HashMap::new();
    for e in profile.edge_stream(21) {
        store.insert_edge(e);
        reference.insert((e.src.raw(), e.etype.0, e.dst.raw()), e.weight);
    }
    assert_eq!(store.num_edges(), reference.len());
    let mut degrees: HashMap<(u64, u16), usize> = HashMap::new();
    for (src, et, _) in reference.keys() {
        *degrees.entry((*src, *et)).or_default() += 1;
    }
    for ((src, et), d) in degrees {
        assert_eq!(
            store.degree(VertexId(src), EdgeType(et)),
            d,
            "degree of {src}"
        );
    }
    for ((src, et, dst), w) in &reference {
        let got = store
            .edge_weight(VertexId(*src), VertexId(*dst), EdgeType(*et))
            .unwrap_or_else(|| panic!("missing edge {src}->{dst}"));
        assert!((got - w).abs() < 1e-6);
    }
}

/// Memory accounting sanity: growing the graph grows the reported bytes.
pub fn memory_accounting_monotone<S: GraphStore>(store: &S) {
    let before = store.topology_bytes();
    for i in 0..10_000u64 {
        store.insert_edge(Edge::new(v(i % 50), v(1_000 + i), 1.0));
    }
    let after = store.topology_bytes();
    assert!(
        after > before,
        "topology bytes did not grow: {before} -> {after}"
    );
    // At least 8 bytes/edge of real payload must be accounted for.
    assert!(after - before >= 10_000 * 8, "suspiciously small: {after}");
}

/// Run the whole suite; `make` returns a fresh empty store per test.
pub fn run_all<S: GraphStore>(make: impl Fn() -> S) {
    basic_crud(&make());
    heterogeneous_relations(&make());
    sampling_distribution(&make());
    sampling_tracks_updates(&make());
    batch_matches_sequential(&make(), &make());
    stream_ingest_matches_reference(&make());
    memory_accounting_monotone(&make());
}
