//! The engine-agnostic storage interface.

use crate::{Edge, EdgeType, UpdateOp, VertexId};
use rand::RngCore;

/// The interface every dynamic graph storage engine in this workspace
/// implements: PlatoD2GL's samtree store, the PlatoGL-like block-KV baseline
/// and the AliGraph-like baseline.
///
/// All methods take `&self`: engines provide their own interior mutability
/// (the paper's systems are shared by many trainer clients). RNG state is
/// threaded in by the caller so sampling stays deterministic under a fixed
/// seed.
pub trait GraphStore: Send + Sync {
    /// Engine name for reports ("PlatoD2GL", "PlatoGL", "AliGraph").
    fn name(&self) -> &'static str;

    /// Insert an edge; if `(src, dst)` already exists in the relation, the
    /// weight is updated instead (Alg. 2 semantics).
    fn insert_edge(&self, edge: Edge);

    /// Delete an edge. Returns `true` if it existed.
    fn delete_edge(&self, src: VertexId, dst: VertexId, etype: EdgeType) -> bool;

    /// Set the weight of an existing edge. Returns `true` if it existed.
    fn update_weight(&self, edge: Edge) -> bool;

    /// Apply one update op.
    fn apply(&self, op: &UpdateOp) {
        match op {
            UpdateOp::Insert(e) => self.insert_edge(*e),
            UpdateOp::Delete { src, dst, etype } => {
                self.delete_edge(*src, *dst, *etype);
            }
            UpdateOp::UpdateWeight(e) => {
                self.update_weight(*e);
            }
        }
    }

    /// Apply a batch of ops sequentially. Engines with batch-optimized paths
    /// (PlatoD2GL's PALM-style updater) override this.
    fn apply_batch(&self, ops: &[UpdateOp]) {
        for op in ops {
            self.apply(op);
        }
    }

    /// Out-degree of `v` in the given relation.
    fn degree(&self, v: VertexId, etype: EdgeType) -> usize;

    /// Sum of outgoing edge weights of `v` (the paper's `w_u`).
    fn weight_sum(&self, v: VertexId, etype: EdgeType) -> f64;

    /// Weight of the specific edge, if present.
    fn edge_weight(&self, src: VertexId, dst: VertexId, etype: EdgeType) -> Option<f64>;

    /// Draw `k` out-neighbors of `v` with replacement, each with probability
    /// `w_{v,u} / w_v` (weighted neighbor sampling, paper Sec. II-B).
    ///
    /// Returns an empty vector when `v` has no out-edges in the relation.
    fn sample_neighbors(
        &self,
        v: VertexId,
        etype: EdgeType,
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<VertexId>;

    /// All out-neighbors of `v` with weights (test/debug aid; ordering is
    /// engine-defined).
    fn neighbors(&self, v: VertexId, etype: EdgeType) -> Vec<(VertexId, f64)>;

    /// Total number of stored edges.
    fn num_edges(&self) -> usize;

    /// Total heap bytes owned by the topology storage, including all index
    /// overhead. This is the quantity in the paper's Table IV.
    fn topology_bytes(&self) -> usize;
}
