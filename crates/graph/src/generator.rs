//! Deterministic workload generators.
//!
//! Edge streams drive the graph-building experiments (Fig. 8) and update
//! streams drive the dynamic-update experiments (Fig. 9, Fig. 11). Vertex
//! popularity on both endpoints is Zipf-distributed, so a small set of hub
//! vertices accumulates very large neighbor lists — the regime in which the
//! samtree's multi-level structure and the FSTable's `O(log n)` maintenance
//! actually matter.

use crate::profile::{DatasetProfile, RelationSpec};
use crate::{Edge, EdgeType, UpdateOp, VertexId, VertexType};
use platod2gl_sampling::{AliasTable, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws ranks in `[0, n)` with probability proportional to
/// `(rank + 1)^-s`, backed by an alias table for `O(1)` draws.
pub struct ZipfSampler {
    table: AliasTable,
}

impl ZipfSampler {
    /// Build for `n` ranks with exponent `s >= 0` (`s = 0` is uniform).
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one rank");
        assert!(
            n <= 1 << 26,
            "ZipfSampler materializes one weight per rank; scale the profile down"
        );
        let weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-s)).collect();
        Self {
            table: AliasTable::from_weights(&weights),
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.table.len() as u64
    }

    /// Draw one rank.
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        self.table.sample(rng).expect("non-empty table") as u64
    }
}

/// Per-relation edge generator state.
struct RelGen {
    etype: EdgeType,
    src_type: VertexType,
    dst_type: VertexType,
    num_edges: u64,
    src: ZipfSampler,
    dst: ZipfSampler,
}

impl RelGen {
    fn new(spec: &RelationSpec) -> Self {
        Self {
            etype: spec.etype,
            src_type: spec.src_type,
            dst_type: spec.dst_type,
            num_edges: spec.num_edges,
            src: ZipfSampler::new(spec.num_src, spec.zipf_exponent),
            dst: ZipfSampler::new(spec.num_dst, spec.zipf_exponent),
        }
    }

    fn gen_edge<R: Rng + ?Sized>(&self, rng: &mut R) -> Edge {
        let src = VertexId::compose(self.src_type, self.src.draw(rng));
        let mut dst = VertexId::compose(self.dst_type, self.dst.draw(rng));
        // Avoid self-loops in homogeneous relations (simple graph, Sec. II-A).
        if dst == src {
            let shifted = (dst.index() + 1) % self.dst.n();
            dst = VertexId::compose(self.dst_type, shifted);
        }
        Edge {
            src,
            dst,
            etype: self.etype,
            weight: rng.random_range(0.05..1.0),
            ts: 0,
        }
    }
}

/// Deterministic stream of edges realizing a [`DatasetProfile`].
///
/// Relations are emitted in profile order; when the profile is bi-directed,
/// each generated edge is immediately followed by its reverse.
pub struct EdgeStream {
    relations: Vec<RelGen>,
    rel_idx: usize,
    emitted_in_rel: u64,
    pending_reverse: Option<Edge>,
    bidirected: bool,
    rng: StdRng,
}

impl EdgeStream {
    /// Build a stream for the profile with a fixed seed.
    pub fn new(profile: &DatasetProfile, seed: u64) -> Self {
        Self {
            relations: profile.relations.iter().map(RelGen::new).collect(),
            rel_idx: 0,
            emitted_in_rel: 0,
            pending_reverse: None,
            bidirected: profile.bidirected,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Override the profile's bi-directed flag.
    pub fn with_bidirected(mut self, bidirected: bool) -> Self {
        self.bidirected = bidirected;
        self
    }

    /// Number of edges this stream will yield in total.
    pub fn expected_len(&self) -> u64 {
        let base: u64 = self.relations.iter().map(|r| r.num_edges).sum();
        if self.bidirected {
            base * 2
        } else {
            base
        }
    }
}

impl Iterator for EdgeStream {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        if let Some(rev) = self.pending_reverse.take() {
            return Some(rev);
        }
        loop {
            let rel = self.relations.get(self.rel_idx)?;
            if self.emitted_in_rel >= rel.num_edges {
                self.rel_idx += 1;
                self.emitted_in_rel = 0;
                continue;
            }
            self.emitted_in_rel += 1;
            let edge = rel.gen_edge(&mut self.rng);
            if self.bidirected {
                self.pending_reverse = Some(edge.reversed());
            }
            return Some(edge);
        }
    }
}

/// Operation mix for [`UpdateStream`] (fractions must sum to 1).
#[derive(Clone, Copy, Debug)]
pub struct UpdateMix {
    pub insert: f64,
    pub update_weight: f64,
    pub delete: f64,
}

impl Default for UpdateMix {
    /// The paper emphasizes that in-place updates and deletions "happen
    /// frequently in real-world applications" (Sec. V); this default makes
    /// them 40 % of traffic.
    fn default() -> Self {
        Self {
            insert: 0.6,
            update_weight: 0.3,
            delete: 0.1,
        }
    }
}

/// An endless deterministic stream of mixed [`UpdateOp`]s over a profile's
/// vertex space.
///
/// Inserted edges may collide with existing ones (becoming weight updates
/// inside the engine, per Alg. 2) and update/delete targets may miss —
/// both are no-ops in every engine and exactly what production churn looks
/// like.
pub struct UpdateStream {
    relations: Vec<RelGen>,
    mix: UpdateMix,
    rng: StdRng,
}

impl UpdateStream {
    /// Build with the default operation mix.
    pub fn new(profile: &DatasetProfile, seed: u64) -> Self {
        Self {
            relations: profile.relations.iter().map(RelGen::new).collect(),
            mix: UpdateMix::default(),
            rng: StdRng::seed_from_u64(seed ^ 0x5bd1_e995),
        }
    }

    /// Override the operation mix.
    pub fn with_mix(mut self, mix: UpdateMix) -> Self {
        let sum = mix.insert + mix.update_weight + mix.delete;
        assert!((sum - 1.0).abs() < 1e-9, "mix fractions must sum to 1");
        self.mix = mix;
        self
    }

    /// Produce the next batch of `n` ops.
    pub fn next_batch(&mut self, n: usize) -> Vec<UpdateOp> {
        (0..n).map(|_| self.next_op()).collect()
    }

    /// Produce one op.
    pub fn next_op(&mut self) -> UpdateOp {
        // Relations weighted by edge count so the op mix matches the data mix.
        let total: u64 = self.relations.iter().map(|r| r.num_edges).sum();
        let mut pick = self.rng.random_range(0..total.max(1));
        let mut rel = &self.relations[0];
        for r in &self.relations {
            if pick < r.num_edges {
                rel = r;
                break;
            }
            pick -= r.num_edges;
        }
        let edge = rel.gen_edge(&mut self.rng);
        let x: f64 = self.rng.random_range(0.0..1.0);
        if x < self.mix.insert {
            UpdateOp::Insert(edge)
        } else if x < self.mix.insert + self.mix.update_weight {
            UpdateOp::UpdateWeight(edge)
        } else {
            UpdateOp::Delete {
                src: edge.src,
                dst: edge.dst,
                etype: edge.etype,
            }
        }
    }
}

impl Iterator for UpdateStream {
    type Item = UpdateOp;

    fn next(&mut self) -> Option<UpdateOp> {
        Some(self.next_op())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn zipf_rank_zero_is_most_popular() {
        let z = ZipfSampler::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(z.draw(&mut rng)).or_default() += 1;
        }
        let c0 = counts.get(&0).copied().unwrap_or(0);
        let c99 = counts.get(&99).copied().unwrap_or(0);
        assert!(c0 > c99 * 10, "rank 0 ({c0}) should dwarf rank 99 ({c99})");
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[z.draw(&mut rng) as usize] += 1;
        }
        for c in counts {
            let f = c as f64 / 100_000.0;
            assert!((f - 0.1).abs() < 0.01, "{f}");
        }
    }

    #[test]
    fn edge_stream_is_deterministic_and_sized() {
        let p = DatasetProfile::tiny();
        let a: Vec<Edge> = p.edge_stream(9).collect();
        let b: Vec<Edge> = p.edge_stream(9).collect();
        assert_eq!(a.len(), p.total_edges() as usize);
        assert_eq!(a, b);
        let c: Vec<Edge> = p.edge_stream(10).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn bidirected_stream_emits_reverse_pairs() {
        let mut p = DatasetProfile::tiny();
        p.bidirected = true;
        let edges: Vec<Edge> = p.edge_stream(3).collect();
        assert_eq!(edges.len(), 2 * p.total_edges() as usize);
        for pair in edges.chunks(2) {
            assert_eq!(pair[1], pair[0].reversed());
        }
    }

    #[test]
    fn edges_respect_vertex_type_ranges() {
        let p = DatasetProfile::wechat().scaled(1e-6);
        // Forward direction only; reversed copies swap the type ranges.
        for e in p.edge_stream(4).with_bidirected(false).take(5_000) {
            let rel = p
                .relations
                .iter()
                .find(|r| r.etype == e.etype)
                .expect("known relation");
            assert_eq!(e.src.vtype(), rel.src_type);
            assert_eq!(e.dst.vtype(), rel.dst_type);
            assert!(e.src.index() < rel.num_src);
            assert!(e.dst.index() < rel.num_dst);
            assert!(e.weight > 0.0);
        }
    }

    #[test]
    fn no_self_loops() {
        let p = DatasetProfile::tiny(); // homogeneous relation
        for e in p.edge_stream(7) {
            assert_ne!(e.src, e.dst);
        }
    }

    #[test]
    fn update_stream_respects_mix() {
        let p = DatasetProfile::tiny();
        let mut s = p.update_stream(1).with_mix(UpdateMix {
            insert: 0.5,
            update_weight: 0.25,
            delete: 0.25,
        });
        let ops = s.next_batch(20_000);
        let inserts = ops
            .iter()
            .filter(|o| matches!(o, UpdateOp::Insert(_)))
            .count();
        let updates = ops
            .iter()
            .filter(|o| matches!(o, UpdateOp::UpdateWeight(_)))
            .count();
        let deletes = ops
            .iter()
            .filter(|o| matches!(o, UpdateOp::Delete { .. }))
            .count();
        assert!((inserts as f64 / 20_000.0 - 0.5).abs() < 0.02);
        assert!((updates as f64 / 20_000.0 - 0.25).abs() < 0.02);
        assert!((deletes as f64 / 20_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn update_stream_is_deterministic() {
        let p = DatasetProfile::tiny();
        let a = p.update_stream(5).next_batch(100);
        let b = p.update_stream(5).next_batch(100);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_mix_panics() {
        let p = DatasetProfile::tiny();
        let _ = p.update_stream(1).with_mix(UpdateMix {
            insert: 0.5,
            update_weight: 0.5,
            delete: 0.5,
        });
    }
}
