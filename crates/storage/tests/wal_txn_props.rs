//! Property tests for WAL transaction-marker atomicity: a log with plain
//! records interleaved between `BatchBegin`/`BatchCommit` transactions is
//! truncated at every byte offset and bit-flipped at arbitrary positions,
//! and replay must never deliver a partial transaction — every transaction
//! whose commit marker made it to disk intact is delivered whole, every
//! other transaction is dropped whole.

use platod2gl_graph::{Edge, EdgeType, UpdateOp, VertexId};
use platod2gl_storage::crc32c::crc32c;
use platod2gl_storage::{replay_wal, WalWriter};
use proptest::collection::vec;
use proptest::prelude::*;

/// Vertex-id space reserved for transactional ops: transaction `id`'s ops
/// all carry `src = TXN_MARK + id`, so the replay sink can attribute every
/// delivered op to its transaction (or to the plain stream, below the mark).
const TXN_MARK: u64 = 1_000_000;

/// Force multi-record transactions: ops are chunked two to a `Batch`
/// record so the commit marker chains more than one record CRC.
const CHUNK: usize = 2;

fn op(src: u64, k: usize) -> UpdateOp {
    UpdateOp::Insert(Edge {
        src: VertexId(src),
        dst: VertexId(k as u64 + 1),
        etype: EdgeType::DEFAULT,
        weight: 1.0,
        ts: 0,
    })
}

/// One appended segment of the generated log.
struct Segment {
    /// `None` for a plain record, `Some(txn_id)` for a committed txn.
    txn_id: Option<u64>,
    n_ops: usize,
    /// Byte offset just past the segment's last record (its commit marker
    /// for transactions). Anything at or past this offset is durable.
    end_offset: u64,
}

/// Build a WAL of interleaved plain records and committed transactions.
/// `shape[i] = (kind, n_ops)`: kind 0 appends single-op records, kind 1 a
/// plain `Batch` record, anything else a full transaction.
fn build_wal(shape: &[(u8, usize)]) -> (Vec<u8>, Vec<Segment>) {
    let mut w = WalWriter::create(Vec::new()).expect("header");
    let mut segments = Vec::new();
    let mut next_txn = 1u64;
    for (i, &(kind, n_ops)) in shape.iter().enumerate() {
        match kind {
            0 => {
                for k in 0..n_ops {
                    w.append(&op(i as u64, k)).expect("append");
                }
                segments.push(Segment {
                    txn_id: None,
                    n_ops,
                    end_offset: w.offset(),
                });
            }
            1 => {
                let ops: Vec<_> = (0..n_ops).map(|k| op(i as u64, k)).collect();
                w.append_batch(&ops).expect("batch");
                segments.push(Segment {
                    txn_id: None,
                    n_ops,
                    end_offset: w.offset(),
                });
            }
            _ => {
                let id = next_txn;
                next_txn += 1;
                let ops: Vec<_> = (0..n_ops).map(|k| op(TXN_MARK + id, k)).collect();
                w.append_txn_begin(id, n_ops as u32).expect("begin");
                let mut chain = Vec::new();
                for chunk in ops.chunks(CHUNK) {
                    let crc = w.append_batch_crc(chunk).expect("chunk");
                    chain.extend_from_slice(&crc.to_le_bytes());
                }
                w.append_txn_commit(id, crc32c(&chain)).expect("commit");
                segments.push(Segment {
                    txn_id: Some(id),
                    n_ops,
                    end_offset: w.offset(),
                });
            }
        }
    }
    (w.into_inner(), segments)
}

/// Replay `data`, counting delivered ops per transaction id (index 0 holds
/// the plain-record count).
fn replay_counts(
    data: &[u8],
    n_txns: usize,
) -> std::io::Result<(Vec<usize>, platod2gl_storage::WalReplayReport)> {
    let mut counts = vec![0usize; n_txns + 1];
    let report = replay_wal(data, |op| {
        let src = match op {
            UpdateOp::Insert(e) => e.src.0,
            UpdateOp::Delete { src, .. } => src.0,
            UpdateOp::UpdateWeight(e) => e.src.0,
        };
        let slot = if src >= TXN_MARK {
            (src - TXN_MARK) as usize
        } else {
            0
        };
        counts[slot] += 1;
    })?;
    Ok((counts, report))
}

fn arb_shape() -> impl Strategy<Value = Vec<(u8, usize)>> {
    vec((0u8..4, 1usize..6), 1..10)
}

proptest! {
    /// Truncating the log at ANY byte offset never yields a partial
    /// transaction: transactions whose commit marker lies wholly before
    /// the cut are delivered in full, all others are dropped in full, and
    /// plain records before the cut always survive.
    #[test]
    fn truncation_never_splits_a_transaction(
        shape in arb_shape(),
        cut_seed in any::<u64>(),
    ) {
        let (data, segments) = build_wal(&shape);
        let n_txns = segments.iter().filter(|s| s.txn_id.is_some()).count();
        let cut = (cut_seed as usize) % (data.len() + 1);
        if cut > 0 && cut < 8 {
            // Inside the magic header: structurally not a WAL.
            prop_assert!(replay_counts(&data[..cut], n_txns).is_err());
            return Ok(());
        }
        let (counts, report) = replay_counts(&data[..cut], n_txns).expect("truncation is torn, not corrupt");
        let mut plain_expected = 0usize;
        for seg in &segments {
            match seg.txn_id {
                Some(id) => {
                    let got = counts[id as usize];
                    prop_assert!(
                        got == 0 || got == seg.n_ops,
                        "txn {} partially delivered: {}/{} ops at cut {}",
                        id, got, seg.n_ops, cut
                    );
                    if seg.end_offset <= cut as u64 {
                        prop_assert_eq!(got, seg.n_ops);
                    }
                }
                None => {
                    if seg.end_offset <= cut as u64 {
                        plain_expected += seg.n_ops;
                    }
                }
            }
        }
        prop_assert!(counts[0] >= plain_expected);
        prop_assert!(report.durable_len <= cut as u64);
    }

    /// Flipping any single bit past the header yields either a structured
    /// replay error or a consistent log — never a partial transaction, and
    /// never a dropped transaction that committed wholly before the flip.
    #[test]
    fn bit_flips_never_split_a_transaction(
        shape in arb_shape(),
        at_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let (mut data, segments) = build_wal(&shape);
        let n_txns = segments.iter().filter(|s| s.txn_id.is_some()).count();
        let at = 8 + (at_seed as usize) % (data.len() - 8);
        data[at] ^= 1 << bit;
        let Ok((counts, _)) = replay_counts(&data, n_txns) else {
            // Hard corruption verdict (orphan markers, interior damage
            // with valid records following, chain CRC mismatch) is a
            // legitimate fail-stop outcome.
            return Ok(());
        };
        for seg in &segments {
            if let Some(id) = seg.txn_id {
                let got = counts[id as usize];
                prop_assert!(
                    got == 0 || got == seg.n_ops,
                    "txn {} partially delivered: {}/{} ops after flip at {}",
                    id, got, seg.n_ops, at
                );
                if seg.end_offset <= at as u64 {
                    // Damage strictly after this txn's commit cannot
                    // retroactively drop it.
                    prop_assert_eq!(got, seg.n_ops);
                }
            }
        }
    }

    /// The unmodified log always replays completely: every segment —
    /// plain or transactional — is delivered in full, nothing is dropped,
    /// and the report covers the whole file.
    #[test]
    fn intact_logs_deliver_every_segment(shape in arb_shape()) {
        let (data, segments) = build_wal(&shape);
        let n_txns = segments.iter().filter(|s| s.txn_id.is_some()).count();
        let (counts, report) = replay_counts(&data, n_txns).expect("intact log");
        let mut plain_expected = 0usize;
        for seg in &segments {
            match seg.txn_id {
                Some(id) => prop_assert_eq!(counts[id as usize], seg.n_ops),
                None => plain_expected += seg.n_ops,
            }
        }
        prop_assert_eq!(counts[0], plain_expected);
        prop_assert_eq!(report.durable_len, data.len() as u64);
        prop_assert_eq!(report.torn_tail, None);
        prop_assert_eq!(report.dropped_batches, 0);
    }
}
