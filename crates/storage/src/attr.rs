//! Attribute storage (paper Sec. III: "As for the attribute storage, the
//! key-value store is used").
//!
//! Features are opaque byte blobs (the trainer layer decodes them into
//! tensors). Unlike topology, attributes are point-looked-up by exact key
//! and never range-scanned or sampled, so a key-value design has no index
//! disadvantage here.

use bytes::Bytes;
use platod2gl_cuckoo::CuckooMap;
use platod2gl_graph::{EdgeType, VertexId};
use platod2gl_mem::DeepSize;

/// Wrapper so the cuckoo map can account for blob memory.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Blob(Bytes);

impl DeepSize for Blob {
    fn heap_bytes(&self) -> usize {
        self.0.len()
    }
}

/// Edge attribute key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct EdgeKey {
    src: u64,
    dst: u64,
    etype: u16,
}

impl DeepSize for EdgeKey {
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// Concurrent attribute store for vertex and edge features.
#[derive(Default)]
pub struct AttributeStore {
    vertex: CuckooMap<u64, Blob>,
    edge: CuckooMap<EdgeKey, Blob>,
}

impl AttributeStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store the feature bytes of a vertex, replacing any previous value.
    pub fn set_vertex(&self, v: VertexId, data: Bytes) {
        self.vertex.insert(v.raw(), Blob(data));
    }

    /// Fetch the feature bytes of a vertex. `Bytes` clones are cheap
    /// (refcounted), so this returns an owned handle.
    pub fn vertex(&self, v: VertexId) -> Option<Bytes> {
        self.vertex.read(&v.raw(), |b| b.0.clone())
    }

    /// Remove a vertex's features.
    pub fn remove_vertex(&self, v: VertexId) -> Option<Bytes> {
        self.vertex.remove(&v.raw()).map(|b| b.0)
    }

    /// Store the feature bytes of an edge.
    pub fn set_edge(&self, src: VertexId, dst: VertexId, etype: EdgeType, data: Bytes) {
        self.edge.insert(
            EdgeKey {
                src: src.raw(),
                dst: dst.raw(),
                etype: etype.0,
            },
            Blob(data),
        );
    }

    /// Fetch the feature bytes of an edge.
    pub fn edge(&self, src: VertexId, dst: VertexId, etype: EdgeType) -> Option<Bytes> {
        self.edge.read(
            &EdgeKey {
                src: src.raw(),
                dst: dst.raw(),
                etype: etype.0,
            },
            |b| b.0.clone(),
        )
    }

    /// Remove an edge's features.
    pub fn remove_edge(&self, src: VertexId, dst: VertexId, etype: EdgeType) -> Option<Bytes> {
        self.edge
            .remove(&EdgeKey {
                src: src.raw(),
                dst: dst.raw(),
                etype: etype.0,
            })
            .map(|b| b.0)
    }

    /// Number of stored vertex features.
    pub fn num_vertex_attrs(&self) -> usize {
        self.vertex.len()
    }

    /// Number of stored edge features.
    pub fn num_edge_attrs(&self) -> usize {
        self.edge.len()
    }

    /// Total heap bytes (blobs plus KV index overhead).
    pub fn attribute_bytes(&self) -> usize {
        self.vertex.heap_bytes() + self.edge.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }

    #[test]
    fn vertex_attr_roundtrip() {
        let store = AttributeStore::new();
        store.set_vertex(v(1), Bytes::from_static(b"feat1"));
        store.set_vertex(v(2), Bytes::from_static(b"feat2"));
        assert_eq!(store.vertex(v(1)).as_deref(), Some(&b"feat1"[..]));
        assert_eq!(store.vertex(v(3)), None);
        assert_eq!(store.num_vertex_attrs(), 2);
        assert_eq!(store.remove_vertex(v(1)).as_deref(), Some(&b"feat1"[..]));
        assert_eq!(store.vertex(v(1)), None);
    }

    #[test]
    fn edge_attr_roundtrip_and_type_separation() {
        let store = AttributeStore::new();
        store.set_edge(v(1), v(2), EdgeType(0), Bytes::from_static(b"a"));
        store.set_edge(v(1), v(2), EdgeType(1), Bytes::from_static(b"b"));
        assert_eq!(
            store.edge(v(1), v(2), EdgeType(0)).as_deref(),
            Some(&b"a"[..])
        );
        assert_eq!(
            store.edge(v(1), v(2), EdgeType(1)).as_deref(),
            Some(&b"b"[..])
        );
        assert_eq!(store.edge(v(2), v(1), EdgeType(0)), None);
        assert_eq!(store.num_edge_attrs(), 2);
        assert!(store.remove_edge(v(1), v(2), EdgeType(0)).is_some());
        assert_eq!(store.num_edge_attrs(), 1);
    }

    #[test]
    fn overwrite_replaces_value() {
        let store = AttributeStore::new();
        store.set_vertex(v(7), Bytes::from_static(b"old"));
        store.set_vertex(v(7), Bytes::from_static(b"new"));
        assert_eq!(store.vertex(v(7)).as_deref(), Some(&b"new"[..]));
        assert_eq!(store.num_vertex_attrs(), 1);
    }

    #[test]
    fn memory_counts_blob_bytes() {
        let store = AttributeStore::new();
        let before = store.attribute_bytes();
        store.set_vertex(v(1), Bytes::from(vec![0u8; 4096]));
        assert!(store.attribute_bytes() >= before + 4096);
    }

    #[test]
    fn concurrent_attribute_writes() {
        let store = AttributeStore::new();
        crossbeam::scope(|s| {
            for t in 0..4u64 {
                let store = &store;
                s.spawn(move |_| {
                    for i in 0..1_000u64 {
                        store.set_vertex(v(t * 1_000 + i), Bytes::from(vec![t as u8; 16]));
                    }
                });
            }
        })
        .expect("threads join");
        assert_eq!(store.num_vertex_attrs(), 4_000);
        assert_eq!(store.vertex(v(3_999)).expect("present").len(), 16);
    }
}
