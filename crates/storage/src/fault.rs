//! Crash-point fault injection for the durability plane.
//!
//! The WAL's atomicity claims ("recovery yields exactly the pre-txn or
//! post-txn graph") are only worth something if they are *swept*: killed at
//! every boundary where a real process can die and checked on reopen. A
//! [`CrashInjector`] is armed at one [`CrashPoint`] and makes the next
//! durability call through that point fail with an injected [`io::Error`],
//! simulating the process dying right there.
//!
//! Placement discipline: every crash point sits **immediately after a flush
//! boundary** (or before any bytes are produced). When a point fires,
//! everything before it is on disk exactly as a kill would leave it, and
//! nothing is half-buffered in a `BufWriter` that a graceful unwind would
//! sneak out behind the "crash". Torn *mid-record* writes — the other way a
//! real crash manifests — are covered separately by the byte-level
//! truncation/bit-flip property tests in `wal.rs`'s test suite and
//! `tests/wal_txn_props.rs`.
//!
//! Contract: after an injected crash the store's WAL tail may hold an
//! uncommitted transaction. The store fail-stops further writes
//! (poisoned), and the caller is expected to drop it and reopen — recovery
//! is the code under test.

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// One enumerable place where the durability plane can be killed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Before a plain (non-transactional) WAL append writes anything.
    WalAppend,
    /// Before a transaction writes its `BatchBegin` marker (nothing of the
    /// txn is on disk).
    TxnBeforeBegin,
    /// After the `BatchBegin` marker is flushed, before any op records.
    TxnAfterBegin,
    /// After all op records are flushed, before the `BatchCommit` marker.
    TxnAfterOps,
    /// After the `BatchCommit` marker is flushed, before the fsync. The
    /// commit is in the OS page cache: a process kill keeps it, so recovery
    /// must replay the txn.
    TxnAfterCommit,
    /// After the commit fsync, before the in-memory apply. Fully durable;
    /// recovery must replay the txn.
    TxnAfterFsync,
    /// After `snapshot.tmp` is written and fsynced, before the rename.
    CheckpointAfterSnapshotWrite,
    /// After `snapshot.tmp` is renamed over `snapshot.bin`, before the
    /// directory fsync.
    CheckpointAfterRename,
    /// After the directory fsync, before the WAL is reset.
    CheckpointAfterDirSync,
    /// After the WAL is reset to empty and fsynced.
    CheckpointAfterWalReset,
}

impl CrashPoint {
    /// Every enumerable crash point, in durability-path order — the sweep
    /// domain for crash-matrix tests.
    pub const ALL: [CrashPoint; 10] = [
        CrashPoint::WalAppend,
        CrashPoint::TxnBeforeBegin,
        CrashPoint::TxnAfterBegin,
        CrashPoint::TxnAfterOps,
        CrashPoint::TxnAfterCommit,
        CrashPoint::TxnAfterFsync,
        CrashPoint::CheckpointAfterSnapshotWrite,
        CrashPoint::CheckpointAfterRename,
        CrashPoint::CheckpointAfterDirSync,
        CrashPoint::CheckpointAfterWalReset,
    ];

    /// The transaction-path subset of [`CrashPoint::ALL`].
    pub const TXN: [CrashPoint; 5] = [
        CrashPoint::TxnBeforeBegin,
        CrashPoint::TxnAfterBegin,
        CrashPoint::TxnAfterOps,
        CrashPoint::TxnAfterCommit,
        CrashPoint::TxnAfterFsync,
    ];

    /// Stable name for logs and sweep output.
    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::WalAppend => "wal-append",
            CrashPoint::TxnBeforeBegin => "txn-before-begin",
            CrashPoint::TxnAfterBegin => "txn-after-begin",
            CrashPoint::TxnAfterOps => "txn-after-ops",
            CrashPoint::TxnAfterCommit => "txn-after-commit",
            CrashPoint::TxnAfterFsync => "txn-after-fsync",
            CrashPoint::CheckpointAfterSnapshotWrite => "checkpoint-after-snapshot-write",
            CrashPoint::CheckpointAfterRename => "checkpoint-after-rename",
            CrashPoint::CheckpointAfterDirSync => "checkpoint-after-dir-sync",
            CrashPoint::CheckpointAfterWalReset => "checkpoint-after-wal-reset",
        }
    }

    /// True once the transaction's commit marker is on disk (or in the page
    /// cache, which a process kill preserves): recovery must observe the
    /// post-txn graph.
    pub fn txn_is_committed(self) -> bool {
        matches!(self, CrashPoint::TxnAfterCommit | CrashPoint::TxnAfterFsync)
    }
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Arms one [`CrashPoint`] at a time and fires an injected I/O error when
/// execution reaches it. One-shot: firing disarms.
///
/// The hot-path check is a single relaxed atomic load, so an unarmed
/// injector costs nothing on the durability paths it guards.
#[derive(Debug, Default)]
pub struct CrashInjector {
    /// `(point, remaining_skips)`: fire on the hit after `remaining_skips`
    /// prior hits of the same point pass through.
    armed: Mutex<Option<(CrashPoint, u32)>>,
    active: AtomicBool,
    crashes: AtomicU64,
}

impl CrashInjector {
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm the injector to crash at the `nth` (0-based) hit of `point`.
    /// Re-arming replaces any previous plan.
    pub fn arm_nth(&self, point: CrashPoint, nth: u32) {
        *self.lock() = Some((point, nth));
        self.active.store(true, Ordering::Release);
    }

    /// Arm the injector to crash at the next hit of `point`.
    pub fn arm(&self, point: CrashPoint) {
        self.arm_nth(point, 0);
    }

    /// Clear any armed crash plan.
    pub fn disarm(&self) {
        *self.lock() = None;
        self.active.store(false, Ordering::Release);
    }

    /// Crashes fired so far.
    pub fn crashes(&self) -> u64 {
        self.crashes.load(Ordering::Relaxed)
    }

    /// Probe a crash point. Returns the injected error when the armed plan
    /// fires; otherwise passes through.
    pub fn hit(&self, point: CrashPoint) -> io::Result<()> {
        if !self.active.load(Ordering::Acquire) {
            return Ok(());
        }
        let mut plan = self.lock();
        match *plan {
            Some((p, 0)) if p == point => {
                *plan = None;
                self.active.store(false, Ordering::Release);
                self.crashes.fetch_add(1, Ordering::Relaxed);
                Err(io::Error::other(format!(
                    "injected crash at {} (simulated process kill)",
                    point.name()
                )))
            }
            Some((p, ref mut n)) if p == point => {
                *n -= 1;
                Ok(())
            }
            _ => Ok(()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Option<(CrashPoint, u32)>> {
        self.armed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_injector_passes_every_point() {
        let inj = CrashInjector::new();
        for p in CrashPoint::ALL {
            assert!(inj.hit(p).is_ok());
        }
        assert_eq!(inj.crashes(), 0);
    }

    #[test]
    fn armed_point_fires_once_then_disarms() {
        let inj = CrashInjector::new();
        inj.arm(CrashPoint::TxnAfterCommit);
        assert!(
            inj.hit(CrashPoint::TxnAfterBegin).is_ok(),
            "other points pass"
        );
        let err = inj.hit(CrashPoint::TxnAfterCommit).unwrap_err();
        assert!(err.to_string().contains("txn-after-commit"), "{err}");
        assert!(inj.hit(CrashPoint::TxnAfterCommit).is_ok(), "one-shot");
        assert_eq!(inj.crashes(), 1);
    }

    #[test]
    fn nth_hit_counts_down_before_firing() {
        let inj = CrashInjector::new();
        inj.arm_nth(CrashPoint::WalAppend, 2);
        assert!(inj.hit(CrashPoint::WalAppend).is_ok());
        assert!(inj.hit(CrashPoint::WalAppend).is_ok());
        assert!(inj.hit(CrashPoint::WalAppend).is_err(), "third hit fires");
    }

    #[test]
    fn disarm_clears_the_plan() {
        let inj = CrashInjector::new();
        inj.arm(CrashPoint::WalAppend);
        inj.disarm();
        assert!(inj.hit(CrashPoint::WalAppend).is_ok());
    }

    #[test]
    fn every_point_has_a_distinct_name() {
        let mut names: Vec<&str> = CrashPoint::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CrashPoint::ALL.len());
    }
}
