//! The samtree-based dynamic topology store (paper Sec. IV-B) and the
//! PALM-style batch-parallel updater (Sec. VI-B, Appendix B).

use parking_lot::RwLock;
use platod2gl_cuckoo::CuckooMap;
use platod2gl_graph::{
    sanitize_weight, Edge, EdgeType, GraphStore, TimeWindow, UpdateOp, VertexId,
};
use platod2gl_mem::DeepSize;
use platod2gl_obs::{Counter, Gauge, Histogram, Registry};
use platod2gl_samtree::{InsertOutcome, OpStats, SamTree, SamTreeConfig};
use rand::{Rng, RngCore};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One exported adjacency entry: `((src, etype), [(dst, weight, ts), ...])`.
/// `ts == 0` marks a timeless edge (static data, or restored from a pre-v3
/// snapshot).
pub type AdjacencyEntry = ((u64, u16), Vec<(u64, f64, u64)>);

/// Bounded rejection retries per windowed sample slot before falling back
/// to the filtered scan. Retries consume the caller's RNG deterministically,
/// so local and remote windowed sampling stay bit-identical.
const WINDOW_RETRIES: usize = 8;

/// Configuration of the whole store.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Samtree tuning (capacity `c`, slackness `α`, CP-ID compression).
    pub tree: SamTreeConfig,
    /// Lock shards in the cuckoo directory.
    pub directory_shards: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            tree: SamTreeConfig::default(),
            directory_shards: 64,
        }
    }
}

/// Directory key: one samtree per (source vertex, relation).
///
/// The paper's Fig. 3 hashmap is keyed by vertex alone on a homogeneous
/// example; for heterogeneous graphs each relation keeps its own
/// neighborhood so that typed neighbor sampling never filters.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct TreeKey {
    src: u64,
    etype: u16,
}

impl DeepSize for TreeKey {
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// Timestamp-column key: one event time per resident edge.
///
/// The column lives beside the samtrees rather than inside them so the
/// weight hot paths (insert runs, Fenwick updates, inverse-CDF draws) are
/// untouched when the workload is timeless — the map simply stays empty
/// and every guard on it short-circuits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct TsKey {
    src: u64,
    dst: u64,
    etype: u16,
}

impl DeepSize for TsKey {
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// Outcome of one per-source recency-decay pass (see
/// [`DynamicGraphStore::decay_recency`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DecayOutcome {
    /// Edges examined (the source's full out-neighborhood).
    pub scanned: usize,
    /// Edges whose weight actually shrank.
    pub decayed: usize,
    /// Edges clamped at the positive floor this pass.
    pub floored: usize,
}

/// A shared, independently lockable samtree. The directory shard lock is
/// held only long enough to clone the `Arc`; tree mutations take the
/// per-tree `RwLock`, so updates to different source vertices never
/// serialize on each other, and sampling (read) never blocks sampling.
#[derive(Clone)]
pub(crate) struct TreeCell(Arc<RwLock<SamTree>>);

impl TreeCell {
    fn new() -> Self {
        TreeCell(Arc::new(RwLock::new(SamTree::new())))
    }
}

impl DeepSize for TreeCell {
    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<RwLock<SamTree>>() + self.0.read().heap_bytes()
    }
}

/// One store's resident topology memory, split into samtree payload
/// (leaf id lists + Fenwick tables), samtree index (separators,
/// cumulative-sum tables, child spines), and directory overhead (cuckoo
/// buckets + lock cells). The three parts sum to `total_bytes`, which is
/// exactly [`GraphStore::topology_bytes`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreMemory {
    /// Bytes holding actual neighbor ids and weights (leaf level).
    pub leaf_bytes: usize,
    /// Samtree internal-node bytes (index overhead above the leaves).
    pub internal_bytes: usize,
    /// Cuckoo directory bytes (buckets, keys, lock cells).
    pub directory_bytes: usize,
    /// Total resident topology bytes.
    pub total_bytes: usize,
}

/// PlatoD2GL's dynamic graph topology store: a concurrent cuckoo directory
/// of per-vertex samtrees. Implements [`GraphStore`].
///
/// ```
/// use platod2gl_graph::{Edge, EdgeType, GraphStore, VertexId};
/// use platod2gl_storage::DynamicGraphStore;
///
/// let store = DynamicGraphStore::with_defaults();
/// store.insert_edge(Edge::new(VertexId(1), VertexId(2), 0.3));
/// store.insert_edge(Edge::new(VertexId(1), VertexId(3), 0.7));
/// assert_eq!(store.degree(VertexId(1), EdgeType::DEFAULT), 2);
///
/// // O(log n) in-place weight update, immediately visible to sampling.
/// store.update_weight(Edge::new(VertexId(1), VertexId(2), 5.0));
/// let mut rng = rand::rng();
/// let picks = store.sample_neighbors(VertexId(1), EdgeType::DEFAULT, 100, &mut rng);
/// assert!(picks.iter().filter(|v| v.raw() == 2).count() > 50);
/// ```
pub struct DynamicGraphStore {
    config: StoreConfig,
    directory: CuckooMap<TreeKey, TreeCell>,
    /// Per-edge event times (temporal plane). Only stamped edges
    /// (`ts != 0`) occupy the map; timeless workloads never touch it.
    timestamps: CuckooMap<TsKey, u64>,
    /// Resident stamped-edge count: the cheap guard that keeps every
    /// timestamp-column branch off the static hot paths.
    num_stamped: AtomicUsize,
    num_edges: AtomicUsize,
    registry: Arc<Registry>,
    metrics: StoreMetrics,
}

/// Pre-resolved registry handles for the store's hot paths: the samtree
/// operation counters (the paper's Table V), batch-apply timing, sampling
/// traffic, and the resident-edge gauge. Handles are resolved once at
/// construction so recording is pure atomic arithmetic.
#[derive(Debug)]
struct StoreMetrics {
    leaf_ops: Arc<Counter>,
    internal_ops: Arc<Counter>,
    leaf_splits: Arc<Counter>,
    internal_splits: Arc<Counter>,
    merges: Arc<Counter>,
    batches: Arc<Counter>,
    batch_ops: Arc<Counter>,
    apply_batch_ns: Arc<Histogram>,
    sample_requests: Arc<Counter>,
    sample_draws: Arc<Counter>,
    edges: Arc<Gauge>,
    window_retries: Arc<Counter>,
    window_fallbacks: Arc<Counter>,
}

impl StoreMetrics {
    fn new(registry: &Registry) -> Self {
        Self {
            leaf_ops: registry.counter("samtree.leaf_ops"),
            internal_ops: registry.counter("samtree.internal_ops"),
            leaf_splits: registry.counter("samtree.leaf_splits"),
            internal_splits: registry.counter("samtree.internal_splits"),
            merges: registry.counter("samtree.merges"),
            batches: registry.counter("storage.batches"),
            batch_ops: registry.counter("storage.batch_ops"),
            apply_batch_ns: registry.histogram("storage.apply_batch_ns"),
            sample_requests: registry.counter("samtree.sample_requests"),
            sample_draws: registry.counter("samtree.sample_draws"),
            edges: registry.gauge("storage.edges"),
            window_retries: registry.counter("temporal.window_retries"),
            window_fallbacks: registry.counter("temporal.window_fallbacks"),
        }
    }

    /// Fold one tree-local [`OpStats`] delta into the registry counters.
    fn add_ops(&self, s: &OpStats) {
        if s.leaf_ops > 0 {
            self.leaf_ops.add(s.leaf_ops);
        }
        if s.internal_ops > 0 {
            self.internal_ops.add(s.internal_ops);
        }
        if s.leaf_splits > 0 {
            self.leaf_splits.add(s.leaf_splits);
        }
        if s.internal_splits > 0 {
            self.internal_splits.add(s.internal_splits);
        }
        if s.merges > 0 {
            self.merges.add(s.merges);
        }
    }
}

impl DynamicGraphStore {
    /// Create an empty store with the given configuration and a private
    /// metrics registry.
    pub fn new(config: StoreConfig) -> Self {
        Self::with_registry(config, Arc::new(Registry::new()))
    }

    /// Create an empty store publishing its metrics (`samtree.*`,
    /// `storage.*`) into a shared registry — how the sharded cluster gives
    /// all of its shards one unified snapshot.
    pub fn with_registry(config: StoreConfig, registry: Arc<Registry>) -> Self {
        let tree = config.tree.validated();
        let metrics = StoreMetrics::new(&registry);
        Self {
            config: StoreConfig { tree, ..config },
            directory: CuckooMap::with_shards_and_capacity(config.directory_shards, 1024),
            timestamps: CuckooMap::with_shards_and_capacity(config.directory_shards, 1024),
            num_stamped: AtomicUsize::new(0),
            num_edges: AtomicUsize::new(0),
            registry,
            metrics,
        }
    }

    /// Create with the paper's default parameters (capacity 256, α = 0,
    /// compression on).
    pub fn with_defaults() -> Self {
        Self::new(StoreConfig::default())
    }

    /// The metrics registry this store records into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The samtree configuration in effect.
    pub fn tree_config(&self) -> SamTreeConfig {
        self.config.tree
    }

    /// Snapshot of the accumulated samtree operation counters (Table V),
    /// served from the metrics registry.
    pub fn op_stats(&self) -> OpStats {
        OpStats {
            leaf_ops: self.metrics.leaf_ops.get(),
            internal_ops: self.metrics.internal_ops.get(),
            leaf_splits: self.metrics.leaf_splits.get(),
            internal_splits: self.metrics.internal_splits.get(),
            merges: self.metrics.merges.get(),
        }
    }

    /// Number of (vertex, relation) entries in the directory, i.e. source
    /// vertices with at least one historical out-edge.
    pub fn num_source_entries(&self) -> usize {
        self.directory.len()
    }

    fn cell(&self, key: TreeKey) -> Option<TreeCell> {
        self.directory.read(&key, TreeCell::clone)
    }

    /// Whether any edge currently carries a timestamp. Guards every
    /// timestamp-column touch so timeless workloads pay one relaxed load.
    #[inline]
    fn has_stamps(&self) -> bool {
        self.num_stamped.load(Ordering::Relaxed) > 0
    }

    fn stamp(&self, key: TsKey, ts: u64) {
        if self.timestamps.insert(key, ts).is_none() {
            self.num_stamped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn unstamp(&self, key: &TsKey) {
        if self.timestamps.remove(key).is_some() {
            self.num_stamped.fetch_sub(1, Ordering::Relaxed);
        }
    }

    fn ts_of(&self, src: u64, dst: u64, etype: u16) -> u64 {
        if !self.has_stamps() {
            return 0;
        }
        self.timestamps.get(&TsKey { src, dst, etype }).unwrap_or(0)
    }

    /// The event time of an edge, or `0` if the edge is timeless (or
    /// absent — callers that need presence use [`GraphStore::edge_weight`]).
    pub fn edge_ts(&self, src: VertexId, dst: VertexId, etype: EdgeType) -> u64 {
        self.ts_of(src.raw(), dst.raw(), etype.0)
    }

    fn cell_or_create(&self, key: TreeKey) -> TreeCell {
        self.directory
            .update_or_insert_with(key, TreeCell::new, |cell| cell.clone())
    }

    /// Apply every op for one (src, etype) group under a single tree lock.
    fn apply_group<'a>(&self, key: TreeKey, ops: impl IntoIterator<Item = &'a UpdateOp>) {
        let cell = self.cell_or_create(key);
        let cfg = self.config.tree;
        let mut local = OpStats::default();
        let mut edge_delta = 0isize;
        {
            let mut tree = cell.0.write();
            // Consecutive inserts are applied through the Appendix-B batch
            // path (one descent per leaf run, one aggregation rebuild per
            // node). Updates/deletes flush the run so same-destination op
            // interleavings keep sequential semantics.
            let mut run: Vec<(u64, f64)> = Vec::new();
            let flush = |tree: &mut SamTree,
                         run: &mut Vec<(u64, f64)>,
                         local: &mut OpStats,
                         edge_delta: &mut isize| {
                if run.len() == 1 {
                    let (id, w) = run[0];
                    if tree.insert(&cfg, id, w, local) == InsertOutcome::Inserted {
                        *edge_delta += 1;
                    }
                } else if !run.is_empty() {
                    *edge_delta += tree.insert_batch(&cfg, run, local) as isize;
                }
                run.clear();
            };
            for op in ops {
                match op {
                    UpdateOp::Insert(e) => {
                        run.push((e.dst.raw(), sanitize_weight(e.weight)));
                        if e.ts != 0 {
                            self.stamp(
                                TsKey {
                                    src: key.src,
                                    dst: e.dst.raw(),
                                    etype: key.etype,
                                },
                                e.ts,
                            );
                        } else if self.has_stamps() {
                            // A timeless re-insert replaces the edge: clear
                            // any stale stamp so it cannot mislabel the new
                            // edge's event time.
                            self.unstamp(&TsKey {
                                src: key.src,
                                dst: e.dst.raw(),
                                etype: key.etype,
                            });
                        }
                    }
                    UpdateOp::UpdateWeight(e) => {
                        flush(&mut tree, &mut run, &mut local, &mut edge_delta);
                        let updated = tree.update_weight(
                            &cfg,
                            e.dst.raw(),
                            sanitize_weight(e.weight),
                            &mut local,
                        );
                        if updated && e.ts != 0 {
                            self.stamp(
                                TsKey {
                                    src: key.src,
                                    dst: e.dst.raw(),
                                    etype: key.etype,
                                },
                                e.ts,
                            );
                        }
                    }
                    UpdateOp::Delete { dst, .. } => {
                        flush(&mut tree, &mut run, &mut local, &mut edge_delta);
                        if tree.delete(&cfg, dst.raw(), &mut local).is_some() {
                            edge_delta -= 1;
                            if self.has_stamps() {
                                self.unstamp(&TsKey {
                                    src: key.src,
                                    dst: dst.raw(),
                                    etype: key.etype,
                                });
                            }
                        }
                    }
                }
            }
            flush(&mut tree, &mut run, &mut local, &mut edge_delta);
        }
        if edge_delta >= 0 {
            self.num_edges
                .fetch_add(edge_delta as usize, Ordering::Relaxed);
        } else {
            self.num_edges
                .fetch_sub((-edge_delta) as usize, Ordering::Relaxed);
        }
        self.metrics.edges.add(edge_delta as i64);
        self.metrics.add_ops(&local);
    }

    /// The batch-based latch-free concurrent update (Sec. VI-B, App. B).
    ///
    /// Phase 1 sorts the batch by (source, relation, destination) and cuts
    /// it into per-tree groups. Phase 2 assigns each group to exactly one
    /// worker thread, so every samtree is modified by a single owner without
    /// per-node latching; within a group the destination ordering clusters
    /// leaf accesses, and each tree's tables are updated bottom-up by the
    /// samtree code itself. Groups are dealt round-robin for load balance
    /// under Zipf-skewed sources.
    pub fn apply_batch_parallel(&self, ops: &[UpdateOp], threads: usize) {
        assert!(threads >= 1);
        let started = Instant::now();
        self.metrics.batches.inc();
        self.metrics.batch_ops.add(ops.len() as u64);
        // Phase 1: sort and group (App. B "firstly sorts the queries
        // according to the IDs of vertices and then evenly divides them").
        let mut sorted: Vec<&UpdateOp> = ops.iter().collect();
        sorted.sort_by_key(|op| (op.src().raw(), op.etype().0, op.dst().raw()));
        let groups: Vec<&[&UpdateOp]> = sorted
            .chunk_by(|a, b| a.src() == b.src() && a.etype() == b.etype())
            .collect();
        if threads == 1 || groups.len() <= 1 {
            for g in &groups {
                self.apply_group_refs(g);
            }
            self.metrics.apply_batch_ns.record(started.elapsed());
            return;
        }
        // Greedy longest-processing-time assignment: Zipf-skewed batches
        // concentrate a large share of ops on hub sources, so round-robin
        // would leave one worker with the giant group plus its fair share.
        let mut order: Vec<usize> = (0..groups.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(groups[i].len()));
        let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); threads];
        let mut load = vec![0usize; threads];
        for i in order {
            let t = (0..threads).min_by_key(|&t| load[t]).expect("threads >= 1");
            load[t] += groups[i].len();
            assignment[t].push(i);
        }
        crossbeam::thread::scope(|s| {
            for mine in &assignment {
                let groups = &groups;
                s.spawn(move |_| {
                    for &i in mine {
                        self.apply_group_refs(groups[i]);
                    }
                });
            }
        })
        .expect("batch worker panicked");
        self.metrics.apply_batch_ns.record(started.elapsed());
    }

    fn apply_group_refs(&self, group: &[&UpdateOp]) {
        let first = group[0];
        let key = TreeKey {
            src: first.src().raw(),
            etype: first.etype().0,
        };
        self.apply_group(key, group.iter().copied());
    }

    /// Bulk-load an edge collection, building each samtree bottom-up in one
    /// pass (`SamTree::bulk_load`) instead of edge-at-a-time insertion — the
    /// snapshot-restore / initial-ingest fast path. Edges for sources that
    /// already have a tree fall back to incremental inserts.
    pub fn bulk_build(&self, edges: impl IntoIterator<Item = Edge>) {
        use std::collections::HashMap;
        let mut groups: HashMap<TreeKey, Vec<(u64, f64)>> = HashMap::new();
        for e in edges {
            if e.ts != 0 {
                self.stamp(
                    TsKey {
                        src: e.src.raw(),
                        dst: e.dst.raw(),
                        etype: e.etype.0,
                    },
                    e.ts,
                );
            }
            groups
                .entry(TreeKey {
                    src: e.src.raw(),
                    etype: e.etype.0,
                })
                .or_default()
                .push((e.dst.raw(), sanitize_weight(e.weight)));
        }
        let cfg = self.config.tree;
        for (key, pairs) in groups {
            let cell = self.cell_or_create(key);
            let mut tree = cell.0.write();
            if tree.is_empty() {
                *tree = SamTree::bulk_load(&cfg, &pairs);
                self.num_edges.fetch_add(tree.len(), Ordering::Relaxed);
                self.metrics.edges.add(tree.len() as i64);
            } else {
                // Source already populated (concurrent writer or repeated
                // call): fall back to incremental inserts.
                let mut local = OpStats::default();
                let mut added = 0usize;
                for (id, w) in pairs {
                    if tree.insert(&cfg, id, w, &mut local) == InsertOutcome::Inserted {
                        added += 1;
                    }
                }
                self.num_edges.fetch_add(added, Ordering::Relaxed);
                self.metrics.edges.add(added as i64);
                self.metrics.add_ops(&local);
            }
        }
    }

    /// Multiply every stored edge weight by `factor` (time-decay sweep for
    /// real-time recommendation: stale interactions fade, fresh inserts
    /// arrive at full weight). One `O(n)` pass per tree, taken under each
    /// tree's own write lock.
    pub fn decay_weights(&self, factor: f64) {
        assert!(factor.is_finite() && factor >= 0.0);
        self.directory.for_each(|_, cell| {
            cell.0.write().scale_weights(factor);
        });
    }

    /// Weighted neighbor sampling restricted to a time window.
    ///
    /// `window == None` is exactly [`GraphStore::sample_neighbors`]. With a
    /// window, each of the `k` slots is drawn by rejection-with-retry: up
    /// to [`WINDOW_RETRIES`] weighted draws against the full tree, keeping
    /// the first whose timestamp lies in the window (timeless edges always
    /// qualify). A slot that exhausts its retries falls back to one
    /// weighted draw over the *filtered* in-window neighbor list — exact,
    /// built at most once per request, and only paid when the window is
    /// weight-skewed toward out-of-window edges.
    ///
    /// Both paths consume the RNG in a deterministic order, so a windowed
    /// request replayed with the same per-request seed returns the same
    /// slots locally and remotely.
    pub fn sample_neighbors_windowed(
        &self,
        v: VertexId,
        etype: EdgeType,
        k: usize,
        window: Option<TimeWindow>,
        rng: &mut dyn RngCore,
    ) -> Vec<VertexId> {
        let Some(win) = window else {
            return self.sample_neighbors(v, etype, k, rng);
        };
        let _span = self.registry.span("samtree.sample");
        self.metrics.sample_requests.inc();
        let Some(cell) = self.cell(TreeKey {
            src: v.raw(),
            etype: etype.0,
        }) else {
            return Vec::new();
        };
        let tree = cell.0.read();
        let src = v.raw();
        let mut picks = Vec::with_capacity(k);
        // Filtered in-window (dst, cumulative weight) list, built lazily on
        // the first fallback and reused for the rest of the request.
        let mut filtered: Option<(Vec<u64>, Vec<f64>)> = None;
        let mut retries = 0u64;
        let mut fallbacks = 0u64;
        'slots: for _ in 0..k {
            for _ in 0..WINDOW_RETRIES {
                let Some(id) = tree.sample(rng) else {
                    break 'slots; // empty / zero-weight tree
                };
                if win.contains(self.ts_of(src, id, etype.0)) {
                    picks.push(VertexId(id));
                    continue 'slots;
                }
                retries += 1;
            }
            fallbacks += 1;
            let (ids, cum) = filtered.get_or_insert_with(|| {
                let mut ids = Vec::new();
                let mut cum = Vec::new();
                let mut acc = 0.0f64;
                for (dst, w) in tree.entries() {
                    if w > 0.0 && win.contains(self.ts_of(src, dst, etype.0)) {
                        acc += w;
                        ids.push(dst);
                        cum.push(acc);
                    }
                }
                (ids, cum)
            });
            let Some(&total) = cum.last() else {
                break 'slots; // nothing in-window at all
            };
            let r: f64 = rng.random_range(0.0..total);
            let j = cum.partition_point(|&c| c <= r).min(ids.len() - 1);
            picks.push(VertexId(ids[j]));
        }
        if retries > 0 {
            self.metrics.window_retries.add(retries);
        }
        if fallbacks > 0 {
            self.metrics.window_fallbacks.add(fallbacks);
        }
        self.metrics.sample_draws.add(picks.len() as u64);
        picks
    }

    /// One recency-decay pass over a single source's out-neighborhood:
    /// every stamped edge older than `now` has its weight multiplied by
    /// `exp(-lambda · (now - ts))`, clamped at the strictly positive
    /// `floor`, through the samtree's `O(log n)` floored FSTable update.
    /// Timeless edges (`ts == 0`) and edges at/below the floor are left
    /// untouched; event times are never refreshed by decay.
    ///
    /// The maintenance worker in `platod2gl-temporal` drives this method in
    /// amortized batches of sources.
    pub fn decay_recency(
        &self,
        v: VertexId,
        etype: EdgeType,
        now: u64,
        lambda: f64,
        floor: f64,
    ) -> DecayOutcome {
        assert!(lambda.is_finite() && lambda >= 0.0, "lambda must be >= 0");
        assert!(floor.is_finite() && floor > 0.0, "floor must be positive");
        let mut out = DecayOutcome::default();
        if lambda == 0.0 || !self.has_stamps() {
            return out;
        }
        let Some(cell) = self.cell(TreeKey {
            src: v.raw(),
            etype: etype.0,
        }) else {
            return out;
        };
        let cfg = self.config.tree;
        let mut local = OpStats::default();
        let mut tree = cell.0.write();
        // Leaf weights read back with a few ULPs of prefix-sum
        // reconstruction noise, so an edge clamped at the floor by a
        // previous sweep can read as marginally above it; the relative
        // tolerance keeps such edges skipped instead of "decaying" by
        // denormal-sized deltas every sweep.
        let floor_cut = floor * (1.0 + 1e-9);
        for (dst, w) in tree.entries() {
            out.scanned += 1;
            let ts = self.ts_of(v.raw(), dst, etype.0);
            if ts == 0 || ts >= now || w <= floor_cut {
                continue;
            }
            let factor = (-lambda * (now - ts) as f64).exp();
            if factor >= 1.0 {
                continue;
            }
            if let Some(delta) = tree.decay_weight(&cfg, dst, factor, floor, &mut local) {
                if delta < 0.0 {
                    out.decayed += 1;
                    if w * factor <= floor {
                        out.floored += 1;
                    }
                }
            }
        }
        drop(tree);
        self.metrics.add_ops(&local);
        out
    }

    /// The `k` heaviest out-neighbors of `v`, heaviest first (the
    /// deterministic "top interests" serving query).
    pub fn top_k_neighbors(&self, v: VertexId, etype: EdgeType, k: usize) -> Vec<(VertexId, f64)> {
        self.cell(TreeKey {
            src: v.raw(),
            etype: etype.0,
        })
        .map_or(Vec::new(), |cell| {
            cell.0
                .read()
                .top_k(k)
                .into_iter()
                .map(|(id, w)| (VertexId(id), w))
                .collect()
        })
    }

    /// Drop a source vertex's entire out-neighborhood in one relation
    /// (account deletion / right-to-be-forgotten). Returns the number of
    /// edges removed. Concurrent writers racing the removal may land their
    /// ops on the detached tree and be discarded with it — the same
    /// semantics as deleting each edge individually while others insert.
    pub fn delete_source(&self, v: VertexId, etype: EdgeType) -> usize {
        let Some(cell) = self.directory.remove(&TreeKey {
            src: v.raw(),
            etype: etype.0,
        }) else {
            return 0;
        };
        let mut tree = cell.0.write();
        if self.has_stamps() {
            for (dst, _) in tree.entries() {
                self.unstamp(&TsKey {
                    src: v.raw(),
                    dst,
                    etype: etype.0,
                });
            }
        }
        let removed = tree.len();
        *tree = SamTree::new();
        self.num_edges.fetch_sub(removed, Ordering::Relaxed);
        self.metrics.edges.add(-(removed as i64));
        removed
    }

    /// Dump the whole adjacency as `((src, etype), [(dst, weight, ts)])`
    /// entries (snapshotting and diagnostics). Each tree is read under its
    /// own lock.
    pub fn export_adjacency(&self) -> Vec<AdjacencyEntry> {
        let mut out = Vec::with_capacity(self.directory.len());
        let stamped = self.has_stamps();
        self.directory.for_each(|key, cell| {
            let entries = cell.0.read().entries();
            if !entries.is_empty() {
                let rows = entries
                    .into_iter()
                    .map(|(dst, w)| {
                        let ts = if stamped {
                            self.ts_of(key.src, dst, key.etype)
                        } else {
                            0
                        };
                        (dst, w, ts)
                    })
                    .collect();
                out.push(((key.src, key.etype), rows));
            }
        });
        out
    }

    /// One `(src, etype)` tree's full `(dst, weight, ts)` list, or `None` if
    /// the key is not resident (or its tree is empty). The targeted
    /// counterpart of [`DynamicGraphStore::export_adjacency`]: partition
    /// export streams chunks by materializing only the keys inside the
    /// chunk's budget instead of the whole store.
    pub fn adjacency_of(&self, v: VertexId, etype: EdgeType) -> Option<Vec<(u64, f64, u64)>> {
        let cell = self.cell(TreeKey {
            src: v.raw(),
            etype: etype.0,
        })?;
        let entries = cell.0.read().entries();
        if entries.is_empty() {
            return None;
        }
        let stamped = self.has_stamps();
        Some(
            entries
                .into_iter()
                .map(|(dst, w)| {
                    let ts = if stamped {
                        self.ts_of(v.raw(), dst, etype.0)
                    } else {
                        0
                    };
                    (dst, w, ts)
                })
                .collect(),
        )
    }

    /// Visit every resident `(src, etype)` directory key with its current
    /// edge count, without materializing the adjacency lists the way
    /// [`DynamicGraphStore::export_adjacency`] does. Partition accounting
    /// (`/debug/partitions` key counts) walks the whole directory this way.
    pub fn for_each_source(&self, mut f: impl FnMut(VertexId, EdgeType, usize)) {
        self.directory.for_each(|key, cell| {
            let len = cell.0.read().len();
            if len > 0 {
                f(VertexId(key.src), EdgeType(key.etype), len);
            }
        });
    }

    /// Walk every samtree and split the store's resident topology bytes
    /// into payload vs index (the paper's Table IV memory accounting,
    /// served live at `/debug/memory`). Takes each tree's read lock in
    /// turn — diagnostics cost, not hot-path cost.
    pub fn memory_breakdown(&self) -> StoreMemory {
        let mut leaf_bytes = 0;
        let mut internal_bytes = 0;
        self.directory.for_each(|_, cell| {
            let (l, i) = cell.0.read().memory_breakdown();
            leaf_bytes += l;
            internal_bytes += i;
        });
        let total_bytes = self.topology_bytes();
        StoreMemory {
            leaf_bytes,
            internal_bytes,
            directory_bytes: total_bytes.saturating_sub(leaf_bytes + internal_bytes),
            total_bytes,
        }
    }

    /// Per-tree diagnostics: (height, leaf count, internal count) of a
    /// vertex's samtree.
    pub fn tree_shape(&self, v: VertexId, etype: EdgeType) -> Option<(usize, usize, usize)> {
        let cell = self.cell(TreeKey {
            src: v.raw(),
            etype: etype.0,
        })?;
        let tree = cell.0.read();
        let (leaves, internals) = tree.node_counts();
        Some((tree.height(), leaves, internals))
    }

    /// Validate every samtree's invariants (test support; walks everything).
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut err = None;
        self.directory.for_each(|key, cell| {
            if err.is_some() {
                return;
            }
            if let Err(e) = cell.0.read().check_invariants(&self.config.tree) {
                err = Some(format!("tree of src {}: {e}", key.src));
            }
        });
        err.map_or(Ok(()), Err)
    }
}

impl GraphStore for DynamicGraphStore {
    fn name(&self) -> &'static str {
        "PlatoD2GL"
    }

    fn insert_edge(&self, edge: Edge) {
        self.apply_group(
            TreeKey {
                src: edge.src.raw(),
                etype: edge.etype.0,
            },
            &[UpdateOp::Insert(edge)],
        );
    }

    fn delete_edge(&self, src: VertexId, dst: VertexId, etype: EdgeType) -> bool {
        let Some(cell) = self.cell(TreeKey {
            src: src.raw(),
            etype: etype.0,
        }) else {
            return false;
        };
        let mut local = OpStats::default();
        let deleted = cell
            .0
            .write()
            .delete(&self.config.tree, dst.raw(), &mut local)
            .is_some();
        if deleted {
            self.num_edges.fetch_sub(1, Ordering::Relaxed);
            self.metrics.edges.add(-1);
            if self.has_stamps() {
                self.unstamp(&TsKey {
                    src: src.raw(),
                    dst: dst.raw(),
                    etype: etype.0,
                });
            }
        }
        self.metrics.add_ops(&local);
        deleted
    }

    fn update_weight(&self, edge: Edge) -> bool {
        let Some(cell) = self.cell(TreeKey {
            src: edge.src.raw(),
            etype: edge.etype.0,
        }) else {
            return false;
        };
        let mut local = OpStats::default();
        let updated = cell.0.write().update_weight(
            &self.config.tree,
            edge.dst.raw(),
            sanitize_weight(edge.weight),
            &mut local,
        );
        if updated && edge.ts != 0 {
            self.stamp(
                TsKey {
                    src: edge.src.raw(),
                    dst: edge.dst.raw(),
                    etype: edge.etype.0,
                },
                edge.ts,
            );
        }
        self.metrics.add_ops(&local);
        updated
    }

    fn apply_batch(&self, ops: &[UpdateOp]) {
        // Single-threaded batch still benefits from grouping (one lock
        // acquisition and one stats flush per tree).
        self.apply_batch_parallel(ops, 1);
    }

    fn degree(&self, v: VertexId, etype: EdgeType) -> usize {
        self.cell(TreeKey {
            src: v.raw(),
            etype: etype.0,
        })
        .map_or(0, |c| c.0.read().len())
    }

    fn weight_sum(&self, v: VertexId, etype: EdgeType) -> f64 {
        self.cell(TreeKey {
            src: v.raw(),
            etype: etype.0,
        })
        .map_or(0.0, |c| c.0.read().total_weight())
    }

    fn edge_weight(&self, src: VertexId, dst: VertexId, etype: EdgeType) -> Option<f64> {
        self.cell(TreeKey {
            src: src.raw(),
            etype: etype.0,
        })?
        .0
        .read()
        .get(dst.raw())
    }

    fn sample_neighbors(
        &self,
        v: VertexId,
        etype: EdgeType,
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<VertexId> {
        // Nested under the cluster's request root when sampling goes
        // through a shared registry, so a slow request's capture shows the
        // samtree descent and the FTS draws as separate levels.
        let _span = self.registry.span("samtree.sample");
        self.metrics.sample_requests.inc();
        let Some(cell) = self.cell(TreeKey {
            src: v.raw(),
            etype: etype.0,
        }) else {
            return Vec::new();
        };
        let tree = cell.0.read();
        let picks: Vec<VertexId> = {
            let _draw = self.registry.span("samtree.fts_draw");
            tree.sample_k(k, rng).into_iter().map(VertexId).collect()
        };
        self.metrics.sample_draws.add(picks.len() as u64);
        picks
    }

    fn neighbors(&self, v: VertexId, etype: EdgeType) -> Vec<(VertexId, f64)> {
        self.cell(TreeKey {
            src: v.raw(),
            etype: etype.0,
        })
        .map_or(Vec::new(), |c| {
            c.0.read()
                .entries()
                .into_iter()
                .map(|(id, w)| (VertexId(id), w))
                .collect()
        })
    }

    fn num_edges(&self) -> usize {
        self.num_edges.load(Ordering::Relaxed)
    }

    fn topology_bytes(&self) -> usize {
        self.directory.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platod2gl_graph::{conformance, DatasetProfile};
    use platod2gl_samtree::LeafIndex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_store() -> DynamicGraphStore {
        DynamicGraphStore::new(StoreConfig {
            tree: SamTreeConfig {
                capacity: 8,
                alpha: 0,
                compression: true,
                leaf_index: LeafIndex::Fenwick,
            },
            directory_shards: 8,
        })
    }

    #[test]
    fn conformance_suite() {
        conformance::run_all(small_store);
    }

    #[test]
    fn conformance_suite_default_config() {
        conformance::run_all(DynamicGraphStore::with_defaults);
    }

    #[test]
    fn conformance_suite_without_compression() {
        conformance::run_all(|| {
            DynamicGraphStore::new(StoreConfig {
                tree: SamTreeConfig {
                    capacity: 16,
                    alpha: 2,
                    compression: false,
                    leaf_index: LeafIndex::Fenwick,
                },
                directory_shards: 4,
            })
        });
    }

    #[test]
    fn conformance_suite_cumsum_leaves() {
        // The ablation variant (CSTable leaves) must be behaviorally
        // identical — only its maintenance cost differs.
        conformance::run_all(|| {
            DynamicGraphStore::new(StoreConfig {
                tree: SamTreeConfig {
                    capacity: 8,
                    alpha: 0,
                    compression: true,
                    leaf_index: LeafIndex::CumSum,
                },
                directory_shards: 8,
            })
        });
    }

    #[test]
    fn leaf_index_variants_reach_identical_state() {
        let profile = DatasetProfile::tiny();
        let ops = profile.update_stream(55).next_batch(15_000);
        let mk = |leaf_index| {
            DynamicGraphStore::new(StoreConfig {
                tree: SamTreeConfig {
                    capacity: 16,
                    alpha: 0,
                    compression: true,
                    leaf_index,
                },
                directory_shards: 8,
            })
        };
        let fenwick = mk(LeafIndex::Fenwick);
        let cumsum = mk(LeafIndex::CumSum);
        fenwick.apply_batch(&ops);
        cumsum.apply_batch(&ops);
        assert_eq!(fenwick.num_edges(), cumsum.num_edges());
        fenwick.check_invariants().expect("fenwick invariants");
        cumsum.check_invariants().expect("cumsum invariants");
        for src in profile.sample_sources(64, 8) {
            let mut a = fenwick.neighbors(src, EdgeType(0));
            let mut b = cumsum.neighbors(src, EdgeType(0));
            a.sort_by_key(|(id, _)| id.raw());
            b.sort_by_key(|(id, _)| id.raw());
            assert_eq!(a.len(), b.len());
            for ((ia, wa), (ib, wb)) in a.iter().zip(&b) {
                assert_eq!(ia, ib);
                assert!((wa - wb).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn parallel_batches_match_sequential() {
        let profile = DatasetProfile::tiny();
        let ops = profile.update_stream(77).next_batch(20_000);
        let par = small_store();
        let seq = small_store();
        par.apply_batch_parallel(&ops, 8);
        for op in &ops {
            seq.apply(op);
        }
        assert_eq!(par.num_edges(), seq.num_edges());
        par.check_invariants().expect("parallel store invariants");
        for src in profile.sample_sources(100, 5) {
            let mut a = par.neighbors(src, EdgeType(0));
            let mut b = seq.neighbors(src, EdgeType(0));
            a.sort_by_key(|(id, _)| id.raw());
            b.sort_by_key(|(id, _)| id.raw());
            assert_eq!(a.len(), b.len());
            for ((ia, wa), (ib, wb)) in a.iter().zip(&b) {
                assert_eq!(ia, ib);
                assert!((wa - wb).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn concurrent_disjoint_batches_are_safe() {
        let store = small_store();
        let per_thread = 2_000u64;
        crossbeam::scope(|s| {
            for t in 0..8u64 {
                let store = &store;
                s.spawn(move |_| {
                    for i in 0..per_thread {
                        // Each thread owns a disjoint source range.
                        let src = VertexId(t * 1_000_000 + (i % 50));
                        let dst = VertexId(i);
                        store.insert_edge(Edge::new(src, dst, 1.0));
                    }
                });
            }
        })
        .expect("threads join");
        store.check_invariants().expect("invariants");
        // 8 threads x 50 sources x 40 distinct dsts per source.
        assert_eq!(store.num_edges(), 8 * 50 * 40);
    }

    #[test]
    fn concurrent_same_source_contention_is_safe() {
        let store = small_store();
        crossbeam::scope(|s| {
            for t in 0..8u64 {
                let store = &store;
                s.spawn(move |_| {
                    for i in 0..2_000u64 {
                        let dst = VertexId(t * 10_000 + i);
                        store.insert_edge(Edge::new(VertexId(1), dst, 0.5));
                    }
                });
            }
        })
        .expect("threads join");
        assert_eq!(store.num_edges(), 16_000);
        assert_eq!(store.degree(VertexId(1), EdgeType(0)), 16_000);
        store.check_invariants().expect("invariants");
    }

    #[test]
    fn ingest_profile_and_sample_deep_trees() {
        let store = DynamicGraphStore::with_defaults();
        // OGBN at 100k edges keeps ~3.9k distinct destinations, enough for
        // the Zipf hub to exceed one leaf at capacity 256.
        let profile = DatasetProfile::ogbn().scaled_to_edges(100_000);
        for e in profile.edge_stream(1).with_bidirected(false) {
            store.insert_edge(e);
        }
        store.check_invariants().expect("invariants");
        // The highest-degree sampled source must have a multi-level samtree.
        let hub = profile
            .sample_sources(200, 2)
            .into_iter()
            .max_by_key(|v| store.degree(*v, EdgeType(0)))
            .expect("non-empty");
        let (h, leaves, internals) = store
            .tree_shape(hub, EdgeType(0))
            .expect("hub has a samtree");
        assert!(h >= 2, "hub tree height {h}");
        assert!(leaves >= 2);
        assert!(internals >= 1);
        // Sampling from the hub returns valid neighbors.
        let mut rng = StdRng::seed_from_u64(8);
        let samples = store.sample_neighbors(hub, EdgeType(0), 50, &mut rng);
        assert_eq!(samples.len(), 50);
        for s in samples {
            assert!(
                store.edge_weight(hub, s, EdgeType(0)).is_some(),
                "sampled non-neighbor {s:?}"
            );
        }
    }

    #[test]
    fn registry_metrics_track_store_activity() {
        let registry = Arc::new(Registry::new());
        let store = DynamicGraphStore::with_registry(
            StoreConfig {
                tree: SamTreeConfig {
                    capacity: 8,
                    alpha: 0,
                    compression: true,
                    leaf_index: LeafIndex::Fenwick,
                },
                directory_shards: 8,
            },
            Arc::clone(&registry),
        );
        let ops: Vec<UpdateOp> = (0..200u64)
            .map(|i| UpdateOp::Insert(Edge::new(VertexId(i % 4), VertexId(i), 1.0)))
            .collect();
        store.apply_batch_parallel(&ops, 2);
        let mut rng = StdRng::seed_from_u64(1);
        store.sample_neighbors(VertexId(0), EdgeType(0), 10, &mut rng);
        store.delete_edge(VertexId(0), VertexId(0), EdgeType(0));

        let snap = registry.snapshot();
        assert_eq!(snap.counter("storage.batches"), Some(1));
        assert_eq!(snap.counter("storage.batch_ops"), Some(200));
        assert!(snap.counter("samtree.leaf_ops").unwrap() >= 200);
        assert!(
            snap.counter("samtree.leaf_splits").unwrap() > 0,
            "50 dsts per tree at capacity 8 must split"
        );
        assert_eq!(snap.counter("samtree.sample_requests"), Some(1));
        assert_eq!(snap.counter("samtree.sample_draws"), Some(10));
        assert_eq!(snap.gauge("storage.edges"), Some(store.num_edges() as i64));
        assert_eq!(snap.histogram("storage.apply_batch_ns").unwrap().count, 1);
        // op_stats is a view over the same counters.
        assert_eq!(
            store.op_stats().leaf_ops,
            snap.counter("samtree.leaf_ops").unwrap()
        );
    }

    #[test]
    fn op_stats_land_mostly_on_leaves() {
        let store = DynamicGraphStore::new(StoreConfig {
            tree: SamTreeConfig {
                capacity: 64,
                alpha: 0,
                compression: true,
                leaf_index: LeafIndex::Fenwick,
            },
            directory_shards: 8,
        });
        let profile = DatasetProfile::tiny();
        for e in profile.edge_stream(3) {
            store.insert_edge(e);
        }
        let stats = store.op_stats();
        assert!(stats.leaf_ops > 0);
        assert!(
            stats.leaf_fraction() > 0.9,
            "leaf fraction {}",
            stats.leaf_fraction()
        );
    }

    #[test]
    fn compression_flag_changes_memory_not_behavior() {
        let mk = |compression| {
            let store = DynamicGraphStore::new(StoreConfig {
                tree: SamTreeConfig {
                    capacity: 32,
                    alpha: 0,
                    compression,
                    leaf_index: LeafIndex::Fenwick,
                },
                directory_shards: 4,
            });
            // Clustered destination IDs compress well.
            for i in 0..20_000u64 {
                let src = VertexId(i % 20);
                let dst = VertexId(0x00AB_0000_0000_0000 | i);
                store.insert_edge(Edge::new(src, dst, 1.0));
            }
            store
        };
        let on = mk(true);
        let off = mk(false);
        assert_eq!(on.num_edges(), off.num_edges());
        for v in 0..20u64 {
            assert_eq!(
                on.degree(VertexId(v), EdgeType(0)),
                off.degree(VertexId(v), EdgeType(0))
            );
        }
        assert!(
            (on.topology_bytes() as f64) < off.topology_bytes() as f64 * 0.85,
            "compressed {} vs plain {}",
            on.topology_bytes(),
            off.topology_bytes()
        );
    }

    #[test]
    fn decay_then_fresh_inserts_shift_sampling() {
        let store = small_store();
        for i in 0..64u64 {
            store.insert_edge(Edge::new(VertexId(1), VertexId(100 + i), 1.0));
        }
        store.decay_weights(0.01);
        assert!((store.weight_sum(VertexId(1), EdgeType(0)) - 0.64).abs() < 1e-9);
        // One fresh full-weight interaction now dominates.
        store.insert_edge(Edge::new(VertexId(1), VertexId(999), 1.0));
        let mut rng = StdRng::seed_from_u64(6);
        let hits = store
            .sample_neighbors(VertexId(1), EdgeType(0), 200, &mut rng)
            .into_iter()
            .filter(|v| v.raw() == 999)
            .count();
        assert!(hits > 100, "fresh interest should dominate: {hits}/200");
        store.check_invariants().expect("invariants after decay");
    }

    #[test]
    fn top_k_neighbors_orders_by_weight() {
        let store = small_store();
        for i in 0..100u64 {
            store.insert_edge(Edge::new(VertexId(2), VertexId(i), (i % 10) as f64 + 0.5));
        }
        let top = store.top_k_neighbors(VertexId(2), EdgeType(0), 5);
        assert_eq!(top.len(), 5);
        assert!(top.windows(2).all(|p| p[0].1 >= p[1].1));
        assert!((top[0].1 - 9.5).abs() < 1e-9);
        assert!(store
            .top_k_neighbors(VertexId(77), EdgeType(0), 5)
            .is_empty());
    }

    #[test]
    fn delete_source_drops_whole_neighborhood() {
        let store = small_store();
        for i in 0..500u64 {
            store.insert_edge(Edge::new(VertexId(1), VertexId(100 + i), 1.0));
            store.insert_edge(Edge::new(VertexId(2), VertexId(100 + i), 1.0));
        }
        assert_eq!(store.delete_source(VertexId(1), EdgeType(0)), 500);
        assert_eq!(store.num_edges(), 500);
        assert_eq!(store.degree(VertexId(1), EdgeType(0)), 0);
        assert_eq!(store.degree(VertexId(2), EdgeType(0)), 500);
        // Idempotent.
        assert_eq!(store.delete_source(VertexId(1), EdgeType(0)), 0);
        // The vertex can come back fresh.
        store.insert_edge(Edge::new(VertexId(1), VertexId(7), 2.0));
        assert_eq!(store.degree(VertexId(1), EdgeType(0)), 1);
        store.check_invariants().expect("invariants");
    }

    #[test]
    fn bulk_build_matches_incremental() {
        let profile = DatasetProfile::tiny();
        let bulk = small_store();
        bulk.bulk_build(profile.edge_stream(4));
        let inc = small_store();
        for e in profile.edge_stream(4) {
            inc.insert_edge(e);
        }
        assert_eq!(bulk.num_edges(), inc.num_edges());
        bulk.check_invariants().expect("bulk invariants");
        for src in profile.sample_sources(64, 6) {
            let mut a = bulk.neighbors(src, EdgeType(0));
            let mut b = inc.neighbors(src, EdgeType(0));
            a.sort_by_key(|(id, _)| id.raw());
            b.sort_by_key(|(id, _)| id.raw());
            assert_eq!(a.len(), b.len(), "src {src:?}");
            for ((ia, wa), (ib, wb)) in a.iter().zip(&b) {
                assert_eq!(ia, ib);
                assert!((wa - wb).abs() < 1e-6);
            }
        }
        // Repeated bulk call over the same data degrades to updates, not
        // duplicates.
        bulk.bulk_build(profile.edge_stream(4));
        assert_eq!(bulk.num_edges(), inc.num_edges());
    }

    #[test]
    fn batch_thread_sweep_is_consistent() {
        let profile = DatasetProfile::tiny();
        let ops = profile.update_stream(123).next_batch(8_000);
        let reference = small_store();
        reference.apply_batch_parallel(&ops, 1);
        for threads in [2usize, 4, 16] {
            let store = small_store();
            store.apply_batch_parallel(&ops, threads);
            assert_eq!(
                store.num_edges(),
                reference.num_edges(),
                "threads={threads}"
            );
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    fn non_finite_weight_asserts_at_ingest_in_debug() {
        // The sanitize_weight policy: debug builds assert so the producer of
        // the bad value is caught in tests.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let store = DynamicGraphStore::with_defaults();
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                store.insert_edge(Edge::new(VertexId(1), VertexId(2), bad));
            }));
            assert!(
                caught.is_err(),
                "weight {bad} must trip the debug assertion"
            );
        }
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn non_finite_weight_clamps_at_ingest_in_release() {
        // Release builds clamp to 0.0: the edge exists but is never sampled,
        // and weight sums stay finite.
        let store = DynamicGraphStore::with_defaults();
        store.insert_edge(Edge::new(VertexId(1), VertexId(2), f64::NAN));
        store.insert_edge(Edge::new(VertexId(1), VertexId(3), 2.0));
        assert_eq!(
            store.edge_weight(VertexId(1), VertexId(2), EdgeType(0)),
            Some(0.0)
        );
        assert!(store.weight_sum(VertexId(1), EdgeType(0)).is_finite());
        store
            .check_invariants()
            .expect("invariants with clamped weight");
    }
}
