//! Write-ahead log for crash-safe durability (robustness layer on top of
//! paper Sec. IV's in-memory store).
//!
//! PlatoD2GL's store is memory-resident; a trainer crash between snapshots
//! would silently lose every update since the last checkpoint. The WAL
//! closes that window: every update op (or batch of ops) is appended to the
//! log *before* it is applied to the samtrees, and recovery is
//! `restore(latest snapshot) + replay(WAL)`.
//!
//! # On-disk format
//!
//! ```text
//! file   := magic "PD2GWAL1" , record*
//! record := len:u32le , payload:[u8; len] , crc:u32le        crc = CRC32C(payload)
//! payload:= tag:u8 , body
//!   tag 1 Insert        body = src:u64le dst:u64le etype:u16le weight:f64le-bits
//!   tag 2 Delete        body = src:u64le dst:u64le etype:u16le
//!   tag 3 UpdateWeight  body = src:u64le dst:u64le etype:u16le weight:f64le-bits
//!   tag 4 Batch         body = count:u32le , count × (tag:u8 , body as above)
//!   tag 5 BatchBegin    body = txn_id:u64le , n_ops:u32le
//!   tag 6 BatchCommit   body = txn_id:u64le , crc:u32le
//! ```
//!
//! A `Batch` record is replayed atomically: either all of its ops are
//! delivered or (if the record is torn) none are.
//!
//! # Transaction markers
//!
//! A transaction ([`DurableGraphStore::try_apply_txn`]) brackets its op
//! records with `BatchBegin{txn_id, n_ops}` and `BatchCommit{txn_id, crc}`
//! markers. `crc` is CRC32C over the concatenated little-endian per-record
//! CRC32C values of the transaction's op records, in order — streamable at
//! write and replay time, and transitively covering the op payloads (each
//! record CRC already covers its payload).
//!
//! Replay buffers the ops between a `BatchBegin` and its `BatchCommit` and
//! delivers them only when the commit marker matches (same txn id, op count
//! equal to the begin's `n_ops`, CRC chain equal to the commit's `crc`):
//!
//! * **No commit before end-of-file** (the process died mid-transaction):
//!   the buffered ops are dropped, reported as
//!   [`TornTailKind::UncommittedBatch`], and `durable_len` rolls back to the
//!   `BatchBegin` offset so the whole partial transaction is truncated away.
//! * **No commit before the next `BatchBegin`** (the process died
//!   mid-transaction, restarted, and kept appending): the buffered ops are
//!   dropped and counted in [`WalReplayReport::dropped_batches`]; the
//!   records stay on disk (there is durable data after them) and every
//!   future replay deterministically drops them again.
//! * A `BatchCommit` with no pending transaction, a mismatched txn id or op
//!   count, or a CRC-chain mismatch is a hard
//!   [`io::ErrorKind::InvalidData`] error: every involved record passed its
//!   own CRC, so this is a writer bug or tampering, never crash debris.
//!
//! Logs written before these markers existed (no tag-5/6 records) replay
//! exactly as before.
//!
//! # Torn-tail semantics
//!
//! A crash can leave a partially written final record. Replay distinguishes
//! two cases:
//!
//! * **Torn tail** — the last record is incomplete (its frame extends past
//!   end-of-file), fails its CRC while reaching *exactly* to end-of-file,
//!   or is a zero-length frame (filesystem zero-fill after a crash on
//!   preallocated files). Replay stops cleanly before the bad record and
//!   reports it in [`WalReplayReport::torn_tail`]; everything before it is
//!   the durable prefix.
//! * **Interior corruption** — a record fails its CRC and *more bytes
//!   follow its frame*, or a record's declared length is unreadable (zero,
//!   over the limit, past end-of-file) while complete CRC-valid records can
//!   still be found after it (a bit-flipped length prefix, not crash
//!   debris). Either way replay returns a hard
//!   [`io::ErrorKind::InvalidData`] error naming the byte offset rather
//!   than silently dropping committed updates.

use crate::crc32c::crc32c;
use crate::fault::{CrashInjector, CrashPoint};
use crate::topology::{DynamicGraphStore, StoreConfig};
use platod2gl_graph::{
    sanitize_weight, validate_and_lower, Edge, EdgeType, Error, GraphStore, GraphTxn, StoreTxnView,
    TxnError, TxnReceipt, UpdateOp, VertexId,
};
use platod2gl_obs::{Counter, Gauge, Histogram, Registry};
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// WAL file magic.
pub const WAL_MAGIC: &[u8; 8] = b"PD2GWAL1";

const TAG_INSERT: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_UPDATE_WEIGHT: u8 = 3;
const TAG_BATCH: u8 = 4;
const TAG_BATCH_BEGIN: u8 = 5;
const TAG_BATCH_COMMIT: u8 = 6;
// Timestamped variants (temporal plane): same body as tags 1/3 with the
// edge's event time (u64 LE) appended. Written only when `ts != 0`, so a
// timeless workload produces byte-identical WAL streams to older writers.
const TAG_INSERT_TS: u8 = 7;
const TAG_UPDATE_WEIGHT_TS: u8 = 8;

/// Upper bound on a single record payload; anything larger is treated as
/// corruption. A batch of 1M ops encodes to ~27 MB, far below this.
const MAX_RECORD_LEN: u32 = 1 << 30;

// ---------------------------------------------------------------------------
// Op encoding
// ---------------------------------------------------------------------------

fn encode_op(op: &UpdateOp, out: &mut Vec<u8>) {
    match op {
        UpdateOp::Insert(e) => {
            out.push(if e.ts != 0 { TAG_INSERT_TS } else { TAG_INSERT });
            encode_edge_body(e.src, e.dst, e.etype, Some(e.weight), out);
            if e.ts != 0 {
                out.extend_from_slice(&e.ts.to_le_bytes());
            }
        }
        UpdateOp::Delete { src, dst, etype } => {
            out.push(TAG_DELETE);
            encode_edge_body(*src, *dst, *etype, None, out);
        }
        UpdateOp::UpdateWeight(e) => {
            out.push(if e.ts != 0 {
                TAG_UPDATE_WEIGHT_TS
            } else {
                TAG_UPDATE_WEIGHT
            });
            encode_edge_body(e.src, e.dst, e.etype, Some(e.weight), out);
            if e.ts != 0 {
                out.extend_from_slice(&e.ts.to_le_bytes());
            }
        }
    }
}

fn encode_edge_body(
    src: VertexId,
    dst: VertexId,
    etype: EdgeType,
    weight: Option<f64>,
    out: &mut Vec<u8>,
) {
    out.extend_from_slice(&src.raw().to_le_bytes());
    out.extend_from_slice(&dst.raw().to_le_bytes());
    out.extend_from_slice(&etype.0.to_le_bytes());
    if let Some(w) = weight {
        // Log the weight the store will actually apply (the sanitized one),
        // so replay reproduces the applied state and never re-ingests a
        // non-finite value.
        out.extend_from_slice(&sanitize_weight(w).to_bits().to_le_bytes());
    }
}

/// Cursor-based decoder over a CRC-validated payload.
struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .map(|s| u16::from_le_bytes(s.try_into().unwrap()))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    /// Decode a weight, clamping non-finite values to `0.0` *without* the
    /// ingest boundary's debug assertion: replay is not ingest — the value
    /// already passed ingest in a (possibly release-built) writer, and a
    /// debug-built reader must recover the log, not panic on it. The clamp
    /// matches what `sanitize_weight` applied in-memory at ingest time.
    fn weight(&mut self) -> Option<f64> {
        let w = f64::from_bits(self.u64()?);
        Some(if w.is_finite() { w } else { 0.0 })
    }

    fn op(&mut self) -> Option<UpdateOp> {
        let tag = self.u8()?;
        let src = VertexId(self.u64()?);
        let dst = VertexId(self.u64()?);
        let etype = EdgeType(self.u16()?);
        match tag {
            TAG_INSERT => Some(UpdateOp::Insert(Edge {
                src,
                dst,
                etype,
                weight: self.weight()?,
                ts: 0,
            })),
            TAG_DELETE => Some(UpdateOp::Delete { src, dst, etype }),
            TAG_UPDATE_WEIGHT => Some(UpdateOp::UpdateWeight(Edge {
                src,
                dst,
                etype,
                weight: self.weight()?,
                ts: 0,
            })),
            TAG_INSERT_TS => {
                let weight = self.weight()?;
                Some(UpdateOp::Insert(Edge {
                    src,
                    dst,
                    etype,
                    weight,
                    ts: self.u64()?,
                }))
            }
            TAG_UPDATE_WEIGHT_TS => {
                let weight = self.weight()?;
                Some(UpdateOp::UpdateWeight(Edge {
                    src,
                    dst,
                    etype,
                    weight,
                    ts: self.u64()?,
                }))
            }
            _ => None,
        }
    }
}

/// What one CRC-validated record holds.
enum RecordBody {
    /// Plain op record (single op or tag-4 batch): `n` ops pushed.
    Ops(usize),
    /// Transaction `BatchBegin` marker.
    TxnBegin { txn_id: u64, n_ops: u32 },
    /// Transaction `BatchCommit` marker.
    TxnCommit { txn_id: u64, crc: u32 },
}

/// Decode a full record payload. `None` on any structural problem (unknown
/// tag, short body, trailing bytes). Ops are pushed onto `ops`.
fn decode_payload(payload: &[u8], ops: &mut Vec<UpdateOp>) -> Option<RecordBody> {
    let mut d = Decoder::new(payload);
    let first = *payload.first()?;
    let body = match first {
        TAG_BATCH => {
            d.u8()?;
            let count = d.u32()? as usize;
            for _ in 0..count {
                ops.push(d.op()?);
            }
            RecordBody::Ops(count)
        }
        TAG_BATCH_BEGIN => {
            d.u8()?;
            RecordBody::TxnBegin {
                txn_id: d.u64()?,
                n_ops: d.u32()?,
            }
        }
        TAG_BATCH_COMMIT => {
            d.u8()?;
            RecordBody::TxnCommit {
                txn_id: d.u64()?,
                crc: d.u32()?,
            }
        }
        _ => {
            ops.push(d.op()?);
            RecordBody::Ops(1)
        }
    };
    // A CRC-valid record with trailing junk indicates a writer bug, not a
    // torn write — reject it.
    (d.pos == payload.len()).then_some(body)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Appends checksummed records to a WAL stream.
pub struct WalWriter<W: Write> {
    w: W,
    /// Bytes written so far, including the magic (mirrors the file offset).
    offset: u64,
    records: u64,
    scratch: Vec<u8>,
}

impl<W: Write> WalWriter<W> {
    /// Start a fresh WAL on `w`: writes the magic header.
    pub fn create(mut w: W) -> io::Result<Self> {
        w.write_all(WAL_MAGIC)?;
        Ok(WalWriter {
            w,
            offset: WAL_MAGIC.len() as u64,
            records: 0,
            scratch: Vec::new(),
        })
    }

    /// Resume appending to an existing WAL whose header (and `records`
    /// durable records, ending at byte `offset`) are already on disk. The
    /// caller must have positioned `w` at `offset` — [`DurableGraphStore`]
    /// truncates any torn tail first.
    pub fn resume(w: W, offset: u64, records: u64) -> Self {
        WalWriter {
            w,
            offset,
            records,
            scratch: Vec::new(),
        }
    }

    fn append_payload(&mut self) -> io::Result<u32> {
        let payload = &self.scratch;
        let crc = crc32c(payload);
        self.w.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.w.write_all(payload)?;
        self.w.write_all(&crc.to_le_bytes())?;
        self.offset += 4 + payload.len() as u64 + 4;
        self.records += 1;
        Ok(crc)
    }

    /// Append a single op as one record.
    pub fn append(&mut self, op: &UpdateOp) -> io::Result<()> {
        self.scratch.clear();
        encode_op(op, &mut self.scratch);
        self.append_payload().map(|_| ())
    }

    /// Append a batch of ops as one atomic record. Empty batches are a
    /// no-op (a zero-length frame is reserved as a torn-tail marker).
    pub fn append_batch(&mut self, ops: &[UpdateOp]) -> io::Result<()> {
        self.append_batch_crc(ops).map(|_| ())
    }

    /// [`append_batch`](WalWriter::append_batch), returning the record's
    /// CRC32C — the transaction protocol chains these into its commit
    /// marker. An empty batch writes nothing and returns 0.
    pub fn append_batch_crc(&mut self, ops: &[UpdateOp]) -> io::Result<u32> {
        if ops.is_empty() {
            return Ok(0);
        }
        self.scratch.clear();
        self.scratch.push(TAG_BATCH);
        self.scratch
            .extend_from_slice(&(ops.len() as u32).to_le_bytes());
        for op in ops {
            let mut tmp = Vec::new();
            encode_op(op, &mut tmp);
            self.scratch.extend_from_slice(&tmp);
        }
        self.append_payload()
    }

    /// Append a `BatchBegin{txn_id, n_ops}` transaction marker.
    pub fn append_txn_begin(&mut self, txn_id: u64, n_ops: u32) -> io::Result<()> {
        self.scratch.clear();
        self.scratch.push(TAG_BATCH_BEGIN);
        self.scratch.extend_from_slice(&txn_id.to_le_bytes());
        self.scratch.extend_from_slice(&n_ops.to_le_bytes());
        self.append_payload().map(|_| ())
    }

    /// Append a `BatchCommit{txn_id, crc}` transaction marker. `crc` is
    /// CRC32C over the concatenated little-endian record CRCs returned by
    /// the transaction's [`append_batch_crc`](WalWriter::append_batch_crc)
    /// calls, in order.
    pub fn append_txn_commit(&mut self, txn_id: u64, crc: u32) -> io::Result<()> {
        self.scratch.clear();
        self.scratch.push(TAG_BATCH_COMMIT);
        self.scratch.extend_from_slice(&txn_id.to_le_bytes());
        self.scratch.extend_from_slice(&crc.to_le_bytes());
        self.append_payload().map(|_| ())
    }

    pub fn flush(&mut self) -> io::Result<()> {
        self.w.flush()
    }

    /// Byte offset after the last durable record (== file length).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Number of records appended (including resumed ones).
    pub fn records(&self) -> u64 {
        self.records
    }

    pub fn get_ref(&self) -> &W {
        &self.w
    }

    pub fn into_inner(self) -> W {
        self.w
    }
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// Why replay stopped before end-of-file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TornTailKind {
    /// Fewer than 4 bytes remained — not even a length prefix.
    TruncatedHeader,
    /// The record's frame (payload + CRC) extends past end-of-file.
    TruncatedRecord,
    /// The final record's CRC does not match its payload.
    BadTailChecksum,
    /// A zero-length frame (zero-fill from crash on a preallocated file).
    ZeroFill,
    /// The log ended while a transaction's `BatchBegin` had no matching
    /// `BatchCommit` — the process died mid-transaction. The offset points
    /// at the `BatchBegin` record; truncating there removes the whole
    /// partial transaction.
    UncommittedBatch,
}

/// A tolerated partial record at the end of the log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset of the start of the bad record — the durable length of
    /// the log. Appends must resume here (after truncating the file).
    pub offset: u64,
    pub kind: TornTailKind,
}

/// Outcome of a successful [`replay_wal`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalReplayReport {
    /// Complete records replayed.
    pub records: u64,
    /// Individual ops delivered to the sink (batches count per-op).
    pub ops: u64,
    /// Byte offset after the last complete record.
    pub durable_len: u64,
    /// The tolerated partial record, if the log did not end cleanly.
    pub torn_tail: Option<TornTail>,
    /// Uncommitted transactions dropped (no `BatchCommit` before the next
    /// `BatchBegin` or end-of-file). Their ops were never delivered.
    pub dropped_batches: u64,
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// fsync a directory so a just-completed rename inside it survives power
/// loss. POSIX makes rename atomicity a file-system property but its
/// *durability* a directory property.
fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    File::open(dir)?.sync_all()?;
    #[cfg(not(unix))]
    let _ = dir; // directory handles are not fsync-able portably
    Ok(())
}

/// Total payload bytes the torn-tail disambiguation scan may spend on CRC
/// checks before giving up. Bounds worst-case replay time on adversarial
/// tails; real records are far smaller than this, so the scan always reaches
/// the next record when one exists at realistic record sizes.
const SCAN_CRC_BUDGET: usize = 64 << 20;

/// Scan `data[from..]` for *any* offset at which a complete, CRC32C-valid
/// record frame parses.
///
/// Used to tell a torn tail apart from a corrupted interior length prefix:
/// a crash mid-append leaves only partial-record debris after the last
/// durable record (nothing further can CRC-validate, short of a 2^-32
/// collision), whereas a bit flip in an interior record's length prefix
/// leaves every *subsequent* committed record intact and findable.
fn valid_record_follows(data: &[u8], from: usize) -> bool {
    let mut budget = SCAN_CRC_BUDGET;
    // A frame needs at least len(4) + 1 payload byte + crc(4).
    for start in from..data.len().saturating_sub(8) {
        let len = u32::from_le_bytes(data[start..start + 4].try_into().unwrap());
        if len == 0 || len > MAX_RECORD_LEN {
            continue;
        }
        let Some(frame_end) = (start + 4).checked_add(len as usize + 4) else {
            continue;
        };
        if frame_end > data.len() || budget == 0 {
            continue;
        }
        let payload = &data[start + 4..start + 4 + len as usize];
        budget = budget.saturating_sub(payload.len());
        let stored = u32::from_le_bytes(data[frame_end - 4..frame_end].try_into().unwrap());
        if crc32c(payload) == stored {
            return true;
        }
    }
    false
}

/// Replay a WAL, delivering each decoded op to `sink` in log order.
///
/// Returns a report describing how much of the log was durable. See the
/// module docs for the torn-tail vs interior-corruption contract.
pub fn replay_wal(mut r: impl Read, mut sink: impl FnMut(UpdateOp)) -> io::Result<WalReplayReport> {
    let mut data = Vec::new();
    r.read_to_end(&mut data)?;
    replay_wal_bytes(&data, &mut sink)
}

/// Replay only the WAL tail past `offset` — the bytes appended since a
/// caller last observed [`WalWriter::offset`]. This is the durable half of
/// live shard migration: the mover copies a snapshot, then streams the
/// records that landed while the copy ran. `offset` must sit on a record
/// boundary previously reported by the writer (it includes the magic
/// header), otherwise the tail fails CRC and replay rejects it.
pub fn replay_wal_from(
    mut r: impl Read,
    offset: u64,
    mut sink: impl FnMut(UpdateOp),
) -> io::Result<WalReplayReport> {
    let mut data = Vec::new();
    r.read_to_end(&mut data)?;
    if data.is_empty() && offset == 0 {
        return Ok(WalReplayReport::default());
    }
    if data.len() < WAL_MAGIC.len() || &data[..WAL_MAGIC.len()] != WAL_MAGIC.as_slice() {
        let got = &data[..data.len().min(WAL_MAGIC.len())];
        return Err(invalid(format!(
            "not a PlatoD2GL WAL: bad magic at byte offset 0 (found {got:02x?}, expected {WAL_MAGIC:02x?})"
        )));
    }
    let start = usize::try_from(offset).map_err(|_| invalid("WAL offset overflow".to_string()))?;
    if start < WAL_MAGIC.len() || start > data.len() {
        return Err(invalid(format!(
            "WAL tail offset {start} outside the log (header is {} bytes, log is {} bytes)",
            WAL_MAGIC.len(),
            data.len()
        )));
    }
    replay_wal_bytes_from(&data, start, &mut sink)
}

fn replay_wal_bytes(data: &[u8], sink: &mut dyn FnMut(UpdateOp)) -> io::Result<WalReplayReport> {
    if data.is_empty() {
        // A crash before the header hit disk: an empty log is a valid
        // (zero-record) log.
        return Ok(WalReplayReport::default());
    }
    if data.len() < WAL_MAGIC.len() || &data[..WAL_MAGIC.len()] != WAL_MAGIC.as_slice() {
        let got = &data[..data.len().min(WAL_MAGIC.len())];
        return Err(invalid(format!(
            "not a PlatoD2GL WAL: bad magic at byte offset 0 (found {got:02x?}, expected {WAL_MAGIC:02x?})"
        )));
    }
    replay_wal_bytes_from(data, WAL_MAGIC.len(), sink)
}

fn replay_wal_bytes_from(
    data: &[u8],
    start: usize,
    sink: &mut dyn FnMut(UpdateOp),
) -> io::Result<WalReplayReport> {
    let mut report = WalReplayReport::default();
    let mut pos = start;
    let mut ops = Vec::new();

    /// An in-flight transaction: everything between its `BatchBegin` and
    /// the `BatchCommit` that has not yet arrived.
    struct Pending {
        txn_id: u64,
        n_ops: u32,
        /// Byte offset of the `BatchBegin` record.
        begin_offset: u64,
        /// `report.records` before the `BatchBegin` was counted.
        records_at_begin: u64,
        ops: Vec<UpdateOp>,
        /// Concatenated little-endian record CRCs (the commit-CRC chain).
        crc_chain: Vec<u8>,
    }

    // The log ended (cleanly or torn) while a transaction was pending: the
    // commit marker never made it to disk. Drop the buffered ops and roll
    // the durable prefix back to the `BatchBegin`, so truncation removes
    // the whole partial transaction. This supersedes any later torn tail —
    // the partial txn starts earlier.
    fn drop_pending_at_eof(report: &mut WalReplayReport, p: Pending) {
        report.durable_len = p.begin_offset;
        report.records = p.records_at_begin;
        report.dropped_batches += 1;
        report.torn_tail = Some(TornTail {
            offset: p.begin_offset,
            kind: TornTailKind::UncommittedBatch,
        });
    }
    let mut pending: Option<Pending> = None;

    loop {
        report.durable_len = pos as u64;
        let remaining = data.len() - pos;
        if remaining == 0 {
            if let Some(p) = pending.take() {
                drop_pending_at_eof(&mut report, p);
            }
            return Ok(report);
        }
        if remaining < 4 {
            report.torn_tail = Some(TornTail {
                offset: pos as u64,
                kind: TornTailKind::TruncatedHeader,
            });
            if let Some(p) = pending.take() {
                drop_pending_at_eof(&mut report, p);
            }
            return Ok(report);
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
        let frame = 4usize + len as usize + 4;
        if len == 0 || len > MAX_RECORD_LEN || remaining < frame {
            // The frame cannot be read as declared. A crash mid-append
            // explains that only if nothing valid follows; if a complete
            // CRC-valid record exists further on, the length prefix itself
            // is corrupted interior data, and calling it a torn tail would
            // silently truncate committed records.
            if valid_record_follows(data, pos + 1) {
                let why = if len == 0 {
                    "a zero length".to_string()
                } else if len > MAX_RECORD_LEN {
                    format!("length {len} over the {MAX_RECORD_LEN}-byte limit")
                } else {
                    format!(
                        "length {len}, extending {} bytes past end-of-file",
                        frame - remaining
                    )
                };
                return Err(invalid(format!(
                    "WAL record at byte offset {pos} declares {why}, but \
                     CRC-valid records follow it — corrupted length prefix, \
                     refusing to replay"
                )));
            }
            report.torn_tail = Some(TornTail {
                offset: pos as u64,
                kind: if len == 0 {
                    TornTailKind::ZeroFill
                } else {
                    TornTailKind::TruncatedRecord
                },
            });
            if let Some(p) = pending.take() {
                drop_pending_at_eof(&mut report, p);
            }
            return Ok(report);
        }
        let payload = &data[pos + 4..pos + 4 + len as usize];
        let stored = u32::from_le_bytes(
            data[pos + 4 + len as usize..pos + frame]
                .try_into()
                .unwrap(),
        );
        let computed = crc32c(payload);
        if stored != computed {
            if pos + frame == data.len() {
                // The bad record reaches exactly to EOF: a torn final
                // append (e.g. partially flushed page).
                report.torn_tail = Some(TornTail {
                    offset: pos as u64,
                    kind: TornTailKind::BadTailChecksum,
                });
                if let Some(p) = pending.take() {
                    drop_pending_at_eof(&mut report, p);
                }
                return Ok(report);
            }
            return Err(invalid(format!(
                "WAL record at byte offset {pos} failed its CRC32C check \
                 (stored {stored:#010x}, computed {computed:#010x}) with {} bytes \
                 following the record — interior corruption, refusing to replay",
                data.len() - pos - frame
            )));
        }
        ops.clear();
        let body = decode_payload(payload, &mut ops).ok_or_else(|| {
            invalid(format!(
                "WAL record at byte offset {pos} passed its CRC but does not \
                 decode as a valid op record — writer bug or tampering"
            ))
        })?;
        report.records += 1;
        match body {
            RecordBody::Ops(n) => {
                if let Some(p) = pending.as_mut() {
                    // Inside a transaction: buffer, deliver only at commit.
                    p.ops.append(&mut ops);
                    p.crc_chain.extend_from_slice(&computed.to_le_bytes());
                } else {
                    for op in ops.drain(..) {
                        sink(op);
                    }
                    report.ops += n as u64;
                }
            }
            RecordBody::TxnBegin { txn_id, n_ops } => {
                if pending.is_some() {
                    // A new transaction began while one was pending: the
                    // earlier one crashed mid-flight and the process kept
                    // appending after restart. Its records stay on disk
                    // (durable data follows); its ops are never delivered.
                    report.dropped_batches += 1;
                }
                pending = Some(Pending {
                    txn_id,
                    n_ops,
                    begin_offset: pos as u64,
                    records_at_begin: report.records - 1,
                    ops: Vec::new(),
                    crc_chain: Vec::new(),
                });
            }
            RecordBody::TxnCommit { txn_id, crc } => {
                // Every mismatch below is on CRC-valid records, so it is a
                // writer bug or tampering — never crash debris.
                let Some(p) = pending.take() else {
                    return Err(invalid(format!(
                        "WAL BatchCommit for txn {txn_id} at byte offset {pos} \
                         has no pending BatchBegin — orphan commit marker, \
                         refusing to replay"
                    )));
                };
                if p.txn_id != txn_id {
                    return Err(invalid(format!(
                        "WAL BatchCommit at byte offset {pos} names txn {txn_id} \
                         but txn {} is pending — refusing to replay",
                        p.txn_id
                    )));
                }
                if p.ops.len() != p.n_ops as usize {
                    return Err(invalid(format!(
                        "WAL txn {txn_id} committed {} ops but its BatchBegin \
                         declared {} — refusing to replay",
                        p.ops.len(),
                        p.n_ops
                    )));
                }
                let chained = crc32c(&p.crc_chain);
                if chained != crc {
                    return Err(invalid(format!(
                        "WAL txn {txn_id} commit CRC chain mismatch at byte \
                         offset {pos} (stored {crc:#010x}, computed \
                         {chained:#010x}) — refusing to replay"
                    )));
                }
                report.ops += p.ops.len() as u64;
                for op in p.ops {
                    sink(op);
                }
            }
        }
        pos += frame;
    }
}

// ---------------------------------------------------------------------------
// Durable store: snapshot + WAL + recovery
// ---------------------------------------------------------------------------

/// What recovery found on disk when opening a [`DurableGraphStore`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a snapshot file existed and was restored.
    pub restored_snapshot: bool,
    /// WAL records replayed on top of the snapshot.
    pub wal_records: u64,
    /// Individual ops replayed.
    pub wal_ops: u64,
    /// A tolerated torn tail, if the WAL did not end cleanly. The file is
    /// truncated back to `torn_tail.offset` before appends resume.
    pub torn_tail: Option<TornTail>,
    /// Uncommitted transactions dropped during replay (crash before the
    /// commit marker); their ops were not applied.
    pub dropped_batches: u64,
}

/// A [`DynamicGraphStore`] with crash-safe durability: updates are logged
/// to a WAL before being applied, and [`DurableGraphStore::checkpoint`]
/// atomically writes a checksummed snapshot and truncates the log.
///
/// On-disk layout inside the directory passed to [`DurableGraphStore::open`]:
///
/// * `snapshot.bin` — latest checkpoint (snapshot format v2, see
///   [`crate::snapshot`]); absent until the first checkpoint.
/// * `wal.log` — updates since that checkpoint.
/// * `snapshot.tmp` — in-flight checkpoint; never read, replaced by rename.
///
/// Durability contract: the WAL is flushed to the OS after every logged
/// call, so updates survive a process crash; [`DurableGraphStore::sync`]
/// and [`checkpoint`](DurableGraphStore::checkpoint) additionally fsync so
/// they survive power loss.
///
/// The [`GraphStore`] impl's methods are infallible by signature; an I/O
/// failure while logging panics, because continuing would break the
/// write-ahead contract. Callers that want to handle disk errors use the
/// `try_*` methods.
pub struct DurableGraphStore {
    store: DynamicGraphStore,
    wal: Mutex<WalWriter<BufWriter<File>>>,
    dir: PathBuf,
    registry: Arc<Registry>,
    metrics: WalMetrics,
    crash: CrashInjector,
    /// Set when a write failed after WAL bytes may have hit disk (e.g. a
    /// transaction died between its markers). Further writes fail-stop:
    /// appending past a dangling `BatchBegin` would be dropped with it on
    /// recovery. A successful checkpoint (which resets the log) clears it;
    /// otherwise reopen the store to recover.
    wal_poisoned: AtomicBool,
}

/// Pre-resolved registry handles for the durability hot paths.
#[derive(Debug)]
struct WalMetrics {
    appends: Arc<Counter>,
    append_ops: Arc<Counter>,
    append_bytes: Arc<Counter>,
    append_ns: Arc<Histogram>,
    checkpoints: Arc<Counter>,
    checkpoint_ns: Arc<Histogram>,
    append_errors: Arc<Counter>,
    replayed_records: Arc<Counter>,
    replayed_ops: Arc<Counter>,
    replayed_dropped: Arc<Counter>,
    torn_tails: Arc<Counter>,
    txn_committed: Arc<Counter>,
    txn_aborted: Arc<Counter>,
    mem_bytes: Arc<Gauge>,
}

impl WalMetrics {
    fn new(registry: &Registry) -> Self {
        Self {
            appends: registry.counter("wal.appends"),
            append_ops: registry.counter("wal.append_ops"),
            append_bytes: registry.counter("wal.append_bytes"),
            append_ns: registry.histogram("wal.append_ns"),
            checkpoints: registry.counter("wal.checkpoints"),
            checkpoint_ns: registry.histogram("wal.checkpoint_ns"),
            append_errors: registry.counter("wal.append_errors"),
            replayed_records: registry.counter("wal.replayed_records"),
            replayed_ops: registry.counter("wal.replayed_ops"),
            replayed_dropped: registry.counter("txn.replayed_dropped"),
            torn_tails: registry.counter("wal.torn_tails"),
            txn_committed: registry.counter("txn.committed"),
            txn_aborted: registry.counter("txn.aborted"),
            mem_bytes: registry.gauge("graph.mem.wal_bytes"),
        }
    }
}

impl DurableGraphStore {
    /// Open (or create) a durable store in `dir`, recovering state from the
    /// snapshot and WAL found there. Metrics go to a private registry; use
    /// [`DurableGraphStore::open_with_registry`] to share one.
    pub fn open(
        dir: impl AsRef<Path>,
        config: StoreConfig,
    ) -> Result<(Self, RecoveryReport), Error> {
        Self::open_with_registry(dir, config, Arc::new(Registry::new()))
    }

    /// Open (or create) a durable store publishing its metrics (`wal.*`,
    /// plus the wrapped store's `samtree.*` / `storage.*`) into a shared
    /// registry, so durability shows up in the same snapshot as sampling
    /// and training.
    pub fn open_with_registry(
        dir: impl AsRef<Path>,
        config: StoreConfig,
        registry: Arc<Registry>,
    ) -> Result<(Self, RecoveryReport), Error> {
        // The guard must not borrow the `registry` value we move into the
        // struct below, so it holds its own Arc.
        let span_owner = Arc::clone(&registry);
        let recover_span = span_owner.span("wal.recover");
        let metrics = WalMetrics::new(&registry);
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let store = DynamicGraphStore::with_registry(config, Arc::clone(&registry));
        let mut report = RecoveryReport::default();

        let snap_path = dir.join("snapshot.bin");
        if snap_path.exists() {
            store.restore_from(File::open(&snap_path)?)?;
            report.restored_snapshot = true;
        }

        let wal_path = dir.join("wal.log");
        let (offset, records) = if wal_path.exists() {
            let replay = replay_wal(File::open(&wal_path)?, |op| store.apply(&op))?;
            report.wal_records = replay.records;
            report.wal_ops = replay.ops;
            report.torn_tail = replay.torn_tail;
            report.dropped_batches = replay.dropped_batches;
            metrics.replayed_records.add(replay.records);
            metrics.replayed_ops.add(replay.ops);
            metrics.replayed_dropped.add(replay.dropped_batches);
            if replay.torn_tail.is_some() {
                metrics.torn_tails.inc();
            }
            let file = OpenOptions::new().write(true).open(&wal_path)?;
            // Drop any torn tail so new appends start at the durable end.
            file.set_len(replay.durable_len.max(WAL_MAGIC.len() as u64))?;
            drop(file);
            if replay.durable_len == 0 {
                // Empty file: (re)write the header below.
                (0, 0)
            } else {
                (replay.durable_len, replay.records)
            }
        } else {
            (0, 0)
        };

        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(&wal_path)?;
        let writer = if offset == 0 {
            file.set_len(0)?;
            WalWriter::create(BufWriter::new(file))?
        } else {
            file.seek(SeekFrom::Start(offset))?;
            WalWriter::resume(BufWriter::new(file), offset, records)
        };

        let durable = DurableGraphStore {
            store,
            wal: Mutex::new(writer),
            dir,
            registry,
            metrics,
            crash: CrashInjector::new(),
            wal_poisoned: AtomicBool::new(false),
        };
        durable.sync()?;
        durable
            .metrics
            .mem_bytes
            .set(durable.lock_wal().offset() as i64);
        drop(recover_span);
        Ok((durable, report))
    }

    /// The metrics registry this store records into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The wrapped in-memory store (read-only access; mutate through the
    /// logged methods or the WAL is bypassed).
    pub fn store(&self) -> &DynamicGraphStore {
        &self.store
    }

    fn lock_wal(&self) -> std::sync::MutexGuard<'_, WalWriter<BufWriter<File>>> {
        self.wal
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The crash-point injector guarding this store's durability paths.
    /// Arming it makes the next guarded call fail as if the process died
    /// there; the store then fail-stops writes until reopened (see
    /// [`CrashInjector`]).
    pub fn crash_injector(&self) -> &CrashInjector {
        &self.crash
    }

    /// True when a failed write left the WAL tail in an unknown state and
    /// the store is refusing further writes.
    pub fn is_wal_poisoned(&self) -> bool {
        self.wal_poisoned.load(Ordering::Acquire)
    }

    fn check_poisoned(&self) -> io::Result<()> {
        if self.is_wal_poisoned() {
            return Err(io::Error::other(
                "WAL tail holds an uncommitted transaction after a failed \
                 write; reopen the store (or checkpoint) to recover",
            ));
        }
        Ok(())
    }

    /// Record a failed append and, when bytes may already be on disk past
    /// the last durable record, fail-stop future writes.
    fn note_append_error(&self, tail_dirty: bool) {
        self.metrics.append_errors.inc();
        if tail_dirty {
            self.wal_poisoned.store(true, Ordering::Release);
        }
    }

    /// Log and apply one op. The record is flushed to the OS before the
    /// in-memory store changes.
    ///
    /// The in-memory apply happens while the WAL lock is still held:
    /// [`checkpoint`](DurableGraphStore::checkpoint) takes the same lock, so
    /// no op can ever be logged-but-unapplied when a snapshot is cut (the
    /// snapshot would miss the op and the subsequent WAL reset would lose
    /// it), and in-memory apply order always matches log order, so replay
    /// reproduces the pre-crash state even for conflicting concurrent ops.
    pub fn try_apply(&self, op: &UpdateOp) -> Result<(), Error> {
        let mut wal = self.lock_wal();
        let started = Instant::now();
        let before = wal.offset();
        let res: io::Result<()> = (|| {
            self.check_poisoned()?;
            self.crash.hit(CrashPoint::WalAppend)?;
            wal.append(op)?;
            wal.flush()
        })();
        if let Err(e) = res {
            // The single record either made it whole or is a torn tail
            // replay already tolerates — no poison needed.
            self.note_append_error(false);
            return Err(e.into());
        }
        self.metrics.append_ns.record(started.elapsed());
        self.metrics.appends.inc();
        self.metrics.append_ops.inc();
        self.metrics.append_bytes.add(wal.offset() - before);
        self.metrics.mem_bytes.set(wal.offset() as i64);
        self.store.apply(op);
        Ok(())
    }

    /// Log and apply a batch atomically (one WAL record), using the store's
    /// batch-parallel path. As with [`try_apply`](DurableGraphStore::try_apply),
    /// the apply runs under the WAL lock so a concurrent checkpoint can
    /// never snapshot between the append and the apply.
    pub fn try_apply_batch(&self, ops: &[UpdateOp], threads: usize) -> Result<(), Error> {
        if ops.is_empty() {
            return Ok(());
        }
        let mut wal = self.lock_wal();
        let started = Instant::now();
        let before = wal.offset();
        let res: io::Result<()> = (|| {
            self.check_poisoned()?;
            self.crash.hit(CrashPoint::WalAppend)?;
            wal.append_batch(ops)?;
            wal.flush()
        })();
        if let Err(e) = res {
            self.note_append_error(false);
            return Err(e.into());
        }
        self.metrics.append_ns.record(started.elapsed());
        self.metrics.appends.inc();
        self.metrics.append_ops.add(ops.len() as u64);
        self.metrics.append_bytes.add(wal.offset() - before);
        self.metrics.mem_bytes.set(wal.offset() as i64);
        self.store.apply_batch_parallel(ops, threads);
        Ok(())
    }

    /// Ops per tag-4 record inside a transaction: bounds record size and
    /// exercises the multi-record commit-CRC chain on realistic batches.
    const TXN_CHUNK_OPS: usize = 4096;

    /// Apply a [`GraphTxn`] with all-or-nothing semantics across crashes.
    ///
    /// **Phase 1** validates the whole transaction against the live store
    /// (dangling deletes/patches, duplicate keys, non-finite weights) and
    /// aborts with every violation found — zero changes, nothing logged.
    /// **Phase 2** brackets the lowered ops with `BatchBegin`/`BatchCommit`
    /// WAL markers, fsyncs, then applies in memory. A crash anywhere before
    /// the commit marker is recovered to the pre-transaction graph (replay
    /// drops the uncommitted batch); a crash at or after it recovers to the
    /// post-transaction graph. Never in between.
    ///
    /// A transaction that lowers to zero ops (pure vertex upserts) commits
    /// without touching the WAL.
    pub fn try_apply_txn(&self, txn: &GraphTxn, threads: usize) -> Result<TxnReceipt, TxnError> {
        // Phase 1: validate against live topology; abort applies nothing.
        let lowered = match validate_and_lower(txn, &StoreTxnView::new(&self.store)) {
            Ok(lowered) => lowered,
            Err(e) => {
                self.metrics.txn_aborted.inc();
                return Err(e);
            }
        };
        let receipt = TxnReceipt {
            txn_id: txn.id(),
            ops_applied: lowered.len() as u64,
            graph_version: 0,
            deduped: false,
        };
        if lowered.is_empty() {
            // Nothing to log or apply; still a successful commit.
            self.metrics.txn_committed.inc();
            return Ok(receipt);
        }

        // Phase 2: WAL protocol under the writer lock (same checkpoint
        // exclusion argument as try_apply), then in-memory apply.
        let mut wal = self.lock_wal();
        let started = Instant::now();
        let before = wal.offset();
        let res: io::Result<()> = (|| {
            self.check_poisoned()?;
            self.crash.hit(CrashPoint::TxnBeforeBegin)?;
            wal.append_txn_begin(txn.id(), lowered.len() as u32)?;
            wal.flush()?;
            self.crash.hit(CrashPoint::TxnAfterBegin)?;
            let mut crc_chain = Vec::with_capacity(4 * lowered.len().div_ceil(Self::TXN_CHUNK_OPS));
            for chunk in lowered.chunks(Self::TXN_CHUNK_OPS) {
                let crc = wal.append_batch_crc(chunk)?;
                crc_chain.extend_from_slice(&crc.to_le_bytes());
            }
            wal.flush()?;
            self.crash.hit(CrashPoint::TxnAfterOps)?;
            wal.append_txn_commit(txn.id(), crc32c(&crc_chain))?;
            wal.flush()?;
            self.crash.hit(CrashPoint::TxnAfterCommit)?;
            wal.get_ref().get_ref().sync_data()?;
            self.crash.hit(CrashPoint::TxnAfterFsync)?;
            Ok(())
        })();
        if let Err(e) = res {
            // The tail may hold a dangling BatchBegin: fail-stop writes
            // when anything past `before` could be on disk. Recovery (or a
            // checkpoint) drops the partial transaction. Note the in-memory
            // graph was NOT touched — abort leaves pre-txn state even
            // in-process.
            let tail_dirty = wal.offset() > before;
            self.note_append_error(tail_dirty);
            self.metrics.txn_aborted.inc();
            return Err(TxnError::Store(Error::Io(e)));
        }
        self.metrics.append_ns.record(started.elapsed());
        self.metrics.appends.inc();
        self.metrics.append_ops.add(lowered.len() as u64);
        self.metrics.append_bytes.add(wal.offset() - before);
        self.metrics.mem_bytes.set(wal.offset() as i64);
        self.store.apply_batch_parallel(&lowered, threads);
        self.metrics.txn_committed.inc();
        Ok(receipt)
    }

    /// fsync the WAL file.
    pub fn sync(&self) -> Result<(), Error> {
        let mut wal = self.lock_wal();
        wal.flush()?;
        wal.get_ref().get_ref().sync_data()?;
        Ok(())
    }

    /// Write a checkpoint: snapshot the store to `snapshot.tmp`, fsync,
    /// atomically rename over `snapshot.bin`, then reset the WAL. After a
    /// successful checkpoint the WAL is empty and recovery needs only the
    /// snapshot.
    pub fn checkpoint(&self) -> Result<(), Error> {
        let _span = self.registry.span("wal.checkpoint");
        let started = Instant::now();
        // Hold the WAL lock across the whole checkpoint so no update can
        // slip between the snapshot and the log reset (it would be lost).
        let mut wal = self.lock_wal();
        let tmp = self.dir.join("snapshot.tmp");
        let snap = self.dir.join("snapshot.bin");
        {
            let f = File::create(&tmp)?;
            let mut buf = BufWriter::new(f);
            self.store.snapshot_to(&mut buf)?;
            buf.flush()?;
            buf.get_ref().sync_data()?;
        }
        self.crash.hit(CrashPoint::CheckpointAfterSnapshotWrite)?;
        std::fs::rename(&tmp, &snap)?;
        self.crash.hit(CrashPoint::CheckpointAfterRename)?;
        // Make the rename itself durable before touching the WAL: without a
        // directory fsync, power loss could persist the WAL truncation below
        // while the rename is still only in the directory's page cache,
        // leaving the *old* snapshot next to an empty log.
        sync_dir(&self.dir)?;
        self.crash.hit(CrashPoint::CheckpointAfterDirSync)?;
        // Reset the log: everything it held is now in the snapshot.
        let file = OpenOptions::new()
            .write(true)
            .truncate(true)
            .open(self.dir.join("wal.log"))?;
        *wal = WalWriter::create(BufWriter::new(file))?;
        wal.flush()?;
        wal.get_ref().get_ref().sync_data()?;
        self.crash.hit(CrashPoint::CheckpointAfterWalReset)?;
        // The log is empty and the snapshot holds everything it did: any
        // poisoned tail is gone.
        self.wal_poisoned.store(false, Ordering::Release);
        self.metrics.checkpoints.inc();
        self.metrics.checkpoint_ns.record(started.elapsed());
        self.metrics.mem_bytes.set(wal.offset() as i64);
        Ok(())
    }

    /// WAL records since the last checkpoint (for checkpoint policies).
    pub fn wal_records(&self) -> u64 {
        self.lock_wal().records()
    }

    /// WAL file length in bytes.
    pub fn wal_bytes(&self) -> u64 {
        self.lock_wal().offset()
    }
}

impl GraphStore for DurableGraphStore {
    fn name(&self) -> &'static str {
        "PlatoD2GL+WAL"
    }

    fn insert_edge(&self, edge: Edge) {
        self.try_apply(&UpdateOp::Insert(edge))
            .expect("WAL append failed: cannot guarantee durability");
    }

    fn delete_edge(&self, src: VertexId, dst: VertexId, etype: EdgeType) -> bool {
        let existed = self.store.edge_weight(src, dst, etype).is_some();
        self.try_apply(&UpdateOp::Delete { src, dst, etype })
            .expect("WAL append failed: cannot guarantee durability");
        existed
    }

    fn update_weight(&self, edge: Edge) -> bool {
        let existed = self
            .store
            .edge_weight(edge.src, edge.dst, edge.etype)
            .is_some();
        self.try_apply(&UpdateOp::UpdateWeight(edge))
            .expect("WAL append failed: cannot guarantee durability");
        existed
    }

    fn apply_batch(&self, ops: &[UpdateOp]) {
        self.try_apply_batch(
            ops,
            std::thread::available_parallelism().map_or(1, |n| n.get()),
        )
        .expect("WAL append failed: cannot guarantee durability");
    }

    fn degree(&self, v: VertexId, etype: EdgeType) -> usize {
        self.store.degree(v, etype)
    }

    fn weight_sum(&self, v: VertexId, etype: EdgeType) -> f64 {
        self.store.weight_sum(v, etype)
    }

    fn edge_weight(&self, src: VertexId, dst: VertexId, etype: EdgeType) -> Option<f64> {
        self.store.edge_weight(src, dst, etype)
    }

    fn sample_neighbors(
        &self,
        v: VertexId,
        etype: EdgeType,
        k: usize,
        rng: &mut dyn rand::RngCore,
    ) -> Vec<VertexId> {
        self.store.sample_neighbors(v, etype, k, rng)
    }

    fn neighbors(&self, v: VertexId, etype: EdgeType) -> Vec<(VertexId, f64)> {
        self.store.neighbors(v, etype)
    }

    fn num_edges(&self) -> usize {
        self.store.num_edges()
    }

    fn topology_bytes(&self) -> usize {
        self.store.topology_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn v(i: u64) -> VertexId {
        VertexId(i)
    }

    fn ins(s: u64, d: u64, w: f64) -> UpdateOp {
        UpdateOp::Insert(Edge::new(v(s), v(d), w))
    }

    fn wal_with(ops: &[UpdateOp]) -> Vec<u8> {
        let mut w = WalWriter::create(Vec::new()).unwrap();
        for op in ops {
            w.append(op).unwrap();
        }
        w.into_inner()
    }

    fn replay_all(bytes: &[u8]) -> (Vec<UpdateOp>, WalReplayReport) {
        let mut out = Vec::new();
        let report = replay_wal(Cursor::new(bytes), |op| out.push(op)).unwrap();
        (out, report)
    }

    #[test]
    fn roundtrip_single_ops() {
        let ops = vec![
            ins(1, 2, 1.5),
            UpdateOp::Delete {
                src: v(1),
                dst: v(2),
                etype: EdgeType(3),
            },
            UpdateOp::UpdateWeight(Edge {
                src: v(7),
                dst: v(8),
                etype: EdgeType(1),
                weight: 0.25,
                ts: 0,
            }),
            // Timestamped variants round-trip through the new tags.
            UpdateOp::Insert(Edge::new(v(3), v(4), 2.0).at(77)),
            UpdateOp::UpdateWeight(Edge::new(v(3), v(4), 0.5).at(99)),
        ];
        let bytes = wal_with(&ops);
        let (out, report) = replay_all(&bytes);
        assert_eq!(out, ops);
        assert_eq!(report.records, 5);
        assert_eq!(report.ops, 5);
        assert_eq!(report.durable_len, bytes.len() as u64);
        assert!(report.torn_tail.is_none());
    }

    #[test]
    fn roundtrip_batch_record() {
        let ops: Vec<UpdateOp> = (0..100).map(|i| ins(i % 7, i, i as f64)).collect();
        let mut w = WalWriter::create(Vec::new()).unwrap();
        w.append_batch(&ops).unwrap();
        assert_eq!(w.records(), 1);
        let bytes = w.into_inner();
        let (out, report) = replay_all(&bytes);
        assert_eq!(out, ops);
        assert_eq!(report.records, 1);
        assert_eq!(report.ops, 100);
    }

    #[test]
    fn empty_wal_and_empty_file() {
        let (out, report) = replay_all(&wal_with(&[]));
        assert!(out.is_empty());
        assert_eq!(report.records, 0);
        let (out, report) = replay_all(&[]);
        assert!(out.is_empty());
        assert_eq!(report, WalReplayReport::default());
    }

    #[test]
    fn tail_replay_from_writer_offset() {
        let mut w = WalWriter::create(Vec::new()).unwrap();
        w.append(&ins(1, 2, 1.0)).unwrap();
        w.append(&ins(3, 4, 2.0)).unwrap();
        let mark = w.offset();
        let tail_ops = vec![ins(5, 6, 3.0), ins(7, 8, 4.0)];
        for op in &tail_ops {
            w.append(op).unwrap();
        }
        let bytes = w.into_inner();

        let mut out = Vec::new();
        let report = replay_wal_from(Cursor::new(&bytes), mark, |op| out.push(op)).unwrap();
        assert_eq!(out, tail_ops);
        assert_eq!(report.records, 2);
        assert_eq!(report.ops, 2);
        assert_eq!(report.durable_len, bytes.len() as u64);
        assert!(report.torn_tail.is_none());

        // From the very end: an empty but valid tail.
        let report = replay_wal_from(Cursor::new(&bytes), bytes.len() as u64, |_| {
            panic!("no ops past the end")
        })
        .unwrap();
        assert_eq!(report.records, 0);

        // Offsets that cannot be record boundaries are rejected up front.
        assert!(replay_wal_from(Cursor::new(&bytes), 3, |_| {}).is_err());
        assert!(replay_wal_from(Cursor::new(&bytes), bytes.len() as u64 + 1, |_| {}).is_err());
        // A mid-record offset fails CRC framing rather than delivering junk.
        assert!(replay_wal_from(Cursor::new(&bytes), mark + 1, |_| {}).is_err());
    }

    #[test]
    fn bad_magic_is_rejected_with_offset() {
        let err = replay_wal(Cursor::new(b"NOTAWAL!rest".to_vec()), |_| {}).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("byte offset 0"), "{err}");
    }

    #[test]
    fn truncation_at_every_byte_is_a_clean_torn_tail() {
        let ops = vec![ins(1, 2, 1.0), ins(3, 4, 2.0), ins(5, 6, 3.0)];
        let bytes = wal_with(&ops);
        // Record boundaries: magic, then equal-size frames.
        for cut in WAL_MAGIC.len()..bytes.len() {
            let (out, report) = replay_all(&bytes[..cut]);
            let frame = (bytes.len() - WAL_MAGIC.len()) / ops.len();
            let expect_records = (cut - WAL_MAGIC.len()) / frame;
            assert_eq!(
                report.records, expect_records as u64,
                "cut at {cut}: wrong durable prefix"
            );
            assert_eq!(out, ops[..expect_records]);
            if cut < bytes.len() {
                assert!(report.torn_tail.is_some() || report.durable_len == cut as u64);
            }
        }
    }

    #[test]
    fn corrupt_tail_record_is_tolerated() {
        let bytes = {
            let mut b = wal_with(&[ins(1, 2, 1.0), ins(3, 4, 2.0)]);
            let n = b.len();
            b[n - 6] ^= 0xFF; // flip a payload byte inside the final record
            b
        };
        let (out, report) = replay_all(&bytes);
        assert_eq!(out, vec![ins(1, 2, 1.0)]);
        assert_eq!(report.records, 1);
        assert_eq!(
            report.torn_tail.unwrap().kind,
            TornTailKind::BadTailChecksum
        );
    }

    #[test]
    fn corrupt_interior_record_is_a_hard_error() {
        let mut bytes = wal_with(&[ins(1, 2, 1.0), ins(3, 4, 2.0)]);
        // Flip a byte inside the FIRST record's payload.
        bytes[WAL_MAGIC.len() + 5] ^= 0x01;
        let err = replay_wal(Cursor::new(bytes), |_| {}).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("byte offset 8"), "{msg}");
        assert!(msg.contains("CRC32C"), "{msg}");
    }

    #[test]
    fn interior_length_prefix_corruption_is_a_hard_error() {
        // A bit flip making an interior record's len huge must not be
        // mistaken for a torn tail: the records after it are intact and
        // truncating them away would silently lose committed updates.
        let ops = vec![ins(1, 2, 1.0), ins(3, 4, 2.0), ins(5, 6, 3.0)];
        let bytes = wal_with(&ops);
        for bit in 0..32 {
            let mut corrupt = bytes.clone();
            let byte = WAL_MAGIC.len() + (bit / 8);
            corrupt[byte] ^= 1 << (bit % 8);
            let mut out = Vec::new();
            let result = replay_wal(Cursor::new(corrupt), |op| out.push(op));
            match result {
                // Flips that keep the frame readable are caught by the CRC
                // (wrong payload window, bytes follow => interior error).
                Err(e) => assert_eq!(e.kind(), io::ErrorKind::InvalidData, "bit {bit}"),
                Ok(report) => panic!(
                    "len bit {bit} flip silently replayed {} records (torn: {:?})",
                    report.records, report.torn_tail
                ),
            }
        }
    }

    #[test]
    fn interior_zeroed_length_prefix_is_a_hard_error() {
        // len == 0 with CRC-valid records following is a corrupted prefix,
        // not filesystem zero-fill.
        let bytes = wal_with(&[ins(1, 2, 1.0), ins(3, 4, 2.0)]);
        let mut corrupt = bytes.clone();
        corrupt[WAL_MAGIC.len()..WAL_MAGIC.len() + 4].fill(0);
        let err = replay_wal(Cursor::new(corrupt), |_| {}).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("zero length"), "{err}");
    }

    #[test]
    fn corrupted_tail_length_prefix_is_still_a_torn_tail() {
        // The same corruption on the FINAL record has nothing valid after
        // it, so it stays tolerated crash debris.
        let ops = vec![ins(1, 2, 1.0), ins(3, 4, 2.0)];
        let bytes = wal_with(&ops);
        let frame = (bytes.len() - WAL_MAGIC.len()) / ops.len();
        let last = WAL_MAGIC.len() + frame;
        let mut corrupt = bytes;
        corrupt[last] ^= 0x80; // low length byte of the final record
        let (out, report) = replay_all(&corrupt);
        assert_eq!(out, ops[..1]);
        assert_eq!(
            report.torn_tail.unwrap().kind,
            TornTailKind::TruncatedRecord
        );
        assert_eq!(report.durable_len, last as u64);
    }

    #[test]
    fn non_finite_logged_weight_replays_clamped_without_panicking() {
        // A WAL written by an (old or release-built) writer may hold a raw
        // non-finite weight. Replay must clamp it exactly as the ingest
        // boundary would have — not trip sanitize_weight's debug assert.
        let mut payload = vec![TAG_INSERT];
        payload.extend_from_slice(&7u64.to_le_bytes());
        payload.extend_from_slice(&8u64.to_le_bytes());
        payload.extend_from_slice(&0u16.to_le_bytes());
        payload.extend_from_slice(&f64::NAN.to_bits().to_le_bytes());
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let crc = crc32c(&payload);
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&crc.to_le_bytes());

        let (out, report) = replay_all(&bytes);
        assert_eq!(report.records, 1);
        assert_eq!(out, vec![ins(7, 8, 0.0)]);
    }

    #[test]
    fn writer_logs_the_sanitized_weight() {
        // Release-build contract: what reaches the log is what the store
        // applies. (Debug builds assert at the ingest boundary instead,
        // so exercise the encoder directly with a finite weight and check
        // the canonical path stays byte-stable.)
        let a = wal_with(&[ins(1, 2, 2.5)]);
        let (out, _) = replay_all(&a);
        assert_eq!(out, vec![ins(1, 2, 2.5)]);
    }

    #[test]
    fn zero_fill_tail_is_tolerated() {
        let mut bytes = wal_with(&[ins(1, 2, 1.0)]);
        let durable = bytes.len();
        bytes.extend_from_slice(&[0u8; 64]);
        let (out, report) = replay_all(&bytes);
        assert_eq!(out.len(), 1);
        assert_eq!(report.torn_tail.unwrap().kind, TornTailKind::ZeroFill);
        assert_eq!(report.durable_len, durable as u64);
    }

    #[test]
    fn garbage_after_valid_records_is_detected() {
        // Garbage that *parses* as a frame with bytes left over must be a
        // hard error; garbage that reads as a truncated/tail frame is torn.
        let mut bytes = wal_with(&[ins(1, 2, 1.0)]);
        bytes.extend_from_slice(&[0xAB; 3]); // < 4 bytes: truncated header
        let (_, report) = replay_all(&bytes);
        assert_eq!(
            report.torn_tail.unwrap().kind,
            TornTailKind::TruncatedHeader
        );
    }

    // -----------------------------------------------------------------
    // Transaction markers
    // -----------------------------------------------------------------

    /// Write `ops` as a committed txn (chunked), returning the log bytes.
    fn wal_with_txn(
        w: &mut WalWriter<Vec<u8>>,
        txn_id: u64,
        ops: &[UpdateOp],
        chunk: usize,
    ) -> io::Result<()> {
        w.append_txn_begin(txn_id, ops.len() as u32)?;
        let mut chain = Vec::new();
        for c in ops.chunks(chunk.max(1)) {
            chain.extend_from_slice(&w.append_batch_crc(c)?.to_le_bytes());
        }
        w.append_txn_commit(txn_id, crc32c(&chain))
    }

    #[test]
    fn committed_txn_replays_all_ops() {
        let ops: Vec<UpdateOp> = (0..10).map(|i| ins(i, i + 1, i as f64)).collect();
        let mut w = WalWriter::create(Vec::new()).unwrap();
        wal_with_txn(&mut w, 42, &ops, 3).unwrap();
        let bytes = w.into_inner();
        let (out, report) = replay_all(&bytes);
        assert_eq!(out, ops);
        assert_eq!(report.ops, 10);
        assert_eq!(report.dropped_batches, 0);
        assert_eq!(report.durable_len, bytes.len() as u64);
        assert!(report.torn_tail.is_none());
    }

    #[test]
    fn txn_without_commit_is_dropped_and_rolled_back() {
        let mut w = WalWriter::create(Vec::new()).unwrap();
        w.append(&ins(1, 2, 1.0)).unwrap();
        let begin_offset = w.offset();
        w.append_txn_begin(7, 2).unwrap();
        w.append_batch(&[ins(3, 4, 1.0), ins(5, 6, 1.0)]).unwrap();
        // No commit marker: the process died here.
        let (out, report) = replay_all(&w.into_inner());
        assert_eq!(out, vec![ins(1, 2, 1.0)], "txn ops never delivered");
        assert_eq!(report.dropped_batches, 1);
        assert_eq!(report.records, 1, "rolled back to before the begin");
        assert_eq!(
            report.durable_len, begin_offset,
            "truncation point is the begin"
        );
        let tail = report.torn_tail.unwrap();
        assert_eq!(tail.kind, TornTailKind::UncommittedBatch);
        assert_eq!(tail.offset, begin_offset);
    }

    #[test]
    fn interior_crashed_txn_is_dropped_but_later_data_survives() {
        // txn A dies mid-flight, the process restarts and commits txn B
        // plus a plain record. A's ops vanish; everything after replays.
        let mut w = WalWriter::create(Vec::new()).unwrap();
        w.append_txn_begin(1, 2).unwrap();
        w.append_batch(&[ins(1, 2, 1.0)]).unwrap(); // only 1 of 2 ops
        wal_with_txn(&mut w, 2, &[ins(10, 11, 1.0), ins(12, 13, 1.0)], 10).unwrap();
        w.append(&ins(20, 21, 1.0)).unwrap();
        let bytes = w.into_inner();
        let (out, report) = replay_all(&bytes);
        assert_eq!(
            out,
            vec![ins(10, 11, 1.0), ins(12, 13, 1.0), ins(20, 21, 1.0)],
            "txn A's ops dropped, committed txn B and plain record intact"
        );
        assert_eq!(report.dropped_batches, 1);
        assert_eq!(
            report.durable_len,
            bytes.len() as u64,
            "no truncation: durable data follows"
        );
        assert!(report.torn_tail.is_none());
    }

    #[test]
    fn torn_tail_inside_a_txn_rolls_back_to_the_begin() {
        let mut w = WalWriter::create(Vec::new()).unwrap();
        w.append(&ins(1, 2, 1.0)).unwrap();
        let begin_offset = w.offset();
        wal_with_txn(&mut w, 9, &[ins(3, 4, 1.0), ins(5, 6, 1.0)], 1).unwrap();
        let mut bytes = w.into_inner();
        // Tear the commit marker (drop its last 3 bytes).
        bytes.truncate(bytes.len() - 3);
        let (out, report) = replay_all(&bytes);
        assert_eq!(out, vec![ins(1, 2, 1.0)]);
        assert_eq!(report.dropped_batches, 1);
        let tail = report.torn_tail.unwrap();
        assert_eq!(tail.kind, TornTailKind::UncommittedBatch);
        assert_eq!(tail.offset, begin_offset);
        assert_eq!(report.durable_len, begin_offset);
    }

    #[test]
    fn orphan_commit_marker_is_a_hard_error() {
        let mut w = WalWriter::create(Vec::new()).unwrap();
        w.append_txn_commit(5, 0).unwrap();
        let err = replay_wal(Cursor::new(w.into_inner()), |_| {}).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("orphan commit"), "{err}");
    }

    #[test]
    fn commit_with_wrong_txn_id_count_or_crc_is_a_hard_error() {
        // Wrong id.
        let mut w = WalWriter::create(Vec::new()).unwrap();
        w.append_txn_begin(1, 1).unwrap();
        let crc = w.append_batch_crc(&[ins(1, 2, 1.0)]).unwrap();
        w.append_txn_commit(2, crc32c(&crc.to_le_bytes())).unwrap();
        let err = replay_wal(Cursor::new(w.into_inner()), |_| {}).unwrap_err();
        assert!(err.to_string().contains("names txn 2"), "{err}");

        // Wrong op count.
        let mut w = WalWriter::create(Vec::new()).unwrap();
        w.append_txn_begin(1, 5).unwrap();
        let crc = w.append_batch_crc(&[ins(1, 2, 1.0)]).unwrap();
        w.append_txn_commit(1, crc32c(&crc.to_le_bytes())).unwrap();
        let err = replay_wal(Cursor::new(w.into_inner()), |_| {}).unwrap_err();
        assert!(err.to_string().contains("declared 5"), "{err}");

        // Wrong CRC chain.
        let mut w = WalWriter::create(Vec::new()).unwrap();
        w.append_txn_begin(1, 1).unwrap();
        w.append_batch(&[ins(1, 2, 1.0)]).unwrap();
        w.append_txn_commit(1, 0xDEAD_BEEF).unwrap();
        let err = replay_wal(Cursor::new(w.into_inner()), |_| {}).unwrap_err();
        assert!(err.to_string().contains("CRC chain mismatch"), "{err}");
    }

    #[test]
    fn markerless_v5_wal_replays_unchanged() {
        // A log written by the pre-txn writer (plain + tag-4 batch records
        // only) must replay byte-identically to the old semantics.
        let mut w = WalWriter::create(Vec::new()).unwrap();
        w.append(&ins(1, 2, 1.0)).unwrap();
        w.append_batch(&[ins(3, 4, 2.0), ins(5, 6, 3.0)]).unwrap();
        let (out, report) = replay_all(&w.into_inner());
        assert_eq!(out, vec![ins(1, 2, 1.0), ins(3, 4, 2.0), ins(5, 6, 3.0)]);
        assert_eq!(report.records, 2);
        assert_eq!(report.ops, 3);
        assert_eq!(report.dropped_batches, 0);
    }

    #[test]
    fn plain_records_interleave_with_txns() {
        let mut w = WalWriter::create(Vec::new()).unwrap();
        w.append(&ins(1, 2, 1.0)).unwrap();
        wal_with_txn(&mut w, 3, &[ins(3, 4, 1.0)], 1).unwrap();
        w.append(&ins(5, 6, 1.0)).unwrap();
        wal_with_txn(&mut w, 4, &[ins(7, 8, 1.0), ins(9, 10, 1.0)], 1).unwrap();
        let (out, report) = replay_all(&w.into_inner());
        assert_eq!(out.len(), 5, "log order preserved across markers");
        assert_eq!(out[0], ins(1, 2, 1.0));
        assert_eq!(out[2], ins(5, 6, 1.0));
        assert_eq!(report.ops, 5);
        assert_eq!(report.dropped_batches, 0);
    }

    #[test]
    fn durable_store_txn_commits_and_recovers() {
        let dir = tempdir("txn_commit");
        let txn = GraphTxn::new(99)
            .insert_edge(Edge::new(v(1), v(2), 1.0))
            .insert_edge(Edge::new(v(3), v(4), 2.0));
        {
            let (store, _) = DurableGraphStore::open(&dir, StoreConfig::default()).unwrap();
            let receipt = store.try_apply_txn(&txn, 2).unwrap();
            assert_eq!(receipt.txn_id, 99);
            assert_eq!(receipt.ops_applied, 2);
            assert_eq!(store.num_edges(), 2);
        }
        let (store, report) = DurableGraphStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(report.wal_ops, 2);
        assert_eq!(report.dropped_batches, 0);
        assert_eq!(store.num_edges(), 2);
        assert_eq!(store.edge_weight(v(3), v(4), EdgeType::DEFAULT), Some(2.0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_store_txn_rejection_applies_nothing() {
        let dir = tempdir("txn_reject");
        let (store, _) = DurableGraphStore::open(&dir, StoreConfig::default()).unwrap();
        store.insert_edge(Edge::new(v(1), v(2), 1.0));
        let bytes_before = store.wal_bytes();
        let txn = GraphTxn::new(1)
            .insert_edge(Edge::new(v(5), v(6), 1.0))
            .delete_edge(v(8), v(9), EdgeType::DEFAULT); // dangling
        let err = store.try_apply_txn(&txn, 2).unwrap_err();
        assert!(err.is_rejected());
        assert_eq!(store.num_edges(), 1, "zero changes on abort");
        assert_eq!(store.wal_bytes(), bytes_before, "nothing logged on abort");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_crash_before_commit_recovers_pre_txn_state() {
        let dir = tempdir("txn_crash_pre");
        let txn = GraphTxn::new(5)
            .insert_edge(Edge::new(v(10), v(11), 1.0))
            .insert_edge(Edge::new(v(12), v(13), 1.0));
        {
            let (store, _) = DurableGraphStore::open(&dir, StoreConfig::default()).unwrap();
            store.insert_edge(Edge::new(v(1), v(2), 1.0));
            store.crash_injector().arm(CrashPoint::TxnAfterOps);
            let err = store.try_apply_txn(&txn, 2).unwrap_err();
            assert!(matches!(err, TxnError::Store(_)));
            assert_eq!(store.num_edges(), 1, "in-memory graph untouched");
            assert!(store.is_wal_poisoned(), "tail holds a dangling begin");
            assert!(
                store.try_apply(&ins(50, 51, 1.0)).is_err(),
                "writes fail-stop until reopen"
            );
        }
        let (store, report) = DurableGraphStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(report.dropped_batches, 1);
        assert_eq!(store.num_edges(), 1, "pre-txn state");
        assert!(!store.is_wal_poisoned());
        // The truncated log accepts new writes cleanly.
        store.try_apply_txn(&txn, 2).unwrap();
        assert_eq!(store.num_edges(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_crash_after_commit_recovers_post_txn_state() {
        let dir = tempdir("txn_crash_post");
        let txn = GraphTxn::new(6).insert_edge(Edge::new(v(10), v(11), 1.0));
        {
            let (store, _) = DurableGraphStore::open(&dir, StoreConfig::default()).unwrap();
            store.crash_injector().arm(CrashPoint::TxnAfterFsync);
            let err = store.try_apply_txn(&txn, 2).unwrap_err();
            assert!(matches!(err, TxnError::Store(_)));
            assert_eq!(store.num_edges(), 0, "apply never ran in-process");
        }
        let (store, report) = DurableGraphStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(report.dropped_batches, 0);
        assert_eq!(report.wal_ops, 1, "committed txn replayed");
        assert_eq!(store.num_edges(), 1, "post-txn state");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_op_txn_commits_without_touching_the_wal() {
        let dir = tempdir("txn_zero");
        let (store, _) = DurableGraphStore::open(&dir, StoreConfig::default()).unwrap();
        let bytes_before = store.wal_bytes();
        let receipt = store
            .try_apply_txn(&GraphTxn::new(1).upsert_vertex(v(9)), 1)
            .unwrap();
        assert_eq!(receipt.ops_applied, 0);
        assert_eq!(store.wal_bytes(), bytes_before);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "platod2gl_wal_txn_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }
}
