//! CRC32C (Castagnoli) — the checksum guarding WAL records and snapshot
//! blocks.
//!
//! Chosen over CRC32 (IEEE) for its better error-detection properties and
//! because it is the de-facto storage-system standard (RocksDB WALs, ext4
//! metadata, iSCSI). Software slicing-by-one table implementation: the
//! checksummed units here are small (WAL records, snapshot blocks), so a
//! table lookup per byte is plenty and keeps the code dependency-free.

/// Reflected Castagnoli polynomial.
const POLY: u32 = 0x82F6_3B78;

/// 256-entry lookup table, built at compile time.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Incremental CRC32C hasher for streaming writers/readers.
#[derive(Clone, Copy, Debug)]
pub struct Crc32c {
    state: u32,
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32c {
    pub fn new() -> Self {
        Crc32c { state: 0xFFFF_FFFF }
    }

    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finish the checksum (the hasher itself stays usable: `finish` is a
    /// read-only finalization).
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot convenience.
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut h = Crc32c::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 / published CRC32C test vectors.
        assert_eq!(crc32c(b""), 0x0000_0000);
        assert_eq!(crc32c(b"a"), 0xC1D0_4330);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..255u8).collect();
        let mut h = Crc32c::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32c(&data));
    }

    #[test]
    fn every_single_bit_flip_changes_the_checksum() {
        let data = b"PlatoD2GL wal record payload".to_vec();
        let base = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
