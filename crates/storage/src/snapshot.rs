//! Snapshot / restore for the dynamic topology store.
//!
//! The paper's static-storage competitors must "re-partition and re-deploy
//! from scratch" when graphs change; PlatoD2GL never needs that for
//! updates, but production deployments still checkpoint so a restarted
//! graph server can come back without replaying the full edge history.
//! The snapshot is a compact length-prefixed binary stream; restore feeds
//! [`DynamicGraphStore::bulk_build`], rebuilding every samtree bottom-up.
//!
//! Format (little-endian):
//!
//! ```text
//! magic "PD2GSNAP" | version u32 | entry count u64
//! per entry: src u64 | etype u16 | degree u32 | degree x (dst u64, weight f64)
//! ```

use crate::topology::AdjacencyEntry;
use crate::DynamicGraphStore;
use platod2gl_graph::{Edge, EdgeType, VertexId};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"PD2GSNAP";
const VERSION: u32 = 1;

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Write adjacency entries in the snapshot format (shared by single-store
/// and cluster snapshots).
pub fn write_snapshot(
    mut w: impl Write,
    entries: &[AdjacencyEntry],
) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(entries.len() as u64).to_le_bytes())?;
    for ((src, etype), pairs) in entries {
        w.write_all(&src.to_le_bytes())?;
        w.write_all(&etype.to_le_bytes())?;
        w.write_all(&(pairs.len() as u32).to_le_bytes())?;
        for (dst, weight) in pairs {
            w.write_all(&dst.to_le_bytes())?;
            w.write_all(&weight.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Parse a snapshot stream, feeding edges to `sink` in batches of up to
/// 8192 (so restore paths can bulk-load without materializing everything).
pub fn read_snapshot(
    mut r: impl Read,
    mut sink: impl FnMut(Vec<Edge>),
) -> io::Result<()> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad_data("not a PlatoD2GL snapshot"));
    }
    let mut buf4 = [0u8; 4];
    r.read_exact(&mut buf4)?;
    let version = u32::from_le_bytes(buf4);
    if version != VERSION {
        return Err(bad_data("unsupported snapshot version"));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let entries = u64::from_le_bytes(buf8);
    let mut batch: Vec<Edge> = Vec::with_capacity(8192);
    for _ in 0..entries {
        r.read_exact(&mut buf8)?;
        let src = VertexId(u64::from_le_bytes(buf8));
        let mut buf2 = [0u8; 2];
        r.read_exact(&mut buf2)?;
        let etype = EdgeType(u16::from_le_bytes(buf2));
        r.read_exact(&mut buf4)?;
        let degree = u32::from_le_bytes(buf4);
        for _ in 0..degree {
            r.read_exact(&mut buf8)?;
            let dst = VertexId(u64::from_le_bytes(buf8));
            r.read_exact(&mut buf8)?;
            let weight = f64::from_le_bytes(buf8);
            if !weight.is_finite() {
                return Err(bad_data("non-finite edge weight"));
            }
            batch.push(Edge {
                src,
                dst,
                etype,
                weight,
            });
        }
        if batch.len() >= 8192 {
            sink(std::mem::take(&mut batch));
            batch = Vec::with_capacity(8192);
        }
    }
    if !batch.is_empty() {
        sink(batch);
    }
    Ok(())
}

impl DynamicGraphStore {
    /// Write a snapshot of the whole topology.
    ///
    /// Takes a point-in-time view per source vertex (each samtree is read
    /// under its own lock); concurrent updates land either before or after
    /// a vertex's entry, never partially.
    pub fn snapshot_to(&self, w: impl Write) -> io::Result<()> {
        write_snapshot(w, &self.export_adjacency())
    }

    /// Read a snapshot into this (normally empty) store via the bulk-load
    /// path.
    pub fn restore_from(&self, r: impl Read) -> io::Result<()> {
        read_snapshot(r, |batch| self.bulk_build(batch))
    }
}

#[cfg(test)]
mod fuzz {
    use crate::DynamicGraphStore;
    use platod2gl_graph::GraphStore;
    use proptest::prelude::*;

    proptest! {
        /// Arbitrary bytes must never panic the parser — only `Err` out.
        #[test]
        fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let store = DynamicGraphStore::with_defaults();
            let _ = store.restore_from(data.as_slice());
        }

        /// Valid-prefix-then-garbage must never panic either.
        #[test]
        fn corrupted_tail_never_panics(
            cut in 0usize..200,
            garbage in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let store = DynamicGraphStore::with_defaults();
            for i in 0..20u64 {
                store.insert_edge(platod2gl_graph::Edge::new(
                    platod2gl_graph::VertexId(i % 3),
                    platod2gl_graph::VertexId(100 + i),
                    1.0,
                ));
            }
            let mut bytes = Vec::new();
            store.snapshot_to(&mut bytes).expect("snapshot");
            bytes.truncate(cut.min(bytes.len()));
            bytes.extend(garbage);
            let fresh = DynamicGraphStore::with_defaults();
            let _ = fresh.restore_from(bytes.as_slice());
            // Whatever happened, the store must stay structurally valid.
            fresh.check_invariants().expect("invariants after bad restore");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StoreConfig;
    use platod2gl_graph::{DatasetProfile, GraphStore};

    #[test]
    fn snapshot_roundtrip_preserves_every_edge() {
        let profile = DatasetProfile::tiny();
        let original = DynamicGraphStore::with_defaults();
        for e in profile.edge_stream(13) {
            original.insert_edge(e);
        }
        let mut bytes = Vec::new();
        original.snapshot_to(&mut bytes).expect("snapshot");
        assert!(bytes.len() > 16);

        let restored = DynamicGraphStore::new(StoreConfig::default());
        restored.restore_from(bytes.as_slice()).expect("restore");
        assert_eq!(restored.num_edges(), original.num_edges());
        restored.check_invariants().expect("restored invariants");
        for src in profile.sample_sources(100, 3) {
            let mut a = original.neighbors(src, EdgeType(0));
            let mut b = restored.neighbors(src, EdgeType(0));
            a.sort_by_key(|(id, _)| id.raw());
            b.sort_by_key(|(id, _)| id.raw());
            assert_eq!(a.len(), b.len(), "src {src:?}");
            for ((ia, wa), (ib, wb)) in a.iter().zip(&b) {
                assert_eq!(ia, ib);
                assert!((wa - wb).abs() < 1e-9, "weights must roundtrip exactly");
            }
        }
    }

    #[test]
    fn restore_can_change_tree_parameters() {
        // Snapshots carry adjacency, not tree layout: restoring into a
        // store with different capacity/compression must still work.
        let original = DynamicGraphStore::with_defaults();
        for i in 0..5_000u64 {
            original.insert_edge(Edge::new(VertexId(i % 7), VertexId(1_000 + i), 0.5));
        }
        let mut bytes = Vec::new();
        original.snapshot_to(&mut bytes).expect("snapshot");
        let restored = DynamicGraphStore::new(StoreConfig {
            tree: platod2gl_samtree::SamTreeConfig {
                capacity: 16,
                alpha: 2,
                compression: false,
                leaf_index: platod2gl_samtree::LeafIndex::Fenwick,
            },
            ..StoreConfig::default()
        });
        restored.restore_from(bytes.as_slice()).expect("restore");
        assert_eq!(restored.num_edges(), 5_000);
        restored.check_invariants().expect("invariants");
    }

    #[test]
    fn empty_store_snapshot_roundtrip() {
        let store = DynamicGraphStore::with_defaults();
        let mut bytes = Vec::new();
        store.snapshot_to(&mut bytes).expect("snapshot");
        let restored = DynamicGraphStore::with_defaults();
        restored.restore_from(bytes.as_slice()).expect("restore");
        assert_eq!(restored.num_edges(), 0);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let store = DynamicGraphStore::with_defaults();
        let err = store
            .restore_from(&b"NOTASNAPxxxxxxxxxxxx"[..])
            .expect_err("must reject");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let store = DynamicGraphStore::with_defaults();
        store.insert_edge(Edge::new(VertexId(1), VertexId(2), 1.0));
        let mut bytes = Vec::new();
        store.snapshot_to(&mut bytes).expect("snapshot");
        bytes.truncate(bytes.len() - 4);
        let fresh = DynamicGraphStore::with_defaults();
        assert!(fresh.restore_from(bytes.as_slice()).is_err());
    }

    #[test]
    fn non_finite_weight_is_rejected() {
        let store = DynamicGraphStore::with_defaults();
        store.insert_edge(Edge::new(VertexId(1), VertexId(2), 1.0));
        let mut bytes = Vec::new();
        store.snapshot_to(&mut bytes).expect("snapshot");
        // Corrupt the weight (last 8 bytes) into a NaN.
        let n = bytes.len();
        bytes[n - 8..].copy_from_slice(&f64::NAN.to_le_bytes());
        let fresh = DynamicGraphStore::with_defaults();
        let err = fresh.restore_from(bytes.as_slice()).expect_err("reject NaN");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
