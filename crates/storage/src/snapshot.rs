//! Snapshot / restore for the dynamic topology store.
//!
//! The paper's static-storage competitors must "re-partition and re-deploy
//! from scratch" when graphs change; PlatoD2GL never needs that for
//! updates, but production deployments still checkpoint so a restarted
//! graph server can come back without replaying the full edge history.
//! The snapshot is a compact length-prefixed binary stream; restore feeds
//! [`DynamicGraphStore::bulk_build`], rebuilding every samtree bottom-up.
//!
//! # Format v3 (current, little-endian)
//!
//! ```text
//! header : magic "PD2GSNAP" | version u32 = 3 | entry count u64
//! block  : block_len u32 (> 0) | payload [u8; block_len] | crc u32
//! footer : sentinel u32 = 0 | file_crc u32 | end-of-file
//! ```
//!
//! * Each block's `crc` is CRC32C of its payload; a payload is a run of
//!   whole entries (an entry never spans blocks).
//! * `file_crc` is CRC32C of **every preceding byte** — header, all blocks
//!   (including their length and CRC fields) and the sentinel. Because a
//!   bit flip never changes the file length, any single-bit corruption
//!   anywhere before the footer changes `file_crc`'s input, and a flip in
//!   the `file_crc` field itself breaks the comparison: every single-bit
//!   flip is detected even if the per-block framing happens to survive it.
//! * v3 entry encoding carries the temporal plane's per-edge event time:
//!   `src u64 | etype u16 | degree u32 | degree x (dst u64, weight f64, ts u64)`
//!   (`ts == 0` = timeless edge).
//!
//! # Format v2 (legacy, still readable and writable for compat tests)
//!
//! Identical framing; entries omit the trailing `ts u64` per edge. v2
//! snapshots restore with every timestamp defaulted to `0`.
//!
//! # Format v1 (legacy, still readable)
//!
//! ```text
//! magic "PD2GSNAP" | version u32 = 1 | entry count u64 | entries...
//! ```
//!
//! No checksums: v1 detects truncation but not bit rot. [`read_snapshot`]
//! accepts all three versions; [`write_snapshot`] emits v3.

use crate::crc32c::{crc32c, Crc32c};
use crate::topology::AdjacencyEntry;
use crate::DynamicGraphStore;
use platod2gl_graph::{Edge, EdgeType, VertexId};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"PD2GSNAP";
/// Current snapshot format version written by [`write_snapshot`].
pub const SNAPSHOT_VERSION: u32 = 3;
const V1: u32 = 1;
const V2: u32 = 2;

/// Edges per block in v2 snapshots; also the restore batching unit.
const BLOCK_EDGES: usize = 8192;

/// Upper bound on a v2 block payload; larger lengths are corruption.
const MAX_BLOCK_LEN: u32 = 1 << 30;

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn encode_entry(((src, etype), rows): &AdjacencyEntry, with_ts: bool, out: &mut Vec<u8>) {
    out.extend_from_slice(&src.to_le_bytes());
    out.extend_from_slice(&etype.to_le_bytes());
    out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for (dst, weight, ts) in rows {
        out.extend_from_slice(&dst.to_le_bytes());
        out.extend_from_slice(&weight.to_le_bytes());
        if with_ts {
            out.extend_from_slice(&ts.to_le_bytes());
        }
    }
}

/// Shared checksummed-framing writer for v2/v3 (they differ only in the
/// entry encoding's trailing per-edge timestamp).
fn write_checksummed(
    mut w: impl Write,
    entries: &[AdjacencyEntry],
    version: u32,
    with_ts: bool,
) -> io::Result<()> {
    let mut file_crc = Crc32c::new();
    let mut emit = |w: &mut dyn Write, bytes: &[u8]| -> io::Result<()> {
        file_crc.update(bytes);
        w.write_all(bytes)
    };

    emit(&mut w, MAGIC)?;
    emit(&mut w, &version.to_le_bytes())?;
    emit(&mut w, &(entries.len() as u64).to_le_bytes())?;

    let mut payload = Vec::new();
    let mut i = 0usize;
    while i < entries.len() {
        payload.clear();
        let mut edges_in_block = 0usize;
        // Pack whole entries until the block holds ~BLOCK_EDGES edges.
        while i < entries.len() && (payload.is_empty() || edges_in_block < BLOCK_EDGES) {
            encode_entry(&entries[i], with_ts, &mut payload);
            edges_in_block += entries[i].1.len();
            i += 1;
        }
        emit(&mut w, &(payload.len() as u32).to_le_bytes())?;
        emit(&mut w, &payload)?;
        emit(&mut w, &crc32c(&payload).to_le_bytes())?;
    }

    emit(&mut w, &0u32.to_le_bytes())?; // sentinel
    let footer = file_crc.finish();
    w.write_all(&footer.to_le_bytes())?;
    w.flush()
}

/// Write adjacency entries in snapshot format v3 (shared by single-store
/// and cluster snapshots).
pub fn write_snapshot(w: impl Write, entries: &[AdjacencyEntry]) -> io::Result<()> {
    write_checksummed(w, entries, SNAPSHOT_VERSION, true)
}

/// Write adjacency entries in the legacy v2 format (checksummed, no
/// per-edge timestamps). Kept so compatibility tests can produce v2
/// streams; new code writes v3.
pub fn write_snapshot_v2(w: impl Write, entries: &[AdjacencyEntry]) -> io::Result<()> {
    write_checksummed(w, entries, V2, false)
}

/// Write adjacency entries in the legacy v1 format (no checksums, no
/// timestamps). Kept so compatibility tests can produce v1 streams.
pub fn write_snapshot_v1(mut w: impl Write, entries: &[AdjacencyEntry]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&V1.to_le_bytes())?;
    w.write_all(&(entries.len() as u64).to_le_bytes())?;
    for entry in entries {
        let mut buf = Vec::new();
        encode_entry(entry, false, &mut buf);
        w.write_all(&buf)?;
    }
    w.flush()
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Reader wrapper tracking the byte offset (for error messages) and the
/// running whole-file CRC (for the v2 footer check).
struct TrackedReader<R: Read> {
    r: R,
    offset: u64,
    crc: Crc32c,
}

impl<R: Read> TrackedReader<R> {
    fn new(r: R) -> Self {
        TrackedReader {
            r,
            offset: 0,
            crc: Crc32c::new(),
        }
    }

    /// `read_exact` that folds the bytes into the file CRC and converts
    /// truncation into `InvalidData` naming the offset.
    fn read_exact(&mut self, buf: &mut [u8], what: &str) -> io::Result<()> {
        self.read_raw(buf, what)?;
        self.crc.update(buf);
        Ok(())
    }

    /// `read_exact` that does NOT feed the file CRC (for the footer field).
    fn read_raw(&mut self, buf: &mut [u8], what: &str) -> io::Result<()> {
        match self.r.read_exact(buf) {
            Ok(()) => {
                self.offset += buf.len() as u64;
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(bad_data(format!(
                "snapshot truncated at byte offset {} while reading {what}",
                self.offset
            ))),
            Err(e) => Err(e),
        }
    }

    fn u16(&mut self, what: &str) -> io::Result<u16> {
        let mut b = [0u8; 2];
        self.read_exact(&mut b, what)?;
        Ok(u16::from_le_bytes(b))
    }

    fn u32(&mut self, what: &str) -> io::Result<u32> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b, what)?;
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self, what: &str) -> io::Result<u64> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b, what)?;
        Ok(u64::from_le_bytes(b))
    }
}

/// Parse a snapshot stream (v1 or v2), feeding edges to `sink` in batches
/// of up to 8192 (so restore paths can bulk-load without materializing
/// everything). All structural problems — bad magic, unsupported version,
/// truncation, checksum mismatch, non-finite weights, trailing bytes —
/// are reported as [`io::ErrorKind::InvalidData`] with the byte offset.
pub fn read_snapshot(r: impl Read, mut sink: impl FnMut(Vec<Edge>)) -> io::Result<()> {
    let mut r = TrackedReader::new(r);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic, "magic")?;
    if &magic != MAGIC {
        return Err(bad_data(format!(
            "not a PlatoD2GL snapshot: bad magic at byte offset 0 (found {magic:02x?}, expected {MAGIC:02x?})"
        )));
    }
    let version_offset = r.offset;
    let version = r.u32("version")?;
    match version {
        V1 => read_v1(r, &mut sink),
        V2 => read_checksummed(r, false, &mut sink),
        SNAPSHOT_VERSION => read_checksummed(r, true, &mut sink),
        other => Err(bad_data(format!(
            "unsupported snapshot version {other} at byte offset {version_offset}: \
             this build supports versions {V1}, {V2} and {SNAPSHOT_VERSION}"
        ))),
    }
}

/// Decode one entry's edges from a tracked stream (v1 path).
fn read_v1(mut r: TrackedReader<impl Read>, sink: &mut impl FnMut(Vec<Edge>)) -> io::Result<()> {
    let entries = r.u64("entry count")?;
    let mut batch: Vec<Edge> = Vec::with_capacity(BLOCK_EDGES);
    for _ in 0..entries {
        let src = VertexId(r.u64("entry source id")?);
        let etype = EdgeType(r.u16("entry edge type")?);
        let degree = r.u32("entry degree")?;
        for _ in 0..degree {
            let dst = VertexId(r.u64("edge destination id")?);
            let weight_offset = r.offset;
            let weight = f64::from_bits(r.u64("edge weight")?);
            if !weight.is_finite() {
                return Err(bad_data(format!(
                    "non-finite edge weight at byte offset {weight_offset}"
                )));
            }
            batch.push(Edge {
                src,
                dst,
                etype,
                weight,
                ts: 0,
            });
        }
        if batch.len() >= BLOCK_EDGES {
            sink(std::mem::take(&mut batch));
            batch = Vec::with_capacity(BLOCK_EDGES);
        }
    }
    if !batch.is_empty() {
        sink(batch);
    }
    Ok(())
}

fn read_checksummed(
    mut r: TrackedReader<impl Read>,
    with_ts: bool,
    sink: &mut impl FnMut(Vec<Edge>),
) -> io::Result<()> {
    let declared_entries = r.u64("entry count")?;
    let mut seen_entries = 0u64;

    loop {
        let block_offset = r.offset;
        let block_len = r.u32("block length")?;
        if block_len == 0 {
            // Sentinel: capture the running CRC *before* the footer field.
            let computed = r.crc.finish();
            let mut footer = [0u8; 4];
            r.read_raw(&mut footer, "file checksum")?;
            let stored = u32::from_le_bytes(footer);
            if stored != computed {
                return Err(bad_data(format!(
                    "snapshot file checksum mismatch at byte offset {} \
                     (stored {stored:#010x}, computed {computed:#010x})",
                    r.offset - 4
                )));
            }
            if seen_entries != declared_entries {
                return Err(bad_data(format!(
                    "snapshot declared {declared_entries} entries but contained {seen_entries}"
                )));
            }
            // Nothing may follow the footer.
            let mut probe = [0u8; 1];
            match r.r.read(&mut probe) {
                Ok(0) => return Ok(()),
                Ok(_) => {
                    return Err(bad_data(format!(
                        "trailing data after snapshot footer at byte offset {}",
                        r.offset
                    )))
                }
                Err(e) => return Err(e),
            }
        }
        if block_len > MAX_BLOCK_LEN {
            return Err(bad_data(format!(
                "snapshot block at byte offset {block_offset} declares an absurd \
                 length {block_len} (max {MAX_BLOCK_LEN})"
            )));
        }
        let mut payload = vec![0u8; block_len as usize];
        r.read_exact(&mut payload, "block payload")?;
        let stored = r.u32("block checksum")?;
        let computed = crc32c(&payload);
        if stored != computed {
            return Err(bad_data(format!(
                "snapshot block at byte offset {block_offset} failed its CRC32C \
                 check (stored {stored:#010x}, computed {computed:#010x})"
            )));
        }
        seen_entries += parse_block(&payload, block_offset, with_ts, sink)?;
    }
}

/// Parse a CRC-validated v2/v3 block payload: a run of whole entries.
fn parse_block(
    payload: &[u8],
    block_offset: u64,
    with_ts: bool,
    sink: &mut impl FnMut(Vec<Edge>),
) -> io::Result<u64> {
    let corrupt = |detail: &str| {
        bad_data(format!(
            "snapshot block at byte offset {block_offset} passed its CRC but \
             does not decode: {detail}"
        ))
    };
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> io::Result<&[u8]> {
        let end = pos
            .checked_add(n)
            .filter(|&e| e <= payload.len())
            .ok_or_else(|| corrupt("entry extends past the block"))?;
        let s = &payload[*pos..end];
        *pos = end;
        Ok(s)
    };
    let mut entries = 0u64;
    let mut batch: Vec<Edge> = Vec::with_capacity(BLOCK_EDGES);
    while pos < payload.len() {
        let src = VertexId(u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()));
        let etype = EdgeType(u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()));
        let degree = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        for _ in 0..degree {
            let dst = VertexId(u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()));
            let weight = f64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
            if !weight.is_finite() {
                return Err(corrupt("non-finite edge weight"));
            }
            let ts = if with_ts {
                u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap())
            } else {
                0
            };
            batch.push(Edge {
                src,
                dst,
                etype,
                weight,
                ts,
            });
            if batch.len() >= BLOCK_EDGES {
                sink(std::mem::take(&mut batch));
                batch = Vec::with_capacity(BLOCK_EDGES);
            }
        }
        entries += 1;
    }
    if !batch.is_empty() {
        sink(batch);
    }
    Ok(entries)
}

impl DynamicGraphStore {
    /// Write a snapshot of the whole topology (format v3, carrying each
    /// edge's event time).
    ///
    /// Takes a point-in-time view per source vertex (each samtree is read
    /// under its own lock); concurrent updates land either before or after
    /// a vertex's entry, never partially.
    pub fn snapshot_to(&self, w: impl Write) -> io::Result<()> {
        write_snapshot(w, &self.export_adjacency())
    }

    /// Read a snapshot (v1, v2 or v3) into this (normally empty) store via
    /// the bulk-load path. Pre-v3 snapshots restore with every edge
    /// timestamp defaulted to `0` (timeless).
    pub fn restore_from(&self, r: impl Read) -> io::Result<()> {
        read_snapshot(r, |batch| self.bulk_build(batch))
    }
}

#[cfg(test)]
mod fuzz {
    use super::write_snapshot_v2;
    use crate::DynamicGraphStore;
    use platod2gl_graph::{Edge, EdgeType, GraphStore, VertexId};
    use proptest::prelude::*;

    proptest! {
        /// v2 → v3 compat: an arbitrary stamped graph written as legacy v2
        /// restores with identical topology/weights and every timestamp
        /// defaulted to 0, while the v3 writer round-trips timestamps
        /// exactly.
        #[test]
        fn snapshot_v2_to_v3_compat_roundtrip(
            edges in proptest::collection::vec(
                ((0u64..16, 100u64..140), (0u16..3, 1u32..1000, 0u64..1_000)),
                1..80,
            ),
        ) {
            let store = DynamicGraphStore::with_defaults();
            for &((src, dst), (et, w, ts)) in &edges {
                store.insert_edge(
                    Edge {
                        src: VertexId(src),
                        dst: VertexId(dst),
                        etype: EdgeType(et),
                        weight: w as f64 / 100.0,
                        ts,
                    },
                );
            }
            let entries = store.export_adjacency();

            // v3 roundtrip: everything, including event times, survives.
            let mut v3 = Vec::new();
            super::write_snapshot(&mut v3, &entries).expect("v3 write");
            let r3 = DynamicGraphStore::with_defaults();
            r3.restore_from(v3.as_slice()).expect("v3 restore");
            prop_assert_eq!(r3.num_edges(), store.num_edges());

            // v2 write of the same entries: restores timeless.
            let mut v2 = Vec::new();
            write_snapshot_v2(&mut v2, &entries).expect("v2 write");
            let r2 = DynamicGraphStore::with_defaults();
            r2.restore_from(v2.as_slice()).expect("v2 restore");
            prop_assert_eq!(r2.num_edges(), store.num_edges());

            for &((src, dst), (et, _, _)) in &edges {
                let (s, d, e) = (VertexId(src), VertexId(dst), EdgeType(et));
                // Leaf weights live as FSTable prefix sums, so readback has
                // a few ULPs of reconstruction noise — compare relatively,
                // as the crash-recovery suite does.
                let want = store.edge_weight(s, d, e).expect("present");
                for restored in [&r3, &r2] {
                    let got = restored.edge_weight(s, d, e).expect("present");
                    prop_assert!(
                        (got - want).abs() <= 1e-9 * (1.0 + want.abs()),
                        "weight differs at {:?}->{:?}: {} vs {}", s, d, got, want
                    );
                }
                prop_assert_eq!(r3.edge_ts(s, d, e), store.edge_ts(s, d, e));
                prop_assert_eq!(r2.edge_ts(s, d, e), 0u64);
            }
        }
        /// Arbitrary bytes must never panic the parser — only `Err` out.
        #[test]
        fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let store = DynamicGraphStore::with_defaults();
            let _ = store.restore_from(data.as_slice());
        }

        /// Valid-prefix-then-garbage must never panic either.
        #[test]
        fn corrupted_tail_never_panics(
            cut in 0usize..200,
            garbage in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let store = DynamicGraphStore::with_defaults();
            for i in 0..20u64 {
                store.insert_edge(platod2gl_graph::Edge::new(
                    platod2gl_graph::VertexId(i % 3),
                    platod2gl_graph::VertexId(100 + i),
                    1.0,
                ));
            }
            let mut bytes = Vec::new();
            store.snapshot_to(&mut bytes).expect("snapshot");
            bytes.truncate(cut.min(bytes.len()));
            bytes.extend(garbage);
            let fresh = DynamicGraphStore::with_defaults();
            let _ = fresh.restore_from(bytes.as_slice());
            // Whatever happened, the store must stay structurally valid.
            fresh.check_invariants().expect("invariants after bad restore");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StoreConfig;
    use platod2gl_graph::{DatasetProfile, GraphStore};

    #[test]
    fn snapshot_roundtrip_preserves_every_edge() {
        let profile = DatasetProfile::tiny();
        let original = DynamicGraphStore::with_defaults();
        for e in profile.edge_stream(13) {
            original.insert_edge(e);
        }
        let mut bytes = Vec::new();
        original.snapshot_to(&mut bytes).expect("snapshot");
        assert!(bytes.len() > 16);

        let restored = DynamicGraphStore::new(StoreConfig::default());
        restored.restore_from(bytes.as_slice()).expect("restore");
        assert_eq!(restored.num_edges(), original.num_edges());
        restored.check_invariants().expect("restored invariants");
        for src in profile.sample_sources(100, 3) {
            let mut a = original.neighbors(src, EdgeType(0));
            let mut b = restored.neighbors(src, EdgeType(0));
            a.sort_by_key(|(id, _)| id.raw());
            b.sort_by_key(|(id, _)| id.raw());
            assert_eq!(a.len(), b.len(), "src {src:?}");
            for ((ia, wa), (ib, wb)) in a.iter().zip(&b) {
                assert_eq!(ia, ib);
                assert!((wa - wb).abs() < 1e-9, "weights must roundtrip exactly");
            }
        }
    }

    #[test]
    fn restore_can_change_tree_parameters() {
        // Snapshots carry adjacency, not tree layout: restoring into a
        // store with different capacity/compression must still work.
        let original = DynamicGraphStore::with_defaults();
        for i in 0..5_000u64 {
            original.insert_edge(Edge::new(VertexId(i % 7), VertexId(1_000 + i), 0.5));
        }
        let mut bytes = Vec::new();
        original.snapshot_to(&mut bytes).expect("snapshot");
        let restored = DynamicGraphStore::new(StoreConfig {
            tree: platod2gl_samtree::SamTreeConfig {
                capacity: 16,
                alpha: 2,
                compression: false,
                leaf_index: platod2gl_samtree::LeafIndex::Fenwick,
            },
            ..StoreConfig::default()
        });
        restored.restore_from(bytes.as_slice()).expect("restore");
        assert_eq!(restored.num_edges(), 5_000);
        restored.check_invariants().expect("invariants");
    }

    #[test]
    fn empty_store_snapshot_roundtrip() {
        let store = DynamicGraphStore::with_defaults();
        let mut bytes = Vec::new();
        store.snapshot_to(&mut bytes).expect("snapshot");
        let restored = DynamicGraphStore::with_defaults();
        restored.restore_from(bytes.as_slice()).expect("restore");
        assert_eq!(restored.num_edges(), 0);
    }

    #[test]
    fn v1_snapshots_still_restore() {
        let original = DynamicGraphStore::with_defaults();
        for i in 0..1_000u64 {
            original.insert_edge(Edge::new(
                VertexId(i % 11),
                VertexId(500 + i),
                1.0 + i as f64,
            ));
        }
        let mut bytes = Vec::new();
        write_snapshot_v1(&mut bytes, &original.export_adjacency()).expect("v1 write");
        let restored = DynamicGraphStore::with_defaults();
        restored.restore_from(bytes.as_slice()).expect("v1 restore");
        assert_eq!(restored.num_edges(), original.num_edges());
        restored.check_invariants().expect("invariants");
        for src in 0..11u64 {
            let mut a = original.neighbors(VertexId(src), EdgeType(0));
            let mut b = restored.neighbors(VertexId(src), EdgeType(0));
            a.sort_by_key(|(id, _)| id.raw());
            b.sort_by_key(|(id, _)| id.raw());
            assert_eq!(a, b);
        }
    }

    #[test]
    fn v3_roundtrip_preserves_timestamps() {
        let store = DynamicGraphStore::with_defaults();
        for i in 0..200u64 {
            store
                .insert_edge(Edge::new(VertexId(i % 9), VertexId(1_000 + i), 1.0 + i as f64).at(i));
        }
        let mut bytes = Vec::new();
        store.snapshot_to(&mut bytes).expect("snapshot");
        let restored = DynamicGraphStore::with_defaults();
        restored.restore_from(bytes.as_slice()).expect("restore");
        assert_eq!(restored.num_edges(), store.num_edges());
        for i in 0..200u64 {
            assert_eq!(
                restored.edge_ts(VertexId(i % 9), VertexId(1_000 + i), EdgeType(0)),
                i,
                "edge {i} timestamp must survive the v3 roundtrip"
            );
        }
    }

    #[test]
    fn v2_snapshots_restore_with_timestamps_defaulted_to_zero() {
        let store = DynamicGraphStore::with_defaults();
        for i in 0..100u64 {
            store.insert_edge(Edge::new(VertexId(i % 5), VertexId(500 + i), 2.0).at(10 + i));
        }
        let mut bytes = Vec::new();
        write_snapshot_v2(&mut bytes, &store.export_adjacency()).expect("v2 write");
        let restored = DynamicGraphStore::with_defaults();
        restored.restore_from(bytes.as_slice()).expect("v2 restore");
        assert_eq!(restored.num_edges(), store.num_edges());
        for i in 0..100u64 {
            let src = VertexId(i % 5);
            let dst = VertexId(500 + i);
            assert!(restored.edge_weight(src, dst, EdgeType(0)).is_some());
            assert_eq!(
                restored.edge_ts(src, dst, EdgeType(0)),
                0,
                "v2 restore must default timestamps to 0"
            );
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let store = DynamicGraphStore::with_defaults();
        let err = store
            .restore_from(&b"NOTASNAPxxxxxxxxxxxx"[..])
            .expect_err("must reject");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("byte offset 0"), "{err}");
    }

    #[test]
    fn unknown_version_error_names_found_and_supported() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&7u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        let store = DynamicGraphStore::with_defaults();
        let err = store.restore_from(bytes.as_slice()).expect_err("reject v7");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("version 7"), "{msg}");
        assert!(msg.contains("supports versions 1, 2 and 3"), "{msg}");
    }

    #[test]
    fn truncated_stream_is_rejected_with_offset() {
        let store = DynamicGraphStore::with_defaults();
        store.insert_edge(Edge::new(VertexId(1), VertexId(2), 1.0));
        let mut bytes = Vec::new();
        store.snapshot_to(&mut bytes).expect("snapshot");
        for cut in [bytes.len() - 1, bytes.len() - 4, bytes.len() / 2, 21] {
            let fresh = DynamicGraphStore::with_defaults();
            let err = fresh
                .restore_from(&bytes[..cut])
                .expect_err("truncation must be rejected");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut {cut}");
            assert!(err.to_string().contains("byte offset"), "cut {cut}: {err}");
        }
    }

    #[test]
    fn non_finite_weight_is_rejected_in_v1() {
        // v1 has no CRC, so the NaN lands in the parser's lap directly.
        let store = DynamicGraphStore::with_defaults();
        store.insert_edge(Edge::new(VertexId(1), VertexId(2), 1.0));
        let mut bytes = Vec::new();
        write_snapshot_v1(&mut bytes, &store.export_adjacency()).expect("v1 write");
        let n = bytes.len();
        bytes[n - 8..].copy_from_slice(&f64::NAN.to_le_bytes());
        let fresh = DynamicGraphStore::with_defaults();
        let err = fresh
            .restore_from(bytes.as_slice())
            .expect_err("reject NaN");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn every_single_bit_flip_in_v2_is_rejected() {
        // The acceptance bar for the checksummed format: flip every bit of
        // a whole v2 snapshot, one at a time, and demand InvalidData.
        let store = DynamicGraphStore::with_defaults();
        for i in 0..40u64 {
            store.insert_edge(Edge::new(
                VertexId(i % 5),
                VertexId(100 + i),
                0.5 + i as f64,
            ));
        }
        let mut bytes = Vec::new();
        store.snapshot_to(&mut bytes).expect("snapshot");
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[byte] ^= 1 << bit;
                let fresh = DynamicGraphStore::with_defaults();
                let err = fresh
                    .restore_from(flipped.as_slice())
                    .expect_err("corruption must be detected");
                assert_eq!(
                    err.kind(),
                    io::ErrorKind::InvalidData,
                    "flip at {byte}:{bit} produced wrong error kind: {err}"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_after_footer_is_rejected() {
        let store = DynamicGraphStore::with_defaults();
        store.insert_edge(Edge::new(VertexId(1), VertexId(2), 1.0));
        let mut bytes = Vec::new();
        store.snapshot_to(&mut bytes).expect("snapshot");
        bytes.push(0x42);
        let fresh = DynamicGraphStore::with_defaults();
        let err = fresh.restore_from(bytes.as_slice()).expect_err("reject");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("trailing data"), "{err}");
    }
}
