//! # PlatoD2GL's dynamic graph storage layer (paper Sec. III/IV/VI)
//!
//! The storage layer holds three kinds of GNN-related data:
//!
//! * **Dynamic graph topology** — one samtree per (source vertex, relation),
//!   registered in a concurrent cuckoo-hash directory
//!   ([`DynamicGraphStore`], Sec. IV-B). This is the *non-key-value* design:
//!   the directory has exactly one entry per source vertex, and all blocks
//!   of a big neighborhood live inside that vertex's samtree instead of
//!   being separate key-value pairs with their own index entries (PlatoGL's
//!   memory problem).
//! * **Sampling indexes** — the CSTables/FSTables embedded in the samtrees.
//! * **Attributes** — raw feature bytes per vertex/edge in a key-value store
//!   ([`AttributeStore`]); the paper keeps attributes in KV form because
//!   they are point-looked-up, never range-sampled.
//!
//! Concurrency follows Sec. VI-B: update batches are sorted by source
//! vertex, partitioned across threads so *each samtree is touched by exactly
//! one thread per batch*, then applied bottom-up within each tree — the
//! PALM-style latch-free scheme ([`DynamicGraphStore::apply_batch_parallel`]).

mod attr;
pub mod crc32c;
mod fault;
mod snapshot;
mod topology;
mod wal;

pub use attr::AttributeStore;
pub use fault::{CrashInjector, CrashPoint};
pub use snapshot::{
    read_snapshot, write_snapshot, write_snapshot_v1, write_snapshot_v2, SNAPSHOT_VERSION,
};
pub use topology::{AdjacencyEntry, DecayOutcome, DynamicGraphStore, StoreConfig, StoreMemory};
pub use wal::{
    replay_wal, replay_wal_from, DurableGraphStore, RecoveryReport, TornTail, TornTailKind,
    WalReplayReport, WalWriter, WAL_MAGIC,
};

use platod2gl_samtree::OpStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe accumulator for samtree [`OpStats`] (drives the paper's
/// Table V reproduction).
#[derive(Debug, Default)]
pub struct SharedOpStats {
    leaf_ops: AtomicU64,
    internal_ops: AtomicU64,
    leaf_splits: AtomicU64,
    internal_splits: AtomicU64,
    merges: AtomicU64,
}

impl SharedOpStats {
    /// Fold a local counter set in.
    pub fn add(&self, s: &OpStats) {
        self.leaf_ops.fetch_add(s.leaf_ops, Ordering::Relaxed);
        self.internal_ops
            .fetch_add(s.internal_ops, Ordering::Relaxed);
        self.leaf_splits.fetch_add(s.leaf_splits, Ordering::Relaxed);
        self.internal_splits
            .fetch_add(s.internal_splits, Ordering::Relaxed);
        self.merges.fetch_add(s.merges, Ordering::Relaxed);
    }

    /// Read a consistent-enough snapshot.
    pub fn snapshot(&self) -> OpStats {
        OpStats {
            leaf_ops: self.leaf_ops.load(Ordering::Relaxed),
            internal_ops: self.internal_ops.load(Ordering::Relaxed),
            leaf_splits: self.leaf_splits.load(Ordering::Relaxed),
            internal_splits: self.internal_splits.load(Ordering::Relaxed),
            merges: self.merges.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;

    #[test]
    fn shared_stats_accumulate() {
        let shared = SharedOpStats::default();
        shared.add(&OpStats {
            leaf_ops: 5,
            internal_ops: 1,
            leaf_splits: 1,
            internal_splits: 0,
            merges: 0,
        });
        shared.add(&OpStats {
            leaf_ops: 3,
            internal_ops: 0,
            leaf_splits: 0,
            internal_splits: 2,
            merges: 4,
        });
        let s = shared.snapshot();
        assert_eq!(s.leaf_ops, 8);
        assert_eq!(s.internal_ops, 1);
        assert_eq!(s.leaf_splits, 1);
        assert_eq!(s.internal_splits, 2);
        assert_eq!(s.merges, 4);
    }
}
