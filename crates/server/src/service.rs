//! The graph-service abstraction: one sampling/update surface served by
//! both the in-process [`Cluster`] and a remote graph server.
//!
//! The paper's deployed architecture (Sec. VII) is trainers issuing
//! sampling and update RPCs against graph servers that own hash-partitioned
//! shards. [`GraphService`] is that boundary as a trait: the k-hop sampler
//! and the training pipeline are generic over it, so the same trainer binary
//! runs against a `Cluster` in its own address space or against a
//! `RemoteCluster` (`platod2gl-rpc`) talking to a graph server over TCP —
//! unmodified.
//!
//! ## Determinism contract
//!
//! [`GraphService::sample_many`] must consume **exactly one** `next_u64`
//! from the caller's RNG per request — the per-request seed. The in-process
//! implementation derives a fresh `StdRng` from that seed before sampling;
//! the remote client ships the seed inside the request record and the graph
//! server performs the same derivation. Consequently a trainer with a fixed
//! seed produces bit-identical mini-batches whether the service is local or
//! remote, which is what makes the two deployments testable against each
//! other.

use crate::request::{SampleRequest, SampleResponse};
use crate::{BatchReport, Cluster, PartitionChunk};
use platod2gl_graph::{Error, GraphTxn, ShardHealth, TxnError, TxnReceipt, UpdateOp};
use platod2gl_obs::Registry;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::sync::Arc;

/// The sampling/update surface of a graph service, local or remote.
///
/// `Sync` is required so prefetch workers can share one service reference
/// across threads (the training pipeline's producer pool does exactly
/// that).
pub trait GraphService: Sync {
    /// Weighted neighbor sampling for one request.
    ///
    /// Consumes exactly one `next_u64` from `rng` (see the module docs'
    /// determinism contract).
    fn sample_one(&self, req: &SampleRequest, rng: &mut dyn RngCore) -> SampleResponse;

    /// Weighted neighbor sampling for a batch of requests.
    ///
    /// Responses are positionally parallel to `reqs`. Implementations may
    /// coalesce the batch into fewer network round trips (the remote client
    /// packs a whole frontier into pipelined frames); the default simply
    /// loops, which consumes the RNG identically.
    fn sample_many(&self, reqs: &[SampleRequest], rng: &mut dyn RngCore) -> Vec<SampleResponse> {
        reqs.iter().map(|r| self.sample_one(r, rng)).collect()
    }

    /// Apply a batch of update ops, partitioned to owning shards.
    ///
    /// Ops queued against failed shards surface in
    /// [`BatchReport::queued_ops`]; a shard worker panic surfaces as
    /// [`Error::ShardPanicked`]. All three op kinds are idempotent
    /// (insert-or-update, set-weight, delete), so remote implementations
    /// may retry a batch whose reply was lost.
    fn apply_updates(&self, ops: &[UpdateOp]) -> Result<BatchReport, Error>;

    /// Apply a typed transaction: phase-1 validated against live topology,
    /// all-or-nothing, idempotent on txn-id replay (see
    /// [`Cluster::apply_txn`]). Remote implementations retry with the
    /// *same* txn id so a lost reply never double-applies.
    fn apply_txn(&self, txn: &GraphTxn) -> Result<TxnReceipt, TxnError>;

    /// The service's monotone graph version (bumped on every mutation);
    /// bounded-staleness caches key entries to this.
    fn graph_version(&self) -> u64;

    /// Number of shards behind the service.
    fn num_shards(&self) -> usize;

    /// Health of every shard, shard order.
    fn shard_healths(&self) -> Vec<ShardHealth>;

    /// Clear faults on a shard and drain its queued updates. Returns the
    /// number of drained ops.
    fn heal(&self, shard: usize) -> usize;

    /// The observability registry telemetry for this service records into.
    /// Layers stacked on the service (pipeline, caches) register their own
    /// metrics here so one snapshot covers the whole stack.
    fn registry(&self) -> &Arc<Registry>;

    // ------------------------------------------------------------------
    // Fleet plane (scale-out). Defaults make every service usable behind
    // a single server; fleet-aware implementations override.
    // ------------------------------------------------------------------

    /// Apply a batch that arrived on the replication channel (leader →
    /// replica fan-out). Same semantics as
    /// [`GraphService::apply_updates`], but implementations must **not**
    /// re-forward to their own replicas — that is what breaks the
    /// leader→replica→leader loop.
    fn apply_replica_updates(&self, ops: &[UpdateOp]) -> Result<BatchReport, Error> {
        self.apply_updates(ops)
    }

    /// Apply a transaction that arrived on the replication channel. The
    /// leader forwards the txn under its *original* id, so the replica's
    /// dedupe ledger absorbs retries exactly like first-hand submissions.
    fn apply_replica_txn(&self, txn: &GraphTxn) -> Result<TxnReceipt, TxnError> {
        self.apply_txn(txn)
    }

    /// The fleet partition map this service carries, as `(epoch, encoded
    /// bytes)` — `None` when the service is not fleet-aware. New clients
    /// bootstrap their routing table from any server via this.
    fn fleet_map_bytes(&self) -> Option<(u64, Vec<u8>)> {
        None
    }

    /// Install a (newer) fleet partition map. Returns the epoch now in
    /// effect. Implementations must be epoch-monotonic: an install older
    /// than the resident map is a no-op that reports the resident epoch.
    fn install_fleet_map(&self, _epoch: u64, _bytes: &[u8]) -> Result<u64, Error> {
        Err(Error::invalid_config(
            "this service does not carry a fleet partition map",
        ))
    }

    /// Arm the live-migration journal for one partition (see
    /// [`Cluster::begin_migration`]). Returns the starting journal
    /// sequence number.
    fn begin_migration(&self, _partition: u32, _num_partitions: u32) -> Result<u64, Error> {
        Err(Error::invalid_config(
            "this service does not support live migration",
        ))
    }

    /// Journaled ops for a migrating partition from `from_seq` on, plus
    /// the next sequence to resume from.
    fn migration_tail(
        &self,
        _partition: u32,
        _from_seq: u64,
    ) -> Result<(Vec<UpdateOp>, u64), Error> {
        Err(Error::invalid_config(
            "this service does not support live migration",
        ))
    }

    /// Disarm the migration journal; returns total ops it buffered.
    fn end_migration(&self, _partition: u32) -> Result<u64, Error> {
        Err(Error::invalid_config(
            "this service does not support live migration",
        ))
    }

    /// Export one partition's adjacency as a resumable snapshot-v2 chunk.
    fn export_partition(
        &self,
        _partition: u32,
        _num_partitions: u32,
        _cursor: Option<(u64, u16)>,
        _max_edges: usize,
    ) -> Result<PartitionChunk, Error> {
        Err(Error::invalid_config(
            "this service does not support partition export",
        ))
    }

    /// Resident `(src, etype)` key count per partition — the
    /// `/debug/partitions` load view. Services without partition-level
    /// accounting report zeros.
    fn partition_key_counts(&self, num_partitions: u32) -> Vec<u64> {
        vec![0; num_partitions.max(1) as usize]
    }
}

impl GraphService for Cluster {
    fn sample_one(&self, req: &SampleRequest, rng: &mut dyn RngCore) -> SampleResponse {
        // Same derivation the graph server applies to the wire seed.
        let mut derived = StdRng::seed_from_u64(rng.next_u64());
        self.sample(req, &mut derived)
    }

    fn apply_updates(&self, ops: &[UpdateOp]) -> Result<BatchReport, Error> {
        self.apply_batch_sharded(ops)
    }

    fn apply_txn(&self, txn: &GraphTxn) -> Result<TxnReceipt, TxnError> {
        Cluster::apply_txn(self, txn)
    }

    fn graph_version(&self) -> u64 {
        Cluster::graph_version(self)
    }

    fn num_shards(&self) -> usize {
        Cluster::num_shards(self)
    }

    fn shard_healths(&self) -> Vec<ShardHealth> {
        self.health()
    }

    fn heal(&self, shard: usize) -> usize {
        self.heal_shard(shard)
    }

    fn registry(&self) -> &Arc<Registry> {
        self.obs()
    }

    fn begin_migration(&self, partition: u32, num_partitions: u32) -> Result<u64, Error> {
        Cluster::begin_migration(self, partition, num_partitions)
    }

    fn migration_tail(&self, partition: u32, from_seq: u64) -> Result<(Vec<UpdateOp>, u64), Error> {
        Cluster::migration_tail(self, partition, from_seq)
    }

    fn end_migration(&self, partition: u32) -> Result<u64, Error> {
        Cluster::end_migration(self, partition)
    }

    fn export_partition(
        &self,
        partition: u32,
        num_partitions: u32,
        cursor: Option<(u64, u16)>,
        max_edges: usize,
    ) -> Result<PartitionChunk, Error> {
        Cluster::export_partition(self, partition, num_partitions, cursor, max_edges)
    }

    fn partition_key_counts(&self, num_partitions: u32) -> Vec<u64> {
        Cluster::partition_key_counts(self, num_partitions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterConfig;
    use platod2gl_graph::{Edge, EdgeType, GraphStore, VertexId};

    fn service_cluster() -> Cluster {
        let c = Cluster::new(
            ClusterConfig::builder()
                .num_shards(2)
                .build()
                .expect("valid config"),
        );
        for i in 1..=6u64 {
            c.insert_edge(Edge::new(VertexId(0), VertexId(i), 1.0));
        }
        c
    }

    #[test]
    fn sample_one_consumes_exactly_one_u64() {
        let c = service_cluster();
        let req = SampleRequest::new(VertexId(0), EdgeType(0), 4);
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        let resp = GraphService::sample_one(&c, &req, &mut a);
        assert_eq!(resp.neighbors.len(), 4);
        // Manually perform the contract's derivation on the twin stream:
        // the two must agree draw for draw.
        let mut derived = StdRng::seed_from_u64(b.next_u64());
        let twin = c.sample(&req, &mut derived);
        assert_eq!(twin.neighbors, resp.neighbors);
        // And both streams must now be at the same position.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn sample_many_matches_sequential_sample_one() {
        let c = service_cluster();
        let reqs: Vec<SampleRequest> = (0..4)
            .map(|i| SampleRequest::new(VertexId(i % 2), EdgeType(0), 3))
            .collect();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let batch = GraphService::sample_many(&c, &reqs, &mut a);
        let seq: Vec<SampleResponse> = reqs
            .iter()
            .map(|r| GraphService::sample_one(&c, r, &mut b))
            .collect();
        assert_eq!(batch, seq);
    }

    #[test]
    fn trait_surface_mirrors_cluster_inherent_api() {
        let c = service_cluster();
        let svc: &dyn GraphService = &c;
        assert_eq!(svc.num_shards(), 2);
        assert_eq!(svc.graph_version(), Cluster::graph_version(&c));
        assert_eq!(svc.shard_healths().len(), 2);
        let report = svc
            .apply_updates(&[UpdateOp::Insert(Edge::new(VertexId(9), VertexId(10), 1.0))])
            .expect("no faults");
        assert_eq!(report.applied_ops, 1);
        assert_eq!(svc.heal(0), 0, "healthy shard drains nothing");
        let receipt = svc
            .apply_txn(&GraphTxn::new(1).insert_edge(Edge::new(VertexId(11), VertexId(12), 1.0)))
            .expect("commits");
        assert_eq!(receipt.ops_applied, 1);
        assert!(!receipt.deduped);
        assert!(
            svc.apply_txn(&GraphTxn::new(1).insert_edge(Edge::new(
                VertexId(11),
                VertexId(12),
                1.0
            )))
            .expect("replay answers from the ledger")
            .deduped
        );
    }
}
