//! Shard fault injection for resilience testing.
//!
//! The paper's production deployment runs on 74 servers; at that scale
//! individual graph servers fail, restart, or brown out routinely, and the
//! router has to keep serving. [`FaultInjector`] lets tests and benchmarks
//! script those conditions against the simulated [`Cluster`](crate::Cluster):
//! hard-fail a shard, make it slow, make the next few requests fail
//! transiently, or crash its next batch worker.
//!
//! The injector only *decides*; the router in `lib.rs` reacts — retrying
//! transients with backoff, marking shards failed, queueing updates, and
//! serving degraded reads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// A scripted fault on one shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Hard failure: every request errors until the shard is healed.
    Failed,
    /// The next `n` requests fail transiently (each retry consumes one),
    /// after which the shard recovers by itself.
    Transient(u32),
    /// Requests succeed but are delayed by this much (slow shard /
    /// network brownout).
    Slow(Duration),
    /// The next batch-update worker for the shard panics (worker crash);
    /// reads are unaffected until the crash happens.
    PanicNextBatch,
    /// The next *transaction* touching the shard is refused at admission
    /// (clean abort, zero changes); plain reads, updates, and batches are
    /// unaffected. One-shot.
    AbortNextTxn,
}

/// What the router should do with one request, as decided by the injector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Verdict {
    /// No fault: perform the request.
    Proceed,
    /// Perform the request after this delay.
    ProceedAfter(Duration),
    /// The request failed transiently: retry with backoff.
    Transient,
    /// The shard is down: fail the request / queue the update.
    Unavailable,
    /// (Batch path only) the worker thread must panic.
    PanicBatch,
}

/// Per-shard fault plans, shared with the router.
///
/// The fast path is fault-free: a single atomic load when no plan is
/// active anywhere, so the injector costs nothing on healthy clusters.
pub struct FaultInjector {
    plans: Vec<Mutex<Option<FaultKind>>>,
    active: AtomicUsize,
}

impl FaultInjector {
    pub fn new(num_shards: usize) -> Self {
        FaultInjector {
            plans: (0..num_shards).map(|_| Mutex::new(None)).collect(),
            active: AtomicUsize::new(0),
        }
    }

    fn set(&self, shard: usize, kind: FaultKind) {
        let mut plan = self.lock(shard);
        if plan.is_none() {
            self.active.fetch_add(1, Ordering::Relaxed);
        }
        *plan = Some(kind);
    }

    fn lock(&self, shard: usize) -> std::sync::MutexGuard<'_, Option<FaultKind>> {
        self.plans[shard]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Hard-fail a shard until [`FaultInjector::clear`] (or
    /// `Cluster::heal_shard`).
    pub fn fail_shard(&self, shard: usize) {
        self.set(shard, FaultKind::Failed);
    }

    /// Delay every request to the shard by `latency`.
    pub fn slow_shard(&self, shard: usize, latency: Duration) {
        self.set(shard, FaultKind::Slow(latency));
    }

    /// Fail the next `n` requests transiently; the shard then recovers.
    pub fn inject_transient(&self, shard: usize, n: u32) {
        self.set(shard, FaultKind::Transient(n));
    }

    /// Crash the shard's next batch-update worker.
    pub fn panic_next_batch(&self, shard: usize) {
        self.set(shard, FaultKind::PanicNextBatch);
    }

    /// Refuse the next transaction that involves the shard (clean abort at
    /// admission; non-transactional traffic is unaffected).
    pub fn abort_next_txn(&self, shard: usize) {
        self.set(shard, FaultKind::AbortNextTxn);
    }

    /// Consume a pending [`FaultKind::AbortNextTxn`] for the shard.
    /// Called once per shard at transaction admission.
    pub(crate) fn take_abort_txn(&self, shard: usize) -> bool {
        if self.active.load(Ordering::Relaxed) == 0 {
            return false;
        }
        let mut plan = self.lock(shard);
        if *plan == Some(FaultKind::AbortNextTxn) {
            plan.take();
            self.active.fetch_sub(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Remove any fault plan for the shard.
    pub fn clear(&self, shard: usize) {
        let mut plan = self.lock(shard);
        if plan.take().is_some() {
            self.active.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// The currently scripted fault, if any.
    pub fn fault(&self, shard: usize) -> Option<FaultKind> {
        if self.active.load(Ordering::Relaxed) == 0 {
            return None;
        }
        *self.lock(shard)
    }

    /// Decide one request. `batch` selects whether a pending
    /// [`FaultKind::PanicNextBatch`] triggers (it only applies to batch
    /// workers). Transient counters tick down per call; the consuming
    /// faults clear themselves once spent.
    pub(crate) fn verdict(&self, shard: usize, batch: bool) -> Verdict {
        if self.active.load(Ordering::Relaxed) == 0 {
            return Verdict::Proceed;
        }
        let mut plan = self.lock(shard);
        match *plan {
            None => Verdict::Proceed,
            Some(FaultKind::Failed) => Verdict::Unavailable,
            Some(FaultKind::Slow(d)) => Verdict::ProceedAfter(d),
            Some(FaultKind::Transient(n)) => {
                if n <= 1 {
                    plan.take();
                    self.active.fetch_sub(1, Ordering::Relaxed);
                } else {
                    *plan = Some(FaultKind::Transient(n - 1));
                }
                Verdict::Transient
            }
            Some(FaultKind::PanicNextBatch) => {
                if batch {
                    plan.take();
                    self.active.fetch_sub(1, Ordering::Relaxed);
                    Verdict::PanicBatch
                } else {
                    Verdict::Proceed
                }
            }
            // Only consumed at transaction admission (take_abort_txn);
            // regular traffic proceeds.
            Some(FaultKind::AbortNextTxn) => Verdict::Proceed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_fault_means_proceed() {
        let inj = FaultInjector::new(2);
        assert_eq!(inj.verdict(0, false), Verdict::Proceed);
        assert_eq!(inj.verdict(1, true), Verdict::Proceed);
        assert_eq!(inj.fault(0), None);
    }

    #[test]
    fn failed_until_cleared() {
        let inj = FaultInjector::new(2);
        inj.fail_shard(1);
        assert_eq!(inj.verdict(1, false), Verdict::Unavailable);
        assert_eq!(inj.verdict(1, false), Verdict::Unavailable);
        assert_eq!(inj.verdict(0, false), Verdict::Proceed, "other shards fine");
        inj.clear(1);
        assert_eq!(inj.verdict(1, false), Verdict::Proceed);
    }

    #[test]
    fn transient_counts_down_and_self_clears() {
        let inj = FaultInjector::new(1);
        inj.inject_transient(0, 2);
        assert_eq!(inj.verdict(0, false), Verdict::Transient);
        assert_eq!(inj.verdict(0, false), Verdict::Transient);
        assert_eq!(inj.verdict(0, false), Verdict::Proceed);
        assert_eq!(inj.fault(0), None, "transient plan must self-clear");
    }

    #[test]
    fn panic_only_fires_on_batch_path_and_once() {
        let inj = FaultInjector::new(1);
        inj.panic_next_batch(0);
        assert_eq!(inj.verdict(0, false), Verdict::Proceed, "reads unaffected");
        assert_eq!(inj.verdict(0, true), Verdict::PanicBatch);
        assert_eq!(inj.verdict(0, true), Verdict::Proceed, "one-shot");
    }

    #[test]
    fn abort_next_txn_only_consumed_at_admission() {
        let inj = FaultInjector::new(2);
        inj.abort_next_txn(0);
        assert_eq!(inj.verdict(0, false), Verdict::Proceed, "reads pass");
        assert_eq!(inj.verdict(0, true), Verdict::Proceed, "batches pass");
        assert!(!inj.take_abort_txn(1), "other shard unaffected");
        assert!(inj.take_abort_txn(0));
        assert!(!inj.take_abort_txn(0), "one-shot");
        assert_eq!(inj.fault(0), None);
    }

    #[test]
    fn slow_shard_persists() {
        let inj = FaultInjector::new(1);
        let d = Duration::from_millis(2);
        inj.slow_shard(0, d);
        assert_eq!(inj.verdict(0, false), Verdict::ProceedAfter(d));
        assert_eq!(inj.verdict(0, true), Verdict::ProceedAfter(d));
        inj.clear(0);
        assert_eq!(inj.verdict(0, false), Verdict::Proceed);
    }
}
