//! # Simulated distributed deployment
//!
//! The paper evaluates on a 74-server cluster, 54 of which store graph data
//! (Sec. VII-A). Under hash-by-source partitioning each graph server owns a
//! disjoint set of source vertices and serves updates/samples for them
//! independently — there is no cross-server coordination on the storage
//! path. That independence is what makes a single-process simulation
//! faithful: a [`Cluster`] holds `S` [`GraphServer`] shards running the real
//! storage engine, routes every request by source-vertex hash exactly as the
//! production router would, and counts the request/response bytes that
//! would have crossed the network.
//!
//! [`Cluster`] itself implements [`GraphStore`], so the operator layer and
//! every benchmark can run against "a cluster" without changes.
//!
//! ## Fault tolerance
//!
//! At 74-server scale individual machines fail routinely, so the router
//! degrades instead of crashing (see DESIGN.md "Durability & failure
//! model"). A [`FaultInjector`] scripts per-shard faults; the router
//! reacts:
//!
//! * **transient faults** are retried with exponential backoff
//!   ([`TrafficStats::retried_requests`]);
//! * **failed shards** serve *degraded* reads — sampling returns an empty
//!   neighbor set flagged via [`Served::degraded`] instead of panicking —
//!   and their updates are **queued** ([`TrafficStats::queued_ops`]) until
//!   [`Cluster::heal_shard`] drains them;
//! * a **panicking batch worker** is caught per shard
//!   ([`Cluster::apply_batch_sharded`] returns a `Result`), the shard is
//!   marked [`ShardHealth::Failed`], and the other shards' work completes.
//!
//! Maintenance paths (snapshots, weight decay, attribute access) talk to
//! shard storage directly and are not fault-routed.

mod faults;
mod request;
mod service;
mod txn;
pub mod wire;

pub use faults::{FaultInjector, FaultKind};
/// Legacy alias: the server's latency histogram is now the shared
/// observability crate's [`Histogram`](platod2gl_obs::Histogram).
pub use platod2gl_obs::Histogram as LatencyHistogram;
pub use platod2gl_obs::HistogramSnapshot;
pub use request::{DegradedPolicy, SampleRequest, SampleResponse, SlotSource};
pub use service::GraphService;
pub use txn::TxnLogEntry;

use faults::Verdict;
use platod2gl_graph::{
    validate_and_lower, Edge, EdgeType, Error, GraphStore, GraphTxn, ShardHealth, TxnError,
    TxnReceipt, TxnView, UpdateOp, VertexId,
};
use platod2gl_obs::{Counter, Gauge, Histogram, Registry};
use platod2gl_storage::{AttributeStore, DynamicGraphStore, StoreConfig, StoreMemory};
use rand::RngCore;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use txn::TxnPlane;

/// Cluster-level configuration.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Number of simulated graph servers.
    pub num_shards: usize,
    /// Storage configuration applied to every shard.
    pub store: StoreConfig,
    /// Worker threads used inside each shard for batched updates.
    pub threads_per_shard: usize,
    /// Sample requests whose end-to-end latency reaches this threshold are
    /// captured — span tree plus request provenance — into the registry's
    /// slow-op log (served at `/debug/slow` by the admin server).
    pub slow_op_threshold: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            num_shards: 4,
            store: StoreConfig::default(),
            threads_per_shard: 1,
            slow_op_threshold: Duration::from_millis(100),
        }
    }
}

impl ClusterConfig {
    /// Start building a validated configuration.
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder {
            config: Self::default(),
        }
    }
}

/// Builder for [`ClusterConfig`] that validates at [`build`] time instead of
/// panicking deep inside `Cluster::new` / tree construction.
///
/// [`build`]: ClusterConfigBuilder::build
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfigBuilder {
    config: ClusterConfig,
}

impl ClusterConfigBuilder {
    /// Number of simulated graph servers.
    pub fn num_shards(mut self, n: usize) -> Self {
        self.config.num_shards = n;
        self
    }

    /// Storage configuration applied to every shard.
    pub fn store(mut self, store: StoreConfig) -> Self {
        self.config.store = store;
        self
    }

    /// Worker threads used inside each shard for batched updates.
    pub fn threads_per_shard(mut self, threads: usize) -> Self {
        self.config.threads_per_shard = threads;
        self
    }

    /// Latency threshold above which a sample request is captured into the
    /// slow-op log. `Duration::ZERO` captures everything (test/debug).
    pub fn slow_op_threshold(mut self, threshold: Duration) -> Self {
        self.config.slow_op_threshold = threshold;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<ClusterConfig, Error> {
        let c = self.config;
        if c.num_shards == 0 {
            return Err(Error::invalid_config("num_shards must be at least 1"));
        }
        if c.threads_per_shard == 0 {
            return Err(Error::invalid_config(
                "threads_per_shard must be at least 1",
            ));
        }
        if c.store.directory_shards == 0 {
            return Err(Error::invalid_config(
                "store.directory_shards must be at least 1",
            ));
        }
        if c.store.tree.capacity < 4 {
            return Err(Error::invalid_config(
                "store.tree.capacity must be at least 4",
            ));
        }
        if c.store.tree.alpha >= c.store.tree.capacity / 2 {
            return Err(Error::invalid_config(
                "store.tree.alpha must be below half of capacity",
            ));
        }
        Ok(c)
    }
}

/// One simulated graph server: the storage engine plus its attribute store.
pub struct GraphServer {
    shard_id: usize,
    topology: DynamicGraphStore,
    attributes: AttributeStore,
}

impl GraphServer {
    /// This server's shard index.
    pub fn shard_id(&self) -> usize {
        self.shard_id
    }

    /// The server's topology store.
    pub fn topology(&self) -> &DynamicGraphStore {
        &self.topology
    }

    /// The server's attribute store.
    pub fn attributes(&self) -> &AttributeStore {
        &self.attributes
    }
}

/// Network-traffic and fault accounting (what the simulated RPCs would have
/// cost, and how the cluster coped with faults).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// RPCs issued to shards.
    pub requests: u64,
    /// Bytes sent to shards (ops, query vertices).
    pub request_bytes: u64,
    /// Bytes returned from shards (sampled IDs, weights).
    pub response_bytes: u64,
    /// Requests refused because the target shard was failed (or exhausted
    /// its retry budget).
    pub failed_requests: u64,
    /// Individual retry attempts against transiently faulty shards.
    pub retried_requests: u64,
    /// Reads answered with a degraded fallback (e.g. empty sample sets).
    pub degraded_responses: u64,
    /// Update ops queued against failed shards, awaiting
    /// [`Cluster::heal_shard`].
    pub queued_ops: u64,
}

/// Per-shard router-side state: observed health plus updates parked while
/// the shard is down.
struct ShardState {
    health: AtomicU8,
    pending: Mutex<Vec<UpdateOp>>,
}

const HEALTH_HEALTHY: u8 = 0;
const HEALTH_DEGRADED: u8 = 1;
const HEALTH_FAILED: u8 = 2;

impl ShardState {
    fn new() -> Self {
        ShardState {
            health: AtomicU8::new(HEALTH_HEALTHY),
            pending: Mutex::new(Vec::new()),
        }
    }

    fn health(&self) -> ShardHealth {
        match self.health.load(Ordering::Relaxed) {
            HEALTH_FAILED => ShardHealth::Failed,
            HEALTH_DEGRADED => ShardHealth::Degraded,
            _ => ShardHealth::Healthy,
        }
    }

    fn set_health(&self, h: ShardHealth) {
        let v = match h {
            ShardHealth::Healthy => HEALTH_HEALTHY,
            ShardHealth::Degraded => HEALTH_DEGRADED,
            ShardHealth::Failed => HEALTH_FAILED,
        };
        self.health.store(v, Ordering::Relaxed);
    }

    /// Degraded -> Healthy on a clean success (never resurrects Failed).
    fn mark_success(&self) {
        let _ = self.health.compare_exchange(
            HEALTH_DEGRADED,
            HEALTH_HEALTHY,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    fn lock_pending(&self) -> std::sync::MutexGuard<'_, Vec<UpdateOp>> {
        self.pending
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Outcome of a sharded batch application.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Ops applied to healthy shards.
    pub applied_ops: usize,
    /// Ops queued because their shard is failed (drained by
    /// [`Cluster::heal_shard`]).
    pub queued_ops: usize,
}

/// Resident memory of one shard, as walked by
/// [`Cluster::memory_breakdown`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardMemory {
    /// Shard id.
    pub shard: usize,
    /// Topology store breakdown (samtree payload/index + directory).
    pub topology: StoreMemory,
    /// Vertex attribute blob bytes.
    pub attr_bytes: usize,
    /// Resident edges on this shard.
    pub edges: usize,
}

/// Cluster-wide resident memory: the paper's Table IV accounting, walked
/// live over every shard's `DeepSize` implementations. Produced by
/// [`Cluster::memory_breakdown`], which also refreshes the
/// `graph.mem.samtree_bytes` / `graph.mem.attr_bytes` gauges so the split
/// appears in every snapshot and on `/metrics`.
#[derive(Clone, Debug, Default)]
pub struct ClusterMemory {
    /// Per-shard breakdowns, shard order.
    pub per_shard: Vec<ShardMemory>,
    /// Total topology bytes (leaf + internal + directory) across shards —
    /// the value published as `graph.mem.samtree_bytes`.
    pub samtree_bytes: usize,
    /// Samtree leaf payload bytes across shards.
    pub leaf_bytes: usize,
    /// Samtree internal-node (index) bytes across shards.
    pub internal_bytes: usize,
    /// Cuckoo directory bytes across shards.
    pub directory_bytes: usize,
    /// Attribute blob bytes across shards (`graph.mem.attr_bytes`).
    pub attr_bytes: usize,
}

/// Pre-resolved handles into the cluster's [`Registry`], so the serving hot
/// path never touches the registry's name maps (one `Arc` deref + striped
/// atomic per event).
struct ClusterMetrics {
    requests: Arc<Counter>,
    request_bytes: Arc<Counter>,
    response_bytes: Arc<Counter>,
    failed_requests: Arc<Counter>,
    retried_requests: Arc<Counter>,
    degraded_responses: Arc<Counter>,
    queued_ops: Arc<Counter>,
    heals: Arc<Counter>,
    healed_ops: Arc<Counter>,
    batch_apply_errors: Arc<Counter>,
    txn_committed: Arc<Counter>,
    txn_aborted: Arc<Counter>,
    txn_deduped: Arc<Counter>,
    txn_ops_applied: Arc<Counter>,
    txn_abort_streak: Arc<Gauge>,
    sample_latency: Arc<Histogram>,
    update_latency: Arc<Histogram>,
    graph_version: Arc<Gauge>,
    mem_samtree: Arc<Gauge>,
    mem_attr: Arc<Gauge>,
}

impl ClusterMetrics {
    fn new(registry: &Registry) -> Self {
        Self {
            requests: registry.counter("cluster.requests"),
            request_bytes: registry.counter("cluster.request_bytes"),
            response_bytes: registry.counter("cluster.response_bytes"),
            failed_requests: registry.counter("cluster.failed_requests"),
            retried_requests: registry.counter("cluster.retried_requests"),
            degraded_responses: registry.counter("cluster.degraded_responses"),
            queued_ops: registry.counter("cluster.queued_ops"),
            heals: registry.counter("cluster.heals"),
            healed_ops: registry.counter("cluster.healed_ops"),
            batch_apply_errors: registry.counter("cluster.batch_apply_errors"),
            txn_committed: registry.counter("txn.committed"),
            txn_aborted: registry.counter("txn.aborted"),
            txn_deduped: registry.counter("txn.deduped"),
            txn_ops_applied: registry.counter("txn.ops_applied"),
            txn_abort_streak: registry.gauge("txn.abort_streak"),
            sample_latency: registry.histogram("cluster.sample_latency_ns"),
            update_latency: registry.histogram("cluster.update_latency_ns"),
            graph_version: registry.gauge("cluster.graph_version"),
            mem_samtree: registry.gauge("graph.mem.samtree_bytes"),
            mem_attr: registry.gauge("graph.mem.attr_bytes"),
        }
    }
}

/// A routing facade over `S` graph servers.
pub struct Cluster {
    config: ClusterConfig,
    servers: Vec<GraphServer>,
    shard_states: Vec<ShardState>,
    faults: FaultInjector,
    /// Unified observability registry: cluster counters/histograms plus the
    /// per-shard storage metrics (`samtree.*`, `storage.*`) — every shard
    /// store is built against this same registry, so samtree activity
    /// aggregates across shards.
    registry: Arc<Registry>,
    m: ClusterMetrics,
    /// Transaction-plane state: the idempotence ledger answering RPC
    /// retries, the `/debug/txns` journal, the abort streak fed to
    /// `/healthz`, and the declared relation schema.
    txn: TxnPlane,
    /// Monotone graph-version counter, bumped on every mutation that lands
    /// on a shard (see [`Cluster::graph_version`]). Bounded-staleness
    /// caches key their entries to this. Mirrored into the
    /// `cluster.graph_version` gauge for exposition.
    version: AtomicU64,
    /// Live-migration journal: while a partition is being streamed to a
    /// new owner, every update op landing on it is sequence-numbered here
    /// so the mover can drain the tail after the bulk copy.
    migration: MigrationLog,
}

/// splitmix64, the shard router's hash.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hash-by-source routing, as a free function so remote clients
/// (`platod2gl-rpc`) can predict shard ownership without a cluster handle.
pub fn route_for(v: VertexId, num_shards: usize) -> usize {
    (mix(v.raw()) % num_shards.max(1) as u64) as usize
}

/// Fleet-level partition of a vertex: the unit of ownership, replication
/// and migration across *servers* (`platod2gl-fleet`), one level above the
/// per-server shard hash of [`route_for`]. Salted so the partition split
/// is independent of the shard split — a partition's vertices spread over
/// all of a server's local shards.
pub fn partition_for(v: VertexId, num_partitions: u32) -> u32 {
    (mix(v.raw() ^ 0xf1ee_7000_0000_0001) % u64::from(num_partitions.max(1))) as u32
}

/// One streamed chunk of a partition's adjacency, produced by
/// [`Cluster::export_partition`] and shipped over the rpc layer's
/// `PartitionFetch` frames during live migration.
///
/// `snapshot` is **snapshot v2 bytes** ([`platod2gl_storage::write_snapshot`]):
/// the same per-block CRC'd format checkpoints use, so the receiver
/// validates each chunk with the proven decoder. `cursor` is the
/// `(src, etype)` key of the last entry included; passing it back fetches
/// the strictly-greater keys, which keeps the scan stable while writers
/// race the export (new keys can only appear ahead of or behind the
/// cursor, never silently between already-shipped entries — mutations are
/// covered by the migration tail journal either way).
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionChunk {
    /// Snapshot-v2 encoded adjacency entries of this chunk.
    pub snapshot: Vec<u8>,
    /// Resume key: the last `(src, etype)` included, if any entry was.
    pub cursor: Option<(u64, u16)>,
    /// True when no keys remain past `cursor`.
    pub done: bool,
    /// Edges encoded into `snapshot`.
    pub edges: u64,
}

/// Cap on the ops a single migration journal may buffer before the
/// migration is declared failed (the mover must restart it). Bounds
/// memory under a runaway writer.
const MIGRATION_JOURNAL_CAP: usize = 1 << 20;

/// Journal of **first-hand** update ops applied to a partition while it
/// is being migrated: armed by `begin_migration`, drained in
/// sequence-numbered rounds by `migration_tail`, disarmed by
/// `end_migration`. Replica-channel applies are never journaled — after
/// the promote they are the new owner's echoes of ops the target already
/// holds, and journaling them would keep the final drain from ever
/// converging. The `armed` flag keeps the write hot path at one relaxed
/// atomic load when no migration is running.
struct MigrationLog {
    armed: AtomicBool,
    inner: Mutex<Option<MigrationState>>,
}

struct MigrationState {
    partition: u32,
    num_partitions: u32,
    next_seq: u64,
    ops: Vec<(u64, UpdateOp)>,
    overflowed: bool,
}

impl MigrationLog {
    fn new() -> Self {
        Self {
            armed: AtomicBool::new(false),
            inner: Mutex::new(None),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Option<MigrationState>> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Byte size of a vertex/scalar field on the *maintenance* read paths
/// (degree, weight sums, attribute fetches, top-k). Those paths are not
/// part of the RPC wire protocol, so their traffic is modeled, not
/// codec-derived; the serving paths (sampling, update batches) account
/// with the real frame sizes from [`wire`].
const ID_BYTES: u64 = 8;

/// Retry budget for transient shard faults.
const MAX_RETRIES: u32 = 3;
/// Base backoff before the first retry; doubles per attempt.
const BACKOFF_BASE_MICROS: u64 = 50;

impl Cluster {
    /// Boot a cluster with its own fresh observability registry.
    pub fn new(config: ClusterConfig) -> Self {
        Self::with_registry(config, Arc::new(Registry::new()))
    }

    /// Boot a cluster that records into a caller-provided registry (so a
    /// pipeline, a WAL sidecar, and the cluster can share one snapshot).
    pub fn with_registry(config: ClusterConfig, registry: Arc<Registry>) -> Self {
        assert!(config.num_shards >= 1);
        let m = ClusterMetrics::new(&registry);
        registry.slow_log().set_threshold(config.slow_op_threshold);
        Self {
            servers: (0..config.num_shards)
                .map(|shard_id| GraphServer {
                    shard_id,
                    topology: DynamicGraphStore::with_registry(config.store, Arc::clone(&registry)),
                    attributes: AttributeStore::new(),
                })
                .collect(),
            shard_states: (0..config.num_shards).map(|_| ShardState::new()).collect(),
            faults: FaultInjector::new(config.num_shards),
            config,
            registry,
            m,
            txn: TxnPlane::new(),
            version: AtomicU64::new(0),
            migration: MigrationLog::new(),
        }
    }

    /// Boot with defaults (4 shards).
    pub fn with_defaults() -> Self {
        Self::new(ClusterConfig::default())
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.servers.len()
    }

    /// Hash-by-source routing: the shard owning vertex `v`'s out-edges.
    pub fn route(&self, v: VertexId) -> usize {
        route_for(v, self.servers.len())
    }

    /// Access a shard directly (diagnostics; production clients only talk
    /// through the router).
    pub fn server(&self, shard: usize) -> &GraphServer {
        &self.servers[shard]
    }

    /// All shards.
    pub fn servers(&self) -> &[GraphServer] {
        &self.servers
    }

    /// The fault injector scripting this cluster's failures.
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// The router's view of one shard's health.
    pub fn shard_health(&self, shard: usize) -> ShardHealth {
        self.shard_states[shard].health()
    }

    /// Health of every shard.
    pub fn health(&self) -> Vec<ShardHealth> {
        self.shard_states.iter().map(ShardState::health).collect()
    }

    /// Update ops currently queued for a failed shard.
    pub fn pending_ops(&self, shard: usize) -> usize {
        self.shard_states[shard].lock_pending().len()
    }

    fn shard_for(&self, v: VertexId) -> &GraphServer {
        &self.servers[self.route(v)]
    }

    fn tally(&self, requests: u64, req_bytes: u64, resp_bytes: u64) {
        self.m.requests.add(requests);
        self.m.request_bytes.add(req_bytes);
        self.m.response_bytes.add(resp_bytes);
    }

    /// The cluster's graph version: a monotone counter bumped once per
    /// mutation that reaches a shard — each [`Cluster::apply_batch_sharded`]
    /// call, each routed single-op write, each heal drain, decay sweep,
    /// bulk delete, or restore. Readers that cache derived state (e.g. the
    /// pipeline's neighbor cache) compare entry versions against this to
    /// bound staleness under concurrent updates.
    pub fn graph_version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Advance the graph version after a mutation landed.
    fn bump_version(&self) {
        let v = self.version.fetch_add(1, Ordering::Release) + 1;
        self.m.graph_version.set(v as i64);
    }

    /// The cluster's observability registry: cluster traffic/fault counters,
    /// serving-latency histograms, and the aggregated `samtree.*` /
    /// `storage.*` metrics of every shard store. Snapshot it for a unified
    /// view (`cluster.obs().snapshot().to_json()` / `.to_prometheus()`).
    pub fn obs(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Latency histogram of neighbor-sampling requests.
    pub fn sample_latency(&self) -> &LatencyHistogram {
        &self.m.sample_latency
    }

    /// Latency histogram of batched update requests.
    pub fn update_latency(&self) -> &LatencyHistogram {
        &self.m.update_latency
    }

    /// Snapshot of simulated network traffic and fault counters.
    ///
    /// Compatibility view over the registry counters (`cluster.*`); the
    /// registry itself ([`Cluster::obs`]) is the full picture.
    pub fn traffic(&self) -> TrafficStats {
        TrafficStats {
            requests: self.m.requests.get(),
            request_bytes: self.m.request_bytes.get(),
            response_bytes: self.m.response_bytes.get(),
            failed_requests: self.m.failed_requests.get(),
            retried_requests: self.m.retried_requests.get(),
            degraded_responses: self.m.degraded_responses.get(),
            queued_ops: self.m.queued_ops.get(),
        }
    }

    /// Run one request against a shard under the fault policy: honor the
    /// injector's verdict, retry transients with exponential backoff, and
    /// mark shard health. `Err` means the shard is (now) unavailable.
    fn call_shard<T>(&self, shard: usize, f: impl FnOnce(&GraphServer) -> T) -> Result<T, Error> {
        let state = &self.shard_states[shard];
        if state.health() == ShardHealth::Failed {
            self.m.failed_requests.inc();
            return Err(Error::ShardUnavailable { shard });
        }
        let mut f = Some(f);
        for attempt in 0..=MAX_RETRIES {
            match self.faults.verdict(shard, false) {
                Verdict::Proceed => {
                    state.mark_success();
                    return Ok(f.take().expect("closure used once")(&self.servers[shard]));
                }
                Verdict::ProceedAfter(delay) => {
                    std::thread::sleep(delay);
                    state.mark_success();
                    return Ok(f.take().expect("closure used once")(&self.servers[shard]));
                }
                Verdict::Transient => {
                    self.m.retried_requests.inc();
                    state.set_health(ShardHealth::Degraded);
                    std::thread::sleep(Duration::from_micros(backoff_micros(attempt)));
                }
                Verdict::Unavailable => {
                    self.m.failed_requests.inc();
                    state.set_health(ShardHealth::Failed);
                    return Err(Error::ShardUnavailable { shard });
                }
                Verdict::PanicBatch => unreachable!("panic faults only fire on the batch path"),
            }
        }
        // Retry budget exhausted: treat the shard as down.
        self.m.failed_requests.inc();
        state.set_health(ShardHealth::Failed);
        Err(Error::ShardUnavailable { shard })
    }

    /// Fault-routed read with a degraded fallback value.
    fn read_or<T>(&self, shard: usize, fallback: T, f: impl FnOnce(&GraphServer) -> T) -> T {
        match self.call_shard(shard, f) {
            Ok(v) => v,
            Err(_) => {
                self.m.degraded_responses.inc();
                fallback
            }
        }
    }

    /// Queue an update op for a failed shard (drained by
    /// [`Cluster::heal_shard`]), re-checking health *under the pending
    /// lock*: a writer that observed the shard failed may reach here after
    /// a concurrent [`Cluster::heal_shard`] already drained the queue and
    /// marked the shard healthy — queueing then would strand the op forever.
    /// In that case the op is applied directly instead (the heal completed
    /// its drain before flipping health, so ordering is preserved).
    ///
    /// Returns `true` if the op was queued, `false` if it was applied.
    fn queue_op(&self, shard: usize, op: UpdateOp) -> bool {
        let state = &self.shard_states[shard];
        let mut pending = state.lock_pending();
        if state.health() != ShardHealth::Failed {
            drop(pending);
            self.servers[shard].topology.apply(&op);
            self.record_migration_ops(std::slice::from_ref(&op));
            return false;
        }
        pending.push(op);
        self.m.queued_ops.inc();
        true
    }

    /// Apply a routed update op under the fault policy. Returns `false`
    /// when the op was queued instead of applied.
    fn apply_routed(&self, op: UpdateOp) -> bool {
        let shard = self.route(op.src());
        let applied = match self.call_shard(shard, |s| s.topology.apply(&op)) {
            Ok(()) => {
                self.record_migration_ops(std::slice::from_ref(&op));
                true
            }
            // queue_op journals itself when a heal race applies directly.
            Err(_) => !self.queue_op(shard, op),
        };
        if applied {
            self.bump_version();
        }
        applied
    }

    /// Clear any scripted fault on a shard, mark it healthy, and drain its
    /// queued updates through the batch-parallel path. Returns the number
    /// of drained ops.
    ///
    /// Drain and health transition coordinate with writers through the
    /// pending mutex: the queue is re-checked after every drained batch
    /// (writers still observing the shard as failed may queue concurrently
    /// with a drain), and the shard is marked healthy only in the same
    /// critical section that observes the queue empty. After that, any
    /// late writer re-checks health under the same lock in
    /// [`Cluster::queue_op`] and applies directly, so no op is ever parked
    /// on a healthy shard.
    pub fn heal_shard(&self, shard: usize) -> usize {
        let _span = self.registry.span("cluster.heal");
        self.m.heals.inc();
        let state = &self.shard_states[shard];
        let mut drained = 0;
        loop {
            let pending: Vec<UpdateOp> = {
                let mut guard = state.lock_pending();
                if guard.is_empty() {
                    self.faults.clear(shard);
                    state.set_health(ShardHealth::Healthy);
                    self.m.healed_ops.add(drained as u64);
                    return drained;
                }
                std::mem::take(&mut *guard)
            };
            drained += pending.len();
            self.servers[shard]
                .topology
                .apply_batch_parallel(&pending, self.config.threads_per_shard.max(1));
            self.record_migration_ops(&pending);
            self.bump_version();
        }
    }

    /// Per-shard edge counts (load-balance diagnostics).
    pub fn shard_edge_counts(&self) -> Vec<usize> {
        self.servers
            .iter()
            .map(|s| s.topology.num_edges())
            .collect()
    }

    /// Set a vertex's feature bytes on its owning shard.
    pub fn set_vertex_attr(&self, v: VertexId, data: bytes::Bytes) {
        self.tally(1, ID_BYTES + data.len() as u64, 0);
        self.shard_for(v).attributes.set_vertex(v, data);
    }

    /// Fetch a vertex's feature bytes from its owning shard.
    pub fn vertex_attr(&self, v: VertexId) -> Option<bytes::Bytes> {
        let got = self.shard_for(v).attributes.vertex(v);
        self.tally(1, ID_BYTES, got.as_ref().map_or(0, |b| b.len() as u64));
        got
    }

    /// Batched update across shards: ops are partitioned by owning shard,
    /// each shard applies its partition with the PALM batch updater, all
    /// shards in parallel (they are independent machines in production).
    ///
    /// Fault handling: a failed shard's partition is queued (see
    /// [`BatchReport::queued_ops`] and [`Cluster::heal_shard`]); a panicking
    /// shard worker is caught, the shard is marked
    /// [`ShardHealth::Failed`], every *other* shard's partition still
    /// applies, and the panic surfaces as [`Error::ShardPanicked`].
    pub fn apply_batch_sharded(&self, ops: &[UpdateOp]) -> Result<BatchReport, Error> {
        self.apply_batch_routed(ops, true)
    }

    /// [`Cluster::apply_batch_sharded`] for the replication/migration
    /// channel: applies identically but does **not** advance
    /// [`Cluster::graph_version`] or feed the migration journal. Replica
    /// fan-out and migration snapshot streams are data *moves* — the
    /// logical graph a fleet client observes is unchanged, so bumping the
    /// version here would spuriously invalidate trainer caches
    /// fleet-wide, and journaling here would let a migrated partition's
    /// new owner echo drained ops back into the source's journal forever
    /// (the final drain would never see an empty round).
    pub fn apply_batch_replicated(&self, ops: &[UpdateOp]) -> Result<BatchReport, Error> {
        self.apply_batch_routed(ops, false)
    }

    fn apply_batch_routed(
        &self,
        ops: &[UpdateOp],
        bump_version: bool,
    ) -> Result<BatchReport, Error> {
        let _span = self.registry.span("cluster.apply_batch");
        let started = Instant::now();
        let mut per_shard: Vec<Vec<UpdateOp>> = vec![Vec::new(); self.servers.len()];
        for op in ops {
            per_shard[self.route(op.src())].push(*op);
        }
        // One update frame per shard that receives a partition, one reply
        // frame back from each — exactly what the rpc transport ships.
        let live_shards = per_shard.iter().filter(|p| !p.is_empty());
        let (frames, req_bytes) = live_shards.fold((0u64, 0u64), |(n, b), p| {
            (n + 1, b + wire::update_frame_bytes(p.len()))
        });
        self.tally(frames, req_bytes, frames * wire::UPDATE_REPLY_FRAME_BYTES);

        // Resolve each shard's fate up front (retrying transients), so the
        // parallel phase below only runs real work.
        enum Fate {
            Apply {
                delay: Option<Duration>,
                panic: bool,
            },
            Queue,
        }
        let mut fates: Vec<Option<Fate>> = Vec::with_capacity(per_shard.len());
        for (shard, shard_ops) in per_shard.iter().enumerate() {
            if shard_ops.is_empty() {
                fates.push(None);
                continue;
            }
            if self.shard_states[shard].health() == ShardHealth::Failed {
                self.m.failed_requests.inc();
                fates.push(Some(Fate::Queue));
                continue;
            }
            let mut fate = None;
            for attempt in 0..=MAX_RETRIES {
                match self.faults.verdict(shard, true) {
                    Verdict::Proceed => {
                        fate = Some(Fate::Apply {
                            delay: None,
                            panic: false,
                        });
                        break;
                    }
                    Verdict::ProceedAfter(delay) => {
                        fate = Some(Fate::Apply {
                            delay: Some(delay),
                            panic: false,
                        });
                        break;
                    }
                    Verdict::PanicBatch => {
                        fate = Some(Fate::Apply {
                            delay: None,
                            panic: true,
                        });
                        break;
                    }
                    Verdict::Transient => {
                        self.m.retried_requests.inc();
                        self.shard_states[shard].set_health(ShardHealth::Degraded);
                        std::thread::sleep(Duration::from_micros(backoff_micros(attempt)));
                    }
                    Verdict::Unavailable => {
                        self.m.failed_requests.inc();
                        self.shard_states[shard].set_health(ShardHealth::Failed);
                        fate = Some(Fate::Queue);
                        break;
                    }
                }
            }
            fates.push(Some(match fate {
                Some(f) => f,
                None => {
                    // Retry budget exhausted.
                    self.m.failed_requests.inc();
                    self.shard_states[shard].set_health(ShardHealth::Failed);
                    Fate::Queue
                }
            }));
        }

        let mut report = BatchReport::default();
        let mut worker_outcomes: Vec<(usize, Result<(), String>)> = Vec::new();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for (shard, (shard_ops, fate)) in per_shard.iter().zip(&fates).enumerate() {
                let Some(fate) = fate else { continue };
                match fate {
                    Fate::Queue => {
                        // queue_op may apply directly if a concurrent heal
                        // raced in; count whichever actually happened.
                        for op in shard_ops {
                            if self.queue_op(shard, *op) {
                                report.queued_ops += 1;
                            } else {
                                report.applied_ops += 1;
                            }
                        }
                    }
                    Fate::Apply { delay, panic } => {
                        let server = &self.servers[shard];
                        let threads = self.config.threads_per_shard.max(1);
                        let (delay, panic) = (*delay, *panic);
                        handles.push((
                            shard,
                            shard_ops.len(),
                            s.spawn(move || {
                                // Each worker catches its own panic so one
                                // crashed shard cannot abort the batch (or
                                // the process).
                                std::panic::catch_unwind(AssertUnwindSafe(|| {
                                    if let Some(d) = delay {
                                        std::thread::sleep(d);
                                    }
                                    if panic {
                                        panic!(
                                            "injected fault: shard {shard} batch worker crashed"
                                        );
                                    }
                                    server.topology.apply_batch_parallel(shard_ops, threads);
                                }))
                                .map_err(|payload| panic_message(&*payload))
                            }),
                        ));
                    }
                }
            }
            for (shard, n_ops, handle) in handles {
                let outcome = handle
                    .join()
                    .unwrap_or_else(|payload| Err(panic_message(&*payload)));
                if outcome.is_ok() {
                    report.applied_ops += n_ops;
                    if bump_version {
                        self.record_migration_ops(&per_shard[shard]);
                    }
                }
                worker_outcomes.push((shard, outcome));
            }
        });
        self.m.update_latency.record(started.elapsed());
        if bump_version && !ops.is_empty() {
            // Conservative: queued-only batches also bump (a cache refresh
            // is cheap; serving around a missed invalidation is not).
            self.bump_version();
        }

        let mut first_panic = None;
        for (shard, outcome) in worker_outcomes {
            if let Err(detail) = outcome {
                self.shard_states[shard].set_health(ShardHealth::Failed);
                self.m.failed_requests.inc();
                if first_panic.is_none() {
                    first_panic = Some(Error::ShardPanicked { shard, detail });
                }
            }
        }
        match first_panic {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }

    /// Declare the relation schema: edge types `0..limit` are known, and a
    /// transaction naming any other etype is rejected in phase 1 with
    /// [`ViolationKind::UnknownEtype`](platod2gl_graph::ViolationKind).
    /// `None` (the default) removes the restriction. Only the transactional
    /// path validates against the schema; raw update batches are unchecked.
    pub fn set_etype_limit(&self, limit: Option<u16>) {
        let raw = limit.map_or(u32::MAX, u32::from);
        self.txn.etype_limit.store(raw, Ordering::Relaxed);
    }

    /// The `/debug/txns` journal: recent transaction outcomes, oldest first.
    pub fn txn_journal(&self) -> Vec<TxnLogEntry> {
        self.txn.recent()
    }

    /// Consecutive transaction aborts since the last commit (a storage
    /// sickness signal for `/healthz`, distinct from shard health).
    pub fn txn_abort_streak(&self) -> u64 {
        self.txn.abort_streak.load(Ordering::Relaxed)
    }

    /// Record one aborted transaction: counter, streak, journal.
    fn note_txn_abort(&self, txn_id: u64, outcome: &'static str, detail: String) {
        self.m.txn_aborted.inc();
        let streak = self.txn.abort_streak.fetch_add(1, Ordering::Relaxed) + 1;
        self.m.txn_abort_streak.set(streak as i64);
        self.txn.log(TxnLogEntry {
            txn_id,
            outcome,
            ops: 0,
            detail,
        });
    }

    /// Apply a typed transaction: two-phase, all-or-nothing across shards.
    ///
    /// **Phase 1** validates the whole batch against live topology
    /// ([`validate_and_lower`]) and rejects it — zero changes — on any
    /// violation. **Phase 2** partitions the lowered ops by owning shard
    /// and applies every partition in parallel through the PALM batch
    /// updater, bumping the graph version once on commit.
    ///
    /// Admission is *strict*, unlike [`Cluster::apply_batch_sharded`]: a
    /// transaction is atomic across shards, so if any involved shard is
    /// failed, unavailable after retries, or scripted with
    /// [`FaultKind::AbortNextTxn`], the whole transaction aborts cleanly
    /// (nothing is queued — atomicity over availability). Admission aborts
    /// never mutate shard health; the regular update path owns failure
    /// discovery. A *worker panic* mid-apply is a real shard crash: the
    /// shard is marked failed and the error surfaces as
    /// [`Error::ShardPanicked`].
    ///
    /// Replaying an already-committed txn id answers from the idempotence
    /// ledger with `deduped = true` instead of applying twice — the server
    /// half of the RPC retry contract.
    pub fn apply_txn(&self, txn: &GraphTxn) -> Result<TxnReceipt, TxnError> {
        self.apply_txn_routed(txn, true)
    }

    /// [`Cluster::apply_txn`] for the replication channel: same
    /// validation, WAL, and dedupe-ledger semantics, but the graph
    /// version does not advance and the migration journal is not fed — a
    /// replicated txn is an echo of a commit the owner already versioned,
    /// not a new logical write (see
    /// [`Cluster::apply_batch_replicated`]).
    pub fn apply_txn_replicated(&self, txn: &GraphTxn) -> Result<TxnReceipt, TxnError> {
        self.apply_txn_routed(txn, false)
    }

    fn apply_txn_routed(&self, txn: &GraphTxn, bump_version: bool) -> Result<TxnReceipt, TxnError> {
        let _span = self.registry.span("cluster.apply_txn");
        let started = Instant::now();

        if let Some(mut receipt) = self.txn.lookup(txn.id()) {
            receipt.deduped = true;
            self.m.txn_deduped.inc();
            self.txn.log(TxnLogEntry {
                txn_id: txn.id(),
                outcome: "deduped",
                ops: receipt.ops_applied,
                detail: String::new(),
            });
            return Ok(receipt);
        }

        // Phase 1: validate against the cluster's live topology (the
        // `TxnView` impl below routes reads to the owning shards).
        let lowered = match validate_and_lower(txn, self) {
            Ok(lowered) => lowered,
            Err(e) => {
                self.note_txn_abort(
                    txn.id(),
                    "rejected",
                    format!("{} violation(s)", e.violations().len()),
                );
                return Err(e);
            }
        };

        let mut per_shard: Vec<Vec<UpdateOp>> = vec![Vec::new(); self.servers.len()];
        for op in &lowered {
            per_shard[self.route(op.src())].push(*op);
        }
        // One txn-apply frame per involved shard, one reply back from each.
        let live_shards = per_shard.iter().filter(|p| !p.is_empty());
        let (frames, req_bytes) = live_shards.fold((0u64, 0u64), |(n, b), p| {
            (n + 1, b + wire::txn_frame_bytes(p.len()))
        });
        self.tally(frames, req_bytes, frames * wire::TXN_REPLY_FRAME_BYTES);

        // Strict admission: every involved shard must be able to take its
        // partition *before* any shard applies anything.
        struct Admission {
            delay: Option<Duration>,
            panic: bool,
        }
        let mut admitted: Vec<Option<Admission>> = Vec::with_capacity(per_shard.len());
        for (shard, shard_ops) in per_shard.iter().enumerate() {
            if shard_ops.is_empty() {
                admitted.push(None);
                continue;
            }
            if self.faults.take_abort_txn(shard) {
                self.m.failed_requests.inc();
                self.note_txn_abort(
                    txn.id(),
                    "unavailable",
                    format!("shard {shard}: scripted txn abort"),
                );
                return Err(TxnError::Store(Error::ShardUnavailable { shard }));
            }
            if self.shard_states[shard].health() == ShardHealth::Failed {
                self.m.failed_requests.inc();
                self.note_txn_abort(txn.id(), "unavailable", format!("shard {shard}: failed"));
                return Err(TxnError::Store(Error::ShardUnavailable { shard }));
            }
            let mut admission = None;
            for attempt in 0..=MAX_RETRIES {
                match self.faults.verdict(shard, true) {
                    Verdict::Proceed => {
                        admission = Some(Admission {
                            delay: None,
                            panic: false,
                        });
                        break;
                    }
                    Verdict::ProceedAfter(delay) => {
                        admission = Some(Admission {
                            delay: Some(delay),
                            panic: false,
                        });
                        break;
                    }
                    Verdict::PanicBatch => {
                        admission = Some(Admission {
                            delay: None,
                            panic: true,
                        });
                        break;
                    }
                    Verdict::Transient => {
                        self.m.retried_requests.inc();
                        std::thread::sleep(Duration::from_micros(backoff_micros(attempt)));
                    }
                    Verdict::Unavailable => break,
                }
            }
            match admission {
                Some(a) => admitted.push(Some(a)),
                None => {
                    // Unavailable, or retry budget exhausted: clean abort.
                    self.m.failed_requests.inc();
                    self.note_txn_abort(
                        txn.id(),
                        "unavailable",
                        format!("shard {shard}: unavailable"),
                    );
                    return Err(TxnError::Store(Error::ShardUnavailable { shard }));
                }
            }
        }

        // Phase 2: apply every partition, shards in parallel.
        let threads = self.config.threads_per_shard.max(1);
        let mut worker_outcomes: Vec<(usize, Result<(), String>)> = Vec::new();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for (shard, (shard_ops, admission)) in per_shard.iter().zip(&admitted).enumerate() {
                let Some(admission) = admission else { continue };
                let server = &self.servers[shard];
                let (delay, panic) = (admission.delay, admission.panic);
                handles.push((
                    shard,
                    s.spawn(move || {
                        std::panic::catch_unwind(AssertUnwindSafe(|| {
                            if let Some(d) = delay {
                                std::thread::sleep(d);
                            }
                            if panic {
                                panic!("injected fault: shard {shard} txn worker crashed");
                            }
                            server.topology.apply_batch_parallel(shard_ops, threads);
                        }))
                        .map_err(|payload| panic_message(&*payload))
                    }),
                ));
            }
            for (shard, handle) in handles {
                let outcome = handle
                    .join()
                    .unwrap_or_else(|payload| Err(panic_message(&*payload)));
                worker_outcomes.push((shard, outcome));
            }
        });
        self.m.update_latency.record(started.elapsed());

        let mut first_panic = None;
        let mut any_applied = false;
        for (shard, outcome) in worker_outcomes {
            match outcome {
                Ok(()) => {
                    any_applied = true;
                    if bump_version {
                        self.record_migration_ops(&per_shard[shard]);
                    }
                }
                Err(detail) => {
                    self.shard_states[shard].set_health(ShardHealth::Failed);
                    self.m.failed_requests.inc();
                    if first_panic.is_none() {
                        first_panic = Some(Error::ShardPanicked { shard, detail });
                    }
                }
            }
        }
        if any_applied && bump_version {
            // Version bumps only when shard state actually changed — a
            // rejected or admission-aborted txn leaves caches valid. A
            // partial panic still bumps: the surviving shards mutated.
            self.bump_version();
        }
        if let Some(e) = first_panic {
            self.note_txn_abort(txn.id(), "panicked", e.to_string());
            return Err(TxnError::Store(e));
        }

        let receipt = TxnReceipt {
            txn_id: txn.id(),
            ops_applied: lowered.len() as u64,
            graph_version: self.graph_version(),
            deduped: false,
        };
        self.txn.record_commit(receipt);
        self.txn.abort_streak.store(0, Ordering::Relaxed);
        self.m.txn_abort_streak.set(0);
        self.m.txn_committed.inc();
        self.m.txn_ops_applied.add(receipt.ops_applied);
        self.txn.log(TxnLogEntry {
            txn_id: txn.id(),
            outcome: "committed",
            ops: receipt.ops_applied,
            detail: String::new(),
        });
        Ok(receipt)
    }

    // ------------------------------------------------------------------
    // Live shard migration (fleet plane)
    // ------------------------------------------------------------------

    /// Record ops that just landed on a shard into the migration journal,
    /// if one is armed for their partition. One relaxed load when idle.
    fn record_migration_ops(&self, ops: &[UpdateOp]) {
        if !self.migration.armed.load(Ordering::Relaxed) {
            return;
        }
        let mut guard = self.migration.lock();
        let Some(state) = guard.as_mut() else { return };
        for op in ops {
            if partition_for(op.src(), state.num_partitions) != state.partition {
                continue;
            }
            if state.ops.len() >= MIGRATION_JOURNAL_CAP {
                state.overflowed = true;
                return;
            }
            state.ops.push((state.next_seq, *op));
            state.next_seq += 1;
        }
    }

    /// Arm the migration journal for one partition: every update op that
    /// lands on it from now on is sequence-numbered for
    /// [`Cluster::migration_tail`]. Returns the starting sequence number.
    /// One migration at a time per server; a second `begin` is rejected.
    pub fn begin_migration(&self, partition: u32, num_partitions: u32) -> Result<u64, Error> {
        if num_partitions == 0 || partition >= num_partitions {
            return Err(Error::invalid_config("partition out of range"));
        }
        let mut guard = self.migration.lock();
        if guard.is_some() {
            return Err(Error::invalid_config(
                "a migration is already in progress on this server",
            ));
        }
        *guard = Some(MigrationState {
            partition,
            num_partitions,
            next_seq: 0,
            ops: Vec::new(),
            overflowed: false,
        });
        self.migration.armed.store(true, Ordering::Release);
        Ok(0)
    }

    /// Ops journaled for the migrating partition with sequence `>=
    /// from_seq`, plus the next sequence number to resume from. The mover
    /// drains in rounds until a round comes back empty.
    pub fn migration_tail(
        &self,
        partition: u32,
        from_seq: u64,
    ) -> Result<(Vec<UpdateOp>, u64), Error> {
        let guard = self.migration.lock();
        let Some(state) = guard.as_ref() else {
            return Err(Error::invalid_config("no migration in progress"));
        };
        if state.partition != partition {
            return Err(Error::invalid_config("tail for the wrong partition"));
        }
        if state.overflowed {
            return Err(Error::Corrupt {
                what: "migration journal overflowed; restart the migration".to_string(),
            });
        }
        let ops = state
            .ops
            .iter()
            .filter(|(seq, _)| *seq >= from_seq)
            .map(|(_, op)| *op)
            .collect();
        Ok((ops, state.next_seq))
    }

    /// Disarm the migration journal. Returns the total ops it buffered.
    pub fn end_migration(&self, partition: u32) -> Result<u64, Error> {
        let mut guard = self.migration.lock();
        match guard.as_ref() {
            Some(state) if state.partition == partition => {
                let total = state.next_seq;
                *guard = None;
                self.migration.armed.store(false, Ordering::Release);
                Ok(total)
            }
            Some(_) => Err(Error::invalid_config("ending the wrong partition")),
            None => Err(Error::invalid_config("no migration in progress")),
        }
    }

    /// Export one partition's adjacency as a bounded snapshot-v2 chunk
    /// (see [`PartitionChunk`]). Entries are keyed `(src, etype)` and
    /// returned in key order starting strictly after `cursor`, so the
    /// mover streams the partition in stable, resumable chunks while the
    /// server keeps serving.
    pub fn export_partition(
        &self,
        partition: u32,
        num_partitions: u32,
        cursor: Option<(u64, u16)>,
        max_edges: usize,
    ) -> Result<PartitionChunk, Error> {
        if num_partitions == 0 || partition >= num_partitions {
            return Err(Error::invalid_config("partition out of range"));
        }
        // Census pass: directory keys and edge counts only — a serving
        // node must not re-materialize the whole store's adjacency for
        // every chunk it streams.
        let mut keys: Vec<((u64, u16), usize)> = Vec::new();
        for server in &self.servers {
            server.topology.for_each_source(|src, etype, len| {
                if partition_for(src, num_partitions) != partition {
                    return;
                }
                let key = (src.raw(), etype.0);
                if cursor.is_some_and(|cur| key <= cur) {
                    return;
                }
                keys.push((key, len));
            });
        }
        keys.sort_unstable_by_key(|(k, _)| *k);
        let budget = max_edges.max(1);
        let mut take = 0usize;
        let mut planned = 0usize;
        for (i, (_, len)) in keys.iter().enumerate() {
            if i > 0 && planned + len > budget {
                break;
            }
            planned += len;
            take += 1;
        }
        let done = take == keys.len();
        // Materialize only the chunk's keys, each from its owning shard.
        // A tree racing away between census and fetch is fine: its
        // mutation is in the migration journal either way.
        let mut taken: Vec<platod2gl_storage::AdjacencyEntry> = Vec::with_capacity(take);
        let mut edges = 0u64;
        for &((src, etype), _) in &keys[..take] {
            let server = &self.servers[self.route(VertexId(src))];
            if let Some(entries) = server.topology.adjacency_of(VertexId(src), EdgeType(etype)) {
                edges += entries.len() as u64;
                taken.push(((src, etype), entries));
            }
        }
        let next_cursor = keys[..take].last().map(|(k, _)| *k).or(cursor);
        let mut snapshot = Vec::new();
        platod2gl_storage::write_snapshot(&mut snapshot, &taken)?;
        Ok(PartitionChunk {
            snapshot,
            cursor: next_cursor,
            done,
            edges,
        })
    }

    /// Resident `(src, etype)` directory keys per partition, across all
    /// local shards — the load view `/debug/partitions` serves.
    pub fn partition_key_counts(&self, num_partitions: u32) -> Vec<u64> {
        let mut counts = vec![0u64; num_partitions.max(1) as usize];
        for server in &self.servers {
            server.topology.for_each_source(|src, _etype, _edges| {
                counts[partition_for(src, num_partitions.max(1)) as usize] += 1;
            });
        }
        counts
    }

    /// Time-decay sweep across all shards (each shard in sequence; shards
    /// are independent so production runs them concurrently). Maintenance
    /// path: not fault-routed.
    pub fn decay_weights(&self, factor: f64) {
        for server in &self.servers {
            server.topology.decay_weights(factor);
        }
        self.bump_version();
    }

    /// The `k` heaviest out-neighbors of `v`, heaviest first. Empty when
    /// the owning shard is unavailable.
    pub fn top_k_neighbors(&self, v: VertexId, etype: EdgeType, k: usize) -> Vec<(VertexId, f64)> {
        self.tally(1, ID_BYTES + 8, (k as u64) * (ID_BYTES + 8));
        self.read_or(self.route(v), Vec::new(), |s| {
            s.topology.top_k_neighbors(v, etype, k)
        })
    }

    /// Drop a source vertex's whole out-neighborhood on its owning shard
    /// (account deletion). Returns the number of edges removed — `0` if the
    /// shard is unavailable (the caller must re-issue after
    /// [`Cluster::heal_shard`]; bulk deletion is not queueable as update
    /// ops).
    pub fn delete_source(&self, v: VertexId, etype: EdgeType) -> usize {
        self.tally(1, ID_BYTES, 8);
        let removed = self.read_or(self.route(v), 0, |s| s.topology.delete_source(v, etype));
        if removed > 0 {
            self.bump_version();
        }
        removed
    }

    /// Weighted neighbor sampling — the single sampling entry point.
    ///
    /// If the owning shard cannot answer (failed, or exhausted its retry
    /// budget), the response is degraded according to
    /// [`SampleRequest::on_degraded`]: an empty neighbor set
    /// ([`DegradedPolicy::EmptySet`], the historical behavior) or `fanout`
    /// self-loop slots ([`DegradedPolicy::SelfLoop`]). Either way the
    /// trainer keeps running instead of crashing; `degraded` and the
    /// per-slot `sources` make the fallback explicit.
    pub fn sample(&self, req: &SampleRequest, rng: &mut dyn RngCore) -> SampleResponse {
        let started = Instant::now();
        // Root span of this request's trace: shard dispatch, samtree
        // descent, and FTS draws all nest under it (same thread, same
        // registry), so the whole tree is recoverable from the ring by id.
        let root = self.registry.span("cluster.sample");
        let root_id = root.id();
        let shard = self.route(req.vertex);
        let response = match self.call_shard(shard, |s| {
            let _dispatch = self.registry.span("shard.sample");
            s.topology
                .sample_neighbors_windowed(req.vertex, req.etype, req.fanout, req.window, rng)
        }) {
            Ok(ids) => {
                let sources = vec![SlotSource::Sampled; ids.len()];
                SampleResponse {
                    neighbors: ids,
                    sources,
                    degraded: false,
                    shard,
                }
            }
            Err(_) => {
                self.m.degraded_responses.inc();
                let (neighbors, sources) = match req.on_degraded {
                    DegradedPolicy::EmptySet => (Vec::new(), Vec::new()),
                    DegradedPolicy::SelfLoop => (
                        vec![req.vertex; req.fanout],
                        vec![SlotSource::SelfLoop; req.fanout],
                    ),
                };
                SampleResponse {
                    neighbors,
                    sources,
                    degraded: true,
                    shard,
                }
            }
        };
        // Degraded responses are real frames too (the graph server answers
        // them on the wire), so they are tallied at their encoded size —
        // this keeps in-process and remote `net.*` numbers comparable. A
        // windowed request carries the optional time-window trailer.
        let window_bytes = if req.window.is_some() {
            wire::time_window_block_bytes(1)
        } else {
            0
        };
        self.tally(
            1,
            wire::sample_request_frame_bytes(1) + window_bytes,
            wire::sample_response_frame_bytes([response.neighbors.len()]),
        );
        // Complete the root before reading the ring so the capture below
        // sees it.
        drop(root);
        let elapsed = started.elapsed();
        self.m.sample_latency.record(elapsed);
        let slow = self.registry.slow_log();
        if slow.is_slow(elapsed) {
            slow.record(platod2gl_obs::SlowOpRecord {
                op: "cluster.sample",
                trace_id: req.trace_id,
                detail: format!(
                    "vertex={} etype={} fanout={} shard={} degraded={} returned={}",
                    req.vertex.raw(),
                    req.etype.0,
                    req.fanout,
                    shard,
                    response.degraded,
                    response.neighbors.len()
                ),
                duration_ns: elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
                spans: platod2gl_obs::span_subtree(&self.registry.tracer().recent(), root_id),
            });
        }
        response
    }

    /// Snapshot the whole cluster's topology into one stream. The format is
    /// shard-count independent, so a snapshot taken on 4 shards restores
    /// onto 8 (re-sharding without re-partitioning tools — the operation
    /// static stores need a full redeploy for).
    pub fn snapshot_to(&self, w: impl std::io::Write) -> Result<(), Error> {
        let _span = self.registry.span("cluster.snapshot");
        let mut entries = Vec::new();
        for server in &self.servers {
            entries.extend(server.topology.export_adjacency());
        }
        platod2gl_storage::write_snapshot(w, &entries)?;
        Ok(())
    }

    /// Restore a cluster snapshot, routing every source vertex to its
    /// owning shard and bulk-loading each shard's trees.
    pub fn restore_from(&self, r: impl std::io::Read) -> Result<(), Error> {
        let _span = self.registry.span("cluster.restore");
        self.bump_version();
        platod2gl_storage::read_snapshot(r, |batch| {
            let mut per_shard: Vec<Vec<Edge>> = vec![Vec::new(); self.servers.len()];
            for e in batch {
                per_shard[self.route(e.src)].push(e);
            }
            for (server, edges) in self.servers.iter().zip(per_shard) {
                if !edges.is_empty() {
                    server.topology.bulk_build(edges);
                }
            }
        })?;
        Ok(())
    }

    /// Aggregate topology memory across shards (Table IV at cluster scope).
    pub fn total_topology_bytes(&self) -> usize {
        self.servers
            .iter()
            .map(|s| s.topology.topology_bytes())
            .sum()
    }

    /// Walk every shard's `DeepSize` accounting and refresh the
    /// `graph.mem.samtree_bytes` / `graph.mem.attr_bytes` gauges.
    /// Diagnostics-priced (takes each samtree's read lock in turn); the
    /// admin server calls it per `/metrics` and `/debug/memory` request.
    pub fn memory_breakdown(&self) -> ClusterMemory {
        let _span = self.registry.span("cluster.memory_walk");
        let mut mem = ClusterMemory::default();
        for s in &self.servers {
            let topology = s.topology.memory_breakdown();
            let attr_bytes = s.attributes.attribute_bytes();
            mem.samtree_bytes += topology.total_bytes;
            mem.leaf_bytes += topology.leaf_bytes;
            mem.internal_bytes += topology.internal_bytes;
            mem.directory_bytes += topology.directory_bytes;
            mem.attr_bytes += attr_bytes;
            mem.per_shard.push(ShardMemory {
                shard: s.shard_id,
                topology,
                attr_bytes,
                edges: s.topology.num_edges(),
            });
        }
        self.m.mem_samtree.set(mem.samtree_bytes as i64);
        self.m.mem_attr.set(mem.attr_bytes as i64);
        mem
    }
}

/// Exponential backoff schedule for transient-fault retries.
fn backoff_micros(attempt: u32) -> u64 {
    BACKOFF_BASE_MICROS << attempt.min(6)
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Phase-1 validation reads, routed to the owning shards. Reads go to shard
/// storage directly (validation is a maintenance-grade path, not
/// fault-routed): a transaction that touches an unavailable shard is caught
/// at admission, not during validation.
impl TxnView for Cluster {
    fn edge_weight(&self, src: VertexId, dst: VertexId, etype: EdgeType) -> Option<f64> {
        self.shard_for(src).topology.edge_weight(src, dst, etype)
    }

    fn neighbors(&self, v: VertexId, etype: EdgeType) -> Vec<(VertexId, f64)> {
        self.shard_for(v).topology.neighbors(v, etype)
    }

    fn known_etype(&self, etype: EdgeType) -> bool {
        let limit = self.txn.etype_limit.load(Ordering::Relaxed);
        limit == u32::MAX || u32::from(etype.0) < limit
    }
}

impl GraphStore for Cluster {
    fn name(&self) -> &'static str {
        "PlatoD2GL-cluster"
    }

    fn insert_edge(&self, edge: Edge) {
        self.tally(
            1,
            wire::update_frame_bytes(1),
            wire::UPDATE_REPLY_FRAME_BYTES,
        );
        self.apply_routed(UpdateOp::Insert(edge));
    }

    fn delete_edge(&self, src: VertexId, dst: VertexId, etype: EdgeType) -> bool {
        self.tally(
            1,
            wire::update_frame_bytes(1),
            wire::UPDATE_REPLY_FRAME_BYTES,
        );
        let shard = self.route(src);
        match self.call_shard(shard, |s| s.topology.delete_edge(src, dst, etype)) {
            Ok(existed) => {
                if existed {
                    self.record_migration_ops(&[UpdateOp::Delete { src, dst, etype }]);
                    self.bump_version();
                }
                existed
            }
            Err(_) => {
                // Queued (or, on a heal race, applied late); prior existence
                // is unknown either way.
                if !self.queue_op(shard, UpdateOp::Delete { src, dst, etype }) {
                    self.bump_version();
                }
                false
            }
        }
    }

    fn update_weight(&self, edge: Edge) -> bool {
        self.tally(
            1,
            wire::update_frame_bytes(1),
            wire::UPDATE_REPLY_FRAME_BYTES,
        );
        let shard = self.route(edge.src);
        match self.call_shard(shard, |s| s.topology.update_weight(edge)) {
            Ok(existed) => {
                if existed {
                    self.record_migration_ops(&[UpdateOp::UpdateWeight(edge)]);
                    self.bump_version();
                }
                existed
            }
            Err(_) => {
                if !self.queue_op(shard, UpdateOp::UpdateWeight(edge)) {
                    self.bump_version();
                }
                false
            }
        }
    }

    fn apply_batch(&self, ops: &[UpdateOp]) {
        // The infallible trait signature reports shard loss via
        // `shard_health` / `traffic()` instead of a panic: a worker panic
        // is already captured per shard and recorded by the time
        // apply_batch_sharded returns. The swallow is deliberate — but it
        // is *counted*, so a snapshot of `cluster.batch_apply_errors`
        // reveals how many batches lost their error this way.
        if self.apply_batch_sharded(ops).is_err() {
            self.m.batch_apply_errors.inc();
        }
    }

    fn degree(&self, v: VertexId, etype: EdgeType) -> usize {
        self.tally(1, ID_BYTES, 8);
        self.read_or(self.route(v), 0, |s| s.topology.degree(v, etype))
    }

    fn weight_sum(&self, v: VertexId, etype: EdgeType) -> f64 {
        self.tally(1, ID_BYTES, 8);
        self.read_or(self.route(v), 0.0, |s| s.topology.weight_sum(v, etype))
    }

    fn edge_weight(&self, src: VertexId, dst: VertexId, etype: EdgeType) -> Option<f64> {
        self.tally(1, 2 * ID_BYTES, 8);
        self.read_or(self.route(src), None, |s| {
            s.topology.edge_weight(src, dst, etype)
        })
    }

    fn sample_neighbors(
        &self,
        v: VertexId,
        etype: EdgeType,
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<VertexId> {
        self.sample(&SampleRequest::new(v, etype, k), rng).neighbors
    }

    fn neighbors(&self, v: VertexId, etype: EdgeType) -> Vec<(VertexId, f64)> {
        let out = self.read_or(self.route(v), Vec::new(), |s| {
            s.topology.neighbors(v, etype)
        });
        self.tally(1, ID_BYTES, out.len() as u64 * (ID_BYTES + 8));
        out
    }

    fn num_edges(&self) -> usize {
        self.servers.iter().map(|s| s.topology.num_edges()).sum()
    }

    fn topology_bytes(&self) -> usize {
        self.total_topology_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platod2gl_graph::{conformance, DatasetProfile};
    use rand::SeedableRng;

    fn cluster_with_shards(n: usize) -> Cluster {
        Cluster::new(
            ClusterConfig::builder()
                .num_shards(n)
                .build()
                .expect("valid config"),
        )
    }

    fn small_cluster() -> Cluster {
        cluster_with_shards(3)
    }

    #[test]
    fn conformance_suite() {
        conformance::run_all(small_cluster);
    }

    #[test]
    fn routing_is_stable_and_covers_shards() {
        let c = cluster_with_shards(8);
        let mut seen = [false; 8];
        for v in 0..1_000u64 {
            let r = c.route(VertexId(v));
            assert_eq!(r, c.route(VertexId(v)), "routing must be deterministic");
            seen[r] = true;
        }
        assert!(seen.iter().all(|&s| s), "all shards should receive load");
    }

    #[test]
    fn edges_land_on_owner_shards_only() {
        let c = small_cluster();
        for e in DatasetProfile::tiny().edge_stream(1) {
            c.insert_edge(e);
        }
        let total: usize = c.shard_edge_counts().iter().sum();
        assert_eq!(total, c.num_edges());
        // Every source's edges must be on exactly its routed shard.
        for src in DatasetProfile::tiny().sample_sources(50, 2) {
            let owner = c.route(src);
            for (i, server) in c.servers().iter().enumerate() {
                let deg = server.topology.degree(src, EdgeType(0));
                if i == owner {
                    continue;
                }
                assert_eq!(deg, 0, "shard {i} holds foreign vertex {src:?}");
            }
        }
    }

    #[test]
    fn sharded_batches_match_single_store() {
        let profile = DatasetProfile::tiny();
        let ops = profile.update_stream(5).next_batch(10_000);
        let cluster = small_cluster();
        let report = cluster.apply_batch_sharded(&ops).expect("no faults");
        assert_eq!(report.applied_ops, ops.len());
        assert_eq!(report.queued_ops, 0);
        let single = DynamicGraphStore::new(StoreConfig::default());
        single.apply_batch(&ops);
        assert_eq!(cluster.num_edges(), single.num_edges());
        for src in profile.sample_sources(64, 9) {
            assert_eq!(
                cluster.degree(src, EdgeType(0)),
                single.degree(src, EdgeType(0)),
                "degree mismatch for {src:?}"
            );
        }
    }

    #[test]
    fn traffic_accounting_counts_requests() {
        let c = small_cluster();
        let before = c.traffic();
        c.insert_edge(Edge::new(VertexId(1), VertexId(2), 1.0));
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let _ = c.sample_neighbors(VertexId(1), EdgeType(0), 10, &mut rng);
        let after = c.traffic();
        assert_eq!(after.requests, before.requests + 2);
        assert!(after.request_bytes > before.request_bytes);
        assert!(after.response_bytes >= before.response_bytes + 80);
        assert_eq!(after.failed_requests, 0);
        assert_eq!(after.degraded_responses, 0);
    }

    #[test]
    fn attributes_are_shard_local() {
        let c = small_cluster();
        let v = VertexId(77);
        c.set_vertex_attr(v, bytes::Bytes::from_static(b"feat"));
        assert_eq!(c.vertex_attr(v).as_deref(), Some(&b"feat"[..]));
        let owner = c.route(v);
        for (i, s) in c.servers().iter().enumerate() {
            let here = s.attributes.vertex(v).is_some();
            assert_eq!(here, i == owner);
        }
        assert_eq!(c.vertex_attr(VertexId(999)), None);
    }

    #[test]
    fn delete_source_routes_to_owner() {
        let c = small_cluster();
        for i in 0..100u64 {
            c.insert_edge(Edge::new(VertexId(5), VertexId(1_000 + i), 1.0));
        }
        assert_eq!(c.delete_source(VertexId(5), EdgeType(0)), 100);
        assert_eq!(c.num_edges(), 0);
        assert_eq!(c.delete_source(VertexId(5), EdgeType(0)), 0);
    }

    #[test]
    fn latency_histograms_observe_the_serving_path() {
        let c = small_cluster();
        for e in DatasetProfile::tiny().edge_stream(1).take(1_000) {
            c.insert_edge(e);
        }
        assert_eq!(c.sample_latency().count(), 0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for v in DatasetProfile::tiny().sample_sources(32, 2) {
            let _ = c.sample_neighbors(v, EdgeType(0), 10, &mut rng);
        }
        assert_eq!(c.sample_latency().count(), 32);
        let snap = c.sample_latency().snapshot();
        assert!(snap.mean_ns > 0);
        assert!(snap.p50_ns <= snap.p99_ns);
        assert!(snap.max_ns >= snap.mean_ns);
        c.apply_batch_sharded(&DatasetProfile::tiny().update_stream(3).next_batch(100))
            .expect("no faults");
        assert_eq!(c.update_latency().count(), 1);
    }

    #[test]
    fn cluster_snapshot_restores_onto_different_shard_count() {
        let src_cluster = cluster_with_shards(3);
        let profile = DatasetProfile::tiny();
        for e in profile.edge_stream(2) {
            src_cluster.insert_edge(e);
        }
        let mut bytes = Vec::new();
        src_cluster.snapshot_to(&mut bytes).expect("snapshot");
        let dst_cluster = cluster_with_shards(7);
        dst_cluster.restore_from(bytes.as_slice()).expect("restore");
        assert_eq!(dst_cluster.num_edges(), src_cluster.num_edges());
        for v in profile.sample_sources(50, 4) {
            assert_eq!(
                dst_cluster.degree(v, EdgeType(0)),
                src_cluster.degree(v, EdgeType(0)),
                "degree mismatch at {v:?}"
            );
            assert!(
                (dst_cluster.weight_sum(v, EdgeType(0)) - src_cluster.weight_sum(v, EdgeType(0)))
                    .abs()
                    < 1e-9
            );
        }
        // Edges live only on their routed shard in the new layout.
        for server in dst_cluster.servers() {
            server.topology().check_invariants().expect("invariants");
        }
    }

    #[test]
    fn partition_for_is_stable_and_covers_partitions() {
        let p = 64u32;
        let mut seen = vec![false; p as usize];
        for v in 0..10_000u64 {
            let a = partition_for(VertexId(v), p);
            assert_eq!(a, partition_for(VertexId(v), p), "stable");
            assert!(a < p);
            seen[a as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "every partition gets keys");
        // The partition hash must not collapse onto shard routing: vertices
        // in one partition still spread over shards and vice versa.
        let c = cluster_with_shards(3);
        let shards: std::collections::HashSet<usize> = (0..10_000u64)
            .filter(|v| partition_for(VertexId(*v), p) == 0)
            .map(|v| c.route(VertexId(v)))
            .collect();
        assert_eq!(shards.len(), 3);
    }

    #[test]
    fn migration_journal_lifecycle() {
        let c = small_cluster();
        let p = 8u32;
        // Idle: nothing journaled, tail errors.
        assert!(c.migration_tail(0, 0).is_err());
        c.insert_edge(Edge::new(VertexId(1), VertexId(2), 1.0));

        // Find a vertex in partition 3 and one outside it.
        let inside = (0..).find(|v| partition_for(VertexId(*v), p) == 3).unwrap();
        let outside = (0..).find(|v| partition_for(VertexId(*v), p) != 3).unwrap();

        assert_eq!(c.begin_migration(3, p).expect("arms"), 0);
        assert!(c.begin_migration(1, p).is_err(), "one at a time");
        c.insert_edge(Edge::new(VertexId(inside), VertexId(10), 1.0));
        c.insert_edge(Edge::new(VertexId(outside), VertexId(11), 1.0));
        c.apply_batch_sharded(&[
            UpdateOp::Insert(Edge::new(VertexId(inside), VertexId(12), 2.0)),
            UpdateOp::Insert(Edge::new(VertexId(outside), VertexId(13), 2.0)),
        ])
        .expect("no faults");
        assert!(c.delete_edge(VertexId(inside), VertexId(10), EdgeType(0)));

        let (ops, next) = c.migration_tail(3, 0).expect("tail");
        assert_eq!(next, 3, "only partition-3 ops are journaled");
        assert_eq!(ops.len(), 3);
        assert!(matches!(ops[2], UpdateOp::Delete { .. }));
        // Resume from a mid-stream sequence.
        let (rest, _) = c.migration_tail(3, 2).expect("tail");
        assert_eq!(rest.len(), 1);
        assert!(c.migration_tail(5, 0).is_err(), "wrong partition");

        assert_eq!(c.end_migration(3).expect("disarms"), 3);
        assert!(c.end_migration(3).is_err());
        // Disarmed: later writes are not journaled.
        assert_eq!(c.begin_migration(3, p).expect("re-arms"), 0);
        let (ops, _) = c.migration_tail(3, 0).expect("tail");
        assert!(ops.is_empty());
        c.end_migration(3).expect("disarms");
    }

    #[test]
    fn export_partition_chunks_roundtrip() {
        let c = small_cluster();
        let p = 4u32;
        for v in 0..200u64 {
            for k in 0..3u64 {
                c.insert_edge(Edge::new(
                    VertexId(v),
                    VertexId(v + 500 + k),
                    1.0 + k as f64,
                ));
            }
        }
        for partition in 0..p {
            // Stream the partition in small chunks and rebuild it.
            let rebuilt = cluster_with_shards(2);
            let mut cursor = None;
            let mut total_edges = 0u64;
            loop {
                let chunk = c
                    .export_partition(partition, p, cursor, 7)
                    .expect("in range");
                platod2gl_storage::read_snapshot(chunk.snapshot.as_slice(), |edges| {
                    for e in edges {
                        assert_eq!(partition_for(e.src, p), partition);
                        rebuilt.insert_edge(e);
                    }
                })
                .expect("valid v2");
                total_edges += chunk.edges;
                cursor = chunk.cursor;
                if chunk.done {
                    break;
                }
            }
            // Every vertex of the partition arrived with identical adjacency.
            let mut expected = 0u64;
            for v in 0..200u64 {
                if partition_for(VertexId(v), p) != partition {
                    continue;
                }
                expected += c.degree(VertexId(v), EdgeType(0)) as u64;
                assert_eq!(
                    rebuilt.degree(VertexId(v), EdgeType(0)),
                    c.degree(VertexId(v), EdgeType(0))
                );
                assert!(
                    (rebuilt.weight_sum(VertexId(v), EdgeType(0))
                        - c.weight_sum(VertexId(v), EdgeType(0)))
                    .abs()
                        < 1e-9
                );
            }
            assert_eq!(total_edges, expected);
        }
        // Key counts sum to the number of resident (src, etype) keys.
        let counts = c.partition_key_counts(p);
        assert_eq!(counts.len(), p as usize);
        assert_eq!(counts.iter().sum::<u64>(), 200);
        assert!(c.export_partition(9, 4, None, 10).is_err());
    }

    #[test]
    fn zipf_load_is_skewed_but_all_shards_used() {
        let c = cluster_with_shards(4);
        let profile = DatasetProfile::ogbn().scaled_to_edges(20_000);
        for e in profile.edge_stream(3).with_bidirected(false) {
            c.insert_edge(e);
        }
        let counts = c.shard_edge_counts();
        assert!(counts.iter().all(|&n| n > 0), "{counts:?}");
    }

    #[test]
    fn graph_version_advances_on_every_mutation_path() {
        let c = small_cluster();
        let v0 = c.graph_version();
        c.insert_edge(Edge::new(VertexId(1), VertexId(2), 1.0));
        let v1 = c.graph_version();
        assert!(v1 > v0, "routed insert must bump the version");
        // Reads leave the version alone.
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let _ = c.sample_neighbors(VertexId(1), EdgeType(0), 4, &mut rng);
        let _ = c.degree(VertexId(1), EdgeType(0));
        assert_eq!(c.graph_version(), v1, "reads must not bump the version");
        // A sharded batch bumps once.
        c.apply_batch_sharded(&[
            UpdateOp::Insert(Edge::new(VertexId(3), VertexId(4), 1.0)),
            UpdateOp::Insert(Edge::new(VertexId(5), VertexId(6), 1.0)),
        ])
        .expect("no faults");
        let v2 = c.graph_version();
        assert!(v2 > v1);
        // Deleting a present edge bumps; deleting a missing one does not.
        assert!(c.delete_edge(VertexId(1), VertexId(2), EdgeType(0)));
        let v3 = c.graph_version();
        assert!(v3 > v2);
        assert!(!c.delete_edge(VertexId(1), VertexId(2), EdgeType(0)));
        assert_eq!(c.graph_version(), v3);
        // Decay and heal paths bump too.
        c.decay_weights(0.5);
        assert!(c.graph_version() > v3);
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// A vertex owned by the given shard of `c`.
    fn vertex_on_shard(c: &Cluster, shard: usize) -> VertexId {
        (0..)
            .map(VertexId)
            .find(|v| c.route(*v) == shard)
            .expect("some vertex routes to every shard")
    }

    #[test]
    fn failed_shard_serves_degraded_samples_not_panics() {
        let c = cluster_with_shards(4);
        for e in DatasetProfile::tiny().edge_stream(7) {
            c.insert_edge(e);
        }
        c.faults().fail_shard(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let dead = vertex_on_shard(&c, 2);
        let resp = c.sample(&SampleRequest::new(dead, EdgeType(0), 8), &mut rng);
        assert!(resp.degraded, "failed shard must flag degradation");
        assert!(resp.neighbors.is_empty());
        assert_eq!(resp.shard, 2);
        assert_eq!(c.shard_health(2), ShardHealth::Failed);
        // Vertices on healthy shards still sample at full fidelity.
        let mut healthy_sampled = false;
        for v in DatasetProfile::tiny().sample_sources(64, 5) {
            if c.route(v) == 2 {
                continue;
            }
            let resp = c.sample(&SampleRequest::new(v, EdgeType(0), 8), &mut rng);
            assert!(!resp.degraded, "healthy shard degraded for {v:?}");
            assert!(resp.sources.iter().all(|s| *s == SlotSource::Sampled));
            healthy_sampled |= !resp.neighbors.is_empty();
        }
        assert!(healthy_sampled, "healthy shards must keep serving data");
        let t = c.traffic();
        assert!(t.failed_requests >= 1);
        assert!(t.degraded_responses >= 1);
    }

    #[test]
    fn updates_to_failed_shard_queue_and_drain_on_heal() {
        let c = cluster_with_shards(4);
        c.faults().fail_shard(1);
        let dead = vertex_on_shard(&c, 1);
        let live = vertex_on_shard(&c, 0);
        let ops = vec![
            UpdateOp::Insert(Edge::new(dead, VertexId(900), 1.0)),
            UpdateOp::Insert(Edge::new(dead, VertexId(901), 2.0)),
            UpdateOp::Insert(Edge::new(live, VertexId(902), 3.0)),
        ];
        let report = c
            .apply_batch_sharded(&ops)
            .expect("queueing is not an error");
        assert_eq!(report.applied_ops, 1, "live shard's op applies");
        assert_eq!(report.queued_ops, 2, "dead shard's ops queue");
        assert_eq!(c.pending_ops(1), 2);
        assert_eq!(c.degree(live, EdgeType(0)), 1);
        assert_eq!(
            c.server(1).topology().num_edges(),
            0,
            "nothing applied while failed"
        );
        let drained = c.heal_shard(1);
        assert_eq!(drained, 2);
        assert_eq!(c.pending_ops(1), 0);
        assert_eq!(c.shard_health(1), ShardHealth::Healthy);
        assert_eq!(c.degree(dead, EdgeType(0)), 2, "queued ops applied on heal");
        assert_eq!(c.traffic().queued_ops, 2);
    }

    #[test]
    fn transient_faults_are_retried_with_backoff() {
        let c = small_cluster();
        c.insert_edge(Edge::new(VertexId(1), VertexId(2), 1.0));
        let shard = c.route(VertexId(1));
        c.faults().inject_transient(shard, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let resp = c.sample(&SampleRequest::new(VertexId(1), EdgeType(0), 4), &mut rng);
        assert!(!resp.degraded, "retries must succeed within budget");
        assert_eq!(resp.neighbors.len(), 4);
        let t = c.traffic();
        assert_eq!(t.retried_requests, 2);
        assert_eq!(t.failed_requests, 0);
        assert_eq!(
            c.shard_health(shard),
            ShardHealth::Healthy,
            "recovered shard returns to healthy on success"
        );
    }

    #[test]
    fn transient_beyond_budget_fails_the_shard() {
        let c = small_cluster();
        c.insert_edge(Edge::new(VertexId(1), VertexId(2), 1.0));
        let shard = c.route(VertexId(1));
        c.faults().inject_transient(shard, 100);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let resp = c.sample(&SampleRequest::new(VertexId(1), EdgeType(0), 4), &mut rng);
        assert!(resp.degraded);
        assert_eq!(c.shard_health(shard), ShardHealth::Failed);
        assert!(c.traffic().retried_requests >= MAX_RETRIES as u64);
        c.heal_shard(shard);
        let resp = c.sample(&SampleRequest::new(VertexId(1), EdgeType(0), 4), &mut rng);
        assert!(!resp.degraded, "healed shard serves again");
    }

    #[test]
    fn panicking_batch_worker_is_captured_and_isolated() {
        let c = cluster_with_shards(4);
        let dead = vertex_on_shard(&c, 3);
        let live = vertex_on_shard(&c, 0);
        c.faults().panic_next_batch(3);
        let ops = vec![
            UpdateOp::Insert(Edge::new(dead, VertexId(900), 1.0)),
            UpdateOp::Insert(Edge::new(live, VertexId(901), 1.0)),
        ];
        let err = c.apply_batch_sharded(&ops).expect_err("panic must surface");
        match err {
            Error::ShardPanicked { shard, ref detail } => {
                assert_eq!(shard, 3);
                assert!(detail.contains("injected fault"), "{detail}");
            }
            other => panic!("wrong error: {other}"),
        }
        assert_eq!(c.shard_health(3), ShardHealth::Failed);
        assert_eq!(
            c.degree(live, EdgeType(0)),
            1,
            "other shards' partitions still applied"
        );
        // The next batch routes around the dead shard by queueing.
        let report = c
            .apply_batch_sharded(&[UpdateOp::Insert(Edge::new(dead, VertexId(902), 1.0))])
            .expect("queued, not panicked");
        assert_eq!(report.queued_ops, 1);
    }

    #[test]
    fn heal_never_strands_ops_on_a_healthy_shard() {
        // Writers race a fail/heal cycler. The invariant under test: an op
        // may only sit in the pending queue while the shard reports Failed
        // — queueing after a heal's drain (shard Healthy) would strand it
        // forever. queue_op re-checks health under the pending lock, and
        // heal_shard flips health in the critical section that observes
        // the queue empty, so the combination cannot happen.
        let c = cluster_with_shards(2);
        let writers = 4usize;
        let per_writer = 200usize;
        std::thread::scope(|s| {
            for w in 0..writers {
                let c = &c;
                s.spawn(move || {
                    for i in 0..per_writer {
                        let src = VertexId((w * per_writer + i) as u64);
                        c.insert_edge(Edge::new(src, VertexId(9_999_999), 1.0));
                    }
                });
            }
            s.spawn(|| {
                for _ in 0..50 {
                    c.faults().fail_shard(1);
                    std::thread::yield_now();
                    c.heal_shard(1);
                }
            });
        });
        for shard in 0..c.num_shards() {
            if c.shard_health(shard) == ShardHealth::Healthy {
                assert_eq!(
                    c.pending_ops(shard),
                    0,
                    "ops stranded in the queue of a healthy shard {shard}"
                );
            }
            // A late writer that observed a pre-heal failure verdict may
            // legitimately re-fail the shard and queue; one more heal must
            // deliver everything.
            c.heal_shard(shard);
        }
        assert_eq!(
            c.num_edges(),
            writers * per_writer,
            "every acked insert must land exactly once"
        );
    }

    #[test]
    fn slow_shard_still_serves() {
        let c = small_cluster();
        c.insert_edge(Edge::new(VertexId(1), VertexId(2), 1.0));
        let shard = c.route(VertexId(1));
        c.faults().slow_shard(shard, Duration::from_millis(5));
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let started = std::time::Instant::now();
        let resp = c.sample(&SampleRequest::new(VertexId(1), EdgeType(0), 2), &mut rng);
        assert!(!resp.degraded);
        assert_eq!(resp.neighbors.len(), 2);
        assert!(
            started.elapsed() >= Duration::from_millis(5),
            "slow fault must add latency"
        );
    }

    #[test]
    fn degraded_reads_fall_back_per_endpoint() {
        let c = small_cluster();
        for i in 0..10u64 {
            c.insert_edge(Edge::new(VertexId(4), VertexId(100 + i), 1.0));
        }
        let shard = c.route(VertexId(4));
        c.faults().fail_shard(shard);
        assert_eq!(c.degree(VertexId(4), EdgeType(0)), 0);
        assert_eq!(c.weight_sum(VertexId(4), EdgeType(0)), 0.0);
        assert_eq!(
            GraphStore::edge_weight(&c, VertexId(4), VertexId(100), EdgeType(0)),
            None
        );
        assert!(GraphStore::neighbors(&c, VertexId(4), EdgeType(0)).is_empty());
        assert!(c.top_k_neighbors(VertexId(4), EdgeType(0), 3).is_empty());
        let t = c.traffic();
        assert!(t.degraded_responses >= 5);
        c.heal_shard(shard);
        assert_eq!(
            c.degree(VertexId(4), EdgeType(0)),
            10,
            "data survives the outage"
        );
    }

    // ------------------------------------------------------------------
    // Config builder, unified sample API, observability
    // ------------------------------------------------------------------

    #[test]
    fn config_builder_validates() {
        assert!(ClusterConfig::builder().build().is_ok());
        let cfg = ClusterConfig::builder()
            .num_shards(6)
            .threads_per_shard(2)
            .build()
            .expect("valid");
        assert_eq!(cfg.num_shards, 6);
        assert_eq!(cfg.threads_per_shard, 2);

        let err = ClusterConfig::builder().num_shards(0).build().unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }), "{err}");
        assert!(ClusterConfig::builder()
            .threads_per_shard(0)
            .build()
            .is_err());
        let mut bad_store = StoreConfig::default();
        bad_store.tree.capacity = 2;
        assert!(ClusterConfig::builder().store(bad_store).build().is_err());
        let mut bad_alpha = StoreConfig::default();
        bad_alpha.tree.alpha = bad_alpha.tree.capacity; // >= capacity/2
        assert!(ClusterConfig::builder().store(bad_alpha).build().is_err());
        let bad_dir = StoreConfig {
            directory_shards: 0,
            ..Default::default()
        };
        assert!(ClusterConfig::builder().store(bad_dir).build().is_err());
    }

    #[test]
    fn self_loop_policy_pads_degraded_samples() {
        let c = cluster_with_shards(4);
        c.faults().fail_shard(2);
        let dead = vertex_on_shard(&c, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let req = SampleRequest::new(dead, EdgeType(0), 5).on_degraded(DegradedPolicy::SelfLoop);
        let resp = c.sample(&req, &mut rng);
        assert!(resp.degraded);
        assert_eq!(resp.neighbors, vec![dead; 5]);
        assert_eq!(resp.sources, vec![SlotSource::SelfLoop; 5]);
    }

    #[test]
    fn obs_registry_aggregates_cluster_and_storage_metrics() {
        let c = small_cluster();
        for e in DatasetProfile::tiny().edge_stream(1).take(500) {
            c.insert_edge(e);
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for v in DatasetProfile::tiny().sample_sources(8, 3) {
            let _ = c.sample_neighbors(v, EdgeType(0), 4, &mut rng);
        }
        c.heal_shard(0);
        let snap = c.obs().snapshot();
        // Cluster-side counters mirror traffic().
        assert_eq!(snap.counter("cluster.requests"), Some(c.traffic().requests));
        assert_eq!(snap.counter("cluster.heals"), Some(1));
        // Storage-side counters from all shards aggregate into the same
        // registry (500 routed inserts → 500 leaf ops across shards).
        assert!(snap.counter("samtree.leaf_ops").unwrap() >= 500);
        assert_eq!(snap.counter("samtree.sample_requests"), Some(8));
        // Serving latency is exposed as a histogram.
        let (_, hist) = snap
            .histograms
            .iter()
            .find(|(name, _)| name == "cluster.sample_latency_ns")
            .expect("sample latency histogram registered");
        assert_eq!(hist.count, 8);
        // The graph-version gauge tracks the monotone counter.
        assert_eq!(
            snap.gauge("cluster.graph_version"),
            Some(c.graph_version() as i64)
        );
        // Spans from heal_shard land in the tracer ring.
        assert!(snap.spans.iter().any(|s| s.name == "cluster.heal"));
    }

    #[test]
    fn slow_request_is_captured_with_full_span_tree() {
        // Zero threshold: every request qualifies, no timing dependence.
        let c = Cluster::new(
            ClusterConfig::builder()
                .num_shards(3)
                .slow_op_threshold(Duration::ZERO)
                .build()
                .expect("valid config"),
        );
        for e in DatasetProfile::tiny().edge_stream(4).take(200) {
            c.insert_edge(e);
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let v = DatasetProfile::tiny()
            .sample_sources(1, 9)
            .pop()
            .expect("a source");
        let resp = c.sample(
            &SampleRequest::new(v, EdgeType(0), 4).with_trace_id(0xC0FFEE),
            &mut rng,
        );
        let slow = c.obs().slow_log();
        assert_eq!(slow.captured(), 1);
        assert_eq!(c.obs().snapshot().counter("obs.slow_ops"), Some(1));
        let captures = slow.recent();
        let cap = &captures[0];
        assert_eq!(cap.op, "cluster.sample");
        assert_eq!(cap.trace_id, Some(0xC0FFEE));
        assert!(
            cap.detail.contains(&format!("vertex={}", v.raw()))
                && cap.detail.contains(&format!("shard={}", resp.shard)),
            "provenance missing: {}",
            cap.detail
        );
        // The span tree must cover cluster -> shard -> samtree, correctly
        // parent-linked (entry order, root first).
        let names: Vec<&str> = cap.spans.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "cluster.sample",
                "shard.sample",
                "samtree.sample",
                "samtree.fts_draw"
            ],
            "expected the full dispatch chain"
        );
        assert_eq!(cap.spans[0].parent, None);
        for pair in cap.spans.windows(2) {
            assert_eq!(pair[1].parent, Some(pair[0].id), "chain is linked");
        }
    }

    #[test]
    fn fast_requests_are_not_captured() {
        // Default threshold (100ms) is far above an in-process sample.
        let c = small_cluster();
        for e in DatasetProfile::tiny().edge_stream(5).take(100) {
            c.insert_edge(e);
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        for v in DatasetProfile::tiny().sample_sources(8, 2) {
            let _ = c.sample(&SampleRequest::new(v, EdgeType(0), 4), &mut rng);
        }
        assert_eq!(c.obs().slow_log().captured(), 0);
        assert_eq!(c.obs().snapshot().counter("obs.slow_ops"), Some(0));
    }

    #[test]
    fn memory_breakdown_refreshes_gauges_and_adds_up() {
        let c = small_cluster();
        for e in DatasetProfile::tiny().edge_stream(6).take(400) {
            c.insert_edge(e);
        }
        c.set_vertex_attr(VertexId(1), bytes::Bytes::from(vec![0u8; 4096]));
        let mem = c.memory_breakdown();
        assert_eq!(mem.per_shard.len(), c.num_shards());
        assert_eq!(mem.samtree_bytes, c.total_topology_bytes());
        assert_eq!(
            mem.leaf_bytes + mem.internal_bytes + mem.directory_bytes,
            mem.samtree_bytes,
            "split must be exact"
        );
        assert!(mem.attr_bytes >= 4096);
        let snap = c.obs().snapshot();
        assert_eq!(
            snap.gauge("graph.mem.samtree_bytes"),
            Some(mem.samtree_bytes as i64)
        );
        assert_eq!(
            snap.gauge("graph.mem.attr_bytes"),
            Some(mem.attr_bytes as i64)
        );
    }
}
