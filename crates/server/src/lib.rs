//! # Simulated distributed deployment
//!
//! The paper evaluates on a 74-server cluster, 54 of which store graph data
//! (Sec. VII-A). Under hash-by-source partitioning each graph server owns a
//! disjoint set of source vertices and serves updates/samples for them
//! independently — there is no cross-server coordination on the storage
//! path. That independence is what makes a single-process simulation
//! faithful: a [`Cluster`] holds `S` [`GraphServer`] shards running the real
//! storage engine, routes every request by source-vertex hash exactly as the
//! production router would, and counts the request/response bytes that
//! would have crossed the network.
//!
//! [`Cluster`] itself implements [`GraphStore`], so the operator layer and
//! every benchmark can run against "a cluster" without changes.

mod latency;

pub use latency::LatencyHistogram;

use platod2gl_graph::{Edge, EdgeType, GraphStore, UpdateOp, VertexId};
use platod2gl_storage::{AttributeStore, DynamicGraphStore, StoreConfig};
use rand::RngCore;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cluster-level configuration.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Number of simulated graph servers.
    pub num_shards: usize,
    /// Storage configuration applied to every shard.
    pub store: StoreConfig,
    /// Worker threads used inside each shard for batched updates.
    pub threads_per_shard: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            num_shards: 4,
            store: StoreConfig::default(),
            threads_per_shard: 1,
        }
    }
}

/// One simulated graph server: the storage engine plus its attribute store.
pub struct GraphServer {
    shard_id: usize,
    topology: DynamicGraphStore,
    attributes: AttributeStore,
}

impl GraphServer {
    /// This server's shard index.
    pub fn shard_id(&self) -> usize {
        self.shard_id
    }

    /// The server's topology store.
    pub fn topology(&self) -> &DynamicGraphStore {
        &self.topology
    }

    /// The server's attribute store.
    pub fn attributes(&self) -> &AttributeStore {
        &self.attributes
    }
}

/// Network-traffic accounting (what the simulated RPCs would have cost).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// RPCs issued to shards.
    pub requests: u64,
    /// Bytes sent to shards (ops, query vertices).
    pub request_bytes: u64,
    /// Bytes returned from shards (sampled IDs, weights).
    pub response_bytes: u64,
}

/// A routing facade over `S` graph servers.
pub struct Cluster {
    config: ClusterConfig,
    servers: Vec<GraphServer>,
    requests: AtomicU64,
    request_bytes: AtomicU64,
    response_bytes: AtomicU64,
    /// Latency of `sample_neighbors` requests.
    sample_latency: LatencyHistogram,
    /// Latency of batched update requests.
    update_latency: LatencyHistogram,
}

/// splitmix64, the shard router's hash.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// On-wire size model: one edge op is (src, dst, weight, etype) = 26 bytes.
const OP_BYTES: u64 = 26;
/// A sampled-neighbor response entry is a vertex ID.
const ID_BYTES: u64 = 8;

impl Cluster {
    /// Boot a cluster.
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.num_shards >= 1);
        Self {
            servers: (0..config.num_shards)
                .map(|shard_id| GraphServer {
                    shard_id,
                    topology: DynamicGraphStore::new(config.store),
                    attributes: AttributeStore::new(),
                })
                .collect(),
            config,
            requests: AtomicU64::new(0),
            request_bytes: AtomicU64::new(0),
            response_bytes: AtomicU64::new(0),
            sample_latency: LatencyHistogram::new(),
            update_latency: LatencyHistogram::new(),
        }
    }

    /// Boot with defaults (4 shards).
    pub fn with_defaults() -> Self {
        Self::new(ClusterConfig::default())
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.servers.len()
    }

    /// Hash-by-source routing: the shard owning vertex `v`'s out-edges.
    pub fn route(&self, v: VertexId) -> usize {
        (mix(v.raw()) % self.servers.len() as u64) as usize
    }

    /// Access a shard directly (diagnostics; production clients only talk
    /// through the router).
    pub fn server(&self, shard: usize) -> &GraphServer {
        &self.servers[shard]
    }

    /// All shards.
    pub fn servers(&self) -> &[GraphServer] {
        &self.servers
    }

    fn shard_for(&self, v: VertexId) -> &GraphServer {
        &self.servers[self.route(v)]
    }

    fn tally(&self, requests: u64, req_bytes: u64, resp_bytes: u64) {
        self.requests.fetch_add(requests, Ordering::Relaxed);
        self.request_bytes.fetch_add(req_bytes, Ordering::Relaxed);
        self.response_bytes.fetch_add(resp_bytes, Ordering::Relaxed);
    }

    /// Latency histogram of neighbor-sampling requests.
    pub fn sample_latency(&self) -> &LatencyHistogram {
        &self.sample_latency
    }

    /// Latency histogram of batched update requests.
    pub fn update_latency(&self) -> &LatencyHistogram {
        &self.update_latency
    }

    /// Snapshot of simulated network traffic.
    pub fn traffic(&self) -> TrafficStats {
        TrafficStats {
            requests: self.requests.load(Ordering::Relaxed),
            request_bytes: self.request_bytes.load(Ordering::Relaxed),
            response_bytes: self.response_bytes.load(Ordering::Relaxed),
        }
    }

    /// Per-shard edge counts (load-balance diagnostics).
    pub fn shard_edge_counts(&self) -> Vec<usize> {
        self.servers.iter().map(|s| s.topology.num_edges()).collect()
    }

    /// Set a vertex's feature bytes on its owning shard.
    pub fn set_vertex_attr(&self, v: VertexId, data: bytes::Bytes) {
        self.tally(1, ID_BYTES + data.len() as u64, 0);
        self.shard_for(v).attributes.set_vertex(v, data);
    }

    /// Fetch a vertex's feature bytes from its owning shard.
    pub fn vertex_attr(&self, v: VertexId) -> Option<bytes::Bytes> {
        let got = self.shard_for(v).attributes.vertex(v);
        self.tally(1, ID_BYTES, got.as_ref().map_or(0, |b| b.len() as u64));
        got
    }

    /// Batched update across shards: ops are partitioned by owning shard,
    /// each shard applies its partition with the PALM batch updater, all
    /// shards in parallel (they are independent machines in production).
    pub fn apply_batch_sharded(&self, ops: &[UpdateOp]) {
        let started = std::time::Instant::now();
        let mut per_shard: Vec<Vec<UpdateOp>> = vec![Vec::new(); self.servers.len()];
        for op in ops {
            per_shard[self.route(op.src())].push(*op);
        }
        self.tally(
            per_shard.iter().filter(|p| !p.is_empty()).count() as u64,
            ops.len() as u64 * OP_BYTES,
            0,
        );
        crossbeam::thread::scope(|s| {
            for (shard, shard_ops) in self.servers.iter().zip(&per_shard) {
                if shard_ops.is_empty() {
                    continue;
                }
                let threads = self.config.threads_per_shard;
                s.spawn(move |_| {
                    shard
                        .topology
                        .apply_batch_parallel(shard_ops, threads.max(1));
                });
            }
        })
        .expect("shard worker panicked");
        self.update_latency.record(started.elapsed());
    }

    /// Time-decay sweep across all shards (each shard in sequence; shards
    /// are independent so production runs them concurrently).
    pub fn decay_weights(&self, factor: f64) {
        for server in &self.servers {
            server.topology.decay_weights(factor);
        }
    }

    /// The `k` heaviest out-neighbors of `v`, heaviest first.
    pub fn top_k_neighbors(&self, v: VertexId, etype: EdgeType, k: usize) -> Vec<(VertexId, f64)> {
        self.tally(1, ID_BYTES + 8, (k as u64) * (ID_BYTES + 8));
        self.shard_for(v).topology.top_k_neighbors(v, etype, k)
    }

    /// Drop a source vertex's whole out-neighborhood on its owning shard
    /// (account deletion). Returns the number of edges removed.
    pub fn delete_source(&self, v: VertexId, etype: EdgeType) -> usize {
        self.tally(1, ID_BYTES, 8);
        self.shard_for(v).topology.delete_source(v, etype)
    }

    /// Snapshot the whole cluster's topology into one stream. The format is
    /// shard-count independent, so a snapshot taken on 4 shards restores
    /// onto 8 (re-sharding without re-partitioning tools — the operation
    /// static stores need a full redeploy for).
    pub fn snapshot_to(&self, w: impl std::io::Write) -> std::io::Result<()> {
        let mut entries = Vec::new();
        for server in &self.servers {
            entries.extend(server.topology.export_adjacency());
        }
        platod2gl_storage::write_snapshot(w, &entries)
    }

    /// Restore a cluster snapshot, routing every source vertex to its
    /// owning shard and bulk-loading each shard's trees.
    pub fn restore_from(&self, r: impl std::io::Read) -> std::io::Result<()> {
        platod2gl_storage::read_snapshot(r, |batch| {
            let mut per_shard: Vec<Vec<Edge>> = vec![Vec::new(); self.servers.len()];
            for e in batch {
                per_shard[self.route(e.src)].push(e);
            }
            for (server, edges) in self.servers.iter().zip(per_shard) {
                if !edges.is_empty() {
                    server.topology.bulk_build(edges);
                }
            }
        })
    }

    /// Aggregate topology memory across shards (Table IV at cluster scope).
    pub fn total_topology_bytes(&self) -> usize {
        self.servers
            .iter()
            .map(|s| s.topology.topology_bytes())
            .sum()
    }
}

impl GraphStore for Cluster {
    fn name(&self) -> &'static str {
        "PlatoD2GL-cluster"
    }

    fn insert_edge(&self, edge: Edge) {
        self.tally(1, OP_BYTES, 0);
        self.shard_for(edge.src).topology.insert_edge(edge);
    }

    fn delete_edge(&self, src: VertexId, dst: VertexId, etype: EdgeType) -> bool {
        self.tally(1, OP_BYTES, 1);
        self.shard_for(src).topology.delete_edge(src, dst, etype)
    }

    fn update_weight(&self, edge: Edge) -> bool {
        self.tally(1, OP_BYTES, 1);
        self.shard_for(edge.src).topology.update_weight(edge)
    }

    fn apply_batch(&self, ops: &[UpdateOp]) {
        self.apply_batch_sharded(ops);
    }

    fn degree(&self, v: VertexId, etype: EdgeType) -> usize {
        self.tally(1, ID_BYTES, 8);
        self.shard_for(v).topology.degree(v, etype)
    }

    fn weight_sum(&self, v: VertexId, etype: EdgeType) -> f64 {
        self.tally(1, ID_BYTES, 8);
        self.shard_for(v).topology.weight_sum(v, etype)
    }

    fn edge_weight(&self, src: VertexId, dst: VertexId, etype: EdgeType) -> Option<f64> {
        self.tally(1, 2 * ID_BYTES, 8);
        self.shard_for(src).topology.edge_weight(src, dst, etype)
    }

    fn sample_neighbors(
        &self,
        v: VertexId,
        etype: EdgeType,
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<VertexId> {
        let started = std::time::Instant::now();
        let out = self.shard_for(v).topology.sample_neighbors(v, etype, k, rng);
        self.tally(1, ID_BYTES + 8, out.len() as u64 * ID_BYTES);
        self.sample_latency.record(started.elapsed());
        out
    }

    fn neighbors(&self, v: VertexId, etype: EdgeType) -> Vec<(VertexId, f64)> {
        let out = self.shard_for(v).topology.neighbors(v, etype);
        self.tally(1, ID_BYTES, out.len() as u64 * (ID_BYTES + 8));
        out
    }

    fn num_edges(&self) -> usize {
        self.servers.iter().map(|s| s.topology.num_edges()).sum()
    }

    fn topology_bytes(&self) -> usize {
        self.total_topology_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platod2gl_graph::{conformance, DatasetProfile};

    fn small_cluster() -> Cluster {
        Cluster::new(ClusterConfig {
            num_shards: 3,
            ..Default::default()
        })
    }

    #[test]
    fn conformance_suite() {
        conformance::run_all(small_cluster);
    }

    #[test]
    fn routing_is_stable_and_covers_shards() {
        let c = Cluster::new(ClusterConfig {
            num_shards: 8,
            ..Default::default()
        });
        let mut seen = [false; 8];
        for v in 0..1_000u64 {
            let r = c.route(VertexId(v));
            assert_eq!(r, c.route(VertexId(v)), "routing must be deterministic");
            seen[r] = true;
        }
        assert!(seen.iter().all(|&s| s), "all shards should receive load");
    }

    #[test]
    fn edges_land_on_owner_shards_only() {
        let c = small_cluster();
        for e in DatasetProfile::tiny().edge_stream(1) {
            c.insert_edge(e);
        }
        let total: usize = c.shard_edge_counts().iter().sum();
        assert_eq!(total, c.num_edges());
        // Every source's edges must be on exactly its routed shard.
        for src in DatasetProfile::tiny().sample_sources(50, 2) {
            let owner = c.route(src);
            for (i, server) in c.servers().iter().enumerate() {
                let deg = server.topology.degree(src, EdgeType(0));
                if i == owner {
                    continue;
                }
                assert_eq!(deg, 0, "shard {i} holds foreign vertex {src:?}");
            }
        }
    }

    #[test]
    fn sharded_batches_match_single_store() {
        let profile = DatasetProfile::tiny();
        let ops = profile.update_stream(5).next_batch(10_000);
        let cluster = small_cluster();
        cluster.apply_batch_sharded(&ops);
        let single = DynamicGraphStore::new(StoreConfig::default());
        single.apply_batch(&ops);
        assert_eq!(cluster.num_edges(), single.num_edges());
        for src in profile.sample_sources(64, 9) {
            assert_eq!(
                cluster.degree(src, EdgeType(0)),
                single.degree(src, EdgeType(0)),
                "degree mismatch for {src:?}"
            );
        }
    }

    #[test]
    fn traffic_accounting_counts_requests() {
        let c = small_cluster();
        let before = c.traffic();
        c.insert_edge(Edge::new(VertexId(1), VertexId(2), 1.0));
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let _ = c.sample_neighbors(VertexId(1), EdgeType(0), 10, &mut rng);
        let after = c.traffic();
        assert_eq!(after.requests, before.requests + 2);
        assert!(after.request_bytes > before.request_bytes);
        assert!(after.response_bytes >= before.response_bytes + 80);
    }

    #[test]
    fn attributes_are_shard_local() {
        let c = small_cluster();
        let v = VertexId(77);
        c.set_vertex_attr(v, bytes::Bytes::from_static(b"feat"));
        assert_eq!(c.vertex_attr(v).as_deref(), Some(&b"feat"[..]));
        let owner = c.route(v);
        for (i, s) in c.servers().iter().enumerate() {
            let here = s.attributes.vertex(v).is_some();
            assert_eq!(here, i == owner);
        }
        assert_eq!(c.vertex_attr(VertexId(999)), None);
    }

    #[test]
    fn delete_source_routes_to_owner() {
        let c = small_cluster();
        for i in 0..100u64 {
            c.insert_edge(Edge::new(VertexId(5), VertexId(1_000 + i), 1.0));
        }
        assert_eq!(c.delete_source(VertexId(5), EdgeType(0)), 100);
        assert_eq!(c.num_edges(), 0);
        assert_eq!(c.delete_source(VertexId(5), EdgeType(0)), 0);
    }

    #[test]
    fn latency_histograms_observe_the_serving_path() {
        let c = small_cluster();
        for e in DatasetProfile::tiny().edge_stream(1).take(1_000) {
            c.insert_edge(e);
        }
        assert_eq!(c.sample_latency().count(), 0);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for v in DatasetProfile::tiny().sample_sources(32, 2) {
            let _ = c.sample_neighbors(v, EdgeType(0), 10, &mut rng);
        }
        assert_eq!(c.sample_latency().count(), 32);
        let (_, mean, p50, p99) = c.sample_latency().snapshot();
        assert!(mean > std::time::Duration::ZERO);
        assert!(p50 <= p99);
        c.apply_batch_sharded(&DatasetProfile::tiny().update_stream(3).next_batch(100));
        assert_eq!(c.update_latency().count(), 1);
    }

    #[test]
    fn cluster_snapshot_restores_onto_different_shard_count() {
        let src_cluster = Cluster::new(ClusterConfig {
            num_shards: 3,
            ..Default::default()
        });
        let profile = DatasetProfile::tiny();
        for e in profile.edge_stream(2) {
            src_cluster.insert_edge(e);
        }
        let mut bytes = Vec::new();
        src_cluster.snapshot_to(&mut bytes).expect("snapshot");
        let dst_cluster = Cluster::new(ClusterConfig {
            num_shards: 7,
            ..Default::default()
        });
        dst_cluster.restore_from(bytes.as_slice()).expect("restore");
        assert_eq!(dst_cluster.num_edges(), src_cluster.num_edges());
        for v in profile.sample_sources(50, 4) {
            assert_eq!(
                dst_cluster.degree(v, EdgeType(0)),
                src_cluster.degree(v, EdgeType(0)),
                "degree mismatch at {v:?}"
            );
            assert!(
                (dst_cluster.weight_sum(v, EdgeType(0))
                    - src_cluster.weight_sum(v, EdgeType(0)))
                .abs()
                    < 1e-9
            );
        }
        // Edges live only on their routed shard in the new layout.
        for server in dst_cluster.servers() {
            server.topology().check_invariants().expect("invariants");
        }
    }

    #[test]
    fn zipf_load_is_skewed_but_all_shards_used() {
        let c = Cluster::new(ClusterConfig {
            num_shards: 4,
            ..Default::default()
        });
        let profile = DatasetProfile::ogbn().scaled_to_edges(20_000);
        for e in profile.edge_stream(3).with_bidirected(false) {
            c.insert_edge(e);
        }
        let counts = c.shard_edge_counts();
        assert!(counts.iter().all(|&n| n > 0), "{counts:?}");
    }
}
