//! Record-level wire encoding for the graph-service RPC protocol.
//!
//! This module is the **single source of truth for on-wire record sizes**:
//! the rpc crate's frame codec (`platod2gl-rpc`) encodes requests and
//! responses with these functions, and [`Cluster`](crate::Cluster)'s
//! simulated-traffic accounting (`cluster.request_bytes` /
//! `cluster.response_bytes`) is computed from the same functions — so an
//! in-process run and a remote run over real sockets report comparable
//! `net.*` numbers instead of drifting hand-estimates.
//!
//! Records are little-endian and fixed-layout (no varints): a
//! [`SampleRequest`] record is always [`SAMPLE_REQUEST_BYTES`] bytes, an
//! [`UpdateOp`] record always [`UPDATE_OP_BYTES`]. The *frame* layer —
//! length prefix, protocol version byte, message kind, CRC32C trailer —
//! lives in `platod2gl-rpc::codec`; its fixed overhead is
//! [`FRAME_OVERHEAD_BYTES`] and is included by the `*_frame_bytes` sizing
//! helpers below.
//!
//! ## Record layouts
//!
//! ```text
//! SampleRequest  (32 B): vertex u64 | etype u16 | fanout u32 | policy u8
//!                        | trace_present u8 | trace_id u64 | rng_seed u64
//! SampleResponse (9 + 9n B): flags u8 (bit0 = degraded) | shard u32 | n u32
//!                        | n x (neighbor u64 | source u8)
//! UpdateOp       (35 B): kind u8 | src u64 | dst u64 | etype u16 | weight f64
//!                        | ts u64
//! TxnOp          (35 B): kind u8 | src u64 | dst u64 | etype u16 | weight f64
//!                        | ts u64
//! TimeWindowBlk  (1 + 17n B): tag u8 = 1 | n x (present u8 | min_ts u64
//!                        | max_ts u64)
//! ```
//!
//! The `rng_seed` field makes remote sampling deterministic: the client
//! draws exactly one `u64` from its RNG per request and ships it; the
//! server seeds a fresh `StdRng` from it. The in-process
//! [`GraphService`](crate::GraphService) implementation performs the same
//! derivation, so a trainer produces identical draws against either.
//!
//! The time-window block is an **optional trailer** after a sample batch's
//! fixed records: a batch with no windowed request omits it entirely, so
//! the encoding is byte-identical to the pre-temporal protocol and old
//! clients/servers interoperate unchanged.

use crate::request::{DegradedPolicy, SampleRequest, SampleResponse, SlotSource};
use platod2gl_graph::{Edge, EdgeType, ShardHealth, TimeWindow, TxnOp, UpdateOp, VertexId};
use platod2gl_obs::TraceContext;
use std::fmt;

/// Fixed per-frame overhead of the rpc frame layer at the current (v2)
/// protocol: 4-byte length prefix, 1 version byte, 1 kind byte, 8-byte
/// req_id, 4-byte CRC32C trailer. Legacy v1 frames (no req_id) are 8
/// bytes lighter ([`FRAME_OVERHEAD_V1_BYTES`]); traffic accounting sizes
/// against the protocol current clients speak.
pub const FRAME_OVERHEAD_BYTES: u64 = 18;

/// Fixed per-frame overhead of a legacy v1 frame (no req_id field).
pub const FRAME_OVERHEAD_V1_BYTES: u64 = 10;

/// Encoded size of one [`SampleRequest`] record.
pub const SAMPLE_REQUEST_BYTES: u64 = 32;

/// Encoded size of one [`UpdateOp`] record.
pub const UPDATE_OP_BYTES: u64 = 35;

/// Encoded size of one time-window block entry (present flag u8 + min_ts
/// u64 + max_ts u64).
pub const TIME_WINDOW_ENTRY_BYTES: u64 = 17;

/// Tag byte opening a time-window block trailer.
pub const TIME_WINDOW_BLOCK_TAG: u8 = 1;

/// Encoded size of one optional [`TraceContext`]: present flag u8 +
/// trace_id u64 + parent_span u64, always 17 bytes so batch headers stay
/// fixed-layout.
pub const TRACE_CTX_BYTES: u64 = 17;

/// Fixed trailer every v2 *reply* frame carries between payload and CRC:
/// queue_us u32 + service_us u32 — the server-side timing echo that lets a
/// client split observed round-trip latency into network vs. server
/// queueing vs. service time. Legacy v1 replies do not carry it.
pub const REPLY_TIMING_ECHO_BYTES: u64 = 8;

/// Fixed body prefix of a sample-batch request frame: deadline u32 +
/// trace context ([`TRACE_CTX_BYTES`]) + request count u32.
pub const SAMPLE_BATCH_HEADER_BYTES: u64 = 4 + TRACE_CTX_BYTES + 4;

/// Fixed body prefix of an update-batch request frame: deadline u32 +
/// trace context ([`TRACE_CTX_BYTES`]) + op count u32.
pub const UPDATE_BATCH_HEADER_BYTES: u64 = 4 + TRACE_CTX_BYTES + 4;

/// Encoded size of one [`SampleResponse`] record with `n` neighbor slots.
pub fn sample_response_bytes(n: usize) -> u64 {
    9 + 9 * n as u64
}

/// Full on-wire size of a sample request frame carrying `count` requests
/// (no time-window trailer; see [`time_window_block_bytes`]).
pub fn sample_request_frame_bytes(count: usize) -> u64 {
    FRAME_OVERHEAD_BYTES + SAMPLE_BATCH_HEADER_BYTES + count as u64 * SAMPLE_REQUEST_BYTES
}

/// Extra on-wire bytes of the optional time-window trailer when at least
/// one request in a `count`-request batch carries a window.
pub fn time_window_block_bytes(count: usize) -> u64 {
    1 + count as u64 * TIME_WINDOW_ENTRY_BYTES
}

/// Full on-wire size of a sample reply frame whose responses carry the
/// given neighbor-slot counts (v2: includes the timing echo trailer).
pub fn sample_response_frame_bytes(neighbor_counts: impl IntoIterator<Item = usize>) -> u64 {
    FRAME_OVERHEAD_BYTES
        + REPLY_TIMING_ECHO_BYTES
        + 4
        + neighbor_counts
            .into_iter()
            .map(sample_response_bytes)
            .sum::<u64>()
}

/// Full on-wire size of an update request frame carrying `ops` ops.
pub fn update_frame_bytes(ops: usize) -> u64 {
    FRAME_OVERHEAD_BYTES + UPDATE_BATCH_HEADER_BYTES + ops as u64 * UPDATE_OP_BYTES
}

/// Full on-wire size of an update reply frame (applied u64 + queued u64 +
/// timing echo).
pub const UPDATE_REPLY_FRAME_BYTES: u64 = FRAME_OVERHEAD_BYTES + 16 + REPLY_TIMING_ECHO_BYTES;

/// Encoded size of one [`TxnOp`] record (same fixed 35-byte layout as
/// [`UpdateOp`]: vertex-granular ops carry a zero dst/weight/ts).
pub const TXN_OP_BYTES: u64 = 35;

/// Fixed body prefix of a txn-apply frame: txn_id u64 + trace context
/// ([`TRACE_CTX_BYTES`]) + op count u32.
pub const TXN_BATCH_HEADER_BYTES: u64 = 8 + TRACE_CTX_BYTES + 4;

/// Full on-wire size of a txn-apply frame carrying `ops` typed ops.
pub fn txn_frame_bytes(ops: usize) -> u64 {
    FRAME_OVERHEAD_BYTES + TXN_BATCH_HEADER_BYTES + ops as u64 * TXN_OP_BYTES
}

/// Full on-wire size of a committed txn reply frame (status u8 + txn_id
/// u64 + ops_applied u64 + graph_version u64 + deduped u8 + timing echo).
/// Rejection replies are larger (they carry violations); the traffic model
/// uses the commit size, the overwhelmingly common case.
pub const TXN_REPLY_FRAME_BYTES: u64 = FRAME_OVERHEAD_BYTES + 26 + REPLY_TIMING_ECHO_BYTES;

/// A record failed to decode. The frame layer has already verified the
/// CRC when this is raised, so a `WireError` means a peer speaking a
/// different (or corrupted-at-source) record layout, not line noise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the record did.
    Truncated,
    /// An enum tag byte held an unknown value.
    BadTag { what: &'static str, tag: u8 },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "record truncated"),
            WireError::BadTag { what, tag } => write!(f, "bad {what} tag {tag:#04x}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Bounds-checked little-endian cursor over an encoded buffer.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the whole buffer has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A `count` read from the wire, validated against the bytes actually
    /// present: `count * min_record_bytes` must fit in the remainder.
    /// Guards every collection allocation, so a forged count in an
    /// otherwise CRC-valid frame cannot drive an oversized `Vec` reserve.
    pub fn count(&mut self, min_record_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_record_bytes) > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }
}

pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    buf.push(u8::from(v.is_some()));
    put_u64(buf, v.unwrap_or(0));
}

fn get_opt_u64(r: &mut Reader<'_>) -> Result<Option<u64>, WireError> {
    let present = match r.u8()? {
        0 => false,
        1 => true,
        tag => {
            return Err(WireError::BadTag {
                what: "option",
                tag,
            })
        }
    };
    let v = r.u64()?;
    Ok(present.then_some(v))
}

/// Encode an optional trace id (present flag + value, 9 bytes).
pub fn put_trace_id(buf: &mut Vec<u8>, trace_id: Option<u64>) {
    put_opt_u64(buf, trace_id);
}

/// Decode an optional trace id.
pub fn get_trace_id(r: &mut Reader<'_>) -> Result<Option<u64>, WireError> {
    get_opt_u64(r)
}

/// Encode an optional [`TraceContext`] (always [`TRACE_CTX_BYTES`]:
/// present flag u8 + trace_id u64 + parent_span u64, zeros when absent).
pub fn put_trace_ctx(buf: &mut Vec<u8>, ctx: Option<TraceContext>) {
    let before = buf.len();
    buf.push(u8::from(ctx.is_some()));
    put_u64(buf, ctx.map_or(0, |c| c.trace_id));
    put_u64(buf, ctx.map_or(0, |c| c.parent_span));
    debug_assert_eq!((buf.len() - before) as u64, TRACE_CTX_BYTES);
}

/// Decode an optional [`TraceContext`].
pub fn get_trace_ctx(r: &mut Reader<'_>) -> Result<Option<TraceContext>, WireError> {
    let present = match r.u8()? {
        0 => false,
        1 => true,
        tag => {
            return Err(WireError::BadTag {
                what: "trace ctx",
                tag,
            })
        }
    };
    let trace_id = r.u64()?;
    let parent_span = r.u64()?;
    Ok(present.then_some(TraceContext {
        trace_id,
        parent_span,
    }))
}

/// Encode a length-prefixed UTF-8 string (u32 len + bytes). Used by the
/// introspection payloads (span/metric export), whose records — unlike the
/// data-plane ones — carry names and details.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Decode a length-prefixed UTF-8 string; invalid UTF-8 is a bad record.
pub fn get_str(r: &mut Reader<'_>) -> Result<String, WireError> {
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return Err(WireError::Truncated);
    }
    let bytes = r.take(n)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadTag {
        what: "utf8 string",
        tag: 0,
    })
}

fn policy_tag(p: DegradedPolicy) -> u8 {
    match p {
        DegradedPolicy::EmptySet => 0,
        DegradedPolicy::SelfLoop => 1,
    }
}

fn policy_from(tag: u8) -> Result<DegradedPolicy, WireError> {
    match tag {
        0 => Ok(DegradedPolicy::EmptySet),
        1 => Ok(DegradedPolicy::SelfLoop),
        tag => Err(WireError::BadTag {
            what: "degraded policy",
            tag,
        }),
    }
}

fn source_tag(s: SlotSource) -> u8 {
    match s {
        SlotSource::Sampled => 0,
        SlotSource::SelfLoop => 1,
    }
}

fn source_from(tag: u8) -> Result<SlotSource, WireError> {
    match tag {
        0 => Ok(SlotSource::Sampled),
        1 => Ok(SlotSource::SelfLoop),
        tag => Err(WireError::BadTag {
            what: "slot source",
            tag,
        }),
    }
}

/// Encode one shard health as a byte.
pub fn health_tag(h: ShardHealth) -> u8 {
    match h {
        ShardHealth::Healthy => 0,
        ShardHealth::Degraded => 1,
        ShardHealth::Failed => 2,
    }
}

/// Decode one shard health byte.
pub fn health_from(tag: u8) -> Result<ShardHealth, WireError> {
    match tag {
        0 => Ok(ShardHealth::Healthy),
        1 => Ok(ShardHealth::Degraded),
        2 => Ok(ShardHealth::Failed),
        tag => Err(WireError::BadTag {
            what: "shard health",
            tag,
        }),
    }
}

/// Encode one [`SampleRequest`] record plus its per-request RNG seed.
pub fn put_sample_request(buf: &mut Vec<u8>, req: &SampleRequest, rng_seed: u64) {
    let before = buf.len();
    put_u64(buf, req.vertex.raw());
    put_u16(buf, req.etype.0);
    put_u32(buf, req.fanout as u32);
    buf.push(policy_tag(req.on_degraded));
    put_opt_u64(buf, req.trace_id);
    put_u64(buf, rng_seed);
    debug_assert_eq!((buf.len() - before) as u64, SAMPLE_REQUEST_BYTES);
}

/// Decode one [`SampleRequest`] record; returns the request and its seed.
/// The optional time window rides in the batch trailer
/// ([`get_time_window_block`]), not the fixed record, so it decodes as
/// `None` here; the batch decoder patches it in.
pub fn get_sample_request(r: &mut Reader<'_>) -> Result<(SampleRequest, u64), WireError> {
    let vertex = VertexId(r.u64()?);
    let etype = EdgeType(r.u16()?);
    let fanout = r.u32()? as usize;
    let on_degraded = policy_from(r.u8()?)?;
    let trace_id = get_opt_u64(r)?;
    let rng_seed = r.u64()?;
    Ok((
        SampleRequest {
            vertex,
            etype,
            fanout,
            on_degraded,
            trace_id,
            window: None,
        },
        rng_seed,
    ))
}

/// Encode one [`SampleResponse`] record.
pub fn put_sample_response(buf: &mut Vec<u8>, resp: &SampleResponse) {
    let before = buf.len();
    buf.push(u8::from(resp.degraded));
    put_u32(buf, resp.shard as u32);
    put_u32(buf, resp.neighbors.len() as u32);
    for (i, v) in resp.neighbors.iter().enumerate() {
        put_u64(buf, v.raw());
        let source = resp.sources.get(i).copied().unwrap_or(SlotSource::Sampled);
        buf.push(source_tag(source));
    }
    debug_assert_eq!(
        (buf.len() - before) as u64,
        sample_response_bytes(resp.neighbors.len())
    );
}

/// Decode one [`SampleResponse`] record.
pub fn get_sample_response(r: &mut Reader<'_>) -> Result<SampleResponse, WireError> {
    let degraded = match r.u8()? {
        0 => false,
        1 => true,
        tag => return Err(WireError::BadTag { what: "flags", tag }),
    };
    let shard = r.u32()? as usize;
    let n = r.count(9)?;
    let mut neighbors = Vec::with_capacity(n);
    let mut sources = Vec::with_capacity(n);
    for _ in 0..n {
        neighbors.push(VertexId(r.u64()?));
        sources.push(source_from(r.u8()?)?);
    }
    Ok(SampleResponse {
        neighbors,
        sources,
        degraded,
        shard,
    })
}

const OP_INSERT: u8 = 0;
const OP_UPDATE_WEIGHT: u8 = 1;
const OP_DELETE: u8 = 2;

/// Encode one [`UpdateOp`] record (fixed layout: deletes carry a zero
/// weight and timestamp so every op is [`UPDATE_OP_BYTES`]).
pub fn put_update_op(buf: &mut Vec<u8>, op: &UpdateOp) {
    let before = buf.len();
    let (kind, src, dst, etype, weight, ts) = match op {
        UpdateOp::Insert(e) => (OP_INSERT, e.src, e.dst, e.etype, e.weight, e.ts),
        UpdateOp::UpdateWeight(e) => (OP_UPDATE_WEIGHT, e.src, e.dst, e.etype, e.weight, e.ts),
        UpdateOp::Delete { src, dst, etype } => (OP_DELETE, *src, *dst, *etype, 0.0, 0),
    };
    buf.push(kind);
    put_u64(buf, src.raw());
    put_u64(buf, dst.raw());
    put_u16(buf, etype.0);
    buf.extend_from_slice(&weight.to_le_bytes());
    put_u64(buf, ts);
    debug_assert_eq!((buf.len() - before) as u64, UPDATE_OP_BYTES);
}

/// Decode one [`UpdateOp`] record.
pub fn get_update_op(r: &mut Reader<'_>) -> Result<UpdateOp, WireError> {
    let kind = r.u8()?;
    let src = VertexId(r.u64()?);
    let dst = VertexId(r.u64()?);
    let etype = EdgeType(r.u16()?);
    let weight = r.f64()?;
    let ts = r.u64()?;
    match kind {
        OP_INSERT => Ok(UpdateOp::Insert(Edge {
            src,
            dst,
            etype,
            weight,
            ts,
        })),
        OP_UPDATE_WEIGHT => Ok(UpdateOp::UpdateWeight(Edge {
            src,
            dst,
            etype,
            weight,
            ts,
        })),
        OP_DELETE => Ok(UpdateOp::Delete { src, dst, etype }),
        tag => Err(WireError::BadTag {
            what: "update op",
            tag,
        }),
    }
}

const TXNOP_INSERT_EDGE: u8 = 0;
const TXNOP_DELETE_EDGE: u8 = 1;
const TXNOP_PATCH_WEIGHT: u8 = 2;
const TXNOP_UPSERT_VERTEX: u8 = 3;
const TXNOP_DELETE_VERTEX: u8 = 4;

/// Encode one [`TxnOp`] record (fixed layout mirroring [`put_update_op`]:
/// kind u8 | src u64 | dst u64 | etype u16 | weight f64 | ts u64;
/// vertex-granular ops carry a zero dst, weight and timestamp).
pub fn put_txn_op(buf: &mut Vec<u8>, op: &TxnOp) {
    let before = buf.len();
    let (kind, src, dst, etype, weight, ts) = match op {
        TxnOp::InsertEdge(e) => (TXNOP_INSERT_EDGE, e.src, e.dst, e.etype, e.weight, e.ts),
        TxnOp::DeleteEdge { src, dst, etype } => (TXNOP_DELETE_EDGE, *src, *dst, *etype, 0.0, 0),
        TxnOp::PatchWeight(e) => (TXNOP_PATCH_WEIGHT, e.src, e.dst, e.etype, e.weight, e.ts),
        TxnOp::UpsertVertex { vertex } => (
            TXNOP_UPSERT_VERTEX,
            *vertex,
            VertexId(0),
            EdgeType::DEFAULT,
            0.0,
            0,
        ),
        TxnOp::DeleteVertex { vertex, etype } => {
            (TXNOP_DELETE_VERTEX, *vertex, VertexId(0), *etype, 0.0, 0)
        }
    };
    buf.push(kind);
    put_u64(buf, src.raw());
    put_u64(buf, dst.raw());
    put_u16(buf, etype.0);
    buf.extend_from_slice(&weight.to_le_bytes());
    put_u64(buf, ts);
    debug_assert_eq!((buf.len() - before) as u64, TXN_OP_BYTES);
}

/// Decode one [`TxnOp`] record.
pub fn get_txn_op(r: &mut Reader<'_>) -> Result<TxnOp, WireError> {
    let kind = r.u8()?;
    let src = VertexId(r.u64()?);
    let dst = VertexId(r.u64()?);
    let etype = EdgeType(r.u16()?);
    let weight = r.f64()?;
    let ts = r.u64()?;
    match kind {
        TXNOP_INSERT_EDGE => Ok(TxnOp::InsertEdge(Edge {
            src,
            dst,
            etype,
            weight,
            ts,
        })),
        TXNOP_DELETE_EDGE => Ok(TxnOp::DeleteEdge { src, dst, etype }),
        TXNOP_PATCH_WEIGHT => Ok(TxnOp::PatchWeight(Edge {
            src,
            dst,
            etype,
            weight,
            ts,
        })),
        TXNOP_UPSERT_VERTEX => Ok(TxnOp::UpsertVertex { vertex: src }),
        TXNOP_DELETE_VERTEX => Ok(TxnOp::DeleteVertex { vertex: src, etype }),
        tag => Err(WireError::BadTag {
            what: "txn op",
            tag,
        }),
    }
}

/// Encode a time-window trailer block: `tag u8 = TIME_WINDOW_BLOCK_TAG`
/// followed by one 17-byte entry per request (`present u8 | min_ts u64 |
/// max_ts u64`). Callers only emit the block when at least one entry is
/// windowed, which keeps unwindowed batches byte-identical to the
/// pre-temporal protocol.
pub fn put_time_window_block(buf: &mut Vec<u8>, windows: &[Option<TimeWindow>]) {
    let before = buf.len();
    buf.push(TIME_WINDOW_BLOCK_TAG);
    for w in windows {
        match w {
            Some(win) => {
                buf.push(1);
                put_u64(buf, win.min_ts);
                put_u64(buf, win.max_ts);
            }
            None => {
                buf.push(0);
                put_u64(buf, 0);
                put_u64(buf, 0);
            }
        }
    }
    debug_assert_eq!(
        (buf.len() - before) as u64,
        time_window_block_bytes(windows.len())
    );
}

/// Decode a time-window trailer block of exactly `count` entries. `count`
/// comes from the already-validated record count, so the length guard here
/// rejects payloads whose trailer was truncated or forged shorter than the
/// record count implies.
pub fn get_time_window_block(
    r: &mut Reader<'_>,
    count: usize,
) -> Result<Vec<Option<TimeWindow>>, WireError> {
    let tag = r.u8()?;
    if tag != TIME_WINDOW_BLOCK_TAG {
        return Err(WireError::BadTag {
            what: "time window block",
            tag,
        });
    }
    if (count as u64) * TIME_WINDOW_ENTRY_BYTES > r.remaining() as u64 {
        return Err(WireError::Truncated);
    }
    let mut windows = Vec::with_capacity(count);
    for _ in 0..count {
        let present = r.u8()?;
        let min_ts = r.u64()?;
        let max_ts = r.u64()?;
        match present {
            0 => windows.push(None),
            1 => windows.push(Some(TimeWindow { min_ts, max_ts })),
            tag => {
                return Err(WireError::BadTag {
                    what: "time window presence flag",
                    tag,
                })
            }
        }
    }
    Ok(windows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_request_roundtrips_and_sizes_match() {
        let req = SampleRequest::new(VertexId(0xDEAD_BEEF), EdgeType(7), 25)
            .on_degraded(DegradedPolicy::SelfLoop)
            .with_trace_id(42);
        let mut buf = Vec::new();
        put_sample_request(&mut buf, &req, 0x1234_5678_9abc_def0);
        assert_eq!(buf.len() as u64, SAMPLE_REQUEST_BYTES);
        let mut r = Reader::new(&buf);
        let (back, seed) = get_sample_request(&mut r).expect("decode");
        assert_eq!(back, req);
        assert_eq!(seed, 0x1234_5678_9abc_def0);
        assert!(r.is_empty());
    }

    #[test]
    fn sample_response_roundtrips_and_sizes_match() {
        let resp = SampleResponse {
            neighbors: vec![VertexId(1), VertexId(2), VertexId(1)],
            sources: vec![
                SlotSource::Sampled,
                SlotSource::SelfLoop,
                SlotSource::Sampled,
            ],
            degraded: true,
            shard: 3,
        };
        let mut buf = Vec::new();
        put_sample_response(&mut buf, &resp);
        assert_eq!(buf.len() as u64, sample_response_bytes(3));
        let back = get_sample_response(&mut Reader::new(&buf)).expect("decode");
        assert_eq!(back, resp);
    }

    #[test]
    fn update_ops_roundtrip_at_fixed_size() {
        let ops = [
            UpdateOp::Insert(Edge::new(VertexId(1), VertexId(2), 0.5)),
            UpdateOp::Insert(Edge::new(VertexId(1), VertexId(2), 0.5).at(1234)),
            UpdateOp::UpdateWeight(Edge::new(VertexId(3), VertexId(4), 2.5)),
            UpdateOp::Delete {
                src: VertexId(5),
                dst: VertexId(6),
                etype: EdgeType(9),
            },
        ];
        for op in &ops {
            let mut buf = Vec::new();
            put_update_op(&mut buf, op);
            assert_eq!(buf.len() as u64, UPDATE_OP_BYTES);
            let back = get_update_op(&mut Reader::new(&buf)).expect("decode");
            assert_eq!(back, *op);
        }
    }

    #[test]
    fn truncated_records_error_instead_of_panicking() {
        let mut buf = Vec::new();
        put_sample_request(
            &mut buf,
            &SampleRequest::new(VertexId(1), EdgeType(0), 4),
            7,
        );
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert_eq!(get_sample_request(&mut r), Err(WireError::Truncated));
        }
    }

    #[test]
    fn forged_counts_are_rejected_before_allocation() {
        // degraded=0, shard=0, then a count claiming u32::MAX entries with
        // no bytes behind it: must reject, not reserve.
        let mut buf = vec![0u8];
        put_u32(&mut buf, 0);
        put_u32(&mut buf, u32::MAX);
        assert_eq!(
            get_sample_response(&mut Reader::new(&buf)),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn bad_tags_are_rejected() {
        // Unknown op kind.
        let mut buf = vec![9u8];
        buf.extend_from_slice(&[0u8; 34]);
        assert!(matches!(
            get_update_op(&mut Reader::new(&buf)),
            Err(WireError::BadTag {
                what: "update op",
                ..
            })
        ));
        assert!(health_from(3).is_err());
        assert!(policy_from(2).is_err());
        assert!(source_from(7).is_err());
    }

    #[test]
    fn frame_sizing_helpers_compose_record_sizes() {
        assert_eq!(
            sample_request_frame_bytes(3),
            FRAME_OVERHEAD_BYTES + 25 + 3 * SAMPLE_REQUEST_BYTES
        );
        assert_eq!(
            sample_response_frame_bytes([0, 2]),
            FRAME_OVERHEAD_BYTES + 8 + 4 + (9) + (9 + 18)
        );
        assert_eq!(
            update_frame_bytes(2),
            FRAME_OVERHEAD_BYTES + UPDATE_BATCH_HEADER_BYTES + 2 * UPDATE_OP_BYTES
        );
        assert_eq!(
            txn_frame_bytes(4),
            FRAME_OVERHEAD_BYTES + TXN_BATCH_HEADER_BYTES + 4 * TXN_OP_BYTES
        );
    }

    #[test]
    fn txn_ops_roundtrip_at_fixed_size() {
        let ops = [
            TxnOp::InsertEdge(Edge::new(VertexId(1), VertexId(2), 0.5)),
            TxnOp::DeleteEdge {
                src: VertexId(3),
                dst: VertexId(4),
                etype: EdgeType(7),
            },
            TxnOp::PatchWeight(Edge {
                src: VertexId(5),
                dst: VertexId(6),
                etype: EdgeType(2),
                weight: 9.25,
                ts: 1_700_000_123,
            }),
            TxnOp::UpsertVertex {
                vertex: VertexId(8),
            },
            TxnOp::DeleteVertex {
                vertex: VertexId(9),
                etype: EdgeType(3),
            },
        ];
        for op in &ops {
            let mut buf = Vec::new();
            put_txn_op(&mut buf, op);
            assert_eq!(buf.len() as u64, TXN_OP_BYTES);
            let back = get_txn_op(&mut Reader::new(&buf)).expect("decode");
            assert_eq!(back, *op);
        }
        // Unknown kind tag.
        let mut buf = vec![5u8];
        buf.extend_from_slice(&[0u8; 34]);
        assert!(matches!(
            get_txn_op(&mut Reader::new(&buf)),
            Err(WireError::BadTag { what: "txn op", .. })
        ));
    }

    #[test]
    fn time_window_block_roundtrips_and_rejects_corruption() {
        let windows = vec![
            None,
            Some(TimeWindow::new(10, 500)),
            Some(TimeWindow::until(u64::MAX)),
            None,
        ];
        let mut buf = Vec::new();
        put_time_window_block(&mut buf, &windows);
        assert_eq!(buf.len() as u64, time_window_block_bytes(windows.len()));
        let mut r = Reader::new(&buf);
        assert_eq!(
            get_time_window_block(&mut r, windows.len()).expect("decode"),
            windows
        );
        assert!(r.is_empty());

        // Wrong opening tag.
        let mut bad = buf.clone();
        bad[0] = 9;
        assert!(matches!(
            get_time_window_block(&mut Reader::new(&bad), windows.len()),
            Err(WireError::BadTag {
                what: "time window block",
                ..
            })
        ));

        // Truncated trailer: fewer entries on the wire than the record
        // count implies.
        let cut = &buf[..buf.len() - 1];
        assert_eq!(
            get_time_window_block(&mut Reader::new(cut), windows.len()),
            Err(WireError::Truncated)
        );

        // Corrupt presence flag.
        let mut bad = buf.clone();
        bad[1] = 2;
        assert!(matches!(
            get_time_window_block(&mut Reader::new(&bad), windows.len()),
            Err(WireError::BadTag {
                what: "time window presence flag",
                ..
            })
        ));
    }

    #[test]
    fn trace_ctx_roundtrips_at_fixed_size() {
        for ctx in [
            None,
            Some(TraceContext {
                trace_id: 0xFACE,
                parent_span: 17,
            }),
        ] {
            let mut buf = Vec::new();
            put_trace_ctx(&mut buf, ctx);
            assert_eq!(buf.len() as u64, TRACE_CTX_BYTES);
            let mut r = Reader::new(&buf);
            assert_eq!(get_trace_ctx(&mut r).expect("decode"), ctx);
            assert!(r.is_empty());
        }
        // Bad present flag.
        let mut buf = vec![7u8];
        buf.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            get_trace_ctx(&mut Reader::new(&buf)),
            Err(WireError::BadTag {
                what: "trace ctx",
                ..
            })
        ));
    }

    #[test]
    fn strings_roundtrip_and_reject_forged_lengths() {
        for s in ["", "rpc.server.request", "π spans 🎯"] {
            let mut buf = Vec::new();
            put_str(&mut buf, s);
            let mut r = Reader::new(&buf);
            assert_eq!(get_str(&mut r).expect("decode"), s);
            assert!(r.is_empty());
        }
        // A length claiming more bytes than the buffer holds.
        let mut buf = Vec::new();
        put_u32(&mut buf, 1000);
        buf.extend_from_slice(b"short");
        assert_eq!(get_str(&mut Reader::new(&buf)), Err(WireError::Truncated));
        // Invalid UTF-8 payload.
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(get_str(&mut Reader::new(&buf)).is_err());
    }
}
