//! The unified sampling API: one request/response pair (the historical
//! `sample_neighbors` / `sample_neighbors_detailed` split is gone).
//!
//! A [`SampleRequest`] names the vertex, relation, fanout, and what the
//! router should do when the owning shard cannot answer; a
//! [`SampleResponse`] carries the draws plus per-slot provenance, so a
//! trainer can tell a real weighted draw from degraded padding without
//! re-deriving it from context.

use platod2gl_graph::{EdgeType, Served, TimeWindow, VertexId};

/// What a degraded read (failed shard, exhausted retry budget) returns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DegradedPolicy {
    /// Return an empty neighbor set — the historical behavior; callers
    /// that pad (the k-hop sampler) do their own self-looping.
    #[default]
    EmptySet,
    /// Return `fanout` copies of the queried vertex, pre-padded: the
    /// standard GraphSAGE self-loop fallback, done router-side so shapes
    /// stay static for callers that cannot pad.
    SelfLoop,
}

/// Where one response slot came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotSource {
    /// A weighted draw served by the owning shard.
    Sampled,
    /// Self-loop padding produced by [`DegradedPolicy::SelfLoop`].
    SelfLoop,
}

/// A neighbor-sampling request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampleRequest {
    /// The vertex whose out-neighborhood is sampled.
    pub vertex: VertexId,
    /// The relation to sample within.
    pub etype: EdgeType,
    /// Number of weighted draws requested.
    pub fanout: usize,
    /// Fallback behavior when the owning shard cannot answer.
    pub on_degraded: DegradedPolicy,
    /// Caller-supplied correlation id. Carried through the router and into
    /// any slow-op capture of this request, so an operator can find one
    /// known-bad request in `GET /debug/slow` by the id their client
    /// logged. Not interpreted by the router.
    pub trace_id: Option<u64>,
    /// Restrict draws to edges whose timestamp falls inside this window
    /// (timeless `ts == 0` edges always qualify). `None` samples the full
    /// neighborhood — the pre-temporal behavior.
    pub window: Option<TimeWindow>,
}

impl SampleRequest {
    /// A request with the default degraded policy ([`DegradedPolicy::EmptySet`]),
    /// no trace id, and no time window.
    pub fn new(vertex: VertexId, etype: EdgeType, fanout: usize) -> Self {
        Self {
            vertex,
            etype,
            fanout,
            on_degraded: DegradedPolicy::default(),
            trace_id: None,
            window: None,
        }
    }

    /// Set the degraded policy.
    pub fn on_degraded(mut self, policy: DegradedPolicy) -> Self {
        self.on_degraded = policy;
        self
    }

    /// Attach a correlation id for end-to-end tracing.
    pub fn with_trace_id(mut self, trace_id: u64) -> Self {
        self.trace_id = Some(trace_id);
        self
    }

    /// Restrict this request to edges inside `window` (time-respecting
    /// sampling).
    pub fn in_window(mut self, window: TimeWindow) -> Self {
        self.window = Some(window);
        self
    }
}

/// The answer to a [`SampleRequest`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SampleResponse {
    /// The drawn neighbor IDs (possibly fewer than `fanout` when the
    /// neighborhood is empty, or empty under [`DegradedPolicy::EmptySet`]).
    pub neighbors: Vec<VertexId>,
    /// Per-slot provenance, parallel to `neighbors`.
    pub sources: Vec<SlotSource>,
    /// True when the owning shard could not answer and the response is the
    /// degraded fallback.
    pub degraded: bool,
    /// The shard that owns (or would have owned) the request.
    pub shard: usize,
}

impl SampleResponse {
    /// Bridge to the legacy [`Served`] shape some health-plumbing call
    /// sites still speak.
    pub fn into_served(self) -> Served<Vec<VertexId>> {
        if self.degraded {
            Served::degraded(self.neighbors)
        } else {
            Served::ok(self.neighbors)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder_defaults_to_empty_set() {
        let r = SampleRequest::new(VertexId(1), EdgeType(0), 5);
        assert_eq!(r.on_degraded, DegradedPolicy::EmptySet);
        let r = r.on_degraded(DegradedPolicy::SelfLoop);
        assert_eq!(r.on_degraded, DegradedPolicy::SelfLoop);
        assert_eq!(r.fanout, 5);
        assert_eq!(r.trace_id, None);
        assert_eq!(r.window, None);
        assert_eq!(r.with_trace_id(99).trace_id, Some(99));
        assert_eq!(
            r.in_window(TimeWindow::new(5, 10)).window,
            Some(TimeWindow::new(5, 10))
        );
    }

    #[test]
    fn into_served_preserves_degradation() {
        let ok = SampleResponse {
            neighbors: vec![VertexId(2)],
            sources: vec![SlotSource::Sampled],
            degraded: false,
            shard: 0,
        };
        assert!(!ok.into_served().degraded);
        let bad = SampleResponse {
            neighbors: Vec::new(),
            sources: Vec::new(),
            degraded: true,
            shard: 1,
        };
        let served = bad.into_served();
        assert!(served.degraded);
        assert!(served.value.is_empty());
    }
}
