//! The cluster's transaction plane: idempotence ledger, abort streak, and
//! the `/debug/txns` journal.
//!
//! The ledger is the server half of the RPC retry contract: a
//! [`RemoteCluster`](../platod2gl_rpc) client re-sends a `TxnApply` frame
//! with the *same* txn id after a transport failure, and the ledger answers
//! replays of an already-committed id from the cached receipt instead of
//! applying the ops twice. Bounded LRU: the window only needs to cover the
//! client's retry horizon (seconds), not history.

use platod2gl_graph::TxnReceipt;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU32, AtomicU64};
use std::sync::Mutex;

/// Committed-txn receipts remembered for replay dedupe.
const LEDGER_CAPACITY: usize = 1024;
/// Entries kept in the `/debug/txns` journal ring.
const RECENT_CAPACITY: usize = 64;

/// One `/debug/txns` journal entry.
#[derive(Clone, Debug)]
pub struct TxnLogEntry {
    pub txn_id: u64,
    /// `committed` / `rejected` / `unavailable` / `panicked` / `deduped`.
    pub outcome: &'static str,
    /// Lowered ops applied (0 unless committed).
    pub ops: u64,
    /// Violation summary or shard error, empty on commit.
    pub detail: String,
}

#[derive(Default)]
struct Ledger {
    /// Insertion order for LRU eviction.
    order: VecDeque<u64>,
    receipts: HashMap<u64, TxnReceipt>,
}

/// Per-cluster transaction state. All of it is observability/idempotence
/// bookkeeping — graph state lives in the shards.
pub(crate) struct TxnPlane {
    ledger: Mutex<Ledger>,
    recent: Mutex<VecDeque<TxnLogEntry>>,
    /// Consecutive aborts since the last commit (fed to `/healthz` as a
    /// storage-sickness signal, distinct from shard health).
    pub(crate) abort_streak: AtomicU64,
    /// Registered edge-type count for phase-1 `UnknownEtype` validation;
    /// `u32::MAX` means unrestricted (no relation schema declared).
    pub(crate) etype_limit: AtomicU32,
}

impl TxnPlane {
    pub(crate) fn new() -> Self {
        TxnPlane {
            ledger: Mutex::new(Ledger::default()),
            recent: Mutex::new(VecDeque::with_capacity(RECENT_CAPACITY)),
            abort_streak: AtomicU64::new(0),
            etype_limit: AtomicU32::new(u32::MAX),
        }
    }

    /// The cached receipt for an already-committed txn id, if remembered.
    pub(crate) fn lookup(&self, txn_id: u64) -> Option<TxnReceipt> {
        self.lock_ledger().receipts.get(&txn_id).copied()
    }

    /// Remember a committed receipt, evicting the oldest past capacity.
    pub(crate) fn record_commit(&self, receipt: TxnReceipt) {
        let mut ledger = self.lock_ledger();
        if ledger.receipts.insert(receipt.txn_id, receipt).is_none() {
            ledger.order.push_back(receipt.txn_id);
            if ledger.order.len() > LEDGER_CAPACITY {
                if let Some(evicted) = ledger.order.pop_front() {
                    ledger.receipts.remove(&evicted);
                }
            }
        }
    }

    /// Append to the `/debug/txns` journal ring.
    pub(crate) fn log(&self, entry: TxnLogEntry) {
        let mut recent = self.lock_recent();
        if recent.len() == RECENT_CAPACITY {
            recent.pop_front();
        }
        recent.push_back(entry);
    }

    /// The journal, oldest first.
    pub(crate) fn recent(&self) -> Vec<TxnLogEntry> {
        self.lock_recent().iter().cloned().collect()
    }

    fn lock_ledger(&self) -> std::sync::MutexGuard<'_, Ledger> {
        self.ledger
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_recent(&self) -> std::sync::MutexGuard<'_, VecDeque<TxnLogEntry>> {
        self.recent
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn receipt(id: u64) -> TxnReceipt {
        TxnReceipt {
            txn_id: id,
            ops_applied: 1,
            graph_version: id,
            deduped: false,
        }
    }

    #[test]
    fn ledger_remembers_and_dedupes() {
        let plane = TxnPlane::new();
        assert!(plane.lookup(7).is_none());
        plane.record_commit(receipt(7));
        assert_eq!(plane.lookup(7).unwrap().graph_version, 7);
    }

    #[test]
    fn ledger_evicts_oldest_past_capacity() {
        let plane = TxnPlane::new();
        for id in 0..(LEDGER_CAPACITY as u64 + 10) {
            plane.record_commit(receipt(id));
        }
        assert!(plane.lookup(5).is_none(), "oldest evicted");
        assert!(plane.lookup(LEDGER_CAPACITY as u64 + 9).is_some());
        // Re-committing an existing id does not double-track it.
        plane.record_commit(receipt(LEDGER_CAPACITY as u64 + 9));
    }

    #[test]
    fn journal_ring_is_bounded() {
        let plane = TxnPlane::new();
        for id in 0..(RECENT_CAPACITY as u64 + 5) {
            plane.log(TxnLogEntry {
                txn_id: id,
                outcome: "committed",
                ops: 1,
                detail: String::new(),
            });
        }
        let recent = plane.recent();
        assert_eq!(recent.len(), RECENT_CAPACITY);
        assert_eq!(recent[0].txn_id, 5, "oldest entries dropped");
    }
}
