//! # PlatoD2GL
//!
//! A Rust reproduction of **PlatoD2GL: An Efficient Dynamic Deep Graph
//! Learning System for Graph Neural Network Training on Billion-Scale
//! Graphs** (ICDE 2024).
//!
//! PlatoD2GL trains GNNs over graphs that change while you train. Its two
//! contributions, both implemented here from scratch:
//!
//! * the **samtree** — a non-key-value, B-tree-shaped topology store with
//!   unordered leaves, α-relaxed splits, CP-ID prefix compression and
//!   hybrid CSTable/FSTable sampling indexes, and
//! * the **FSTable / FTS** — a Fenwick-tree sum table whose insertion,
//!   in-place update, deletion *and* weighted sampling all run in
//!   `O(log n)`, replacing the `O(n)`-maintenance CSTable of PlatoGL.
//!
//! ## Quick start
//!
//! ```
//! use platod2gl::{GraphStore, PlatoD2GL, Edge, EdgeType, VertexId};
//!
//! let system = PlatoD2GL::builder().num_shards(2).build();
//! system.store().insert_edge(Edge::new(VertexId(1), VertexId(2), 0.4));
//! system.store().insert_edge(Edge::new(VertexId(1), VertexId(3), 0.6));
//! let sampled = system.neighbor_sample(&[VertexId(1)], EdgeType::DEFAULT, 10, 42);
//! assert_eq!(sampled[0].len(), 10);
//! ```
//!
//! The facade wraps a simulated multi-shard cluster; every subsystem is
//! also usable directly through the re-exported crates below.

pub use platod2gl_admin::{
    AdminServer, FleetIntrospect, FleetPartitionView, FleetServerView, FleetSnapshot,
};
pub use platod2gl_baseline::{AliGraphStore, PlatoGlConfig, PlatoGlStore};
pub use platod2gl_fenwick::FsTable;
pub use platod2gl_fleet::{
    FleetCluster, FleetClusterConfig, FleetNode, JoinReport, MigrationReport, PartitionMap,
    ServerEntry,
};
pub use platod2gl_gnn::{
    gather_features, Adam, AttributeFeatures, DeepWalkConfig, DeepWalkTrainer, EmbeddingTable,
    FeatureProvider, HashFeatures, Matrix, MetapathSampler, NegativeSampler, NeighborSampler,
    Node2VecWalker, NodeSampler, RandomWalkSampler, SageNet, SageNetConfig, SampledSubgraph,
    SubgraphSampler, TrainStats,
};
pub use platod2gl_graph::{
    for_each_edge, read_edge_list, sanitize_weight, validate_and_lower, write_edge_list,
    DatasetProfile, Edge, EdgeType, Error, GraphStore, GraphTxn, RelationSpec, Served, ShardHealth,
    StoreTxnView, TimeWindow, TxnError, TxnOp, TxnReceipt, TxnView, TxnViolation, UpdateOp,
    UpdateStream, VertexId, VertexType, ViolationKind,
};
pub use platod2gl_mem::{human_bytes, DeepSize};
pub use platod2gl_obs::{
    span_subtree, Counter, Gauge, Histogram, ObsSnapshot, Registry, SlowLog, SlowOpRecord,
    SpanRecord, SpanTracer, TraceContext,
};
pub use platod2gl_pipeline::{
    Block, CacheConfig, CacheStats, EpochReport, KHopSampler, NeighborCache, PipelineConfig,
    PipelineConfigBuilder, PipelineStats, SampleOutcome, TrainingPipeline, WindowedBatch,
};
pub use platod2gl_rpc::{
    Backend, ClientConfig, ClientConfigBuilder, ConnectionMode, GraphServiceServer, PollerKind,
    RemoteCluster, RemoteClusterConfig, ServerConfig, ServerConfigBuilder, ServerIntrospect,
};
pub use platod2gl_sampling::{AliasTable, CsTable, WeightedIndex};
pub use platod2gl_samtree::{LeafIndex, OpStats, SamTree, SamTreeConfig};
pub use platod2gl_server::{
    partition_for, route_for, BatchReport, Cluster, ClusterConfig, ClusterConfigBuilder,
    ClusterMemory, DegradedPolicy, FaultInjector, FaultKind, GraphServer, GraphService,
    HistogramSnapshot, LatencyHistogram, PartitionChunk, SampleRequest, SampleResponse,
    ShardMemory, SlotSource, TrafficStats, TxnLogEntry,
};
pub use platod2gl_storage::{
    replay_wal, AttributeStore, CrashInjector, CrashPoint, DecayOutcome, DurableGraphStore,
    DynamicGraphStore, RecoveryReport, StoreConfig, StoreMemory, TornTail, TornTailKind,
    WalReplayReport, SNAPSHOT_VERSION,
};
pub use platod2gl_temporal::{DecayConfig, DecayTick, RecencyDecay};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builder for a [`PlatoD2GL`] system.
#[derive(Clone, Copy, Debug)]
pub struct Builder {
    capacity: usize,
    alpha: usize,
    compression: bool,
    num_shards: usize,
    threads_per_shard: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Self {
            capacity: 256,
            alpha: 0,
            compression: true,
            num_shards: 4,
            threads_per_shard: 1,
        }
    }
}

impl Builder {
    /// Samtree node capacity `c` (paper default 256).
    pub fn capacity(mut self, c: usize) -> Self {
        self.capacity = c;
        self
    }

    /// α-Split slackness (paper default 0).
    pub fn alpha(mut self, a: usize) -> Self {
        self.alpha = a;
        self
    }

    /// Toggle CP-ID prefix compression (paper default on).
    pub fn compression(mut self, on: bool) -> Self {
        self.compression = on;
        self
    }

    /// Number of simulated graph servers.
    pub fn num_shards(mut self, n: usize) -> Self {
        self.num_shards = n;
        self
    }

    /// Worker threads per shard for batched updates.
    pub fn threads_per_shard(mut self, t: usize) -> Self {
        self.threads_per_shard = t;
        self
    }

    /// Boot the system.
    ///
    /// # Panics
    /// On an invalid configuration (zero shards, undersized samtree
    /// capacity, …); [`ClusterConfig::builder`] exposes the same checks
    /// as a `Result` for callers that prefer to handle them.
    pub fn build(self) -> PlatoD2GL {
        let store = StoreConfig {
            tree: SamTreeConfig {
                capacity: self.capacity,
                alpha: self.alpha,
                compression: self.compression,
                leaf_index: LeafIndex::Fenwick,
            },
            ..StoreConfig::default()
        };
        let config = ClusterConfig::builder()
            .num_shards(self.num_shards)
            .store(store)
            .threads_per_shard(self.threads_per_shard)
            .build()
            .expect("invalid PlatoD2GL configuration");
        PlatoD2GL {
            cluster: Cluster::new(config),
        }
    }
}

/// Summary returned by [`PlatoD2GL::ingest_profile`].
#[derive(Clone, Copy, Debug)]
pub struct IngestReport {
    /// Edges offered to the store (including bi-directed copies).
    pub edges_offered: usize,
    /// Distinct edges stored (duplicates become weight updates).
    pub edges_stored: usize,
    /// Wall-clock ingest time.
    pub elapsed: std::time::Duration,
}

/// Memory breakdown for the paper's Table IV accounting.
#[derive(Clone, Debug)]
pub struct MemoryReport {
    /// Total topology bytes across shards.
    pub topology_bytes: usize,
    /// Total attribute bytes across shards.
    pub attribute_bytes: usize,
    /// Per-shard topology bytes.
    pub per_shard: Vec<usize>,
}

/// The assembled system: a routing cluster of graph servers running the
/// samtree storage engine, plus convenience entry points for the operator
/// layer.
pub struct PlatoD2GL {
    cluster: Cluster,
}

impl PlatoD2GL {
    /// Start configuring a system.
    pub fn builder() -> Builder {
        Builder::default()
    }

    /// Boot with defaults (4 shards, capacity 256, α = 0, compression on).
    pub fn with_defaults() -> Self {
        Builder::default().build()
    }

    /// The underlying cluster; it implements [`GraphStore`], so all
    /// operators and benchmarks accept it directly.
    pub fn store(&self) -> &Cluster {
        &self.cluster
    }

    /// Bulk-load a dataset profile in batched, sharded updates.
    pub fn ingest_profile(&self, profile: &DatasetProfile, seed: u64) -> IngestReport {
        let start = std::time::Instant::now();
        let mut offered = 0usize;
        let mut batch: Vec<UpdateOp> = Vec::with_capacity(8192);
        for e in profile.edge_stream(seed) {
            offered += 1;
            batch.push(UpdateOp::Insert(e));
            if batch.len() == 8192 {
                self.cluster
                    .apply_batch_sharded(&batch)
                    .expect("ingest batch panicked");
                batch.clear();
            }
        }
        if !batch.is_empty() {
            self.cluster
                .apply_batch_sharded(&batch)
                .expect("ingest batch panicked");
        }
        IngestReport {
            edges_offered: offered,
            edges_stored: self.cluster.num_edges(),
            elapsed: start.elapsed(),
        }
    }

    /// Apply a batch of updates across shards (PALM batch updater inside
    /// each shard). Shard loss is reported via `store().traffic()` and
    /// `store().shard_health(..)` rather than a panic.
    pub fn apply_updates(&self, ops: &[UpdateOp]) {
        let _ = self.cluster.apply_batch_sharded(ops);
    }

    /// Batched weighted neighbor sampling (`k` draws per vertex).
    pub fn neighbor_sample(
        &self,
        batch: &[VertexId],
        etype: EdgeType,
        k: usize,
        seed: u64,
    ) -> Vec<Vec<VertexId>> {
        let mut rng = StdRng::seed_from_u64(seed);
        NeighborSampler::new(etype, k).sample(&self.cluster, batch, &mut rng)
    }

    /// K-hop subgraph sampling pivoted at `seeds`.
    pub fn subgraph_sample(
        &self,
        seeds: &[VertexId],
        etype: EdgeType,
        fanouts: &[usize],
        seed: u64,
    ) -> SampledSubgraph {
        let mut rng = StdRng::seed_from_u64(seed);
        SubgraphSampler::new(etype, fanouts.to_vec()).sample(&self.cluster, seeds, &mut rng)
    }

    /// Store a vertex feature vector (f32-encoded) on its owning shard.
    pub fn set_feature(&self, v: VertexId, values: &[f64]) {
        self.cluster
            .set_vertex_attr(v, AttributeFeatures::encode(values));
    }

    /// Checkpoint the cluster topology to a writer (shard-count
    /// independent; see [`Cluster::snapshot_to`]).
    pub fn snapshot_to(&self, w: impl std::io::Write) -> Result<(), Error> {
        self.cluster.snapshot_to(w)
    }

    /// Restore a checkpoint into this (normally empty) system.
    pub fn restore_from(&self, r: impl std::io::Read) -> Result<(), Error> {
        self.cluster.restore_from(r)
    }

    /// The system's observability registry (see [`Cluster::obs`]): one
    /// snapshot covers cluster traffic, samtree/storage internals, and any
    /// pipeline trained against [`PlatoD2GL::store`].
    pub fn obs(&self) -> &std::sync::Arc<Registry> {
        self.cluster.obs()
    }

    /// Aggregate samtree operation counters across shards (Table V).
    pub fn op_stats(&self) -> OpStats {
        let mut total = OpStats::default();
        for s in self.cluster.servers() {
            total.merge(&s.topology().op_stats());
        }
        total
    }

    /// Memory accounting across shards (Table IV).
    pub fn memory_report(&self) -> MemoryReport {
        let per_shard: Vec<usize> = self
            .cluster
            .servers()
            .iter()
            .map(|s| s.topology().topology_bytes())
            .collect();
        MemoryReport {
            topology_bytes: per_shard.iter().sum(),
            attribute_bytes: self
                .cluster
                .servers()
                .iter()
                .map(|s| s.attributes().attribute_bytes())
                .sum(),
            per_shard,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_applies_configuration() {
        let sys = PlatoD2GL::builder()
            .capacity(64)
            .alpha(4)
            .compression(false)
            .num_shards(2)
            .threads_per_shard(2)
            .build();
        assert_eq!(sys.store().num_shards(), 2);
        let cfg = sys.store().server(0).topology().tree_config();
        assert_eq!(cfg.capacity, 64);
        assert_eq!(cfg.alpha, 4);
        assert!(!cfg.compression);
    }

    #[test]
    fn ingest_profile_reports_counts() {
        let sys = PlatoD2GL::builder().num_shards(2).build();
        let profile = DatasetProfile::tiny();
        let report = sys.ingest_profile(&profile, 3);
        assert_eq!(report.edges_offered, profile.total_edges() as usize);
        assert!(report.edges_stored > 0);
        assert!(report.edges_stored <= report.edges_offered);
        assert_eq!(report.edges_stored, sys.store().num_edges());
    }

    #[test]
    fn facade_sampling_is_deterministic_per_seed() {
        let sys = PlatoD2GL::with_defaults();
        for i in 0..50u64 {
            sys.store()
                .insert_edge(Edge::new(VertexId(1), VertexId(100 + i), 1.0));
        }
        let a = sys.neighbor_sample(&[VertexId(1)], EdgeType::DEFAULT, 20, 7);
        let b = sys.neighbor_sample(&[VertexId(1)], EdgeType::DEFAULT, 20, 7);
        assert_eq!(a, b);
        let c = sys.neighbor_sample(&[VertexId(1)], EdgeType::DEFAULT, 20, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn memory_report_sums_shards() {
        let sys = PlatoD2GL::builder().num_shards(3).build();
        sys.ingest_profile(&DatasetProfile::tiny(), 1);
        let report = sys.memory_report();
        assert_eq!(report.per_shard.len(), 3);
        assert_eq!(report.topology_bytes, report.per_shard.iter().sum());
        assert!(report.topology_bytes > 0);
    }

    #[test]
    fn op_stats_aggregate_across_shards() {
        let sys = PlatoD2GL::builder().num_shards(2).build();
        sys.ingest_profile(&DatasetProfile::tiny(), 2);
        let stats = sys.op_stats();
        assert!(stats.leaf_ops > 0);
    }

    #[test]
    fn facade_snapshot_roundtrip() {
        let a = PlatoD2GL::builder().num_shards(2).build();
        a.ingest_profile(&DatasetProfile::tiny(), 9);
        let mut bytes = Vec::new();
        a.snapshot_to(&mut bytes).expect("snapshot");
        let b = PlatoD2GL::builder().num_shards(5).build();
        b.restore_from(bytes.as_slice()).expect("restore");
        assert_eq!(a.store().num_edges(), b.store().num_edges());
    }

    #[test]
    fn features_roundtrip_through_cluster() {
        let sys = PlatoD2GL::with_defaults();
        sys.set_feature(VertexId(5), &[1.0, -2.0]);
        let bytes = sys.store().vertex_attr(VertexId(5)).expect("stored");
        assert_eq!(bytes.len(), 8);
    }
}
