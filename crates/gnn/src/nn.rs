//! Minimal dense linear algebra for the training substrate.

//!
//! Row-major `f64` matrices with exactly the operations GraphSAGE needs.
//! Not performance-tuned: minibatch shapes here are (batch × fanout^L) rows
//! by tens of columns, far below BLAS territory.

#![allow(clippy::needless_range_loop)] // index math reads clearer than enumerate chains here

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A row-major dense matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a closure over (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Build from row vectors.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Xavier-style random init, deterministic under `seed`.
    pub fn glorot(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        Self::from_fn(rows, cols, |_, _| rng.random_range(-bound..bound))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// Borrow a row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy a row from another matrix.
    pub fn set_row(&mut self, r: usize, src: &[f64]) {
        assert_eq!(src.len(), self.cols);
        self.data[r * self.cols..(r + 1) * self.cols].copy_from_slice(src);
    }

    /// `self @ other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    *out.get_mut(r, c) += a * other.get(k, c);
                }
            }
        }
        out
    }

    /// `selfᵀ @ other` without materializing the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    *out.get_mut(k, c) += a * other.get(r, c);
                }
            }
        }
        out
    }

    /// `self @ otherᵀ` without materializing the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for r in 0..self.rows {
            for c in 0..other.rows {
                let mut s = 0.0;
                for k in 0..self.cols {
                    s += self.get(r, k) * other.get(c, k);
                }
                *out.get_mut(r, c) = s;
            }
        }
        out
    }

    /// Element-wise addition in place.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Add a row vector (bias) to every row in place.
    pub fn add_row_broadcast(&mut self, bias: &[f64]) {
        assert_eq!(bias.len(), self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                self.data[r * self.cols + c] += bias[c];
            }
        }
    }

    /// Scale every element in place.
    pub fn scale(&mut self, s: f64) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// ReLU forward (returns the activated copy).
    pub fn relu(&self) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| x.max(0.0)).collect(),
        }
    }

    /// ReLU backward: zero gradient where the *activation output* was zero.
    pub fn relu_backward(grad: &Matrix, activated: &Matrix) -> Matrix {
        assert_eq!((grad.rows, grad.cols), (activated.rows, activated.cols));
        Matrix {
            rows: grad.rows,
            cols: grad.cols,
            data: grad
                .data
                .iter()
                .zip(&activated.data)
                .map(|(&g, &a)| if a > 0.0 { g } else { 0.0 })
                .collect(),
        }
    }

    /// Mean of groups of `group` consecutive rows: rows `[i*group, (i+1)*group)`
    /// average into output row `i`. This is GraphSAGE's mean aggregator over
    /// the fixed-fanout children block.
    pub fn group_mean(&self, group: usize) -> Matrix {
        assert!(
            group > 0 && self.rows.is_multiple_of(group),
            "rows not divisible"
        );
        let out_rows = self.rows / group;
        let mut out = Matrix::zeros(out_rows, self.cols);
        for r in 0..self.rows {
            let o = r / group;
            for c in 0..self.cols {
                *out.get_mut(o, c) += self.get(r, c) / group as f64;
            }
        }
        out
    }

    /// Backward of [`group_mean`](Self::group_mean): spread each output
    /// gradient row over its `group` input rows.
    pub fn group_mean_backward(grad: &Matrix, group: usize) -> Matrix {
        let mut out = Matrix::zeros(grad.rows * group, grad.cols);
        for r in 0..out.rows {
            let g = r / group;
            for c in 0..grad.cols {
                *out.get_mut(r, c) = grad.get(g, c) / group as f64;
            }
        }
        out
    }

    /// Flat view of the parameters (row-major), for optimizers.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat view of the parameters (row-major), for optimizers.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Frobenius norm (diagnostics).
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

/// A dense layer `y = x W + b` with SGD-updatable parameters.
#[derive(Clone, Debug)]
pub struct Dense {
    /// Weight matrix (in_dim × out_dim).
    pub w: Matrix,
    /// Bias vector (out_dim).
    pub b: Vec<f64>,
}

impl Dense {
    /// Glorot-initialized layer.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        Self {
            w: Matrix::glorot(in_dim, out_dim, seed),
            b: vec![0.0; out_dim],
        }
    }

    /// Forward pass.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w);
        y.add_row_broadcast(&self.b);
        y
    }

    /// Backward pass: returns the input gradient and accumulates parameter
    /// gradients into `gw` / `gb`.
    pub fn backward(&self, x: &Matrix, grad_y: &Matrix, gw: &mut Matrix, gb: &mut [f64]) -> Matrix {
        gw.add_assign(&x.t_matmul(grad_y));
        for r in 0..grad_y.rows() {
            for c in 0..grad_y.cols() {
                gb[c] += grad_y.get(r, c);
            }
        }
        grad_y.matmul_t(&self.w)
    }

    /// SGD step.
    pub fn apply_grads(&mut self, gw: &Matrix, gb: &[f64], lr: f64) {
        for r in 0..self.w.rows() {
            for c in 0..self.w.cols() {
                *self.w.get_mut(r, c) -= lr * gw.get(r, c);
            }
        }
        for (b, g) in self.b.iter_mut().zip(gb) {
            *b -= lr * g;
        }
    }
}

/// Adam optimizer state for one flat parameter tensor.
///
/// The trainers default to plain SGD (which the paper's TF setup also
/// supports); Adam is the modern default for GNN fine-tuning and converges
/// in far fewer steps on the synthetic tasks in this repo's tests.
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Create state for a tensor of `len` parameters with standard betas.
    pub fn new(len: usize, lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; len],
            v: vec![0.0; len],
        }
    }

    /// One bias-corrected Adam step: `params -= lr * m̂ / (sqrt(v̂) + eps)`.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len());
        assert_eq!(grads.len(), self.m.len());
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grads[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

/// Softmax cross-entropy over logits against integer labels.
///
/// Returns `(mean_loss, grad_logits)` where the gradient is already averaged
/// over the batch.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f64, Matrix) {
    assert_eq!(logits.rows(), labels.len());
    let n = logits.rows();
    let k = logits.cols();
    let mut grad = Matrix::zeros(n, k);
    let mut loss = 0.0;
    for r in 0..n {
        let row = logits.row(r);
        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = row.iter().map(|&x| (x - max).exp()).collect();
        let z: f64 = exps.iter().sum();
        let label = labels[r];
        assert!(label < k, "label {label} out of range");
        loss += -(exps[label] / z).ln();
        for c in 0..k {
            *grad.get_mut(r, c) = (exps[c] / z - if c == label { 1.0 } else { 0.0 }) / n as f64;
        }
    }
    (loss / n as f64, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn transpose_products_agree_with_explicit() {
        let a = Matrix::glorot(4, 3, 1);
        let b = Matrix::glorot(4, 5, 2);
        let t1 = a.t_matmul(&b); // aᵀ b : 3x5
        assert_eq!((t1.rows(), t1.cols()), (3, 5));
        for r in 0..3 {
            for c in 0..5 {
                let mut want = 0.0;
                for k in 0..4 {
                    want += a.get(k, r) * b.get(k, c);
                }
                assert!((t1.get(r, c) - want).abs() < 1e-12);
            }
        }
        let c2 = Matrix::glorot(5, 3, 3);
        let t2 = a.matmul_t(&c2); // a c2ᵀ : 4x5
        assert_eq!((t2.rows(), t2.cols()), (4, 5));
        for r in 0..4 {
            for c in 0..5 {
                let mut want = 0.0;
                for k in 0..3 {
                    want += a.get(r, k) * c2.get(c, k);
                }
                assert!((t2.get(r, c) - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn relu_and_backward() {
        let x = Matrix::from_rows(&[vec![-1.0, 2.0], vec![0.5, -3.0]]);
        let y = x.relu();
        assert_eq!(y.row(0), &[0.0, 2.0]);
        assert_eq!(y.row(1), &[0.5, 0.0]);
        let g = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let gx = Matrix::relu_backward(&g, &y);
        assert_eq!(gx.row(0), &[0.0, 1.0]);
        assert_eq!(gx.row(1), &[1.0, 0.0]);
    }

    #[test]
    fn group_mean_and_backward_roundtrip() {
        let x = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![3.0, 4.0],
            vec![5.0, 6.0],
            vec![7.0, 8.0],
        ]);
        let m = x.group_mean(2);
        assert_eq!(m.row(0), &[2.0, 3.0]);
        assert_eq!(m.row(1), &[6.0, 7.0]);
        let g = Matrix::from_rows(&[vec![2.0, 2.0], vec![4.0, 4.0]]);
        let gx = Matrix::group_mean_backward(&g, 2);
        assert_eq!(gx.rows(), 4);
        assert_eq!(gx.row(0), &[1.0, 1.0]);
        assert_eq!(gx.row(3), &[2.0, 2.0]);
    }

    #[test]
    fn softmax_ce_prefers_correct_label() {
        let logits = Matrix::from_rows(&[vec![5.0, 0.0], vec![0.0, 5.0]]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(loss < 0.1, "confident correct predictions: {loss}");
        // Gradient pushes the correct logit up (negative grad).
        assert!(grad.get(0, 0) < 0.0);
        assert!(grad.get(1, 1) < 0.0);
        let (bad_loss, _) = softmax_cross_entropy(&logits, &[1, 0]);
        assert!(bad_loss > 1.0, "wrong labels must hurt: {bad_loss}");
    }

    #[test]
    fn dense_gradient_check() {
        // Finite-difference check of dL/dW for a tiny layer.
        let mut layer = Dense::new(3, 2, 7);
        let x = Matrix::glorot(4, 3, 8);
        let labels = [0usize, 1, 0, 1];
        let loss_of = |l: &Dense| {
            let y = l.forward(&x);
            softmax_cross_entropy(&y, &labels).0
        };
        let y = layer.forward(&x);
        let (_, gy) = softmax_cross_entropy(&y, &labels);
        let mut gw = Matrix::zeros(3, 2);
        let mut gb = vec![0.0; 2];
        layer.backward(&x, &gy, &mut gw, &mut gb);
        let eps = 1e-6;
        for r in 0..3 {
            for c in 0..2 {
                let orig = layer.w.get(r, c);
                *layer.w.get_mut(r, c) = orig + eps;
                let lp = loss_of(&layer);
                *layer.w.get_mut(r, c) = orig - eps;
                let lm = loss_of(&layer);
                *layer.w.get_mut(r, c) = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = gw.get(r, c);
                assert!(
                    (numeric - analytic).abs() < 1e-6,
                    "dW[{r},{c}]: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn sgd_descends_on_toy_problem() {
        let mut layer = Dense::new(2, 2, 3);
        let x = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let labels = [0usize, 1];
        let mut prev = f64::INFINITY;
        for _ in 0..50 {
            let y = layer.forward(&x);
            let (loss, gy) = softmax_cross_entropy(&y, &labels);
            let mut gw = Matrix::zeros(2, 2);
            let mut gb = vec![0.0; 2];
            layer.backward(&x, &gy, &mut gw, &mut gb);
            layer.apply_grads(&gw, &gb, 0.5);
            assert!(loss <= prev + 1e-9, "loss went up: {prev} -> {loss}");
            prev = loss;
        }
        assert!(prev < 0.1, "failed to fit toy problem: {prev}");
    }

    #[test]
    fn adam_converges_faster_than_sgd_on_ill_scaled_problem() {
        // Minimize f(x, y) = 100 x^2 + 0.01 y^2 from (1, 1): SGD with a
        // stable lr crawls along y; Adam's per-coordinate scaling does not.
        let run_sgd = |lr: f64, steps: usize| {
            let mut p = [1.0f64, 1.0];
            for _ in 0..steps {
                let g = [200.0 * p[0], 0.02 * p[1]];
                p[0] -= lr * g[0];
                p[1] -= lr * g[1];
            }
            100.0 * p[0] * p[0] + 0.01 * p[1] * p[1]
        };
        let run_adam = |lr: f64, steps: usize| {
            let mut p = [1.0f64, 1.0];
            let mut opt = Adam::new(2, lr);
            for _ in 0..steps {
                let g = [200.0 * p[0], 0.02 * p[1]];
                opt.step(&mut p, &g);
            }
            100.0 * p[0] * p[0] + 0.01 * p[1] * p[1]
        };
        let sgd = run_sgd(0.009, 200); // near the stability limit for x
        let adam = run_adam(0.05, 200);
        assert!(adam < sgd * 0.5, "adam {adam:.6} vs sgd {sgd:.6}");
    }

    #[test]
    fn adam_step_moves_against_gradient() {
        let mut p = [1.0f64];
        let mut opt = Adam::new(1, 0.1);
        opt.step(&mut p, &[2.0]);
        assert!(p[0] < 1.0);
        let before = p[0];
        opt.step(&mut p, &[-2.0]);
        // Momentum may carry through one reversed step, but repeated
        // negative gradients must push the parameter back up.
        for _ in 0..20 {
            opt.step(&mut p, &[-2.0]);
        }
        assert!(p[0] > before);
    }

    #[test]
    fn matrix_flat_views_roundtrip() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        m.as_mut_slice()[3] = 9.0;
        assert_eq!(m.get(1, 1), 9.0);
    }

    #[test]
    fn glorot_is_deterministic() {
        assert_eq!(Matrix::glorot(3, 3, 5), Matrix::glorot(3, 3, 5));
        assert_ne!(Matrix::glorot(3, 3, 5), Matrix::glorot(3, 3, 6));
    }
}
