//! DeepWalk-style embedding training: skip-gram with negative sampling over
//! weighted random walks.
//!
//! The paper positions PlatoD2GL as serving "various GNN models" in
//! production recommendation; random-walk embedding models (DeepWalk /
//! node2vec lineage) are the other workhorse family those systems train,
//! and they exercise the store through a different access pattern than
//! GraphSAGE: long sequential weighted walks plus non-neighbor negative
//! draws, all against the live dynamic topology.

use crate::ops::{NegativeSampler, RandomWalkSampler};
use platod2gl_cuckoo::CuckooMap;
use platod2gl_graph::{EdgeType, GraphStore, VertexId};
use platod2gl_mem::DeepSize;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Wrapper so the embedding map can account for its vectors.
#[derive(Clone, Debug)]
struct EmbRow(Vec<f64>);

impl DeepSize for EmbRow {
    fn heap_bytes(&self) -> usize {
        self.0.capacity() * 8
    }
}

/// A concurrent vertex-embedding table (lazily initialized rows).
pub struct EmbeddingTable {
    dim: usize,
    seed: u64,
    rows: CuckooMap<u64, EmbRow>,
}

impl EmbeddingTable {
    /// Create a table producing `dim`-wide embeddings.
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim >= 1);
        Self {
            dim,
            seed,
            rows: CuckooMap::with_capacity(1024),
        }
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of vertices with materialized embeddings.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no embedding has been materialized yet.
    pub fn is_empty(&self) -> bool {
        self.rows.len() == 0
    }

    fn init_row(&self, v: VertexId) -> EmbRow {
        // Deterministic small random init per vertex.
        let mut rng = StdRng::seed_from_u64(self.seed ^ v.raw().wrapping_mul(0x9e3779b97f4a7c15));
        EmbRow(
            (0..self.dim)
                .map(|_| rng.random_range(-0.05..0.05))
                .collect(),
        )
    }

    /// Read (a copy of) a vertex's embedding, initializing it if absent.
    pub fn get(&self, v: VertexId) -> Vec<f64> {
        self.rows
            .update_or_insert_with(v.raw(), || self.init_row(v), |r| r.0.clone())
    }

    /// Apply `f` to a vertex's embedding in place.
    fn update(&self, v: VertexId, f: impl FnOnce(&mut [f64])) {
        self.rows
            .update_or_insert_with(v.raw(), || self.init_row(v), |r| f(&mut r.0));
    }

    /// Cosine similarity between two vertices' embeddings.
    pub fn cosine(&self, a: VertexId, b: VertexId) -> f64 {
        let (ea, eb) = (self.get(a), self.get(b));
        let dot: f64 = ea.iter().zip(&eb).map(|(x, y)| x * y).sum();
        let na: f64 = ea.iter().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = eb.iter().map(|x| x * x).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }

    /// Total heap bytes of the table.
    pub fn bytes(&self) -> usize {
        self.rows.heap_bytes()
    }
}

/// DeepWalk hyperparameters.
#[derive(Clone, Debug)]
pub struct DeepWalkConfig {
    /// Relation to walk over.
    pub etype: EdgeType,
    /// Embedding width.
    pub dim: usize,
    /// Walk length per seed.
    pub walk_length: usize,
    /// Skip-gram window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// SGD learning rate.
    pub lr: f64,
    /// Init seed.
    pub seed: u64,
}

impl Default for DeepWalkConfig {
    fn default() -> Self {
        Self {
            etype: EdgeType::DEFAULT,
            dim: 32,
            walk_length: 20,
            window: 3,
            negatives: 3,
            lr: 0.05,
            seed: 17,
        }
    }
}

/// Skip-gram-with-negative-sampling trainer over weighted walks.
pub struct DeepWalkTrainer {
    cfg: DeepWalkConfig,
    walker: RandomWalkSampler,
    negatives: NegativeSampler,
    /// "Input" embeddings (the ones consumers read).
    pub embeddings: EmbeddingTable,
    /// "Output" (context) embeddings, SGNS's second table.
    context: EmbeddingTable,
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl DeepWalkTrainer {
    /// Create a trainer whose negative draws come from `candidates`
    /// (typically the full vertex set or the item side of a bipartite
    /// graph).
    pub fn new(cfg: DeepWalkConfig, candidates: Vec<VertexId>) -> Self {
        Self {
            walker: RandomWalkSampler::new(cfg.etype, cfg.walk_length),
            negatives: NegativeSampler::new(cfg.etype, candidates),
            embeddings: EmbeddingTable::new(cfg.dim, cfg.seed),
            context: EmbeddingTable::new(cfg.dim, cfg.seed ^ 0xabcd),
            cfg,
        }
    }

    /// One SGNS update for a (center, context, label) pair; returns its
    /// loss term.
    fn pair_step(&self, center: VertexId, other: VertexId, label: f64) -> f64 {
        let e_c = self.embeddings.get(center);
        let e_o = self.context.get(other);
        let dot: f64 = e_c.iter().zip(&e_o).map(|(x, y)| x * y).sum();
        let p = sigmoid(dot);
        let g = (p - label) * self.cfg.lr;
        self.embeddings.update(center, |row| {
            for (x, y) in row.iter_mut().zip(&e_o) {
                *x -= g * y;
            }
        });
        self.context.update(other, |row| {
            for (x, y) in row.iter_mut().zip(&e_c) {
                *x -= g * y;
            }
        });
        if label > 0.5 {
            -p.max(1e-12).ln()
        } else {
            -(1.0 - p).max(1e-12).ln()
        }
    }

    /// Walk from each seed and train on every in-window pair plus sampled
    /// negatives; returns the mean loss over pairs.
    pub fn train_epoch<S: GraphStore + ?Sized>(
        &self,
        store: &S,
        seeds: &[VertexId],
        rng: &mut dyn RngCore,
    ) -> f64 {
        let walks = self.walker.sample(store, seeds, rng);
        let mut loss = 0.0;
        let mut pairs = 0usize;
        for walk in &walks {
            for (i, &center) in walk.iter().enumerate() {
                let lo = i.saturating_sub(self.cfg.window);
                let hi = (i + self.cfg.window + 1).min(walk.len());
                for &ctx in &walk[lo..hi] {
                    if ctx == center {
                        continue;
                    }
                    loss += self.pair_step(center, ctx, 1.0);
                    pairs += 1;
                    for neg in self
                        .negatives
                        .sample(store, center, self.cfg.negatives, rng)
                    {
                        loss += self.pair_step(center, neg, 0.0);
                        pairs += 1;
                    }
                }
            }
        }
        if pairs == 0 {
            0.0
        } else {
            loss / pairs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platod2gl_graph::Edge;
    use platod2gl_storage::DynamicGraphStore;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }

    /// Two 10-vertex cliques joined by a single bridge edge.
    fn two_cliques() -> (DynamicGraphStore, Vec<VertexId>) {
        let store = DynamicGraphStore::with_defaults();
        let mut vertices = Vec::new();
        for base in [0u64, 100] {
            for i in 0..10 {
                vertices.push(v(base + i));
                for j in 0..10 {
                    if i != j {
                        store.insert_edge(Edge::new(v(base + i), v(base + j), 1.0));
                    }
                }
            }
        }
        store.insert_edge(Edge::new(v(0), v(100), 0.05));
        store.insert_edge(Edge::new(v(100), v(0), 0.05));
        (store, vertices)
    }

    #[test]
    fn embedding_table_is_deterministic_and_lazy() {
        let t = EmbeddingTable::new(8, 3);
        assert!(t.is_empty());
        let a = t.get(v(5));
        assert_eq!(a.len(), 8);
        assert_eq!(t.get(v(5)), a, "stable across reads");
        assert_eq!(t.len(), 1);
        let t2 = EmbeddingTable::new(8, 3);
        assert_eq!(t2.get(v(5)), a, "same seed, same init");
        let t3 = EmbeddingTable::new(8, 4);
        assert_ne!(t3.get(v(5)), a, "different seed, different init");
    }

    #[test]
    fn cosine_of_identical_vertices_is_one() {
        let t = EmbeddingTable::new(8, 1);
        assert!((t.cosine(v(1), v(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn training_loss_decreases() {
        let (store, vertices) = two_cliques();
        let trainer = DeepWalkTrainer::new(
            DeepWalkConfig {
                dim: 16,
                walk_length: 10,
                ..Default::default()
            },
            vertices.clone(),
        );
        let mut rng = StdRng::seed_from_u64(2);
        let first = trainer.train_epoch(&store, &vertices, &mut rng);
        let mut last = first;
        for _ in 0..15 {
            last = trainer.train_epoch(&store, &vertices, &mut rng);
        }
        assert!(
            last < first * 0.8,
            "SGNS loss should drop: {first} -> {last}"
        );
    }

    #[test]
    fn communities_separate_in_embedding_space() {
        let (store, vertices) = two_cliques();
        let trainer = DeepWalkTrainer::new(DeepWalkConfig::default(), vertices.clone());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..25 {
            trainer.train_epoch(&store, &vertices, &mut rng);
        }
        // Mean intra-clique similarity must exceed cross-clique similarity.
        let intra =
            trainer.embeddings.cosine(v(1), v(2)) + trainer.embeddings.cosine(v(101), v(102));
        let cross =
            trainer.embeddings.cosine(v(1), v(101)) + trainer.embeddings.cosine(v(2), v(102));
        assert!(
            intra / 2.0 > cross / 2.0 + 0.1,
            "intra {intra:.3} vs cross {cross:.3}"
        );
    }

    #[test]
    fn training_tracks_dynamic_graph() {
        // After retargeting the bridge vertex's edges to the other clique,
        // continued training pulls it across.
        let (store, vertices) = two_cliques();
        let trainer = DeepWalkTrainer::new(DeepWalkConfig::default(), vertices.clone());
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..15 {
            trainer.train_epoch(&store, &vertices, &mut rng);
        }
        // Vertex 9 defects: drop its clique-A edges, join clique B.
        for j in 0..10u64 {
            if j != 9 {
                store.delete_edge(v(9), v(j), EdgeType::DEFAULT);
                store.delete_edge(v(j), v(9), EdgeType::DEFAULT);
            }
        }
        for j in 0..10u64 {
            store.insert_edge(Edge::new(v(9), v(100 + j), 1.0));
            store.insert_edge(Edge::new(v(100 + j), v(9), 1.0));
        }
        for _ in 0..25 {
            trainer.train_epoch(&store, &vertices, &mut rng);
        }
        let to_new = trainer.embeddings.cosine(v(9), v(105));
        let to_old = trainer.embeddings.cosine(v(9), v(5));
        assert!(
            to_new > to_old,
            "defector should now resemble clique B: new {to_new:.3} vs old {to_old:.3}"
        );
    }
}
