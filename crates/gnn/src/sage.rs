//! GraphSAGE over the dynamic store: the paper's Eq. 1 with mean
//! aggregation, sampled fixed-fanout neighborhoods and minibatch SGD.
//!
//! Each minibatch materializes a "node flow": `nodes[0]` are the seeds and
//! `nodes[d+1]` holds `fanout_d` sampled (self-padded) neighbors per node of
//! depth `d`, so depth `d+1` has exactly `|nodes[d]| * fanout_d` rows and
//! mean-pooling is a reshape. Layer `l` then computes
//! `h^l_v = ReLU(h^{l-1}_v W_self + mean(h^{l-1}_u) W_neigh + b)` for every
//! depth it is still needed at — the standard sampled-GraphSAGE dataflow.

#![allow(clippy::needless_range_loop)] // index math reads clearer than enumerate chains here

use crate::features::FeatureProvider;
use crate::nn::{softmax_cross_entropy, Dense, Matrix};
use crate::ops::NeighborSampler;
use platod2gl_graph::{EdgeType, GraphStore, VertexId};
use rand::RngCore;

/// One GraphSAGE layer: self and neighbor transforms plus bias and ReLU.
#[derive(Clone, Debug)]
pub struct SageLayer {
    w_self: Matrix,
    w_neigh: Matrix,
    bias: Vec<f64>,
}

/// Accumulated parameter gradients for one layer.
struct SageGrads {
    gw_self: Matrix,
    gw_neigh: Matrix,
    gbias: Vec<f64>,
}

impl SageLayer {
    fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        Self {
            w_self: Matrix::glorot(in_dim, out_dim, seed),
            w_neigh: Matrix::glorot(in_dim, out_dim, seed ^ 0xdead_beef),
            bias: vec![0.0; out_dim],
        }
    }

    fn out_dim(&self) -> usize {
        self.w_self.cols()
    }

    /// `ReLU(h_self W_self + pooled W_neigh + b)`.
    fn forward(&self, h_self: &Matrix, pooled: &Matrix) -> Matrix {
        let mut z = h_self.matmul(&self.w_self);
        z.add_assign(&pooled.matmul(&self.w_neigh));
        z.add_row_broadcast(&self.bias);
        z.relu()
    }

    /// Backward through the layer; returns (grad_h_self, grad_pooled).
    fn backward(
        &self,
        h_self: &Matrix,
        pooled: &Matrix,
        activated: &Matrix,
        grad_out: &Matrix,
        grads: &mut SageGrads,
    ) -> (Matrix, Matrix) {
        let gz = Matrix::relu_backward(grad_out, activated);
        grads.gw_self.add_assign(&h_self.t_matmul(&gz));
        grads.gw_neigh.add_assign(&pooled.t_matmul(&gz));
        for r in 0..gz.rows() {
            for c in 0..gz.cols() {
                grads.gbias[c] += gz.get(r, c);
            }
        }
        (gz.matmul_t(&self.w_self), gz.matmul_t(&self.w_neigh))
    }

    fn apply(&mut self, grads: &SageGrads, lr: f64) {
        for r in 0..self.w_self.rows() {
            for c in 0..self.w_self.cols() {
                *self.w_self.get_mut(r, c) -= lr * grads.gw_self.get(r, c);
                *self.w_neigh.get_mut(r, c) -= lr * grads.gw_neigh.get(r, c);
            }
        }
        for (b, g) in self.bias.iter_mut().zip(&grads.gbias) {
            *b -= lr * g;
        }
    }
}

/// Network hyperparameters.
#[derive(Clone, Debug)]
pub struct SageNetConfig {
    /// Input feature width.
    pub feature_dim: usize,
    /// Hidden width of every GraphSAGE layer.
    pub hidden_dim: usize,
    /// Output classes.
    pub num_classes: usize,
    /// Per-layer sampling fanouts; the length sets the number of layers
    /// (hops).
    pub fanouts: Vec<usize>,
    /// Relation to sample over.
    pub etype: EdgeType,
    /// SGD learning rate.
    pub lr: f64,
    /// Parameter-init and sampling seed.
    pub seed: u64,
}

impl Default for SageNetConfig {
    fn default() -> Self {
        Self {
            feature_dim: 16,
            hidden_dim: 32,
            num_classes: 2,
            fanouts: vec![5, 5],
            etype: EdgeType::DEFAULT,
            lr: 0.05,
            seed: 42,
        }
    }
}

/// Per-step training metrics.
#[derive(Clone, Copy, Debug)]
pub struct TrainStats {
    pub loss: f64,
    pub accuracy: f64,
}

/// A stacked GraphSAGE classifier trained by minibatch SGD against any
/// [`GraphStore`].
pub struct SageNet {
    cfg: SageNetConfig,
    layers: Vec<SageLayer>,
    classifier: Dense,
}

impl SageNet {
    /// Build with Glorot-initialized parameters.
    pub fn new(cfg: SageNetConfig) -> Self {
        assert!(!cfg.fanouts.is_empty(), "need at least one layer");
        let mut layers = Vec::with_capacity(cfg.fanouts.len());
        let mut in_dim = cfg.feature_dim;
        for l in 0..cfg.fanouts.len() {
            layers.push(SageLayer::new(in_dim, cfg.hidden_dim, cfg.seed + l as u64));
            in_dim = cfg.hidden_dim;
        }
        let classifier = Dense::new(cfg.hidden_dim, cfg.num_classes, cfg.seed ^ 0x5151);
        Self {
            cfg,
            layers,
            classifier,
        }
    }

    /// Number of GraphSAGE layers (= hops).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The network's hyperparameters (pipelines validate their sampling
    /// plan against `fanouts` / `feature_dim` before producing blocks).
    pub fn config(&self) -> &SageNetConfig {
        &self.cfg
    }

    /// Sample the node flow for a seed batch: `nodes[d]` for d in `0..=L`.
    fn node_flow<S: GraphStore + ?Sized>(
        &self,
        store: &S,
        seeds: &[VertexId],
        rng: &mut dyn RngCore,
    ) -> Vec<Vec<VertexId>> {
        let mut nodes = vec![seeds.to_vec()];
        for (d, &fanout) in self.cfg.fanouts.iter().enumerate() {
            let sampler = NeighborSampler::new(self.cfg.etype, fanout);
            let next = sampler.sample_padded(store, &nodes[d], rng);
            nodes.push(next);
        }
        nodes
    }

    fn feature_matrix(&self, provider: &dyn FeatureProvider, nodes: &[VertexId]) -> Matrix {
        crate::features::gather_features(provider, nodes, self.cfg.feature_dim)
    }

    /// Full forward pass, caching every intermediate for backprop.
    /// Returns `(logits, caches, h)` where `h[l][d]` is the embedding of
    /// depth-`d` nodes after `l` layers.
    fn forward<S: GraphStore + ?Sized>(
        &self,
        store: &S,
        provider: &dyn FeatureProvider,
        seeds: &[VertexId],
        rng: &mut dyn RngCore,
    ) -> (Matrix, Vec<Vec<Matrix>>, Vec<Vec<Matrix>>) {
        let nf = self.node_flow(store, seeds, rng);
        let feats = nf
            .iter()
            .map(|nodes| self.feature_matrix(provider, nodes))
            .collect();
        self.forward_from_features(feats)
    }

    /// Forward pass over pre-gathered depth features (`feats[d]` is the
    /// feature matrix of depth-`d` nodes of an already-sampled node flow).
    /// This is the entry point for pipelined training, where sampling and
    /// feature gathering happened on a prefetch worker.
    fn forward_from_features(
        &self,
        feats: Vec<Matrix>,
    ) -> (Matrix, Vec<Vec<Matrix>>, Vec<Vec<Matrix>>) {
        let num_layers = self.layers.len();
        // h[0][d] = raw features at depth d.
        let mut h: Vec<Vec<Matrix>> = Vec::with_capacity(num_layers + 1);
        h.push(feats);
        // pooled[l][d] caches the mean-pooled neighbor input of layer l+1 at
        // depth d (needed for backward).
        let mut pooled_cache: Vec<Vec<Matrix>> = Vec::with_capacity(num_layers);
        for l in 0..num_layers {
            let depths = num_layers - l; // layer l+1 output exists for d < depths
            let mut level = Vec::with_capacity(depths);
            let mut pooled_level = Vec::with_capacity(depths);
            for d in 0..depths {
                let pooled = h[l][d + 1].group_mean(self.cfg.fanouts[d]);
                let out = self.layers[l].forward(&h[l][d], &pooled);
                pooled_level.push(pooled);
                level.push(out);
            }
            pooled_cache.push(pooled_level);
            h.push(level);
        }
        let logits = self.classifier.forward(&h[num_layers][0]);
        (logits, pooled_cache, h)
    }

    /// Final-layer embeddings for a seed batch (one row per seed) — the
    /// representation downstream link scorers and ANN indexes consume.
    pub fn embed<S: GraphStore + ?Sized>(
        &self,
        store: &S,
        provider: &dyn FeatureProvider,
        seeds: &[VertexId],
        rng: &mut dyn RngCore,
    ) -> Matrix {
        let num_layers = self.layers.len();
        let (_, _, mut h) = self.forward(store, provider, seeds, rng);
        h.swap_remove(num_layers).swap_remove(0)
    }

    /// Predict class indices for a seed batch.
    pub fn predict<S: GraphStore + ?Sized>(
        &self,
        store: &S,
        provider: &dyn FeatureProvider,
        seeds: &[VertexId],
        rng: &mut dyn RngCore,
    ) -> Vec<usize> {
        let (logits, _, _) = self.forward(store, provider, seeds, rng);
        (0..logits.rows())
            .map(|r| {
                let row = logits.row(r);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(i, _)| i)
                    .expect("non-empty row")
            })
            .collect()
    }

    /// One SGD step on a labeled minibatch; returns loss and batch accuracy.
    pub fn train_step<S: GraphStore + ?Sized>(
        &mut self,
        store: &S,
        provider: &dyn FeatureProvider,
        seeds: &[VertexId],
        labels: &[usize],
        rng: &mut dyn RngCore,
    ) -> TrainStats {
        assert_eq!(seeds.len(), labels.len());
        let nf = self.node_flow(store, seeds, rng);
        let feats = nf
            .iter()
            .map(|nodes| self.feature_matrix(provider, nodes))
            .collect();
        self.train_step_features(feats, labels)
    }

    /// One SGD step on a pre-sampled, pre-gathered minibatch block:
    /// `feats[d]` holds the depth-`d` feature matrix of a padded node flow
    /// (`feats[d + 1].rows() == feats[d].rows() * fanouts[d]`, seeds at
    /// depth 0). Sampling and gathering can therefore run on prefetch
    /// workers while this step consumes earlier blocks.
    pub fn train_step_features(&mut self, feats: Vec<Matrix>, labels: &[usize]) -> TrainStats {
        let num_layers = self.layers.len();
        assert_eq!(
            feats.len(),
            num_layers + 1,
            "need one feature matrix per node-flow depth"
        );
        assert_eq!(feats[0].rows(), labels.len(), "one label per seed row");
        for (d, &fanout) in self.cfg.fanouts.iter().enumerate() {
            assert_eq!(
                feats[d + 1].rows(),
                feats[d].rows() * fanout,
                "depth {} rows must equal parent rows x fanout",
                d + 1
            );
        }
        for (d, m) in feats.iter().enumerate() {
            assert_eq!(
                m.cols(),
                self.cfg.feature_dim,
                "depth {d} feature width mismatch"
            );
        }
        let (logits, pooled_cache, h) = self.forward_from_features(feats);
        let (loss, grad_logits) = softmax_cross_entropy(&logits, labels);
        let accuracy = {
            let mut correct = 0usize;
            for r in 0..logits.rows() {
                let row = logits.row(r);
                let pred = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(i, _)| i)
                    .expect("non-empty row");
                if pred == labels[r] {
                    correct += 1;
                }
            }
            correct as f64 / labels.len() as f64
        };

        // Classifier backward.
        let mut gw_cls = Matrix::zeros(self.cfg.hidden_dim, self.cfg.num_classes);
        let mut gb_cls = vec![0.0; self.cfg.num_classes];
        let grad_top =
            self.classifier
                .backward(&h[num_layers][0], &grad_logits, &mut gw_cls, &mut gb_cls);

        // Layer grads, accumulated across depths.
        let mut layer_grads: Vec<SageGrads> = self
            .layers
            .iter()
            .map(|l| SageGrads {
                gw_self: Matrix::zeros(l.w_self.rows(), l.w_self.cols()),
                gw_neigh: Matrix::zeros(l.w_neigh.rows(), l.w_neigh.cols()),
                gbias: vec![0.0; l.out_dim()],
            })
            .collect();

        // grads[d] = dL/d h[l][d] for the current level l.
        let mut grads: Vec<Option<Matrix>> = vec![None; num_layers + 2];
        grads[0] = Some(grad_top);
        for l in (0..num_layers).rev() {
            let depths = num_layers - l;
            let mut next: Vec<Option<Matrix>> = vec![None; num_layers + 2];
            for (d, maybe_g) in grads.iter().enumerate().take(depths) {
                let Some(g) = maybe_g else { continue };
                let (g_self, g_pooled) = self.layers[l].backward(
                    &h[l][d],
                    &pooled_cache[l][d],
                    &h[l + 1][d],
                    g,
                    &mut layer_grads[l],
                );
                match &mut next[d] {
                    Some(acc) => acc.add_assign(&g_self),
                    slot => *slot = Some(g_self),
                }
                let spread = Matrix::group_mean_backward(&g_pooled, self.cfg.fanouts[d]);
                match &mut next[d + 1] {
                    Some(acc) => acc.add_assign(&spread),
                    slot => *slot = Some(spread),
                }
            }
            grads = next;
        }

        // SGD updates.
        self.classifier.apply_grads(&gw_cls, &gb_cls, self.cfg.lr);
        for (layer, g) in self.layers.iter_mut().zip(&layer_grads) {
            layer.apply(g, self.cfg.lr);
        }
        TrainStats { loss, accuracy }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::HashFeatures;
    use platod2gl_graph::Edge;
    use platod2gl_storage::DynamicGraphStore;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two-community graph: vertices of the same HashFeatures label connect
    /// densely, cross-community edges are rare.
    fn community_graph(
        provider: &HashFeatures,
        n: u64,
    ) -> (DynamicGraphStore, Vec<VertexId>, Vec<usize>) {
        let store = DynamicGraphStore::with_defaults();
        let vertices: Vec<VertexId> = (0..n).map(VertexId).collect();
        let labels: Vec<usize> = vertices.iter().map(|&v| provider.label(v)).collect();
        let by_label: Vec<Vec<VertexId>> = (0..2)
            .map(|c| {
                vertices
                    .iter()
                    .copied()
                    .filter(|&v| provider.label(v) == c)
                    .collect()
            })
            .collect();
        let mut state = 0x1234_5678u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for &v in &vertices {
            let c = provider.label(v);
            for _ in 0..6 {
                // 90% intra-community edges.
                let pool = if next() % 10 < 9 {
                    &by_label[c]
                } else {
                    &by_label[1 - c]
                };
                let dst = pool[(next() % pool.len() as u64) as usize];
                if dst != v {
                    store.insert_edge(Edge::new(v, dst, 1.0));
                }
            }
        }
        (store, vertices, labels)
    }

    #[test]
    fn training_reduces_loss_and_learns() {
        let provider = HashFeatures::new(16, 2, 7);
        let (store, vertices, labels) = community_graph(&provider, 300);
        let mut net = SageNet::new(SageNetConfig {
            fanouts: vec![4, 4],
            lr: 0.1,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let mut first_loss = None;
        let mut last = TrainStats {
            loss: f64::INFINITY,
            accuracy: 0.0,
        };
        for epoch in 0..15 {
            for chunk in vertices.chunks(64) {
                let batch_labels: Vec<usize> =
                    chunk.iter().map(|v| labels[v.raw() as usize]).collect();
                last = net.train_step(&store, &provider, chunk, &batch_labels, &mut rng);
                first_loss.get_or_insert(last.loss);
            }
            let _ = epoch;
        }
        let first = first_loss.expect("ran at least one step");
        assert!(
            last.loss < first * 0.6,
            "loss did not drop: {first} -> {}",
            last.loss
        );
        assert!(last.accuracy > 0.8, "final accuracy {}", last.accuracy);
    }

    #[test]
    fn predictions_match_trained_labels() {
        let provider = HashFeatures::new(16, 2, 3);
        let (store, vertices, labels) = community_graph(&provider, 200);
        let mut net = SageNet::new(SageNetConfig {
            fanouts: vec![3],
            lr: 0.1,
            hidden_dim: 16,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..30 {
            for chunk in vertices.chunks(64) {
                let batch_labels: Vec<usize> =
                    chunk.iter().map(|v| labels[v.raw() as usize]).collect();
                net.train_step(&store, &provider, chunk, &batch_labels, &mut rng);
            }
        }
        let preds = net.predict(&store, &provider, &vertices, &mut rng);
        let correct = preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
        assert!(
            correct as f64 / labels.len() as f64 > 0.85,
            "accuracy {}",
            correct as f64 / labels.len() as f64
        );
    }

    #[test]
    fn embed_returns_one_row_per_seed() {
        let provider = HashFeatures::new(8, 2, 5);
        let store = DynamicGraphStore::with_defaults();
        store.insert_edge(Edge::new(VertexId(1), VertexId(2), 1.0));
        let net = SageNet::new(SageNetConfig {
            feature_dim: 8,
            hidden_dim: 6,
            fanouts: vec![2, 2],
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(4);
        let e = net.embed(
            &store,
            &provider,
            &[VertexId(1), VertexId(2), VertexId(3)],
            &mut rng,
        );
        assert_eq!((e.rows(), e.cols()), (3, 6));
        // Deterministic under a fixed rng seed.
        let mut rng = StdRng::seed_from_u64(4);
        let e2 = net.embed(
            &store,
            &provider,
            &[VertexId(1), VertexId(2), VertexId(3)],
            &mut rng,
        );
        assert_eq!(e, e2);
    }

    #[test]
    fn single_layer_shapes_are_consistent() {
        let provider = HashFeatures::new(8, 2, 1);
        let store = DynamicGraphStore::with_defaults();
        store.insert_edge(Edge::new(VertexId(1), VertexId(2), 1.0));
        let net = SageNet::new(SageNetConfig {
            feature_dim: 8,
            hidden_dim: 4,
            num_classes: 3,
            fanouts: vec![2],
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(3);
        let (logits, _, h) = net.forward(&store, &provider, &[VertexId(1), VertexId(9)], &mut rng);
        assert_eq!((logits.rows(), logits.cols()), (2, 3));
        assert_eq!(h[0].len(), 2); // depths 0 and 1
        assert_eq!(h[0][1].rows(), 4); // 2 seeds * fanout 2
        assert_eq!(h[1].len(), 1);
        assert_eq!(h[1][0].rows(), 2);
    }

    #[test]
    fn train_step_features_matches_sampled_training() {
        // Feeding an externally sampled+gathered block through
        // train_step_features must learn exactly like the store-coupled
        // train_step path: both are the same math on the same node flow.
        let provider = HashFeatures::new(16, 2, 7);
        let (store, vertices, labels) = community_graph(&provider, 200);
        let cfg = SageNetConfig {
            fanouts: vec![4, 4],
            lr: 0.1,
            ..Default::default()
        };
        let mut net = SageNet::new(cfg);
        let mut rng = StdRng::seed_from_u64(9);
        let mut first = None;
        let mut last = f64::INFINITY;
        for _ in 0..10 {
            for chunk in vertices.chunks(64) {
                let batch_labels: Vec<usize> =
                    chunk.iter().map(|v| labels[v.raw() as usize]).collect();
                // External pipeline stand-in: sample the flow and gather
                // features outside the net, then feed the block in.
                let flow = net.node_flow(&store, chunk, &mut rng);
                let feats: Vec<Matrix> = flow
                    .iter()
                    .map(|nodes| {
                        crate::features::gather_features(&provider, nodes, net.cfg.feature_dim)
                    })
                    .collect();
                let stats = net.train_step_features(feats, &batch_labels);
                first.get_or_insert(stats.loss);
                last = stats.loss;
            }
        }
        let first = first.expect("ran");
        assert!(
            last < first * 0.6,
            "block training did not learn: {first} -> {last}"
        );
    }

    #[test]
    #[should_panic(expected = "rows must equal parent rows x fanout")]
    fn train_step_features_rejects_malformed_blocks() {
        let mut net = SageNet::new(SageNetConfig {
            feature_dim: 4,
            hidden_dim: 4,
            fanouts: vec![3],
            ..Default::default()
        });
        let feats = vec![Matrix::zeros(2, 4), Matrix::zeros(5, 4)]; // needs 6 rows
        net.train_step_features(feats, &[0, 1]);
    }

    #[test]
    fn isolated_seeds_train_without_panicking() {
        let provider = HashFeatures::new(8, 2, 5);
        let store = DynamicGraphStore::with_defaults(); // no edges at all
        let mut net = SageNet::new(SageNetConfig {
            feature_dim: 8,
            hidden_dim: 8,
            fanouts: vec![3, 3],
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(4);
        let seeds: Vec<VertexId> = (0..10).map(VertexId).collect();
        let labels: Vec<usize> = seeds.iter().map(|v| provider.label(*v)).collect();
        let stats = net.train_step(&store, &provider, &seeds, &labels, &mut rng);
        assert!(stats.loss.is_finite());
    }

    #[test]
    fn gradient_check_through_one_sage_layer() {
        // Finite differences through forward() on a fixed node flow: freeze
        // sampling by using a deterministic store (every vertex has exactly
        // one neighbor, itself-padded), so forward is a pure function of
        // parameters.
        let provider = HashFeatures::new(4, 2, 9);
        let store = DynamicGraphStore::with_defaults();
        store.insert_edge(Edge::new(VertexId(0), VertexId(1), 1.0));
        store.insert_edge(Edge::new(VertexId(1), VertexId(0), 1.0));
        let cfg = SageNetConfig {
            feature_dim: 4,
            hidden_dim: 3,
            num_classes: 2,
            fanouts: vec![1], // fanout 1 over single-neighbor vertices => deterministic
            lr: 0.0,          // do not move parameters during the check
            ..Default::default()
        };
        let seeds = [VertexId(0), VertexId(1)];
        let labels = [0usize, 1];
        let mut net = SageNet::new(cfg);
        // Analytic gradient of w_self[0][0] via a zero-lr train step.
        let mut rng = StdRng::seed_from_u64(5);
        let loss_at = |net: &SageNet, rng_seed: u64| {
            let mut r = StdRng::seed_from_u64(rng_seed);
            let (logits, _, _) = net.forward(&store, &provider, &seeds, &mut r);
            softmax_cross_entropy(&logits, &labels).0
        };
        // Capture analytic grads by re-implementing the step with lr=0 and
        // inspecting the numeric direction instead: perturb and compare.
        let base = loss_at(&net, 11);
        let eps = 1e-5;
        let orig = net.layers[0].w_self.get(0, 0);
        *net.layers[0].w_self.get_mut(0, 0) = orig + eps;
        let plus = loss_at(&net, 11);
        *net.layers[0].w_self.get_mut(0, 0) = orig;
        let numeric = (plus - base) / eps;
        // The loss surface must actually depend on the parameter.
        assert!(numeric.abs() > 1e-12 || base < 1e-9);
        // And a zero-lr train step must not change the loss.
        net.train_step(&store, &provider, &seeds, &labels, &mut rng);
        let after = loss_at(&net, 11);
        assert!((after - base).abs() < 1e-12, "lr=0 moved parameters");
    }
}
