//! Vertex feature providers.
//!
//! The trainer pulls a fixed-width `f64` feature vector per vertex. In
//! production these come from the attribute KV store; for synthetic
//! workloads a hash-based provider generates stable pseudo-features with a
//! controllable label signal.

use crate::nn::Matrix;
use bytes::Bytes;
use platod2gl_graph::VertexId;
use platod2gl_storage::AttributeStore;

/// Gather a `nodes.len() x dim` feature matrix from a provider — the
/// "feature gather" stage of the training pipeline, split out as a free
/// function so prefetch workers can run it without borrowing the model.
pub fn gather_features(provider: &dyn FeatureProvider, nodes: &[VertexId], dim: usize) -> Matrix {
    let mut m = Matrix::zeros(nodes.len(), dim);
    let mut buf = vec![0.0; dim];
    for (r, &v) in nodes.iter().enumerate() {
        provider.write_feature(v, &mut buf);
        m.set_row(r, &buf);
    }
    m
}

/// Supplies the input embedding `e_u^{(0)} = f_u` of the paper's Eq. 1.
pub trait FeatureProvider: Send + Sync {
    /// Feature width.
    fn dim(&self) -> usize;

    /// Write the vertex's feature vector into `out` (length [`dim`](Self::dim)).
    fn write_feature(&self, v: VertexId, out: &mut [f64]);

    /// Convenience: allocate and fill.
    fn feature(&self, v: VertexId) -> Vec<f64> {
        let mut out = vec![0.0; self.dim()];
        self.write_feature(v, &mut out);
        out
    }
}

/// Features decoded from the attribute store (little-endian `f32`s, the
/// common on-wire format for embedding services). Vertices without a stored
/// attribute get zeros.
pub struct AttributeFeatures<'a> {
    store: &'a AttributeStore,
    dim: usize,
}

impl<'a> AttributeFeatures<'a> {
    /// Wrap an attribute store, expecting `dim` `f32`s per vertex.
    pub fn new(store: &'a AttributeStore, dim: usize) -> Self {
        Self { store, dim }
    }

    /// Encode a feature vector into the store's byte format.
    pub fn encode(values: &[f64]) -> Bytes {
        let mut out = Vec::with_capacity(values.len() * 4);
        for &v in values {
            out.extend_from_slice(&(v as f32).to_le_bytes());
        }
        Bytes::from(out)
    }
}

impl FeatureProvider for AttributeFeatures<'_> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn write_feature(&self, v: VertexId, out: &mut [f64]) {
        out.fill(0.0);
        if let Some(bytes) = self.store.vertex(v) {
            for (i, chunk) in bytes.chunks_exact(4).take(self.dim).enumerate() {
                let arr: [u8; 4] = chunk.try_into().expect("4-byte chunk");
                out[i] = f32::from_le_bytes(arr) as f64;
            }
        }
    }
}

/// Deterministic pseudo-features: `dim` values in [-1, 1] derived from a
/// per-vertex hash, with the first coordinate carrying a class signal so
/// synthetic training tasks are learnable.
pub struct HashFeatures {
    dim: usize,
    /// Number of classes whose signal is injected into coordinate 0.
    classes: usize,
    seed: u64,
}

impl HashFeatures {
    /// Create a provider with `dim >= 1` features and `classes >= 1`.
    pub fn new(dim: usize, classes: usize, seed: u64) -> Self {
        assert!(dim >= 1 && classes >= 1);
        Self { dim, classes, seed }
    }

    /// The ground-truth class of a vertex (what a synthetic trainer should
    /// learn to predict).
    pub fn label(&self, v: VertexId) -> usize {
        (mix(v.raw() ^ self.seed) % self.classes as u64) as usize
    }
}

/// splitmix64 finalizer.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FeatureProvider for HashFeatures {
    fn dim(&self) -> usize {
        self.dim
    }

    fn write_feature(&self, v: VertexId, out: &mut [f64]) {
        let mut h = mix(v.raw() ^ self.seed);
        for (i, slot) in out.iter_mut().enumerate() {
            h = mix(h.wrapping_add(i as u64));
            *slot = (h as f64 / u64::MAX as f64) * 2.0 - 1.0;
        }
        // Inject a noisy class signal on coordinate 0.
        let label = self.label(v) as f64;
        out[0] = out[0] * 0.25 + (label / self.classes as f64) * 2.0 - 1.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_features_are_stable_and_bounded() {
        let p = HashFeatures::new(8, 3, 42);
        let a = p.feature(VertexId(123));
        let b = p.feature(VertexId(123));
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        for x in &a {
            assert!(x.abs() <= 2.0, "{x}");
        }
        assert_ne!(a, p.feature(VertexId(124)));
    }

    #[test]
    fn labels_cover_all_classes() {
        let p = HashFeatures::new(4, 3, 1);
        let mut seen = [false; 3];
        for v in 0..100u64 {
            seen[p.label(VertexId(v))] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn attribute_features_roundtrip() {
        let store = AttributeStore::new();
        let v = VertexId(9);
        store.set_vertex(v, AttributeFeatures::encode(&[0.5, -1.25, 3.0]));
        let p = AttributeFeatures::new(&store, 3);
        let f = p.feature(v);
        assert!((f[0] - 0.5).abs() < 1e-6);
        assert!((f[1] + 1.25).abs() < 1e-6);
        assert!((f[2] - 3.0).abs() < 1e-6);
        // Missing vertex => zeros.
        assert_eq!(p.feature(VertexId(10)), vec![0.0; 3]);
    }

    #[test]
    fn attribute_features_truncate_to_dim() {
        let store = AttributeStore::new();
        let v = VertexId(1);
        store.set_vertex(v, AttributeFeatures::encode(&[1.0, 2.0, 3.0, 4.0]));
        let p = AttributeFeatures::new(&store, 2);
        assert_eq!(p.feature(v), vec![1.0, 2.0]);
    }
}
