//! The sampling operators of the operator layer (paper Sec. III):
//! node sampling, neighbor sampling, subgraph sampling, and the multi-hop
//! metapath sampling used by the Sec. VII-C experiments.

use platod2gl_graph::{EdgeType, GraphStore, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::BTreeSet;

/// Node sampling: "samples a set of nodes from a whole graph". Seeds for
/// minibatch training are drawn from a registered universe (in production
/// the labeled-vertex set).
#[derive(Clone, Debug)]
pub struct NodeSampler {
    universe: Vec<VertexId>,
}

impl NodeSampler {
    /// Build from the set of candidate seed vertices.
    pub fn new(universe: Vec<VertexId>) -> Self {
        assert!(!universe.is_empty(), "empty seed universe");
        Self { universe }
    }

    /// Size of the universe.
    pub fn len(&self) -> usize {
        self.universe.len()
    }

    /// Whether the universe is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.universe.is_empty()
    }

    /// Draw `k` seeds uniformly with replacement.
    pub fn sample<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Vec<VertexId> {
        (0..k)
            .map(|_| self.universe[rng.random_range(0..self.universe.len())])
            .collect()
    }

    /// One shuffled epoch cut into minibatches (every vertex exactly once).
    pub fn epoch_batches(&self, batch_size: usize, seed: u64) -> Vec<Vec<VertexId>> {
        assert!(batch_size > 0);
        let mut order = self.universe.clone();
        order.shuffle(&mut StdRng::seed_from_u64(seed));
        order.chunks(batch_size).map(<[VertexId]>::to_vec).collect()
    }
}

/// Neighbor sampling: a fixed number of weighted neighbor draws per input
/// vertex (the paper's Fig. 10a-c workload: batches with 50 neighbors each).
#[derive(Clone, Copy, Debug)]
pub struct NeighborSampler {
    pub etype: EdgeType,
    pub fanout: usize,
}

impl NeighborSampler {
    /// Create a sampler for one relation.
    pub fn new(etype: EdgeType, fanout: usize) -> Self {
        Self { etype, fanout }
    }

    /// Sample per-vertex neighbor lists; vertices without out-edges get an
    /// empty list.
    pub fn sample<S: GraphStore + ?Sized>(
        &self,
        store: &S,
        batch: &[VertexId],
        rng: &mut dyn RngCore,
    ) -> Vec<Vec<VertexId>> {
        batch
            .iter()
            .map(|&v| store.sample_neighbors(v, self.etype, self.fanout, rng))
            .collect()
    }

    /// Sample up to `fanout` *distinct* neighbors per vertex (without
    /// replacement), by drawing with replacement and deduplicating until the
    /// target is met or the draws stop producing new vertices. Vertices with
    /// degree below the fanout return their whole (sampled-order)
    /// neighborhood.
    pub fn sample_unique<S: GraphStore + ?Sized>(
        &self,
        store: &S,
        batch: &[VertexId],
        rng: &mut dyn RngCore,
    ) -> Vec<Vec<VertexId>> {
        batch
            .iter()
            .map(|&v| {
                let degree = store.degree(v, self.etype);
                let target = self.fanout.min(degree);
                let mut seen = BTreeSet::new();
                let mut out = Vec::with_capacity(target);
                let mut budget = 8 * self.fanout.max(1);
                while out.len() < target && budget > 0 {
                    let draws = store.sample_neighbors(v, self.etype, target - out.len(), rng);
                    if draws.is_empty() {
                        break;
                    }
                    budget = budget.saturating_sub(draws.len());
                    for u in draws {
                        if seen.insert(u.raw()) {
                            out.push(u);
                        }
                    }
                }
                // Heavy weight skew can exhaust the rejection budget (one
                // hub neighbor soaks up every draw); top up exactly from
                // the neighbor list so callers always get `target` items.
                if out.len() < target {
                    for (u, _) in store.neighbors(v, self.etype) {
                        if out.len() == target {
                            break;
                        }
                        if seen.insert(u.raw()) {
                            out.push(u);
                        }
                    }
                }
                out
            })
            .collect()
    }

    /// Sample a flattened block of exactly `batch.len() * fanout` vertices,
    /// padding isolated vertices with themselves (self-loop fallback — the
    /// standard GraphSAGE treatment, keeping tensor shapes static).
    pub fn sample_padded<S: GraphStore + ?Sized>(
        &self,
        store: &S,
        batch: &[VertexId],
        rng: &mut dyn RngCore,
    ) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(batch.len() * self.fanout);
        for &v in batch {
            let mut n = store.sample_neighbors(v, self.etype, self.fanout, rng);
            if n.is_empty() {
                out.extend(std::iter::repeat_n(v, self.fanout));
            } else {
                while n.len() < self.fanout {
                    let fill = n[rng.next_u64() as usize % n.len()];
                    n.push(fill);
                }
                out.extend(n);
            }
        }
        out
    }
}

/// A sampled k-hop subgraph pivoted at a set of seeds.
#[derive(Clone, Debug, Default)]
pub struct SampledSubgraph {
    /// `layers[0]` are the seeds; `layers[h]` the (deduplicated) frontier
    /// after hop `h`.
    pub layers: Vec<Vec<VertexId>>,
    /// Sampled edges as (source, sampled neighbor) pairs, with multiplicity.
    pub edges: Vec<(VertexId, VertexId)>,
}

impl SampledSubgraph {
    /// Total distinct vertices across layers.
    pub fn num_vertices(&self) -> usize {
        let mut set = BTreeSet::new();
        for layer in &self.layers {
            set.extend(layer.iter().map(|v| v.raw()));
        }
        set.len()
    }
}

/// Subgraph sampling: "samples a subgraph pivoted at a given node"
/// (Sec. III), expanded hop by hop with per-hop fanouts — the 2-hop variant
/// is the paper's Fig. 10d-f workload.
#[derive(Clone, Debug)]
pub struct SubgraphSampler {
    pub etype: EdgeType,
    pub fanouts: Vec<usize>,
}

impl SubgraphSampler {
    /// Create with per-hop fanouts (length = number of hops).
    pub fn new(etype: EdgeType, fanouts: Vec<usize>) -> Self {
        assert!(!fanouts.is_empty(), "need at least one hop");
        Self { etype, fanouts }
    }

    /// Expand from the seeds.
    pub fn sample<S: GraphStore + ?Sized>(
        &self,
        store: &S,
        seeds: &[VertexId],
        rng: &mut dyn RngCore,
    ) -> SampledSubgraph {
        let mut sg = SampledSubgraph {
            layers: vec![seeds.to_vec()],
            edges: Vec::new(),
        };
        let mut frontier: Vec<VertexId> = seeds.to_vec();
        for &fanout in &self.fanouts {
            let mut next = BTreeSet::new();
            for &v in &frontier {
                for u in store.sample_neighbors(v, self.etype, fanout, rng) {
                    sg.edges.push((v, u));
                    next.insert(u);
                }
            }
            frontier = next.into_iter().collect();
            sg.layers.push(frontier.clone());
        }
        sg
    }
}

/// Metapath sampling: one relation per hop (e.g. User-Live → Live-Tag),
/// the heterogeneous multi-hop pattern of Sec. VII-C.
#[derive(Clone, Debug)]
pub struct MetapathSampler {
    /// Per-hop (relation, fanout).
    pub path: Vec<(EdgeType, usize)>,
}

impl MetapathSampler {
    /// Create from a typed path.
    pub fn new(path: Vec<(EdgeType, usize)>) -> Self {
        assert!(!path.is_empty(), "empty metapath");
        Self { path }
    }

    /// Expand seeds along the metapath; returns one (deduplicated) layer per
    /// hop, seeds first.
    pub fn sample<S: GraphStore + ?Sized>(
        &self,
        store: &S,
        seeds: &[VertexId],
        rng: &mut dyn RngCore,
    ) -> Vec<Vec<VertexId>> {
        let mut layers = vec![seeds.to_vec()];
        let mut frontier = seeds.to_vec();
        for &(etype, fanout) in &self.path {
            let mut next = BTreeSet::new();
            for &v in &frontier {
                for u in store.sample_neighbors(v, etype, fanout, rng) {
                    next.insert(u);
                }
            }
            frontier = next.into_iter().collect();
            layers.push(frontier.clone());
        }
        layers
    }
}

/// Weighted random walks (the sampling primitive of DeepWalk-style
/// embedding trainers and of the KnightKing engine the paper builds ITS
/// upon \[34\]): from each seed, repeatedly draw one weighted neighbor, with
/// an optional restart probability.
#[derive(Clone, Copy, Debug)]
pub struct RandomWalkSampler {
    pub etype: EdgeType,
    /// Steps per walk (walk length excluding the seed).
    pub length: usize,
    /// Probability of teleporting back to the seed before each step
    /// (0.0 = plain walk; >0 = rooted PPR-style walk).
    pub restart: f64,
}

impl RandomWalkSampler {
    /// A plain fixed-length walk sampler.
    pub fn new(etype: EdgeType, length: usize) -> Self {
        Self {
            etype,
            length,
            restart: 0.0,
        }
    }

    /// Enable restarts with the given probability.
    pub fn with_restart(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.restart = p;
        self
    }

    /// Walk from each seed; each returned walk starts with its seed and
    /// stops early at vertices with no out-edges in the relation.
    pub fn sample<S: GraphStore + ?Sized>(
        &self,
        store: &S,
        seeds: &[VertexId],
        rng: &mut dyn RngCore,
    ) -> Vec<Vec<VertexId>> {
        seeds
            .iter()
            .map(|&seed| {
                let mut walk = Vec::with_capacity(self.length + 1);
                walk.push(seed);
                let mut cur = seed;
                for _ in 0..self.length {
                    if self.restart > 0.0 {
                        let draw = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                        if draw < self.restart {
                            cur = seed;
                            walk.push(cur);
                            continue;
                        }
                    }
                    let next = store.sample_neighbors(cur, self.etype, 1, rng);
                    match next.first() {
                        Some(&v) => {
                            cur = v;
                            walk.push(cur);
                        }
                        // Dead end: a plain walk stops; a restarting walk
                        // teleports home (PPR semantics).
                        None if self.restart > 0.0 => {
                            cur = seed;
                            walk.push(cur);
                        }
                        None => break,
                    }
                }
                walk
            })
            .collect()
    }
}

/// node2vec second-order biased walks: after stepping `prev -> cur`, the
/// next neighbor `x` is reweighted by 1/p if `x == prev` (return), 1 if
/// `x` is also a neighbor of `prev` (triangle), and 1/q otherwise
/// (exploration). Implemented by rejection sampling over the store's
/// first-order weighted draws — the scalable scheme KnightKing \[34\]
/// introduced, needing no per-vertex alias blowup.
#[derive(Clone, Copy, Debug)]
pub struct Node2VecWalker {
    pub etype: EdgeType,
    /// Walk length (steps beyond the seed).
    pub length: usize,
    /// Return parameter `p` (large p discourages immediate backtracking).
    pub p: f64,
    /// In-out parameter `q` (large q keeps walks local / BFS-like).
    pub q: f64,
}

impl Node2VecWalker {
    /// Create a walker; `p = q = 1` degenerates to a first-order walk.
    pub fn new(etype: EdgeType, length: usize, p: f64, q: f64) -> Self {
        assert!(p > 0.0 && q > 0.0);
        Self {
            etype,
            length,
            p,
            q,
        }
    }

    /// Walk from each seed (each walk starts with its seed; dead ends stop
    /// the walk early).
    pub fn sample<S: GraphStore + ?Sized>(
        &self,
        store: &S,
        seeds: &[VertexId],
        rng: &mut dyn RngCore,
    ) -> Vec<Vec<VertexId>> {
        let max_bias = (1.0 / self.p).max(1.0).max(1.0 / self.q);
        seeds
            .iter()
            .map(|&seed| {
                let mut walk = Vec::with_capacity(self.length + 1);
                walk.push(seed);
                let mut prev: Option<VertexId> = None;
                let mut cur = seed;
                'steps: for _ in 0..self.length {
                    // Rejection loop: draw first-order, accept with
                    // probability bias/max_bias.
                    for _ in 0..32 {
                        let Some(&cand) = store.sample_neighbors(cur, self.etype, 1, rng).first()
                        else {
                            break 'steps; // dead end
                        };
                        let bias = match prev {
                            None => 1.0, // first hop is unbiased
                            Some(p_v) if cand == p_v => 1.0 / self.p,
                            Some(p_v) if store.edge_weight(p_v, cand, self.etype).is_some() => 1.0,
                            _ => 1.0 / self.q,
                        };
                        let draw = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                        if draw < bias / max_bias {
                            prev = Some(cur);
                            cur = cand;
                            walk.push(cur);
                            continue 'steps;
                        }
                    }
                    // All rejected (extreme p/q on an awkward vertex):
                    // take an unbiased step rather than stalling.
                    let Some(&cand) = store.sample_neighbors(cur, self.etype, 1, rng).first()
                    else {
                        break;
                    };
                    prev = Some(cur);
                    cur = cand;
                    walk.push(cur);
                }
                walk
            })
            .collect()
    }
}

/// Negative sampling for link-prediction training: draw vertices from a
/// candidate universe that are *not* out-neighbors of the source.
#[derive(Clone, Debug)]
pub struct NegativeSampler {
    pub etype: EdgeType,
    candidates: Vec<VertexId>,
}

impl NegativeSampler {
    /// Build over the candidate vertex universe (e.g. all items).
    pub fn new(etype: EdgeType, candidates: Vec<VertexId>) -> Self {
        assert!(!candidates.is_empty(), "empty candidate universe");
        Self { etype, candidates }
    }

    /// Draw up to `k` non-neighbors of `src` by rejection sampling; gives up
    /// (returning fewer) after `16 * k` tries, which only happens when the
    /// source is connected to nearly the whole universe.
    pub fn sample<S: GraphStore + ?Sized>(
        &self,
        store: &S,
        src: VertexId,
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(k);
        let mut tries = 0usize;
        while out.len() < k && tries < 16 * k.max(1) {
            tries += 1;
            let cand = self.candidates[(rng.next_u64() % self.candidates.len() as u64) as usize];
            if cand != src && store.edge_weight(src, cand, self.etype).is_none() {
                out.push(cand);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platod2gl_graph::Edge;
    use platod2gl_storage::DynamicGraphStore;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }

    /// 0 -> {1,2,3}; 1 -> {10,11}; 2 -> {20}; 3 -> {} ; 10 -> {100}
    fn chain_store() -> DynamicGraphStore {
        let s = DynamicGraphStore::with_defaults();
        for (a, b) in [(0, 1), (0, 2), (0, 3), (1, 10), (1, 11), (2, 20), (10, 100)] {
            s.insert_edge(Edge::new(v(a), v(b), 1.0));
        }
        s
    }

    #[test]
    fn node_sampler_epoch_covers_universe_once() {
        let ns = NodeSampler::new((0..10).map(v).collect());
        let batches = ns.epoch_batches(3, 1);
        assert_eq!(batches.len(), 4); // 3+3+3+1
        let mut all: Vec<u64> = batches.concat().iter().map(|x| x.raw()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn node_sampler_draws_from_universe() {
        let ns = NodeSampler::new(vec![v(5), v(6)]);
        let mut rng = StdRng::seed_from_u64(2);
        for s in ns.sample(100, &mut rng) {
            assert!(s.raw() == 5 || s.raw() == 6);
        }
    }

    #[test]
    fn neighbor_sampler_respects_adjacency() {
        let store = chain_store();
        let ns = NeighborSampler::new(EdgeType(0), 4);
        let mut rng = StdRng::seed_from_u64(3);
        let out = ns.sample(&store, &[v(0), v(3)], &mut rng);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].len(), 4);
        for u in &out[0] {
            assert!([1, 2, 3].contains(&u.raw()));
        }
        assert!(out[1].is_empty(), "vertex 3 has no out-edges");
    }

    #[test]
    fn unique_sampling_never_repeats() {
        let store = chain_store();
        let ns = NeighborSampler::new(EdgeType(0), 3);
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..50 {
            let out = ns.sample_unique(&store, &[v(0), v(1), v(2), v(3)], &mut rng);
            // v0 has exactly 3 neighbors: all three must appear once.
            let mut a: Vec<u64> = out[0].iter().map(|x| x.raw()).collect();
            a.sort_unstable();
            assert_eq!(a, vec![1, 2, 3]);
            // v1 has 2 neighbors < fanout: both, no repeats.
            let mut b: Vec<u64> = out[1].iter().map(|x| x.raw()).collect();
            b.sort_unstable();
            assert_eq!(b, vec![10, 11]);
            // v2 has 1 neighbor; v3 none.
            assert_eq!(out[2], vec![v(20)]);
            assert!(out[3].is_empty());
        }
    }

    #[test]
    fn unique_sampling_is_weight_biased_for_partial_draws() {
        // When fanout < degree, heavier neighbors should appear more often
        // across repeated draws.
        let store = DynamicGraphStore::with_defaults();
        for (i, w) in [(1u64, 10.0), (2, 1.0), (3, 1.0), (4, 1.0)] {
            store.insert_edge(Edge::new(v(0), v(i), w));
        }
        let ns = NeighborSampler::new(EdgeType(0), 2);
        let mut rng = StdRng::seed_from_u64(13);
        let mut heavy = 0usize;
        for _ in 0..2_000 {
            let out = ns.sample_unique(&store, &[v(0)], &mut rng);
            assert_eq!(out[0].len(), 2);
            if out[0].contains(&v(1)) {
                heavy += 1;
            }
        }
        assert!(
            heavy > 1_800,
            "weight-10 neighbor should almost always be drawn ({heavy}/2000)"
        );
    }

    #[test]
    fn padded_sampling_has_static_shape() {
        let store = chain_store();
        let ns = NeighborSampler::new(EdgeType(0), 3);
        let mut rng = StdRng::seed_from_u64(4);
        let flat = ns.sample_padded(&store, &[v(0), v(3), v(2)], &mut rng);
        assert_eq!(flat.len(), 9);
        // Isolated vertex 3 padded with itself.
        assert!(flat[3..6].iter().all(|u| u.raw() == 3));
        // Vertex 2 has one neighbor; all three slots must be 20.
        assert!(flat[6..9].iter().all(|u| u.raw() == 20));
    }

    #[test]
    fn subgraph_two_hops_reaches_grandchildren() {
        let store = chain_store();
        let sampler = SubgraphSampler::new(EdgeType(0), vec![3, 3]);
        let mut rng = StdRng::seed_from_u64(5);
        let sg = sampler.sample(&store, &[v(0)], &mut rng);
        assert_eq!(sg.layers.len(), 3);
        assert_eq!(sg.layers[0], vec![v(0)]);
        // Hop-1 frontier within {1,2,3}; hop-2 within {10,11,20}.
        for u in &sg.layers[1] {
            assert!([1, 2, 3].contains(&u.raw()));
        }
        for u in &sg.layers[2] {
            assert!([10, 11, 20].contains(&u.raw()), "got {u:?}");
        }
        // Every edge must exist in the store.
        for (a, b) in &sg.edges {
            assert!(store.edge_weight(*a, *b, EdgeType(0)).is_some());
        }
        assert!(sg.num_vertices() >= 3);
    }

    #[test]
    fn metapath_follows_relation_types() {
        let s = DynamicGraphStore::with_defaults();
        // Relation 0: 1 -> 2 ; relation 1: 2 -> 3. A path [0, 1] must reach
        // 3, a path [0, 0] must dead-end.
        s.insert_edge(Edge {
            src: v(1),
            dst: v(2),
            etype: EdgeType(0),
            weight: 1.0,
            ts: 0,
        });
        s.insert_edge(Edge {
            src: v(2),
            dst: v(3),
            etype: EdgeType(1),
            weight: 1.0,
            ts: 0,
        });
        let mut rng = StdRng::seed_from_u64(6);
        let layers = MetapathSampler::new(vec![(EdgeType(0), 2), (EdgeType(1), 2)]).sample(
            &s,
            &[v(1)],
            &mut rng,
        );
        assert_eq!(layers[1], vec![v(2)]);
        assert_eq!(layers[2], vec![v(3)]);
        let layers = MetapathSampler::new(vec![(EdgeType(0), 2), (EdgeType(0), 2)]).sample(
            &s,
            &[v(1)],
            &mut rng,
        );
        assert!(layers[2].is_empty());
    }

    #[test]
    fn random_walks_follow_edges_and_stop_at_dead_ends() {
        let store = chain_store();
        let walker = RandomWalkSampler::new(EdgeType(0), 5);
        let mut rng = StdRng::seed_from_u64(8);
        let walks = walker.sample(&store, &[v(0), v(3)], &mut rng);
        assert_eq!(walks.len(), 2);
        // Every consecutive pair must be a real edge.
        for walk in &walks {
            for pair in walk.windows(2) {
                assert!(
                    store.edge_weight(pair[0], pair[1], EdgeType(0)).is_some(),
                    "walk used non-edge {pair:?}"
                );
            }
        }
        // Seed 3 has no out-edges: its walk is just the seed.
        assert_eq!(walks[1], vec![v(3)]);
        // Longest possible chain from 0 is 0-1-10-100 (4 vertices).
        assert!(walks[0].len() >= 2 && walks[0].len() <= 4);
    }

    #[test]
    fn restart_walks_return_to_seed() {
        let store = chain_store();
        let walker = RandomWalkSampler::new(EdgeType(0), 50).with_restart(0.5);
        let mut rng = StdRng::seed_from_u64(9);
        let walks = walker.sample(&store, &[v(0)], &mut rng);
        let seed_visits = walks[0].iter().filter(|&&x| x == v(0)).count();
        assert!(
            seed_visits > 5,
            "restart=0.5 over 50 steps should revisit the seed often ({seed_visits})"
        );
    }

    #[test]
    fn node2vec_walks_follow_edges() {
        let store = chain_store();
        let walker = Node2VecWalker::new(EdgeType(0), 6, 2.0, 0.5);
        let mut rng = StdRng::seed_from_u64(14);
        for walk in walker.sample(&store, &[v(0), v(1)], &mut rng) {
            for pair in walk.windows(2) {
                assert!(
                    store.edge_weight(pair[0], pair[1], EdgeType(0)).is_some(),
                    "non-edge in walk: {pair:?}"
                );
            }
        }
    }

    #[test]
    fn high_p_discourages_backtracking() {
        // Undirected chain 0-1-2-...-19: from the middle, immediate
        // backtracks (x == prev) should be much rarer with p = 100 than
        // with p = 0.01.
        let store = DynamicGraphStore::with_defaults();
        for i in 0..19u64 {
            store.insert_edge(Edge::new(v(i), v(i + 1), 1.0));
            store.insert_edge(Edge::new(v(i + 1), v(i), 1.0));
        }
        let backtrack_rate = |p: f64, seed: u64| {
            let walker = Node2VecWalker::new(EdgeType(0), 30, p, 1.0);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut back = 0usize;
            let mut steps = 0usize;
            for walk in walker.sample(&store, &vec![v(10); 50], &mut rng) {
                for w in walk.windows(3) {
                    steps += 1;
                    if w[0] == w[2] {
                        back += 1;
                    }
                }
            }
            back as f64 / steps.max(1) as f64
        };
        let avoid = backtrack_rate(100.0, 1);
        let seek = backtrack_rate(0.01, 1);
        assert!(
            avoid < seek * 0.5,
            "p=100 backtrack {avoid:.3} should be far below p=0.01's {seek:.3}"
        );
    }

    #[test]
    fn negative_samples_are_never_neighbors() {
        let store = chain_store();
        let universe: Vec<VertexId> = (0..30).map(v).collect();
        let neg = NegativeSampler::new(EdgeType(0), universe);
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..20 {
            for cand in neg.sample(&store, v(0), 5, &mut rng) {
                assert_ne!(cand, v(0));
                assert!(
                    store.edge_weight(v(0), cand, EdgeType(0)).is_none(),
                    "sampled a real neighbor {cand:?}"
                );
            }
        }
    }

    #[test]
    fn negative_sampler_gives_up_gracefully_when_saturated() {
        let store = DynamicGraphStore::with_defaults();
        // Source connected to the entire (tiny) universe.
        for i in 1..4u64 {
            store.insert_edge(Edge::new(v(0), v(i), 1.0));
        }
        let neg = NegativeSampler::new(EdgeType(0), (0..4).map(v).collect());
        let mut rng = StdRng::seed_from_u64(11);
        let got = neg.sample(&store, v(0), 8, &mut rng);
        assert!(got.is_empty(), "no valid negatives exist: {got:?}");
    }

    #[test]
    fn operators_work_against_any_engine() {
        use platod2gl_baseline::{AliGraphStore, PlatoGlStore};
        use platod2gl_graph::GraphStore;
        let engines: Vec<Box<dyn GraphStore>> = vec![
            Box::new(DynamicGraphStore::with_defaults()),
            Box::new(PlatoGlStore::with_defaults()),
            Box::new(AliGraphStore::new()),
        ];
        for engine in &engines {
            for (a, b) in [(0u64, 1u64), (0, 2), (1, 3)] {
                engine.insert_edge(Edge::new(v(a), v(b), 1.0));
            }
            let mut rng = StdRng::seed_from_u64(7);
            let sampler = SubgraphSampler::new(EdgeType(0), vec![2, 2]);
            let sg = sampler.sample(engine.as_ref(), &[v(0)], &mut rng);
            assert_eq!(sg.layers.len(), 3, "engine {}", engine.name());
            assert!(!sg.layers[1].is_empty(), "engine {}", engine.name());
        }
    }
}
