//! # GNN operator layer and training substrate
//!
//! The top layer of PlatoD2GL (paper Fig. 2) exposes TensorFlow operators
//! for GNN training; this crate rebuilds that layer natively:
//!
//! * **Sampling operators** (paper Sec. III) — [`NodeSampler`] (sample seed
//!   nodes from the graph), [`NeighborSampler`] (fixed-fanout weighted
//!   neighbor sampling), [`SubgraphSampler`] (k-hop subgraphs pivoted at a
//!   seed) and [`MetapathSampler`] (multi-hop sampling over a sequence of
//!   edge types, the "multi-hops meta-paths sampling" of Sec. VII-C). All
//!   operate against any [`GraphStore`](platod2gl_graph::GraphStore), so
//!   PlatoD2GL and the baselines can be benchmarked under identical query
//!   plans.
//! * **Training substrate** — a from-scratch dense-matrix GraphSAGE
//!   implementation of the message-passing recurrence (paper Eq. 1):
//!   mean-aggregate sampled neighbor embeddings, combine with the
//!   self-embedding, ReLU, stacked `L` layers, softmax cross-entropy and
//!   SGD. It replaces the paper's TensorFlow dependency while exercising the
//!   same storage access pattern (per-minibatch k-hop sampling against the
//!   dynamic store).

mod deepwalk;
mod features;
mod nn;
mod ops;
mod sage;

pub use deepwalk::{DeepWalkConfig, DeepWalkTrainer, EmbeddingTable};
pub use features::{gather_features, AttributeFeatures, FeatureProvider, HashFeatures};
pub use nn::{softmax_cross_entropy, Adam, Dense, Matrix};
pub use ops::{
    MetapathSampler, NegativeSampler, NeighborSampler, Node2VecWalker, NodeSampler,
    RandomWalkSampler, SampledSubgraph, SubgraphSampler,
};
pub use sage::{SageLayer, SageNet, SageNetConfig, TrainStats};
