//! # Concurrent bucketized cuckoo hash map
//!
//! PlatoD2GL stores the per-vertex samtrees in "a concurrent hashmap
//! structure by exploiting Cuckoo hash" (Sec. IV-B, citing MemC3 \[7\] and
//! libcuckoo \[23\]). This crate provides that directory:
//!
//! * **Bucketized cuckoo hashing** — every key has two candidate buckets of
//!   [`SLOTS`] entries each (4-way set-associative, as in MemC3), giving
//!   >90 % load factors with two memory probes per lookup.
//! * **BFS path eviction** — when both candidate buckets are full, a
//!   breadth-first search finds the *shortest* chain of displacements that
//!   frees a slot (libcuckoo's improvement over random-walk kicking), and the
//!   chain is unwound back-to-front.
//! * **Shard-per-lock concurrency** — the table is split into
//!   [`CuckooMap::shard_count`] independent cuckoo tables, each guarded by a
//!   `parking_lot::Mutex`. A key's shard is derived from the high hash bits,
//!   so displacement chains never cross a lock boundary. This is the
//!   practical sharding used by production concurrent cuckoo maps.
//!
//! Hashing uses `std`'s SipHash through `BuildHasherDefault`, so layouts are
//! deterministic across runs — benchmark memory numbers are reproducible.

use parking_lot::Mutex;
use platod2gl_mem::DeepSize;
use std::collections::hash_map::DefaultHasher;
use std::hash::{BuildHasher, BuildHasherDefault, Hash};

/// Entries per bucket (4-way set-associative, as in MemC3).
pub const SLOTS: usize = 4;

/// Maximum number of buckets the BFS eviction explores before giving up and
/// growing the table.
const BFS_LIMIT: usize = 256;

/// Grow once a shard exceeds this load factor even if inserts still succeed,
/// to keep displacement chains short.
const MAX_LOAD: f64 = 0.90;

type HashBuilder = BuildHasherDefault<DefaultHasher>;

struct Entry<K, V> {
    hash: u64,
    key: K,
    value: V,
}

struct Bucket<K, V> {
    slots: [Option<Entry<K, V>>; SLOTS],
}

impl<K, V> Bucket<K, V> {
    fn empty() -> Self {
        Self {
            slots: [None, None, None, None],
        }
    }

    fn free_slot(&self) -> Option<usize> {
        self.slots.iter().position(Option::is_none)
    }

    fn find(&self, hash: u64, key: &K) -> Option<usize>
    where
        K: Eq,
    {
        self.slots
            .iter()
            .position(|s| s.as_ref().is_some_and(|e| e.hash == hash && &e.key == key))
    }
}

struct Shard<K, V> {
    buckets: Vec<Bucket<K, V>>,
    len: usize,
}

impl<K: Eq + Hash, V> Shard<K, V> {
    fn with_buckets(n: usize) -> Self {
        let n = n.next_power_of_two().max(2);
        Self {
            buckets: (0..n).map(|_| Bucket::empty()).collect(),
            len: 0,
        }
    }

    #[inline]
    fn mask(&self) -> u64 {
        (self.buckets.len() - 1) as u64
    }

    /// The key's two candidate buckets, derived from independent halves of
    /// the 64-bit hash (partial-key cuckoo hashing style).
    #[inline]
    fn candidates(&self, hash: u64) -> (usize, usize) {
        let b1 = (hash & self.mask()) as usize;
        // Mix the high half so the alternate bucket is independent of b1.
        let h2 = (hash >> 32) ^ (hash >> 17) ^ 0x9e37_79b9_7f4a_7c15;
        let b2 = (h2 & self.mask()) as usize;
        (b1, b2)
    }

    /// Alternate bucket of an entry currently living in `bucket`.
    #[inline]
    fn alternate(&self, hash: u64, bucket: usize) -> usize {
        let (b1, b2) = self.candidates(hash);
        if bucket == b1 {
            b2
        } else {
            b1
        }
    }

    fn get(&self, hash: u64, key: &K) -> Option<&V> {
        let (b1, b2) = self.candidates(hash);
        if let Some(s) = self.buckets[b1].find(hash, key) {
            return self.buckets[b1].slots[s].as_ref().map(|e| &e.value);
        }
        if b2 != b1 {
            if let Some(s) = self.buckets[b2].find(hash, key) {
                return self.buckets[b2].slots[s].as_ref().map(|e| &e.value);
            }
        }
        None
    }

    fn get_mut(&mut self, hash: u64, key: &K) -> Option<&mut V> {
        let (b1, b2) = self.candidates(hash);
        let hit = if self.buckets[b1].find(hash, key).is_some() {
            (b1, self.buckets[b1].find(hash, key).expect("just found"))
        } else if b2 != b1 {
            let s = self.buckets[b2].find(hash, key)?;
            (b2, s)
        } else {
            return None;
        };
        self.buckets[hit.0].slots[hit.1]
            .as_mut()
            .map(|e| &mut e.value)
    }

    fn remove(&mut self, hash: u64, key: &K) -> Option<V> {
        let (b1, b2) = self.candidates(hash);
        for b in [b1, b2] {
            if let Some(s) = self.buckets[b].find(hash, key) {
                let entry = self.buckets[b].slots[s].take().expect("found slot");
                self.len -= 1;
                return Some(entry.value);
            }
            if b1 == b2 {
                break;
            }
        }
        None
    }

    fn insert(&mut self, hash: u64, key: K, value: V) -> Option<V> {
        let (b1, b2) = self.candidates(hash);
        // Replace an existing mapping.
        for b in [b1, b2] {
            if let Some(s) = self.buckets[b].find(hash, &key) {
                let old = self.buckets[b].slots[s]
                    .replace(Entry { hash, key, value })
                    .expect("found slot");
                return Some(old.value);
            }
            if b1 == b2 {
                break;
            }
        }
        if self.len as f64 >= self.capacity() as f64 * MAX_LOAD {
            self.grow();
        }
        let mut entry = Entry { hash, key, value };
        loop {
            match self.place(entry) {
                Ok(()) => {
                    self.len += 1;
                    return None;
                }
                Err(back) => {
                    entry = back;
                    self.grow();
                }
            }
        }
    }

    /// Place an entry, displacing others along a BFS-discovered path if both
    /// candidate buckets are full. `Err` returns the entry when no path of
    /// length `<= BFS_LIMIT` exists.
    fn place(&mut self, entry: Entry<K, V>) -> Result<(), Entry<K, V>> {
        let (b1, b2) = self.candidates(entry.hash);
        for b in [b1, b2] {
            if let Some(s) = self.buckets[b].free_slot() {
                self.buckets[b].slots[s] = Some(entry);
                return Ok(());
            }
            if b1 == b2 {
                break;
            }
        }
        // BFS over buckets: node = bucket index, edge = moving one occupant
        // to its alternate bucket.
        struct Node {
            bucket: usize,
            /// Slot in the *parent* bucket whose occupant moved here.
            via_slot: usize,
            parent: usize, // index into `nodes`; usize::MAX for roots
        }
        let mut nodes: Vec<Node> = Vec::with_capacity(BFS_LIMIT);
        let mut seen = vec![false; self.buckets.len()];
        for b in [b1, b2] {
            if !seen[b] {
                seen[b] = true;
                nodes.push(Node {
                    bucket: b,
                    via_slot: usize::MAX,
                    parent: usize::MAX,
                });
            }
        }
        let mut cursor = 0;
        let mut found: Option<usize> = None;
        'bfs: while cursor < nodes.len() && nodes.len() < BFS_LIMIT {
            let bucket = nodes[cursor].bucket;
            for slot in 0..SLOTS {
                let occ = self.buckets[bucket].slots[slot]
                    .as_ref()
                    .expect("full bucket on BFS frontier");
                let alt = self.alternate(occ.hash, bucket);
                if seen[alt] {
                    continue;
                }
                seen[alt] = true;
                nodes.push(Node {
                    bucket: alt,
                    via_slot: slot,
                    parent: cursor,
                });
                if self.buckets[alt].free_slot().is_some() {
                    found = Some(nodes.len() - 1);
                    break 'bfs;
                }
            }
            cursor += 1;
        }
        let Some(mut at) = found else {
            return Err(entry);
        };
        // Unwind: move occupants back-to-front along the path.
        while nodes[at].parent != usize::MAX {
            let parent = nodes[at].parent;
            let from_bucket = nodes[parent].bucket;
            let from_slot = nodes[at].via_slot;
            let to_bucket = nodes[at].bucket;
            let free = self.buckets[to_bucket]
                .free_slot()
                .expect("path invariant: destination has a free slot");
            let moved = self.buckets[from_bucket].slots[from_slot]
                .take()
                .expect("path invariant: source slot occupied");
            debug_assert_eq!(self.alternate(moved.hash, from_bucket), to_bucket);
            self.buckets[to_bucket].slots[free] = Some(moved);
            at = parent;
        }
        let root = nodes[at].bucket;
        let free = self.buckets[root]
            .free_slot()
            .expect("root slot freed by unwinding");
        self.buckets[root].slots[free] = Some(entry);
        Ok(())
    }

    fn grow(&mut self) {
        let new_size = self.buckets.len() * 2;
        let old = std::mem::replace(
            &mut self.buckets,
            (0..new_size).map(|_| Bucket::empty()).collect(),
        );
        self.len = 0;
        for bucket in old {
            for e in bucket.slots.into_iter().flatten() {
                self.insert(e.hash, e.key, e.value);
            }
        }
    }

    fn capacity(&self) -> usize {
        self.buckets.len() * SLOTS
    }
}

/// A concurrent cuckoo hash map.
///
/// See the crate docs for the design. All methods take `&self`; internal
/// sharded mutexes provide interior mutability, so the map can be shared
/// across threads behind an `Arc` (or borrowed by scoped threads).
///
/// ```
/// use platod2gl_cuckoo::CuckooMap;
///
/// let map: CuckooMap<u64, String> = CuckooMap::new();
/// map.insert(1, "tree-1".into());
/// map.update(&1, |v| v.push_str("!"));
/// assert_eq!(map.get(&1).as_deref(), Some("tree-1!"));
/// assert_eq!(map.len(), 1);
/// assert_eq!(map.remove(&1).as_deref(), Some("tree-1!"));
/// ```
pub struct CuckooMap<K, V> {
    shards: Box<[Mutex<Shard<K, V>>]>,
    /// log2(shard count), used to take shard bits from the hash top.
    shard_bits: u32,
    hasher: HashBuilder,
}

impl<K: Eq + Hash, V> Default for CuckooMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash, V> CuckooMap<K, V> {
    /// Create a map with the default shard count (64).
    pub fn new() -> Self {
        Self::with_shards_and_capacity(64, 0)
    }

    /// Create a map pre-sized for `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_shards_and_capacity(64, capacity)
    }

    /// Create a map with an explicit shard count (rounded up to a power of
    /// two) and a total capacity hint.
    pub fn with_shards_and_capacity(shards: usize, capacity: usize) -> Self {
        let shards = shards.next_power_of_two().max(1);
        let per_shard_buckets = (capacity / shards / SLOTS).next_power_of_two().max(2);
        let shard_bits = shards.trailing_zeros();
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::with_buckets(per_shard_buckets)))
                .collect(),
            shard_bits,
            hasher: HashBuilder::default(),
        }
    }

    /// Number of independent lock shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn hash_of(&self, key: &K) -> u64 {
        self.hasher.hash_one(key)
    }

    /// Shard selection uses the hash's top bits; bucket selection inside the
    /// shard uses the low bits, so the two are independent.
    #[inline]
    fn shard_of(&self, hash: u64) -> usize {
        if self.shard_bits == 0 {
            0
        } else {
            (hash >> (64 - self.shard_bits)) as usize
        }
    }

    /// Insert a key-value pair, returning the previous value if present.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        let hash = self.hash_of(&key);
        let mut shard = self.shards[self.shard_of(hash)].lock();
        shard.insert(hash, key, value)
    }

    /// Remove a key, returning its value if present.
    pub fn remove(&self, key: &K) -> Option<V> {
        let hash = self.hash_of(key);
        let mut shard = self.shards[self.shard_of(hash)].lock();
        shard.remove(hash, key)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.read(key, |_| ()).is_some()
    }

    /// Run `f` over the value for `key`, if present, while holding the shard
    /// lock. Prefer this over [`get`](Self::get) when `V` is expensive to
    /// clone (the topology store's values are whole samtrees).
    pub fn read<R>(&self, key: &K, f: impl FnOnce(&V) -> R) -> Option<R> {
        let hash = self.hash_of(key);
        let shard = self.shards[self.shard_of(hash)].lock();
        shard.get(hash, key).map(f)
    }

    /// Run `f` over a mutable reference to the value for `key`, if present.
    pub fn update<R>(&self, key: &K, f: impl FnOnce(&mut V) -> R) -> Option<R> {
        let hash = self.hash_of(key);
        let mut shard = self.shards[self.shard_of(hash)].lock();
        shard.get_mut(hash, key).map(f)
    }

    /// Run `f` over the value for `key`, inserting `default()` first if the
    /// key is absent. This is the topology store's get-or-create-samtree
    /// primitive.
    pub fn update_or_insert_with<R>(
        &self,
        key: K,
        default: impl FnOnce() -> V,
        f: impl FnOnce(&mut V) -> R,
    ) -> R
    where
        K: Clone,
    {
        let hash = self.hash_of(&key);
        let mut shard = self.shards[self.shard_of(hash)].lock();
        if shard.get_mut(hash, &key).is_none() {
            shard.insert(hash, key.clone(), default());
        }
        let v = shard.get_mut(hash, &key).expect("just inserted");
        f(v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len).sum()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slot capacity across all shards (occupied + free). The gap
    /// between this and [`len`](Self::len) is the index overhead the paper's
    /// memory accounting charges to key-value stores.
    pub fn slot_capacity(&self) -> usize {
        self.shards.iter().map(|s| s.lock().capacity()).sum()
    }

    /// Visit every entry. Shards are visited one at a time, each under its
    /// lock; do not call map methods from inside `f`.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for shard in self.shards.iter() {
            let shard = shard.lock();
            for bucket in &shard.buckets {
                for e in bucket.slots.iter().flatten() {
                    f(&e.key, &e.value);
                }
            }
        }
    }

    /// Visit every entry mutably.
    pub fn for_each_mut(&self, mut f: impl FnMut(&K, &mut V)) {
        for shard in self.shards.iter() {
            let mut shard = shard.lock();
            for bucket in &mut shard.buckets {
                for e in bucket.slots.iter_mut().flatten() {
                    f(&e.key, &mut e.value);
                }
            }
        }
    }

    /// Collect all keys.
    pub fn keys(&self) -> Vec<K>
    where
        K: Clone,
    {
        let mut out = Vec::with_capacity(self.len());
        self.for_each(|k, _| out.push(k.clone()));
        out
    }

    /// Clone the value for `key`.
    pub fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.read(key, V::clone)
    }
}

impl<K, V> DeepSize for CuckooMap<K, V>
where
    K: DeepSize,
    V: DeepSize,
{
    /// Counts every allocated slot — including empty ones — plus the heap
    /// memory owned by keys and values. Empty slots are the hash-index
    /// overhead that key-value topology storage pays per entry.
    fn heap_bytes(&self) -> usize {
        let mut bytes = self.shards.len() * std::mem::size_of::<Mutex<Shard<K, V>>>();
        for shard in self.shards.iter() {
            let shard = shard.lock();
            bytes += shard.buckets.capacity() * std::mem::size_of::<Bucket<K, V>>();
            for bucket in &shard.buckets {
                for e in bucket.slots.iter().flatten() {
                    bytes += e.key.heap_bytes() + e.value.heap_bytes();
                }
            }
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let map: CuckooMap<u64, String> = CuckooMap::new();
        assert_eq!(map.insert(1, "a".into()), None);
        assert_eq!(map.insert(2, "b".into()), None);
        assert_eq!(map.get(&1).as_deref(), Some("a"));
        assert_eq!(map.get(&2).as_deref(), Some("b"));
        assert_eq!(map.get(&3), None);
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn insert_replaces_and_returns_old() {
        let map: CuckooMap<u64, u64> = CuckooMap::new();
        assert_eq!(map.insert(7, 1), None);
        assert_eq!(map.insert(7, 2), Some(1));
        assert_eq!(map.get(&7), Some(2));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn remove_returns_value() {
        let map: CuckooMap<u64, u64> = CuckooMap::new();
        map.insert(5, 50);
        assert_eq!(map.remove(&5), Some(50));
        assert_eq!(map.remove(&5), None);
        assert!(map.is_empty());
    }

    #[test]
    fn update_mutates_in_place() {
        let map: CuckooMap<u64, Vec<u64>> = CuckooMap::new();
        map.insert(1, vec![]);
        map.update(&1, |v| v.push(42));
        map.update(&1, |v| v.push(43));
        assert_eq!(map.get(&1), Some(vec![42, 43]));
        assert_eq!(map.update(&999, |_| ()), None);
    }

    #[test]
    fn update_or_insert_with_creates_then_reuses() {
        let map: CuckooMap<u64, u64> = CuckooMap::new();
        let a = map.update_or_insert_with(
            9,
            || 100,
            |v| {
                *v += 1;
                *v
            },
        );
        assert_eq!(a, 101);
        let b = map.update_or_insert_with(
            9,
            || 100,
            |v| {
                *v += 1;
                *v
            },
        );
        assert_eq!(b, 102);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn many_inserts_force_evictions_and_growth() {
        // One shard with tiny initial capacity forces BFS evictions and
        // several grow() rehashes.
        let map: CuckooMap<u64, u64> = CuckooMap::with_shards_and_capacity(1, 8);
        let n = 50_000u64;
        for k in 0..n {
            map.insert(k, k * 10);
        }
        assert_eq!(map.len(), n as usize);
        for k in 0..n {
            assert_eq!(map.get(&k), Some(k * 10), "key {k}");
        }
    }

    #[test]
    fn mixed_ops_match_std_hashmap() {
        use std::collections::HashMap;
        let map: CuckooMap<u64, u64> = CuckooMap::with_shards_and_capacity(4, 16);
        let mut reference: HashMap<u64, u64> = HashMap::new();
        // Deterministic pseudo-random op mix.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        for step in 0..30_000u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let key = state % 500;
            match step % 3 {
                0 | 1 => {
                    assert_eq!(map.insert(key, step), reference.insert(key, step));
                }
                _ => {
                    assert_eq!(map.remove(&key), reference.remove(&key));
                }
            }
        }
        assert_eq!(map.len(), reference.len());
        for (k, v) in &reference {
            assert_eq!(map.get(k), Some(*v));
        }
    }

    #[test]
    fn for_each_visits_every_entry_once() {
        let map: CuckooMap<u64, u64> = CuckooMap::new();
        for k in 0..1000 {
            map.insert(k, k);
        }
        let mut seen = vec![false; 1000];
        map.for_each(|k, v| {
            assert_eq!(k, v);
            assert!(!seen[*k as usize], "visited twice");
            seen[*k as usize] = true;
        });
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn for_each_mut_can_rewrite_values() {
        let map: CuckooMap<u64, u64> = CuckooMap::new();
        for k in 0..100 {
            map.insert(k, 0);
        }
        map.for_each_mut(|k, v| *v = k * 2);
        for k in 0..100 {
            assert_eq!(map.get(&k), Some(k * 2));
        }
    }

    #[test]
    fn deep_size_counts_empty_slots_as_index_overhead() {
        let map: CuckooMap<u64, u64> = CuckooMap::with_shards_and_capacity(1, 64);
        let empty_bytes = map.heap_bytes();
        assert!(empty_bytes > 0, "empty table still owns its bucket array");
        map.insert(1, 1);
        // u64 values have no heap of their own, so size is unchanged until
        // the table grows.
        assert_eq!(map.heap_bytes(), empty_bytes);
    }

    #[test]
    fn concurrent_inserts_from_many_threads() {
        let map: CuckooMap<u64, u64> = CuckooMap::new();
        let threads = 8u64;
        let per = 5_000u64;
        crossbeam::scope(|s| {
            for t in 0..threads {
                let map = &map;
                s.spawn(move |_| {
                    for i in 0..per {
                        let k = t * per + i;
                        map.insert(k, k + 1);
                    }
                });
            }
        })
        .expect("threads join");
        assert_eq!(map.len(), (threads * per) as usize);
        for k in 0..threads * per {
            assert_eq!(map.get(&k), Some(k + 1));
        }
    }

    #[test]
    fn concurrent_mixed_readers_and_writers() {
        let map: CuckooMap<u64, u64> = CuckooMap::new();
        for k in 0..1_000 {
            map.insert(k, 0);
        }
        crossbeam::scope(|s| {
            for _ in 0..4 {
                let map = &map;
                s.spawn(move |_| {
                    for k in 0..1_000u64 {
                        map.update(&k, |v| *v += 1);
                    }
                });
            }
            for _ in 0..4 {
                let map = &map;
                s.spawn(move |_| {
                    for k in 0..1_000u64 {
                        let _ = map.read(&k, |v| *v);
                    }
                });
            }
        })
        .expect("threads join");
        let mut sum = 0u64;
        map.for_each(|_, v| sum += *v);
        assert_eq!(sum, 4_000, "each of 4 writers increments every key once");
    }

    #[test]
    fn string_keys_work() {
        let map: CuckooMap<String, u64> = CuckooMap::new();
        map.insert("alpha".into(), 1);
        map.insert("beta".into(), 2);
        assert_eq!(map.get(&"alpha".to_string()), Some(1));
        assert!(map.contains_key(&"beta".to_string()));
        assert!(!map.contains_key(&"gamma".to_string()));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        #[test]
        fn behaves_like_hashmap(
            ops in proptest::collection::vec((0u8..3, 0u64..64, 0u64..1000), 0..400)
        ) {
            let map: CuckooMap<u64, u64> = CuckooMap::with_shards_and_capacity(2, 8);
            let mut reference: HashMap<u64, u64> = HashMap::new();
            for (kind, k, v) in ops {
                match kind {
                    0 => prop_assert_eq!(map.insert(k, v), reference.insert(k, v)),
                    1 => prop_assert_eq!(map.remove(&k), reference.remove(&k)),
                    _ => prop_assert_eq!(map.get(&k), reference.get(&k).copied()),
                }
                prop_assert_eq!(map.len(), reference.len());
            }
        }
    }
}
