//! Live introspection plane for a running PlatoD2GL cluster.
//!
//! The paper's claims are operational measurements — per-stage latency
//! (Sec. VIII) and memory after graph build (Table IV) — and the WeChat
//! deployment it describes is monitored continuously, not via offline
//! bench reports. [`AdminServer`] makes a running cluster inspectable from
//! the outside: it binds a TCP listener, serves a hand-rolled HTTP/1.0
//! (the workspace vendors no HTTP crate — `std::net::TcpListener` and
//! ~100 lines of request parsing are the whole protocol stack), and
//! answers:
//!
//! | endpoint        | payload |
//! |-----------------|---------|
//! | `/metrics`      | Prometheus text exposition of the whole registry |
//! | `/healthz`      | per-shard health, queued ops, graph version (503 when any shard is failed) |
//! | `/debug/memory` | live `DeepSize` walk: samtree payload/index, directory, attributes, WAL |
//! | `/debug/spans`  | the tracer's recent-span ring plus started/finished/dropped counts |
//! | `/debug/slow`   | the slow-op log: over-threshold requests with their span trees |
//! | `/debug/traffic`| RPC traffic accounting: request/byte counts (real wire-frame sizes), fault and degradation tallies |
//!
//! Every response is computed from the shared [`Cluster`] +
//! [`Registry`](platod2gl_obs::Registry) on the accept thread — no
//! background aggregation, no staleness. `/metrics` and `/debug/memory`
//! refresh the `graph.mem.*` gauges via [`Cluster::memory_breakdown`]
//! before rendering, so scrapes always see current memory.
//!
//! The server owns one accept thread; requests are served sequentially.
//! That is deliberate: this is an operator plane for one scraper and a
//! human with `curl`, not a data plane, and a single thread cannot
//! amplify a misbehaving client into cluster-wide lock pressure.

use platod2gl_graph::{GraphStore, ShardHealth};
use platod2gl_obs::{ExportedSpan, RegistryExport};
use platod2gl_server::Cluster;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Poll interval of the accept loop while idle (the listener is
/// non-blocking so shutdown needs no self-connect trick).
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Per-connection socket read timeout.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

const CT_TEXT: &str = "text/plain; charset=utf-8";
/// Prometheus text exposition format version marker.
const CT_PROM: &str = "text/plain; version=0.0.4; charset=utf-8";
const CT_JSON: &str = "application/json";

/// The admin HTTP server: one accept thread serving a shared [`Cluster`].
///
/// Binds eagerly in [`AdminServer::bind`] (so the caller learns the
/// ephemeral port immediately) and shuts down on drop or
/// [`AdminServer::shutdown`].
pub struct AdminServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl AdminServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `cluster` on a background thread.
    pub fn bind(addr: impl ToSocketAddrs, cluster: Arc<Cluster>) -> io::Result<Self> {
        Self::bind_routed(addr, move |path| route(path, &cluster))
    }

    /// Bind a single-cluster admin plane that additionally serves
    /// `GET /debug/rpc` — the live connection table of a graph-service
    /// server (backend in use, accept/reject totals, per-connection
    /// protocol version, frame counts, and in-flight requests). `rpc` is
    /// typically `GraphServiceServer::introspect()`.
    pub fn bind_with_rpc<R>(
        addr: impl ToSocketAddrs,
        cluster: Arc<Cluster>,
        rpc: R,
    ) -> io::Result<Self>
    where
        R: RpcIntrospect + Send + Sync + 'static,
    {
        Self::bind_routed(addr, move |path| route_rpc(path, &cluster, &rpc))
    }

    /// Bind an admin plane for a whole fleet: `/healthz` aggregates
    /// partition ownership across servers (one replica down is degraded
    /// but 200; an unowned partition is 503) and `/debug/partitions`
    /// renders the routing table with per-partition health and load.
    pub fn bind_fleet<F>(addr: impl ToSocketAddrs, fleet: Arc<F>) -> io::Result<Self>
    where
        F: FleetIntrospect + Send + Sync + 'static,
    {
        Self::bind_routed(addr, move |path| route_fleet(path, fleet.as_ref()))
    }

    /// Bind with an arbitrary GET router — the shared accept loop behind
    /// both the single-cluster and the fleet admin planes.
    pub fn bind_routed<R>(addr: impl ToSocketAddrs, route_fn: R) -> io::Result<Self>
    where
        R: Fn(&str) -> (u16, &'static str, String) + Send + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("platod2gl-admin".to_string())
            .spawn(move || serve(&listener, &route_fn, &thread_stop))?;
        Ok(Self {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve<R>(listener: &TcpListener, route_fn: &R, stop: &AtomicBool)
where
    R: Fn(&str) -> (u16, &'static str, String),
{
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // A broken client connection must not take the admin plane
                // down; drop the error and keep accepting.
                let _ = handle_connection(stream, route_fn);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle_connection<R>(stream: TcpStream, route_fn: &R) -> io::Result<()>
where
    R: Fn(&str) -> (u16, &'static str, String),
{
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_nonblocking(false)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers up to the blank line; this server ignores them all
    // (no bodies on GET, responses always close the connection).
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("/");
    let (status, content_type, body) = if method != "GET" {
        (405, CT_TEXT, "method not allowed\n".to_string())
    } else {
        route_fn(path)
    };
    write_response(stream, status, content_type, &body)
}

fn write_response(
    mut stream: TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let header = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Dispatch one GET to its endpoint. Split out (and `pub` for tests) so
/// endpoint behavior is testable without sockets.
pub fn route(path: &str, cluster: &Cluster) -> (u16, &'static str, String) {
    match path {
        "/" => (
            200,
            CT_TEXT,
            "PlatoD2GL admin\n\n/metrics\n/healthz\n/debug/memory\n/debug/spans\n/debug/slow\n\
             /debug/traffic\n/debug/txns\n"
                .to_string(),
        ),
        "/metrics" => {
            // Refresh graph.mem.* so every scrape carries current memory.
            cluster.memory_breakdown();
            (200, CT_PROM, cluster.obs().snapshot().to_prometheus())
        }
        "/healthz" => healthz(cluster),
        "/debug/memory" => (200, CT_JSON, memory_json(cluster)),
        "/debug/spans" => (200, CT_JSON, spans_json(cluster)),
        "/debug/slow" => (200, CT_JSON, slow_json(cluster)),
        "/debug/traffic" => (200, CT_JSON, traffic_json(cluster)),
        "/debug/txns" => (200, CT_JSON, txns_json(cluster)),
        _ => (404, CT_TEXT, "not found\n".to_string()),
    }
}

// ---------------------------------------------------------------------
// RPC introspection: the admin view of a graph-service server's
// connection table.
// ---------------------------------------------------------------------

/// One live RPC connection as the admin plane sees it.
#[derive(Clone, Debug)]
pub struct RpcConnView {
    /// Peer address.
    pub peer: String,
    /// Protocol version of the last served frame (`0` before the first).
    pub protocol: u8,
    /// Frames served on this connection.
    pub frames: u64,
    /// Requests dispatched but not yet answered.
    pub in_flight: u64,
    /// Connection age in milliseconds.
    pub age_ms: u64,
}

/// Point-in-time state of one graph-service server for `/debug/rpc`.
#[derive(Clone, Debug, Default)]
pub struct RpcSnapshot {
    /// Serving core in use: `"epoll"`, `"scan"`, or `"threaded"`.
    pub backend: String,
    /// Connections accepted since bind.
    pub accepted: u64,
    /// Connections refused (table full) since bind.
    pub rejected: u64,
    /// Connections currently open.
    pub open: u64,
    /// One row per open connection.
    pub conns: Vec<RpcConnView>,
}

/// What a graph-service server must expose to be served by
/// [`AdminServer::bind_with_rpc`]. Implemented by
/// `platod2gl_rpc::ServerIntrospect`; the trait lives here so the admin
/// plane needs no rpc dependency.
pub trait RpcIntrospect {
    /// Assemble the current connection-table snapshot.
    fn rpc_snapshot(&self) -> RpcSnapshot;
}

/// Dispatch one GET against a cluster plus a server's connection table.
/// Split out (and `pub` for tests) so endpoint behavior is testable
/// without sockets.
pub fn route_rpc(
    path: &str,
    cluster: &Cluster,
    rpc: &dyn RpcIntrospect,
) -> (u16, &'static str, String) {
    match path {
        "/" => (
            200,
            CT_TEXT,
            "PlatoD2GL admin\n\n/metrics\n/healthz\n/debug/memory\n/debug/spans\n/debug/slow\n\
             /debug/traffic\n/debug/txns\n/debug/rpc\n"
                .to_string(),
        ),
        "/debug/rpc" => (200, CT_JSON, rpc_json(&rpc.rpc_snapshot())),
        other => route(other, cluster),
    }
}

fn rpc_json(snap: &RpcSnapshot) -> String {
    let mut body = format!(
        "{{\"backend\":\"{}\",\"accepted\":{},\"rejected\":{},\"open\":{},\"conns\":[",
        json_escape(&snap.backend),
        snap.accepted,
        snap.rejected,
        snap.open
    );
    for (i, c) in snap.conns.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"peer\":\"{}\",\"protocol\":{},\"frames\":{},\"in_flight\":{},\"age_ms\":{}}}",
            json_escape(&c.peer),
            c.protocol,
            c.frames,
            c.in_flight,
            c.age_ms
        ));
    }
    body.push_str("]}");
    body
}

// ---------------------------------------------------------------------
// Fleet introspection: the admin view of a multi-server deployment.
// ---------------------------------------------------------------------

/// One fleet server as the admin plane sees it.
#[derive(Clone, Debug)]
pub struct FleetServerView {
    /// Stable fleet identity.
    pub id: u64,
    /// Dialable graph-service address.
    pub addr: String,
    /// Whether a health probe currently succeeds.
    pub reachable: bool,
}

/// One partition's routing row plus its live health and load.
#[derive(Clone, Debug)]
pub struct FleetPartitionView {
    /// Partition index in the keyspace.
    pub partition: u32,
    /// Owning server id.
    pub owner: u64,
    /// Replica server id, if the fleet has one.
    pub replica: Option<u64>,
    /// Owner currently reachable.
    pub owner_up: bool,
    /// Replica present *and* reachable.
    pub replica_up: bool,
    /// Resident `(src, etype)` keys on the owner.
    pub keys: u64,
}

/// Point-in-time fleet state for `/healthz` and `/debug/partitions`.
#[derive(Clone, Debug, Default)]
pub struct FleetSnapshot {
    /// Partition-map epoch in effect.
    pub epoch: u64,
    /// Partition keyspace size.
    pub num_partitions: u32,
    /// Roster, map order.
    pub servers: Vec<FleetServerView>,
    /// One row per partition.
    pub partitions: Vec<FleetPartitionView>,
}

/// What a fleet must expose to be served by [`AdminServer::bind_fleet`].
/// Implemented by `platod2gl_fleet::FleetCluster`; the trait lives here so
/// the admin plane needs no fleet dependency.
pub trait FleetIntrospect {
    /// Probe the fleet and assemble the current snapshot.
    fn fleet_snapshot(&self) -> FleetSnapshot;

    /// The fleet client's own metric registry (for `/metrics`).
    fn registry(&self) -> &Arc<platod2gl_obs::Registry>;

    /// Every span of `trace_id` each fleet member holds, labeled by
    /// member, the local client first. Default: the local registry only —
    /// an implementation with remote members overrides this with a
    /// `SpanExport` pull per member (`GET /debug/trace/<id>` stitches
    /// the result into one cross-process tree).
    fn fleet_trace(&self, trace_id: u64) -> Vec<(String, Vec<ExportedSpan>)> {
        vec![("client".to_string(), self.registry().trace_spans(trace_id))]
    }

    /// Each member's full registry export (exact histogram buckets plus
    /// recent slow ops), labeled by member. Default: the local registry
    /// only; fleet implementations override with an `ObsExport` pull per
    /// member (`GET /fleet/metrics` and `GET /fleet/slow` merge these).
    fn fleet_obs(&self) -> Vec<(String, RegistryExport)> {
        vec![("client".to_string(), self.registry().export())]
    }
}

/// Dispatch one GET against a fleet. Split out (and `pub` for tests) so
/// endpoint behavior is testable without sockets.
pub fn route_fleet(path: &str, fleet: &dyn FleetIntrospect) -> (u16, &'static str, String) {
    if let Some(rest) = path.strip_prefix("/debug/trace/") {
        return match rest.parse::<u64>() {
            Ok(trace_id) if trace_id != 0 => (
                200,
                CT_JSON,
                trace_json(trace_id, &fleet.fleet_trace(trace_id)),
            ),
            _ => (
                404,
                CT_TEXT,
                "trace id must be a nonzero integer\n".to_string(),
            ),
        };
    }
    match path {
        "/" => (
            200,
            CT_TEXT,
            "PlatoD2GL fleet admin\n\n/metrics\n/healthz\n/debug/partitions\n\
             /debug/trace/<id>\n/fleet/metrics\n/fleet/slow\n"
                .to_string(),
        ),
        "/metrics" => (200, CT_PROM, fleet.registry().snapshot().to_prometheus()),
        "/fleet/metrics" => (200, CT_PROM, fleet_metrics_prometheus(&fleet.fleet_obs())),
        "/fleet/slow" => (200, CT_JSON, fleet_slow_json(&fleet.fleet_obs())),
        "/healthz" => fleet_healthz(&fleet.fleet_snapshot()),
        "/debug/partitions" => (200, CT_JSON, partitions_json(&fleet.fleet_snapshot())),
        _ => (404, CT_TEXT, "not found\n".to_string()),
    }
}

/// Merge per-member registry exports into one Prometheus exposition.
/// Rendering goes through [`platod2gl_obs::fleet_prometheus`], which
/// shares the scalar/histogram emitters with the single-process
/// `/metrics` — one formatter, so HELP text, `_total` suffixes, and
/// base-unit conversion can never drift between the two.
fn fleet_metrics_prometheus(members: &[(String, RegistryExport)]) -> String {
    let snaps: Vec<(String, platod2gl_obs::ObsSnapshot)> = members
        .iter()
        .map(|(label, e)| {
            (
                label.clone(),
                platod2gl_obs::ObsSnapshot {
                    counters: e.counters.clone(),
                    gauges: e.gauges.clone(),
                    histograms: e.histograms.clone(),
                    spans: Vec::new(),
                },
            )
        })
        .collect();
    platod2gl_obs::fleet_prometheus(&snaps)
}

/// The fleet-wide slow-op log: every member's captures tagged with their
/// origin, slowest first (ties keep member order — deterministic for a
/// given input).
fn fleet_slow_json(members: &[(String, RegistryExport)]) -> String {
    let mut ops: Vec<(&str, &platod2gl_obs::SlowOpExport)> = members
        .iter()
        .flat_map(|(label, e)| e.slow.iter().map(move |op| (label.as_str(), op)))
        .collect();
    ops.sort_by_key(|&(_, op)| std::cmp::Reverse(op.duration_ns));
    let mut body = format!("{{\"captured\":{},\"ops\":[", ops.len());
    for (i, (server, op)) in ops.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&op.to_json_tagged(Some(server)));
    }
    body.push_str("]}");
    body
}

/// One node of the stitched trace tree: a span plus where it ran.
struct TraceNode<'a> {
    member: &'a str,
    span: &'a ExportedSpan,
    children: Vec<usize>,
}

/// Assemble the cross-process span tree for one trace id.
///
/// Span ids are only unique within their origin process, so nodes key as
/// `(member, span id)`. A local `parent` resolves within the same member;
/// a server-side root's `remote_parent` names a span in the *caller's*
/// process and resolves against other members first (own member last), in
/// member-list order — deterministic, and correct for the honest case
/// where the caller is a different process. Unresolvable spans become
/// additional roots rather than being dropped: a partial trace renders
/// partially, never silently shrinks.
fn trace_json(trace_id: u64, members: &[(String, Vec<ExportedSpan>)]) -> String {
    use std::collections::HashMap;
    let mut nodes: Vec<TraceNode<'_>> = Vec::new();
    // (member index, span id) -> node index; first occurrence wins.
    let mut by_key: HashMap<(usize, u64), usize> = HashMap::new();
    for (mi, (member, spans)) in members.iter().enumerate() {
        for span in spans {
            let key = (mi, span.id);
            if let std::collections::hash_map::Entry::Vacant(e) = by_key.entry(key) {
                e.insert(nodes.len());
                nodes.push(TraceNode {
                    member,
                    span,
                    children: Vec::new(),
                });
            }
        }
    }
    let member_index: HashMap<&str, usize> = members
        .iter()
        .enumerate()
        .map(|(i, (m, _))| (m.as_str(), i))
        .collect();
    let mut roots: Vec<usize> = Vec::new();
    for i in 0..nodes.len() {
        let mi = member_index[nodes[i].member];
        let parent = match (nodes[i].span.parent, nodes[i].span.remote_parent) {
            (Some(p), _) => by_key.get(&(mi, p)).copied(),
            (None, Some(rp)) => (0..members.len())
                .filter(|&m| m != mi)
                .chain(std::iter::once(mi))
                .find_map(|m| by_key.get(&(m, rp)).copied())
                .filter(|&p| p != i),
            (None, None) => None,
        };
        match parent {
            Some(p) => nodes[p].children.push(i),
            None => roots.push(i),
        }
    }
    // Deterministic sibling order: member order, then start offset, then
    // span id (start offsets are per-process epochs — comparable within a
    // member, which is the only place ties matter).
    let keys: Vec<(usize, u64, u64)> = nodes
        .iter()
        .map(|n| (member_index[n.member], n.span.start_ns, n.span.id))
        .collect();
    roots.sort_by_key(|&i| keys[i]);
    for node in &mut nodes {
        node.children.sort_by_key(|&i| keys[i]);
    }
    let processes = {
        let mut seen: Vec<&str> = nodes.iter().map(|n| n.member).collect();
        seen.sort_by_key(|m| member_index[m]);
        seen.dedup();
        seen
    };
    let mut body = format!(
        "{{\"trace_id\":{trace_id},\"span_count\":{},\"processes\":[",
        nodes.len()
    );
    for (i, m) in processes.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let _ = std::fmt::Write::write_fmt(&mut body, format_args!("\"{}\"", json_escape(m)));
    }
    body.push_str("],\"roots\":[");
    for (i, &root) in roots.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        write_trace_node(&mut body, &nodes, root);
    }
    body.push_str("]}");
    body
}

fn write_trace_node(out: &mut String, nodes: &[TraceNode<'_>], i: usize) {
    let n = &nodes[i];
    let opt = |v: Option<u64>| match v {
        Some(p) => p.to_string(),
        None => "null".to_string(),
    };
    out.push_str(&format!(
        "{{\"member\":\"{}\",\"name\":\"{}\",\"id\":{},\"parent\":{},\"remote_parent\":{},\
         \"start_ns\":{},\"duration_ns\":{},\"children\":[",
        json_escape(n.member),
        json_escape(&n.span.name),
        n.span.id,
        opt(n.span.parent),
        opt(n.span.remote_parent),
        n.span.start_ns,
        n.span.duration_ns
    ));
    for (k, &child) in n.children.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        write_trace_node(out, nodes, child);
    }
    out.push_str("]}");
}

/// Fleet health is about *coverage*, not individual boxes: a partition
/// whose owner is down but whose replica still answers is degraded yet
/// serving (200); a partition with neither copy reachable is unowned —
/// reads fail — and that flips the probe to 503.
fn fleet_healthz(snap: &FleetSnapshot) -> (u16, &'static str, String) {
    let unowned: Vec<u32> = snap
        .partitions
        .iter()
        .filter(|p| !p.owner_up && !p.replica_up)
        .map(|p| p.partition)
        .collect();
    let degraded = snap
        .partitions
        .iter()
        .any(|p| !p.owner_up || (p.replica.is_some() && !p.replica_up))
        || snap.servers.iter().any(|s| !s.reachable);
    let status_str = if !unowned.is_empty() {
        "unowned"
    } else if degraded {
        "degraded"
    } else {
        "ok"
    };
    let mut body = format!(
        "{{\"status\":\"{status_str}\",\"epoch\":{},\"num_partitions\":{},\
         \"servers_reachable\":{},\"servers_total\":{},\"unowned_partitions\":[",
        snap.epoch,
        snap.num_partitions,
        snap.servers.iter().filter(|s| s.reachable).count(),
        snap.servers.len()
    );
    for (i, p) in unowned.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&p.to_string());
    }
    body.push_str("]}");
    let status = if unowned.is_empty() { 200 } else { 503 };
    (status, CT_JSON, body)
}

fn partitions_json(snap: &FleetSnapshot) -> String {
    let mut body = format!(
        "{{\"epoch\":{},\"num_partitions\":{},\"servers\":[",
        snap.epoch, snap.num_partitions
    );
    for (i, s) in snap.servers.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"id\":{},\"addr\":\"{}\",\"reachable\":{}}}",
            s.id,
            json_escape(&s.addr),
            s.reachable
        ));
    }
    body.push_str("],\"partitions\":[");
    for (i, p) in snap.partitions.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let replica = match p.replica {
            Some(r) => r.to_string(),
            None => "null".to_string(),
        };
        body.push_str(&format!(
            "{{\"partition\":{},\"owner\":{},\"replica\":{replica},\"owner_up\":{},\
             \"replica_up\":{},\"keys\":{}}}",
            p.partition, p.owner, p.owner_up, p.replica_up, p.keys
        ));
    }
    body.push_str("]}");
    body
}

fn health_str(h: ShardHealth) -> &'static str {
    match h {
        ShardHealth::Healthy => "healthy",
        ShardHealth::Degraded => "degraded",
        ShardHealth::Failed => "failed",
    }
}

/// Consecutive txn aborts at which the storage plane reports degraded: a
/// one-off rejection is normal validation traffic, a streak means writers
/// are systematically failing to commit.
const ABORT_STREAK_DEGRADED: u64 = 3;

fn healthz(cluster: &Cluster) -> (u16, &'static str, String) {
    let health = cluster.health();
    let status_str = if health.contains(&ShardHealth::Failed) {
        "failed"
    } else if health.contains(&ShardHealth::Degraded) {
        "degraded"
    } else {
        "ok"
    };
    // Storage sickness is a *distinct* axis from shard health: WAL
    // append/fsync failures and txn abort streaks mean writes are in
    // trouble even while every shard still answers reads. It never flips
    // the probe to 503 — the cluster is still serving.
    let wal_append_errors = cluster
        .obs()
        .snapshot()
        .counter("wal.append_errors")
        .unwrap_or(0);
    let abort_streak = cluster.txn_abort_streak();
    let storage_status = if wal_append_errors > 0 || abort_streak >= ABORT_STREAK_DEGRADED {
        "degraded"
    } else {
        "ok"
    };
    let mut body = format!(
        "{{\"status\":\"{status_str}\",\"graph_version\":{},\"num_edges\":{},\
         \"storage\":{{\"status\":\"{storage_status}\",\"wal_append_errors\":{wal_append_errors},\
         \"txn_abort_streak\":{abort_streak}}},\"shards\":[",
        cluster.graph_version(),
        cluster.num_edges()
    );
    for (shard, &h) in health.iter().enumerate() {
        if shard > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"shard\":{shard},\"health\":\"{}\",\"pending_ops\":{}}}",
            health_str(h),
            cluster.pending_ops(shard)
        ));
    }
    body.push_str("]}");
    // A failed shard flips the probe: orchestrators treat 503 as unhealthy
    // while degraded-but-serving stays 200 (it can still answer queries).
    let status = if status_str == "failed" { 503 } else { 200 };
    (status, CT_JSON, body)
}

fn memory_json(cluster: &Cluster) -> String {
    let mem = cluster.memory_breakdown();
    // The WAL gauge is maintained by the durable store sharing this
    // registry (zero when the cluster runs without durability).
    let wal_bytes = cluster
        .obs()
        .snapshot()
        .gauge("graph.mem.wal_bytes")
        .unwrap_or(0);
    let mut body = format!(
        "{{\"samtree_bytes\":{},\"samtree_leaf_bytes\":{},\"samtree_internal_bytes\":{},\
         \"directory_bytes\":{},\"attr_bytes\":{},\"wal_bytes\":{wal_bytes},\"per_shard\":[",
        mem.samtree_bytes, mem.leaf_bytes, mem.internal_bytes, mem.directory_bytes, mem.attr_bytes
    );
    for (i, s) in mem.per_shard.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"shard\":{},\"topology_bytes\":{},\"leaf_bytes\":{},\"internal_bytes\":{},\
             \"directory_bytes\":{},\"attr_bytes\":{},\"edges\":{}}}",
            s.shard,
            s.topology.total_bytes,
            s.topology.leaf_bytes,
            s.topology.internal_bytes,
            s.topology.directory_bytes,
            s.attr_bytes,
            s.edges
        ));
    }
    body.push_str("]}");
    body
}

fn spans_json(cluster: &Cluster) -> String {
    let tracer = cluster.obs().tracer();
    let mut body = format!(
        "{{\"started\":{},\"finished\":{},\"dropped\":{},\"spans\":[",
        tracer.started(),
        tracer.finished(),
        tracer.dropped()
    );
    for (i, s) in tracer.recent().iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&s.to_json());
    }
    body.push_str("]}");
    body
}

fn slow_json(cluster: &Cluster) -> String {
    let slow = cluster.obs().slow_log();
    // Tail context for the captures: the p99 of every latency histogram
    // in the registry, so an operator reading one slow op can see whether
    // the tail as a whole moved (`rpc.server.request_ns` is the one the
    // serving core maintains).
    let snap = cluster.obs().snapshot();
    let mut body = format!(
        "{{\"threshold_ns\":{},\"captured\":{},\"p99_ns\":{{",
        slow.threshold_ns(),
        slow.captured()
    );
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!("\"{}\":{}", json_escape(name), h.p99_ns));
    }
    body.push_str("},\"ops\":[");
    for (i, op) in slow.recent().iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&op.to_json());
    }
    body.push_str("]}");
    body
}

fn traffic_json(cluster: &Cluster) -> String {
    // Byte counts use the real wire-frame encoding sizes (`server::wire`),
    // so this view matches what the TCP rpc layer actually ships.
    let t = cluster.traffic();
    format!(
        "{{\"requests\":{},\"request_bytes\":{},\"response_bytes\":{},\
         \"failed_requests\":{},\"retried_requests\":{},\
         \"degraded_responses\":{},\"queued_ops\":{}}}",
        t.requests,
        t.request_bytes,
        t.response_bytes,
        t.failed_requests,
        t.retried_requests,
        t.degraded_responses,
        t.queued_ops
    )
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn txns_json(cluster: &Cluster) -> String {
    let snap = cluster.obs().snapshot();
    let count = |name: &str| snap.counter(name).unwrap_or(0);
    let mut body = format!(
        "{{\"committed\":{},\"aborted\":{},\"deduped\":{},\"ops_applied\":{},\
         \"abort_streak\":{},\"recent\":[",
        count("txn.committed"),
        count("txn.aborted"),
        count("txn.deduped"),
        count("txn.ops_applied"),
        cluster.txn_abort_streak()
    );
    for (i, entry) in cluster.txn_journal().iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"txn_id\":{},\"outcome\":\"{}\",\"ops\":{},\"detail\":\"{}\"}}",
            entry.txn_id,
            entry.outcome,
            entry.ops,
            json_escape(&entry.detail)
        ));
    }
    body.push_str("]}");
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use platod2gl_graph::{Edge, EdgeType, VertexId};
    use platod2gl_server::ClusterConfig;

    fn tiny_cluster() -> Arc<Cluster> {
        let c = Cluster::new(
            ClusterConfig::builder()
                .num_shards(2)
                .build()
                .expect("valid config"),
        );
        for i in 1..=8u64 {
            c.insert_edge(Edge::new(VertexId(0), VertexId(i), 1.0));
        }
        Arc::new(c)
    }

    #[test]
    fn route_serves_every_endpoint_and_404s_the_rest() {
        let c = tiny_cluster();
        for path in [
            "/",
            "/metrics",
            "/healthz",
            "/debug/memory",
            "/debug/spans",
            "/debug/slow",
            "/debug/traffic",
            "/debug/txns",
        ] {
            let (status, _, body) = route(path, &c);
            assert_eq!(status, 200, "{path}");
            assert!(!body.is_empty(), "{path}");
        }
        assert_eq!(route("/nope", &c).0, 404);
        assert_eq!(route("/metricsx", &c).0, 404);
    }

    #[test]
    fn healthz_reflects_shard_failure_and_heal() {
        let c = tiny_cluster();
        let (status, _, body) = route("/healthz", &c);
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        c.faults().fail_shard(1);
        // A request must hit the failed shard before the router marks it.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let dead = (0..)
            .map(VertexId)
            .find(|&v| c.route(v) == 1)
            .expect("a vertex on shard 1");
        use platod2gl_server::SampleRequest;
        let _ = c.sample(&SampleRequest::new(dead, EdgeType(0), 4), &mut rng);
        let (status, _, body) = route("/healthz", &c);
        assert_eq!(status, 503, "{body}");
        assert!(body.contains("\"health\":\"failed\""), "{body}");
        c.heal_shard(1);
        let (status, _, body) = route("/healthz", &c);
        assert_eq!(status, 200);
        assert!(body.contains("\"health\":\"healthy\""), "{body}");
    }

    #[test]
    fn txns_endpoint_and_healthz_storage_field_track_the_txn_plane() {
        use platod2gl_graph::GraphTxn;
        let c = tiny_cluster();
        let (_, _, body) = route("/healthz", &c);
        assert!(body.contains("\"storage\":{\"status\":\"ok\""), "{body}");

        let receipt = c
            .apply_txn(&GraphTxn::new(41).insert_edge(Edge::new(VertexId(20), VertexId(21), 1.0)))
            .expect("commits");
        assert_eq!(receipt.ops_applied, 1);
        // Three dangling deletes in a row: a storage-degraded abort streak.
        for id in 50..53u64 {
            let txn = GraphTxn::new(id).delete_edge(VertexId(999), VertexId(998), EdgeType(0));
            assert!(c.apply_txn(&txn).is_err());
        }
        let (status, ct, body) = route("/debug/txns", &c);
        assert_eq!((status, ct), (200, CT_JSON));
        assert!(body.contains("\"committed\":1"), "{body}");
        assert!(body.contains("\"aborted\":3"), "{body}");
        assert!(body.contains("\"abort_streak\":3"), "{body}");
        assert!(body.contains("\"outcome\":\"rejected\""), "{body}");

        // The storage axis degrades, but shard health keeps the probe 200.
        let (status, _, body) = route("/healthz", &c);
        assert_eq!(status, 200, "{body}");
        assert!(
            body.contains("\"storage\":{\"status\":\"degraded\""),
            "{body}"
        );
        assert!(body.contains("\"txn_abort_streak\":3"), "{body}");
        assert!(body.contains("\"status\":\"ok\""), "shards stay ok: {body}");

        // A commit clears the streak and the degraded storage status.
        c.apply_txn(&GraphTxn::new(60).insert_edge(Edge::new(VertexId(30), VertexId(31), 1.0)))
            .expect("commits");
        let (_, _, body) = route("/healthz", &c);
        assert!(body.contains("\"storage\":{\"status\":\"ok\""), "{body}");
    }

    #[test]
    fn traffic_endpoint_reports_wire_sized_byte_counts() {
        let c = tiny_cluster();
        use platod2gl_server::SampleRequest;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let _ = c.sample(&SampleRequest::new(VertexId(0), EdgeType(0), 4), &mut rng);
        let (status, ct, body) = route("/debug/traffic", &c);
        assert_eq!(status, 200);
        assert_eq!(ct, CT_JSON);
        let t = c.traffic();
        assert!(t.requests > 0 && t.request_bytes > 0 && t.response_bytes > 0);
        assert!(
            body.contains(&format!("\"requests\":{}", t.requests)),
            "{body}"
        );
        assert!(
            body.contains(&format!("\"request_bytes\":{}", t.request_bytes)),
            "{body}"
        );
        assert!(body.contains("\"degraded_responses\":0"), "{body}");
    }

    #[test]
    fn metrics_scrape_refreshes_memory_gauges() {
        let c = tiny_cluster();
        let (_, ct, text) = route("/metrics", &c);
        assert!(ct.starts_with("text/plain"));
        assert!(text.contains("plato_graph_mem_samtree_bytes"), "{text}");
        let published = c
            .obs()
            .snapshot()
            .gauge("graph.mem.samtree_bytes")
            .expect("gauge refreshed by scrape");
        assert!(published > 0);
    }

    struct StubFleet {
        snap: FleetSnapshot,
        registry: Arc<platod2gl_obs::Registry>,
    }

    impl FleetIntrospect for StubFleet {
        fn fleet_snapshot(&self) -> FleetSnapshot {
            self.snap.clone()
        }
        fn registry(&self) -> &Arc<platod2gl_obs::Registry> {
            &self.registry
        }
    }

    fn stub_fleet(owner_up: bool, replica_up: bool) -> StubFleet {
        StubFleet {
            snap: FleetSnapshot {
                epoch: 4,
                num_partitions: 2,
                servers: vec![
                    FleetServerView {
                        id: 1,
                        addr: "127.0.0.1:7001".into(),
                        reachable: owner_up,
                    },
                    FleetServerView {
                        id: 2,
                        addr: "127.0.0.1:7002".into(),
                        reachable: replica_up,
                    },
                ],
                partitions: (0..2)
                    .map(|p| FleetPartitionView {
                        partition: p,
                        owner: 1,
                        replica: Some(2),
                        owner_up,
                        replica_up,
                        keys: 7,
                    })
                    .collect(),
            },
            registry: Arc::new(platod2gl_obs::Registry::new()),
        }
    }

    struct StubRpc;

    impl RpcIntrospect for StubRpc {
        fn rpc_snapshot(&self) -> RpcSnapshot {
            RpcSnapshot {
                backend: "epoll".to_string(),
                accepted: 9,
                rejected: 1,
                open: 1,
                conns: vec![RpcConnView {
                    peer: "127.0.0.1:5555".to_string(),
                    protocol: 2,
                    frames: 12,
                    in_flight: 3,
                    age_ms: 40,
                }],
            }
        }
    }

    #[test]
    fn rpc_route_serves_the_connection_table_and_falls_through() {
        let c = tiny_cluster();
        let (status, ct, body) = route_rpc("/debug/rpc", &c, &StubRpc);
        assert_eq!((status, ct), (200, CT_JSON));
        assert!(body.contains("\"backend\":\"epoll\""), "{body}");
        assert!(body.contains("\"accepted\":9"), "{body}");
        assert!(body.contains("\"rejected\":1"), "{body}");
        assert!(
            body.contains("\"peer\":\"127.0.0.1:5555\",\"protocol\":2,\"frames\":12"),
            "{body}"
        );
        // Every plain-cluster endpoint still answers through the rpc
        // router, and the index advertises the new endpoint.
        let (_, _, index) = route_rpc("/", &c, &StubRpc);
        assert!(index.contains("/debug/rpc"), "{index}");
        assert_eq!(route_rpc("/healthz", &c, &StubRpc).0, 200);
        assert_eq!(route_rpc("/nope", &c, &StubRpc).0, 404);
    }

    #[test]
    fn slow_endpoint_reports_histogram_p99s() {
        let c = tiny_cluster();
        // Record into a histogram so the p99 map has a row.
        c.obs()
            .histogram("rpc.server.request_ns")
            .record(Duration::from_micros(80));
        let (status, _, body) = route("/debug/slow", &c);
        assert_eq!(status, 200);
        assert!(body.contains("\"p99_ns\":{"), "{body}");
        assert!(body.contains("\"rpc.server.request_ns\":"), "{body}");
    }

    #[test]
    fn fleet_healthz_distinguishes_degraded_from_unowned() {
        let healthy = stub_fleet(true, true);
        let (status, _, body) = route_fleet("/healthz", &healthy);
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");

        // One replica down: degraded but still serving — 200.
        let degraded = stub_fleet(true, false);
        let (status, _, body) = route_fleet("/healthz", &degraded);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"status\":\"degraded\""), "{body}");

        // Owner *and* replica down: the partition is unowned — 503.
        let dark = stub_fleet(false, false);
        let (status, _, body) = route_fleet("/healthz", &dark);
        assert_eq!(status, 503, "{body}");
        assert!(body.contains("\"status\":\"unowned\""), "{body}");
        assert!(body.contains("\"unowned_partitions\":[0,1]"), "{body}");
    }

    #[test]
    fn fleet_partitions_endpoint_renders_the_routing_table() {
        let fleet = stub_fleet(true, true);
        let (status, ct, body) = route_fleet("/debug/partitions", &fleet);
        assert_eq!((status, ct), (200, CT_JSON));
        assert!(body.contains("\"epoch\":4"), "{body}");
        assert!(body.contains("\"addr\":\"127.0.0.1:7001\""), "{body}");
        assert!(
            body.contains("\"partition\":1,\"owner\":1,\"replica\":2"),
            "{body}"
        );
        assert!(body.contains("\"keys\":7"), "{body}");
        assert_eq!(route_fleet("/nope", &fleet).0, 404);
        let (_, ct, _) = route_fleet("/metrics", &fleet);
        assert!(ct.starts_with("text/plain"));
    }

    #[test]
    fn server_binds_ephemeral_port_and_shuts_down() {
        let c = tiny_cluster();
        let admin = AdminServer::bind("127.0.0.1:0", Arc::clone(&c)).expect("bind");
        let addr = admin.local_addr();
        assert_ne!(addr.port(), 0);
        // GET / over a real socket.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET / HTTP/1.0\r\nHost: test\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        use std::io::Read;
        stream.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
        assert!(response.contains("/debug/slow"), "{response}");
        admin.shutdown();
        // Post-shutdown connections are refused or die unanswered — either
        // way the port stops serving; the join above proves thread exit.
    }
}
