//! The fleet telemetry plane, exercised through `route_fleet` without
//! sockets: the merged `/fleet/metrics` exposition against a golden file
//! (regenerate with `UPDATE_GOLDEN=1 cargo test -p platod2gl-admin --test
//! fleet_telemetry`), the `/debug/trace/<id>` cross-process tree
//! assembly, and the merged `/fleet/slow` log.

use platod2gl_admin::{route_fleet, FleetIntrospect, FleetSnapshot};
use platod2gl_obs::{ExportedSpan, Registry, RegistryExport, SlowOpExport};
use std::path::PathBuf;
use std::sync::Arc;

/// A fleet stub with canned per-member telemetry. `fleet_snapshot` is
/// unused by the endpoints under test.
struct CannedFleet {
    registry: Arc<Registry>,
    obs: Vec<(String, RegistryExport)>,
    trace: Vec<(String, Vec<ExportedSpan>)>,
}

impl FleetIntrospect for CannedFleet {
    fn fleet_snapshot(&self) -> FleetSnapshot {
        FleetSnapshot::default()
    }
    fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }
    fn fleet_trace(&self, _trace_id: u64) -> Vec<(String, Vec<ExportedSpan>)> {
        self.trace.clone()
    }
    fn fleet_obs(&self) -> Vec<(String, RegistryExport)> {
        self.obs.clone()
    }
}

/// One member's deterministic export: fixed counters/gauge plus a
/// histogram fed exact nanosecond observations.
fn member_export(requests: u64, edges: i64, lat_ns: &[u64]) -> RegistryExport {
    let r = Registry::new();
    r.counter("cluster.requests").add(requests);
    r.gauge("storage.edges").set(edges);
    let h = r.histogram("cluster.sample_latency_ns");
    for &ns in lat_ns {
        h.record_ns(ns);
    }
    r.export()
}

fn span(
    name: &str,
    id: u64,
    parent: Option<u64>,
    remote_parent: Option<u64>,
    start_ns: u64,
) -> ExportedSpan {
    ExportedSpan {
        name: name.to_string(),
        id,
        parent,
        trace_id: 42,
        remote_parent,
        start_ns,
        duration_ns: 1_000,
    }
}

fn canned_fleet() -> CannedFleet {
    CannedFleet {
        registry: Arc::new(Registry::new()),
        obs: vec![
            ("client".to_string(), member_export(10, 5, &[100, 1_000])),
            ("server-1".to_string(), member_export(7, 9, &[1_023])),
            ("server-2".to_string(), member_export(3, 2, &[15_000])),
        ],
        // client root (span 1) fans out to two servers; server-1 relays
        // to server-2 (its span 7 is the remote parent of server-2's 4).
        trace: vec![
            (
                "client".to_string(),
                vec![
                    span("fleet.sample", 1, None, None, 0),
                    span("fleet.sample_group", 2, Some(1), None, 10),
                ],
            ),
            (
                "server-1".to_string(),
                vec![
                    span("rpc.server.sample", 7, None, Some(2), 0),
                    span("cluster.sample", 8, Some(7), None, 5),
                ],
            ),
            (
                "server-2".to_string(),
                vec![span("rpc.server.update", 4, None, Some(7), 0)],
            ),
        ],
    }
}

fn check_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "merged exposition drifted from {} — run with UPDATE_GOLDEN=1 if intentional",
        path.display()
    );
}

#[test]
fn fleet_metrics_merge_matches_golden() {
    let fleet = canned_fleet();
    let (status, ct, body) = route_fleet("/fleet/metrics", &fleet);
    assert_eq!(status, 200);
    assert!(ct.starts_with("text/plain"), "{ct}");
    check_golden("fleet_metrics.prom", &body);
    // Deterministic: the same members render the same bytes.
    assert_eq!(body, route_fleet("/fleet/metrics", &fleet).2);
}

#[test]
fn fleet_metrics_merge_is_exact() {
    let fleet = canned_fleet();
    let (_, _, body) = route_fleet("/fleet/metrics", &fleet);
    // Counter sum: 10 + 7 + 3.
    assert!(
        body.contains("plato_cluster_requests_total{server=\"fleet\"} 20"),
        "{body}"
    );
    // Histogram merge is sum-preserving: total count is the sum of the
    // per-member counts, and the fleet `_sum` is the exact sum of every
    // observation (100 + 1000 + 1023 + 15000 ns).
    assert!(
        body.contains("plato_cluster_sample_latency_seconds_count{server=\"fleet\"} 4"),
        "{body}"
    );
    assert!(
        body.contains("plato_cluster_sample_latency_seconds_sum{server=\"fleet\"} 0.000017123"),
        "{body}"
    );
    // The shared formatter carries the single-process HELP conventions.
    assert!(
        body.contains(
            "# HELP plato_cluster_requests_total Sample requests routed by the cluster front door"
        ),
        "{body}"
    );
}

#[test]
fn debug_trace_stitches_one_tree_across_processes() {
    let fleet = canned_fleet();
    let (status, ct, body) = route_fleet("/debug/trace/42", &fleet);
    assert_eq!(status, 200);
    assert_eq!(ct, "application/json");
    assert!(
        body.starts_with("{\"trace_id\":42,\"span_count\":5"),
        "{body}"
    );
    assert!(
        body.contains("\"processes\":[\"client\",\"server-1\",\"server-2\"]"),
        "{body}"
    );
    // One root — the client's fan-out span — everything else nested.
    assert_eq!(body.matches("\"member\":\"client\"").count(), 2);
    let roots_at = body.find("\"roots\":[").expect("roots array");
    let first_root = &body[roots_at..];
    assert!(
        first_root.starts_with("\"roots\":[{\"member\":\"client\",\"name\":\"fleet.sample\""),
        "{body}"
    );
    // Exactly one top-level tree: the roots array holds a single object.
    assert_eq!(body.matches("\"remote_parent\":2").count(), 1);
    // Nesting: server-1's remote root sits under the client group span,
    // and server-2's under server-1's span 7.
    let group = body.find("\"name\":\"fleet.sample_group\"").expect("group");
    let srv1 = body.find("\"member\":\"server-1\"").expect("server-1");
    let srv2 = body.find("\"member\":\"server-2\"").expect("server-2");
    assert!(group < srv1 && srv1 < srv2, "{body}");
}

#[test]
fn debug_trace_rejects_bad_ids() {
    let fleet = canned_fleet();
    assert_eq!(route_fleet("/debug/trace/0", &fleet).0, 404);
    assert_eq!(route_fleet("/debug/trace/nope", &fleet).0, 404);
    assert_eq!(route_fleet("/debug/trace/", &fleet).0, 404);
}

#[test]
fn fleet_slow_merges_and_orders_by_duration() {
    let mut fleet = canned_fleet();
    fleet.obs[0].1.slow.push(SlowOpExport {
        op: "rpc.client.sample".to_string(),
        trace_id: Some(42),
        detail: "batch=64".to_string(),
        duration_ns: 5_000,
        spans: Vec::new(),
    });
    fleet.obs[1].1.slow.push(SlowOpExport {
        op: "cluster.sample".to_string(),
        trace_id: Some(42),
        detail: "vertex=7".to_string(),
        duration_ns: 9_000,
        spans: Vec::new(),
    });
    let (status, _, body) = route_fleet("/fleet/slow", &fleet);
    assert_eq!(status, 200);
    assert!(body.starts_with("{\"captured\":2,"), "{body}");
    // Slowest first, each op tagged with its origin member.
    let srv = body.find("\"server\":\"server-1\"").expect("server-1 op");
    let cli = body.find("\"server\":\"client\"").expect("client op");
    assert!(srv < cli, "slowest first: {body}");
    assert!(
        body.contains("\"op\":\"cluster.sample\",\"trace_id\":42"),
        "{body}"
    );
}

#[test]
fn index_advertises_the_telemetry_endpoints() {
    let fleet = canned_fleet();
    let (_, _, index) = route_fleet("/", &fleet);
    for needle in ["/debug/trace/<id>", "/fleet/metrics", "/fleet/slow"] {
        assert!(index.contains(needle), "{index}");
    }
}
