//! Deep memory-size accounting.
//!
//! The paper's Table IV compares the *memory cost after graph building* of
//! PlatoD2GL against PlatoGL and AliGraph. At laptop scale, process RSS is
//! dominated by allocator slack, so this reproduction instead counts the exact
//! number of heap bytes each data structure owns. Every storage structure in
//! the workspace implements [`DeepSize`], and the Table IV harness sums these
//! counts. Index overhead of key-value baselines (per-key bucket metadata,
//! unused capacity) is counted too, because that overhead is precisely what
//! the paper's samtree design eliminates.

/// Types that can report the exact number of bytes they occupy, including
/// owned heap allocations.
pub trait DeepSize {
    /// Bytes owned on the heap (excluding `size_of::<Self>()` itself).
    fn heap_bytes(&self) -> usize;

    /// Total bytes: the inline size plus owned heap bytes.
    fn deep_bytes(&self) -> usize {
        std::mem::size_of_val(self) + self.heap_bytes()
    }
}

impl DeepSize for u8 {
    fn heap_bytes(&self) -> usize {
        0
    }
}
impl DeepSize for u16 {
    fn heap_bytes(&self) -> usize {
        0
    }
}
impl DeepSize for u32 {
    fn heap_bytes(&self) -> usize {
        0
    }
}
impl DeepSize for u64 {
    fn heap_bytes(&self) -> usize {
        0
    }
}
impl DeepSize for usize {
    fn heap_bytes(&self) -> usize {
        0
    }
}
impl DeepSize for f32 {
    fn heap_bytes(&self) -> usize {
        0
    }
}
impl DeepSize for f64 {
    fn heap_bytes(&self) -> usize {
        0
    }
}
impl DeepSize for bool {
    fn heap_bytes(&self) -> usize {
        0
    }
}

impl<T: DeepSize> DeepSize for Vec<T> {
    /// Counts the full backing capacity, not just `len`, because unused
    /// capacity is real memory the structure is holding.
    fn heap_bytes(&self) -> usize {
        let slack = (self.capacity() - self.len()) * std::mem::size_of::<T>();
        let elems: usize = self
            .iter()
            .map(|e| std::mem::size_of::<T>() + e.heap_bytes())
            .sum();
        elems + slack
    }
}

impl<T: DeepSize> DeepSize for Box<T> {
    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<T>() + (**self).heap_bytes()
    }
}

impl<T: DeepSize> DeepSize for Option<T> {
    fn heap_bytes(&self) -> usize {
        self.as_ref().map_or(0, DeepSize::heap_bytes)
    }
}

impl DeepSize for String {
    fn heap_bytes(&self) -> usize {
        self.capacity()
    }
}

impl<A: DeepSize, B: DeepSize> DeepSize for (A, B) {
    fn heap_bytes(&self) -> usize {
        self.0.heap_bytes() + self.1.heap_bytes()
    }
}

/// Pretty-print a byte count the way the paper's tables do (GB/TB with two
/// significant decimals, falling back to MB/KB at reproduction scale).
pub fn human_bytes(bytes: usize) -> String {
    const KB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= KB * KB * KB * KB {
        format!("{:.2}TB", b / (KB * KB * KB * KB))
    } else if b >= KB * KB * KB {
        format!("{:.2}GB", b / (KB * KB * KB))
    } else if b >= KB * KB {
        format!("{:.2}MB", b / (KB * KB))
    } else if b >= KB {
        format!("{:.2}KB", b / KB)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_have_no_heap() {
        assert_eq!(7u64.heap_bytes(), 0);
        assert_eq!(7u64.deep_bytes(), 8);
        assert_eq!(1.5f64.deep_bytes(), 8);
        assert_eq!(true.deep_bytes(), 1);
    }

    #[test]
    fn vec_counts_capacity() {
        let mut v: Vec<u64> = Vec::with_capacity(16);
        v.push(1);
        v.push(2);
        assert_eq!(v.heap_bytes(), 16 * 8);
    }

    #[test]
    fn nested_vec_counts_inner_heap() {
        let v: Vec<Vec<u8>> = vec![vec![0u8; 10], vec![0u8; 20]];
        let inner = 10 + 20;
        let spines = 2 * std::mem::size_of::<Vec<u8>>();
        assert_eq!(v.heap_bytes(), inner + spines);
    }

    #[test]
    fn boxed_value() {
        let b = Box::new(5u64);
        assert_eq!(b.heap_bytes(), 8);
    }

    #[test]
    fn option_some_none() {
        let s: Option<Vec<u64>> = Some(vec![1, 2, 3]);
        assert_eq!(s.heap_bytes(), 24);
        let n: Option<Vec<u64>> = None;
        assert_eq!(n.heap_bytes(), 0);
    }

    #[test]
    fn string_counts_capacity() {
        let mut s = String::with_capacity(32);
        s.push_str("hi");
        assert_eq!(s.heap_bytes(), 32);
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(2048), "2.00KB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.00MB");
        assert_eq!(human_bytes(5 * 1024 * 1024 * 1024), "5.00GB");
    }
}
