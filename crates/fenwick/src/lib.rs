//! # FSTable & FTS — Fenwick-tree indexing for dynamic weighted sampling
//!
//! This crate implements Section V of the PlatoD2GL paper:
//!
//! * [`FsTable`] — the *Fenwick-tree Sum Table* (Sec. V-A). Like the classic
//!   cumulative-sum table (CSTable) it occupies exactly one `f64` per element,
//!   but every maintenance operation — in-place weight update (Alg. 3),
//!   append-insertion (Alg. 4) and swap-deletion — runs in `O(log n)` instead
//!   of the CSTable's `O(n)`.
//! * [`FsTable::sample_with`] — the *FTS* weighted-sampling search (Alg. 5),
//!   a range-narrowing binary search over the implicit Fenwick tree that
//!   draws an index proportionally to its weight in `O(log n)`.
//!
//! The element order is the caller's insertion order; PlatoD2GL exploits this
//! by keeping samtree *leaf* nodes unordered so that insertion is always an
//! append (Sec. IV-A constraint 2).
//!
//! ## Layout
//!
//! For weights `w_0..w_{n-1}`, entry `i` stores the *soft prefix sum*
//!
//! ```text
//! F[i] = Σ_{j = g(i)+1}^{i} w_j      with g(i) = i - LSB(i+1)
//! ```
//!
//! where `LSB(x)` isolates the lowest set bit (Eq. 4 of the paper). This is
//! the classic binary-indexed-tree layout shifted to 0-based indices.
//!
//! ## Numerical behaviour
//!
//! Weights are `f64`. Deletions and in-place updates apply signed deltas, so
//! long op sequences accumulate rounding on the order of machine epsilon per
//! op; [`FsTable::rebuild`] restores exactness and the samtree calls it on
//! node splits/merges, which bounds drift in practice.

mod fstable;

pub use fstable::FsTable;

/// Isolate the lowest set bit of `x` (the paper's `LSB` function).
///
/// `lsb(0)` is defined as 0.
#[inline]
pub fn lsb(x: usize) -> usize {
    x & x.wrapping_neg()
}

#[cfg(test)]
mod lsb_tests {
    use super::lsb;

    #[test]
    fn lsb_matches_paper_example() {
        // Paper: LSB(6) = LSB(0b110) = 2.
        assert_eq!(lsb(6), 2);
        assert_eq!(lsb(1), 1);
        assert_eq!(lsb(8), 8);
        assert_eq!(lsb(12), 4);
        assert_eq!(lsb(0), 0);
    }

    #[test]
    fn lsb_is_a_power_of_two_dividing_x() {
        for x in 1usize..10_000 {
            let l = lsb(x);
            assert!(l.is_power_of_two());
            assert_eq!(x % l, 0);
            assert_eq!(x & (l - 1), 0);
        }
    }
}
